
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/config.cc" "src/uarch/CMakeFiles/tia_uarch.dir/config.cc.o" "gcc" "src/uarch/CMakeFiles/tia_uarch.dir/config.cc.o.d"
  "/root/repo/src/uarch/cycle_fabric.cc" "src/uarch/CMakeFiles/tia_uarch.dir/cycle_fabric.cc.o" "gcc" "src/uarch/CMakeFiles/tia_uarch.dir/cycle_fabric.cc.o.d"
  "/root/repo/src/uarch/pipelined_pe.cc" "src/uarch/CMakeFiles/tia_uarch.dir/pipelined_pe.cc.o" "gcc" "src/uarch/CMakeFiles/tia_uarch.dir/pipelined_pe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
