# Empty compiler generated dependencies file for tia_uarch.
# This may be replaced when dependencies are built.
