file(REMOVE_RECURSE
  "libtia_uarch.a"
)
