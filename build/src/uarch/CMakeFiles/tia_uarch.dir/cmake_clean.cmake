file(REMOVE_RECURSE
  "CMakeFiles/tia_uarch.dir/config.cc.o"
  "CMakeFiles/tia_uarch.dir/config.cc.o.d"
  "CMakeFiles/tia_uarch.dir/cycle_fabric.cc.o"
  "CMakeFiles/tia_uarch.dir/cycle_fabric.cc.o.d"
  "CMakeFiles/tia_uarch.dir/pipelined_pe.cc.o"
  "CMakeFiles/tia_uarch.dir/pipelined_pe.cc.o.d"
  "libtia_uarch.a"
  "libtia_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tia_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
