file(REMOVE_RECURSE
  "libtia_workloads.a"
)
