# Empty dependencies file for tia_workloads.
# This may be replaced when dependencies are built.
