file(REMOVE_RECURSE
  "CMakeFiles/tia_workloads.dir/cpi.cc.o"
  "CMakeFiles/tia_workloads.dir/cpi.cc.o.d"
  "CMakeFiles/tia_workloads.dir/runner.cc.o"
  "CMakeFiles/tia_workloads.dir/runner.cc.o.d"
  "CMakeFiles/tia_workloads.dir/workloads.cc.o"
  "CMakeFiles/tia_workloads.dir/workloads.cc.o.d"
  "libtia_workloads.a"
  "libtia_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tia_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
