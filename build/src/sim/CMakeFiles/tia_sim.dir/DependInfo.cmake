
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fabric_config.cc" "src/sim/CMakeFiles/tia_sim.dir/fabric_config.cc.o" "gcc" "src/sim/CMakeFiles/tia_sim.dir/fabric_config.cc.o.d"
  "/root/repo/src/sim/functional.cc" "src/sim/CMakeFiles/tia_sim.dir/functional.cc.o" "gcc" "src/sim/CMakeFiles/tia_sim.dir/functional.cc.o.d"
  "/root/repo/src/sim/mesh.cc" "src/sim/CMakeFiles/tia_sim.dir/mesh.cc.o" "gcc" "src/sim/CMakeFiles/tia_sim.dir/mesh.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/tia_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/tia_sim.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
