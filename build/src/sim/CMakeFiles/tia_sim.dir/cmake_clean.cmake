file(REMOVE_RECURSE
  "CMakeFiles/tia_sim.dir/fabric_config.cc.o"
  "CMakeFiles/tia_sim.dir/fabric_config.cc.o.d"
  "CMakeFiles/tia_sim.dir/functional.cc.o"
  "CMakeFiles/tia_sim.dir/functional.cc.o.d"
  "CMakeFiles/tia_sim.dir/mesh.cc.o"
  "CMakeFiles/tia_sim.dir/mesh.cc.o.d"
  "CMakeFiles/tia_sim.dir/scheduler.cc.o"
  "CMakeFiles/tia_sim.dir/scheduler.cc.o.d"
  "libtia_sim.a"
  "libtia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
