file(REMOVE_RECURSE
  "libtia_sim.a"
)
