# Empty dependencies file for tia_sim.
# This may be replaced when dependencies are built.
