file(REMOVE_RECURSE
  "libtia_vlsi.a"
)
