file(REMOVE_RECURSE
  "CMakeFiles/tia_vlsi.dir/area_power.cc.o"
  "CMakeFiles/tia_vlsi.dir/area_power.cc.o.d"
  "CMakeFiles/tia_vlsi.dir/dse.cc.o"
  "CMakeFiles/tia_vlsi.dir/dse.cc.o.d"
  "CMakeFiles/tia_vlsi.dir/tech.cc.o"
  "CMakeFiles/tia_vlsi.dir/tech.cc.o.d"
  "CMakeFiles/tia_vlsi.dir/timing.cc.o"
  "CMakeFiles/tia_vlsi.dir/timing.cc.o.d"
  "libtia_vlsi.a"
  "libtia_vlsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tia_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
