
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vlsi/area_power.cc" "src/vlsi/CMakeFiles/tia_vlsi.dir/area_power.cc.o" "gcc" "src/vlsi/CMakeFiles/tia_vlsi.dir/area_power.cc.o.d"
  "/root/repo/src/vlsi/dse.cc" "src/vlsi/CMakeFiles/tia_vlsi.dir/dse.cc.o" "gcc" "src/vlsi/CMakeFiles/tia_vlsi.dir/dse.cc.o.d"
  "/root/repo/src/vlsi/tech.cc" "src/vlsi/CMakeFiles/tia_vlsi.dir/tech.cc.o" "gcc" "src/vlsi/CMakeFiles/tia_vlsi.dir/tech.cc.o.d"
  "/root/repo/src/vlsi/timing.cc" "src/vlsi/CMakeFiles/tia_vlsi.dir/timing.cc.o" "gcc" "src/vlsi/CMakeFiles/tia_vlsi.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/tia_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
