# Empty compiler generated dependencies file for tia_vlsi.
# This may be replaced when dependencies are built.
