
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assembler.cc" "src/core/CMakeFiles/tia_core.dir/assembler.cc.o" "gcc" "src/core/CMakeFiles/tia_core.dir/assembler.cc.o.d"
  "/root/repo/src/core/encoding.cc" "src/core/CMakeFiles/tia_core.dir/encoding.cc.o" "gcc" "src/core/CMakeFiles/tia_core.dir/encoding.cc.o.d"
  "/root/repo/src/core/instruction.cc" "src/core/CMakeFiles/tia_core.dir/instruction.cc.o" "gcc" "src/core/CMakeFiles/tia_core.dir/instruction.cc.o.d"
  "/root/repo/src/core/opcode.cc" "src/core/CMakeFiles/tia_core.dir/opcode.cc.o" "gcc" "src/core/CMakeFiles/tia_core.dir/opcode.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/tia_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/tia_core.dir/params.cc.o.d"
  "/root/repo/src/core/program.cc" "src/core/CMakeFiles/tia_core.dir/program.cc.o" "gcc" "src/core/CMakeFiles/tia_core.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
