# Empty dependencies file for tia_core.
# This may be replaced when dependencies are built.
