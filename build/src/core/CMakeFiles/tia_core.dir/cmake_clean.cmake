file(REMOVE_RECURSE
  "CMakeFiles/tia_core.dir/assembler.cc.o"
  "CMakeFiles/tia_core.dir/assembler.cc.o.d"
  "CMakeFiles/tia_core.dir/encoding.cc.o"
  "CMakeFiles/tia_core.dir/encoding.cc.o.d"
  "CMakeFiles/tia_core.dir/instruction.cc.o"
  "CMakeFiles/tia_core.dir/instruction.cc.o.d"
  "CMakeFiles/tia_core.dir/opcode.cc.o"
  "CMakeFiles/tia_core.dir/opcode.cc.o.d"
  "CMakeFiles/tia_core.dir/params.cc.o"
  "CMakeFiles/tia_core.dir/params.cc.o.d"
  "CMakeFiles/tia_core.dir/program.cc.o"
  "CMakeFiles/tia_core.dir/program.cc.o.d"
  "libtia_core.a"
  "libtia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
