file(REMOVE_RECURSE
  "libtia_core.a"
)
