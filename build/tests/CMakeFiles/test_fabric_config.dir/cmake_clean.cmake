file(REMOVE_RECURSE
  "CMakeFiles/test_fabric_config.dir/test_fabric_config.cc.o"
  "CMakeFiles/test_fabric_config.dir/test_fabric_config.cc.o.d"
  "test_fabric_config"
  "test_fabric_config.pdb"
  "test_fabric_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
