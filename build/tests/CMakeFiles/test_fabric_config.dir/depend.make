# Empty dependencies file for test_fabric_config.
# This may be replaced when dependencies are built.
