# Empty compiler generated dependencies file for test_pipeline_fidelity.
# This may be replaced when dependencies are built.
