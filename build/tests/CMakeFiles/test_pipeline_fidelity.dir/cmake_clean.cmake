file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_fidelity.dir/test_pipeline_fidelity.cc.o"
  "CMakeFiles/test_pipeline_fidelity.dir/test_pipeline_fidelity.cc.o.d"
  "test_pipeline_fidelity"
  "test_pipeline_fidelity.pdb"
  "test_pipeline_fidelity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
