file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_errors.dir/test_runtime_errors.cc.o"
  "CMakeFiles/test_runtime_errors.dir/test_runtime_errors.cc.o.d"
  "test_runtime_errors"
  "test_runtime_errors.pdb"
  "test_runtime_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
