# Empty compiler generated dependencies file for test_runtime_errors.
# This may be replaced when dependencies are built.
