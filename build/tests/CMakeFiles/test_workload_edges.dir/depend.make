# Empty dependencies file for test_workload_edges.
# This may be replaced when dependencies are built.
