file(REMOVE_RECURSE
  "CMakeFiles/test_workload_edges.dir/test_workload_edges.cc.o"
  "CMakeFiles/test_workload_edges.dir/test_workload_edges.cc.o.d"
  "test_workload_edges"
  "test_workload_edges.pdb"
  "test_workload_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
