# Empty compiler generated dependencies file for test_nested_speculation.
# This may be replaced when dependencies are built.
