file(REMOVE_RECURSE
  "CMakeFiles/test_nested_speculation.dir/test_nested_speculation.cc.o"
  "CMakeFiles/test_nested_speculation.dir/test_nested_speculation.cc.o.d"
  "test_nested_speculation"
  "test_nested_speculation.pdb"
  "test_nested_speculation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nested_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
