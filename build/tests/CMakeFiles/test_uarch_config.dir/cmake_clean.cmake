file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_config.dir/test_uarch_config.cc.o"
  "CMakeFiles/test_uarch_config.dir/test_uarch_config.cc.o.d"
  "test_uarch_config"
  "test_uarch_config.pdb"
  "test_uarch_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
