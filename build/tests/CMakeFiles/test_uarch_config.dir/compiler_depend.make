# Empty compiler generated dependencies file for test_uarch_config.
# This may be replaced when dependencies are built.
