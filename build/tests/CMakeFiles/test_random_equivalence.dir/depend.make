# Empty dependencies file for test_random_equivalence.
# This may be replaced when dependencies are built.
