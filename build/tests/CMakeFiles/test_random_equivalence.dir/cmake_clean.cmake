file(REMOVE_RECURSE
  "CMakeFiles/test_random_equivalence.dir/test_random_equivalence.cc.o"
  "CMakeFiles/test_random_equivalence.dir/test_random_equivalence.cc.o.d"
  "test_random_equivalence"
  "test_random_equivalence.pdb"
  "test_random_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
