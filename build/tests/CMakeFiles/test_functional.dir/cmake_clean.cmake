file(REMOVE_RECURSE
  "CMakeFiles/test_functional.dir/test_functional.cc.o"
  "CMakeFiles/test_functional.dir/test_functional.cc.o.d"
  "test_functional"
  "test_functional.pdb"
  "test_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
