# Empty dependencies file for test_functional.
# This may be replaced when dependencies are built.
