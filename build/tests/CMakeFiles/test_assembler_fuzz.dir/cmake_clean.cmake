file(REMOVE_RECURSE
  "CMakeFiles/test_assembler_fuzz.dir/test_assembler_fuzz.cc.o"
  "CMakeFiles/test_assembler_fuzz.dir/test_assembler_fuzz.cc.o.d"
  "test_assembler_fuzz"
  "test_assembler_fuzz.pdb"
  "test_assembler_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembler_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
