# Empty dependencies file for test_assembler_fuzz.
# This may be replaced when dependencies are built.
