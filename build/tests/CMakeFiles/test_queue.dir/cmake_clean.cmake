file(REMOVE_RECURSE
  "CMakeFiles/test_queue.dir/test_queue.cc.o"
  "CMakeFiles/test_queue.dir/test_queue.cc.o.d"
  "test_queue"
  "test_queue.pdb"
  "test_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
