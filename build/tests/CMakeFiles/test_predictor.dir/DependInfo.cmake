
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_predictor.cc" "tests/CMakeFiles/test_predictor.dir/test_predictor.cc.o" "gcc" "tests/CMakeFiles/test_predictor.dir/test_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tia_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vlsi/CMakeFiles/tia_vlsi.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/tia_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
