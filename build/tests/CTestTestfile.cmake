# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_params[1]_include.cmake")
include("/root/repo/build/tests/test_opcode[1]_include.cmake")
include("/root/repo/build/tests/test_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_functional[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_queue[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_fabric_config[1]_include.cmake")
include("/root/repo/build/tests/test_vlsi[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_config[1]_include.cmake")
include("/root/repo/build/tests/test_random_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_nested_speculation[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_counters[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_fidelity[1]_include.cmake")
include("/root/repo/build/tests/test_workload_edges[1]_include.cmake")
include("/root/repo/build/tests/test_assembler_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_errors[1]_include.cmake")
