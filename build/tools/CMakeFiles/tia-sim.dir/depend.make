# Empty dependencies file for tia-sim.
# This may be replaced when dependencies are built.
