file(REMOVE_RECURSE
  "CMakeFiles/tia-sim.dir/tia_sim.cc.o"
  "CMakeFiles/tia-sim.dir/tia_sim.cc.o.d"
  "tia-sim"
  "tia-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tia-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
