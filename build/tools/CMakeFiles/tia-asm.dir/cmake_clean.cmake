file(REMOVE_RECURSE
  "CMakeFiles/tia-asm.dir/tia_asm.cc.o"
  "CMakeFiles/tia-asm.dir/tia_asm.cc.o.d"
  "tia-asm"
  "tia-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tia-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
