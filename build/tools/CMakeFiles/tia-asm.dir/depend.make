# Empty dependencies file for tia-asm.
# This may be replaced when dependencies are built.
