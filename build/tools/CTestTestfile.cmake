# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_asm_assembles_fib "/root/repo/build/tools/tia-asm" "/root/repo/examples/programs/fib.s" "-o" "fib.bin")
set_tests_properties(tool_asm_assembles_fib PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_asm_hex_dump "/root/repo/build/tools/tia-asm" "/root/repo/examples/programs/fib.s" "--hex")
set_tests_properties(tool_asm_hex_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_functional_fib "/root/repo/build/tools/tia-sim" "/root/repo/examples/programs/fib.s" "--dump" "0")
set_tests_properties(tool_sim_functional_fib PROPERTIES  PASS_REGULAR_EXPRESSION "mem\\[0\\] = 6765" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_cycle_fib "/root/repo/build/tools/tia-sim" "/root/repo/examples/programs/fib.s" "-u" "T|DX +P+Q" "--dump" "0")
set_tests_properties(tool_sim_cycle_fib PROPERTIES  PASS_REGULAR_EXPRESSION "mem\\[0\\] = 6765" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_multi_pe_relay "/root/repo/build/tools/tia-sim" "/root/repo/examples/programs/relay.s" "--pes" "2" "--connect" "0.3:1.0" "--write-port" "1.1.2" "--dump" "100:8" "-u" "T|D|X1|X2 +P+N+Q")
set_tests_properties(tool_sim_multi_pe_relay PROPERTIES  PASS_REGULAR_EXPRESSION "mem\\[107\\] = 16" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
