# Empty compiler generated dependencies file for string_search.
# This may be replaced when dependencies are built.
