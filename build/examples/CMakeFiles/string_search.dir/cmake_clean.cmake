file(REMOVE_RECURSE
  "CMakeFiles/string_search.dir/string_search.cpp.o"
  "CMakeFiles/string_search.dir/string_search.cpp.o.d"
  "string_search"
  "string_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
