file(REMOVE_RECURSE
  "CMakeFiles/mesh_array.dir/mesh_array.cpp.o"
  "CMakeFiles/mesh_array.dir/mesh_array.cpp.o.d"
  "mesh_array"
  "mesh_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
