# Empty compiler generated dependencies file for mesh_array.
# This may be replaced when dependencies are built.
