# Empty dependencies file for spatial_pipeline.
# This may be replaced when dependencies are built.
