file(REMOVE_RECURSE
  "CMakeFiles/spatial_pipeline.dir/spatial_pipeline.cpp.o"
  "CMakeFiles/spatial_pipeline.dir/spatial_pipeline.cpp.o.d"
  "spatial_pipeline"
  "spatial_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
