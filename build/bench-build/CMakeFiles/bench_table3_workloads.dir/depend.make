# Empty dependencies file for bench_table3_workloads.
# This may be replaced when dependencies are built.
