file(REMOVE_RECURSE
  "../bench/bench_table3_workloads"
  "../bench/bench_table3_workloads.pdb"
  "CMakeFiles/bench_table3_workloads.dir/bench_table3_workloads.cc.o"
  "CMakeFiles/bench_table3_workloads.dir/bench_table3_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
