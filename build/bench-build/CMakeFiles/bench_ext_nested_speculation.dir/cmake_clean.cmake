file(REMOVE_RECURSE
  "../bench/bench_ext_nested_speculation"
  "../bench/bench_ext_nested_speculation.pdb"
  "CMakeFiles/bench_ext_nested_speculation.dir/bench_ext_nested_speculation.cc.o"
  "CMakeFiles/bench_ext_nested_speculation.dir/bench_ext_nested_speculation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_nested_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
