# Empty compiler generated dependencies file for bench_ext_nested_speculation.
# This may be replaced when dependencies are built.
