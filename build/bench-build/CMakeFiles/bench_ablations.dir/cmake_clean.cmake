file(REMOVE_RECURSE
  "../bench/bench_ablations"
  "../bench/bench_ablations.pdb"
  "CMakeFiles/bench_ablations.dir/bench_ablations.cc.o"
  "CMakeFiles/bench_ablations.dir/bench_ablations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
