file(REMOVE_RECURSE
  "../bench/bench_fig3_breakdown"
  "../bench/bench_fig3_breakdown.pdb"
  "CMakeFiles/bench_fig3_breakdown.dir/bench_fig3_breakdown.cc.o"
  "CMakeFiles/bench_fig3_breakdown.dir/bench_fig3_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
