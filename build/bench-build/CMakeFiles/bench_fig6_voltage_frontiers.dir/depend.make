# Empty dependencies file for bench_fig6_voltage_frontiers.
# This may be replaced when dependencies are built.
