file(REMOVE_RECURSE
  "../bench/bench_fig6_voltage_frontiers"
  "../bench/bench_fig6_voltage_frontiers.pdb"
  "CMakeFiles/bench_fig6_voltage_frontiers.dir/bench_fig6_voltage_frontiers.cc.o"
  "CMakeFiles/bench_fig6_voltage_frontiers.dir/bench_fig6_voltage_frontiers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_voltage_frontiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
