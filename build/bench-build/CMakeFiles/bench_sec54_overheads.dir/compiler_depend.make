# Empty compiler generated dependencies file for bench_sec54_overheads.
# This may be replaced when dependencies are built.
