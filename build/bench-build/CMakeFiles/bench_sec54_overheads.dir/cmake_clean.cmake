file(REMOVE_RECURSE
  "../bench/bench_sec54_overheads"
  "../bench/bench_sec54_overheads.pdb"
  "CMakeFiles/bench_sec54_overheads.dir/bench_sec54_overheads.cc.o"
  "CMakeFiles/bench_sec54_overheads.dir/bench_sec54_overheads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
