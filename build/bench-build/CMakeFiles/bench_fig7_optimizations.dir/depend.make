# Empty dependencies file for bench_fig7_optimizations.
# This may be replaced when dependencies are built.
