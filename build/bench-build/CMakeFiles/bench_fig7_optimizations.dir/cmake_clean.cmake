file(REMOVE_RECURSE
  "../bench/bench_fig7_optimizations"
  "../bench/bench_fig7_optimizations.pdb"
  "CMakeFiles/bench_fig7_optimizations.dir/bench_fig7_optimizations.cc.o"
  "CMakeFiles/bench_fig7_optimizations.dir/bench_fig7_optimizations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
