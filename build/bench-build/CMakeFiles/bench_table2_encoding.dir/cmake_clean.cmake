file(REMOVE_RECURSE
  "../bench/bench_table2_encoding"
  "../bench/bench_table2_encoding.pdb"
  "CMakeFiles/bench_table2_encoding.dir/bench_table2_encoding.cc.o"
  "CMakeFiles/bench_table2_encoding.dir/bench_table2_encoding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
