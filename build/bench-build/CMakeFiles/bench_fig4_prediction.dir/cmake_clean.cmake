file(REMOVE_RECURSE
  "../bench/bench_fig4_prediction"
  "../bench/bench_fig4_prediction.pdb"
  "CMakeFiles/bench_fig4_prediction.dir/bench_fig4_prediction.cc.o"
  "CMakeFiles/bench_fig4_prediction.dir/bench_fig4_prediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
