# Empty dependencies file for bench_fig4_prediction.
# This may be replaced when dependencies are built.
