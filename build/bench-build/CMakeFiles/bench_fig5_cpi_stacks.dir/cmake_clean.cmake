file(REMOVE_RECURSE
  "../bench/bench_fig5_cpi_stacks"
  "../bench/bench_fig5_cpi_stacks.pdb"
  "CMakeFiles/bench_fig5_cpi_stacks.dir/bench_fig5_cpi_stacks.cc.o"
  "CMakeFiles/bench_fig5_cpi_stacks.dir/bench_fig5_cpi_stacks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cpi_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
