# Empty compiler generated dependencies file for bench_fig5_cpi_stacks.
# This may be replaced when dependencies are built.
