# Empty dependencies file for bench_fig8_pareto.
# This may be replaced when dependencies are built.
