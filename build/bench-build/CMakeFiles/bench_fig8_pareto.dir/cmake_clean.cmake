file(REMOVE_RECURSE
  "../bench/bench_fig8_pareto"
  "../bench/bench_fig8_pareto.pdb"
  "CMakeFiles/bench_fig8_pareto.dir/bench_fig8_pareto.cc.o"
  "CMakeFiles/bench_fig8_pareto.dir/bench_fig8_pareto.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
