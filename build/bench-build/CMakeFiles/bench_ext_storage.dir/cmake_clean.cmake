file(REMOVE_RECURSE
  "../bench/bench_ext_storage"
  "../bench/bench_ext_storage.pdb"
  "CMakeFiles/bench_ext_storage.dir/bench_ext_storage.cc.o"
  "CMakeFiles/bench_ext_storage.dir/bench_ext_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
