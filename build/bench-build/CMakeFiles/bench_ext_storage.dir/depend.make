# Empty dependencies file for bench_ext_storage.
# This may be replaced when dependencies are built.
