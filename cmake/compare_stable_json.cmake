# Assert two JSON documents are byte-identical after dropping host
# timing ("wall_ms") lines — the only field allowed to differ between
# a cold and a warm cached tia-sweep run (docs/simcache.md).
#
#   cmake -DFILE_A=cold.json -DFILE_B=warm.json \
#         -P compare_stable_json.cmake
foreach(var FILE_A FILE_B)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}=<path>")
    endif()
endforeach()
file(READ "${FILE_A}" a)
file(READ "${FILE_B}" b)
string(REGEX REPLACE "[^\n]*wall_ms[^\n]*\n" "" a "${a}")
string(REGEX REPLACE "[^\n]*wall_ms[^\n]*\n" "" b "${b}")
if(NOT a STREQUAL b)
    message(FATAL_ERROR
        "${FILE_A} and ${FILE_B} differ beyond wall_ms lines")
endif()
