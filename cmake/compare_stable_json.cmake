# Assert two JSON documents are byte-identical after dropping host
# timing ("wall_ms") lines — the only field allowed to differ between
# a cold and a warm cached tia-sweep run (docs/simcache.md). Pass
# -DIGNORE_KEYS=jobs (semicolon list) to also drop other run-metadata
# lines, e.g. when comparing sweeps at different --jobs counts
# (docs/sweep_engine.md: results must be jobs-invariant, the recorded
# worker count obviously is not).
#
#   cmake -DFILE_A=cold.json -DFILE_B=warm.json \
#         [-DIGNORE_KEYS=jobs] -P compare_stable_json.cmake
foreach(var FILE_A FILE_B)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}=<path>")
    endif()
endforeach()
file(READ "${FILE_A}" a)
file(READ "${FILE_B}" b)
set(drop wall_ms)
if(DEFINED IGNORE_KEYS)
    list(APPEND drop ${IGNORE_KEYS})
endif()
foreach(key IN LISTS drop)
    string(REGEX REPLACE "[^\n]*\"${key}\"[^\n]*\n" "" a "${a}")
    string(REGEX REPLACE "[^\n]*\"${key}\"[^\n]*\n" "" b "${b}")
endforeach()
if(NOT a STREQUAL b)
    message(FATAL_ERROR
        "${FILE_A} and ${FILE_B} differ beyond ${drop} lines")
endif()
