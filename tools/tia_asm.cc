/**
 * @file
 * tia-asm: command-line assembler / disassembler, the C++ counterpart
 * of the Python assembler in the paper's toolchain (Figure 1).
 *
 *   tia-asm prog.s [-p params.yaml] [-o prog.bin] [--hex]
 *   tia-asm --disassemble prog.bin [-p params.yaml]
 *
 * The binary container holds, per PE, the full instruction store
 * (NIns entries, each padded to a 32-bit multiple — 128 bits at the
 * default parameters, exactly the host-side layout of Section 2.3):
 *
 *   "TIA1"  u32 numPes  u32 wordsPerPe  { wordsPerPe x u32 } per PE
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/assembler.hh"
#include "core/encoding.hh"
#include "core/logging.hh"

namespace {

using namespace tia;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeU32(std::ostream &out, std::uint32_t value)
{
    unsigned char bytes[4] = {
        static_cast<unsigned char>(value & 0xff),
        static_cast<unsigned char>((value >> 8) & 0xff),
        static_cast<unsigned char>((value >> 16) & 0xff),
        static_cast<unsigned char>((value >> 24) & 0xff),
    };
    out.write(reinterpret_cast<const char *>(bytes), 4);
}

std::uint32_t
readU32(const std::string &data, std::size_t offset)
{
    fatalIf(offset + 4 > data.size(), "truncated binary");
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(data.data() + offset);
    return static_cast<std::uint32_t>(bytes[0]) |
           (static_cast<std::uint32_t>(bytes[1]) << 8) |
           (static_cast<std::uint32_t>(bytes[2]) << 16) |
           (static_cast<std::uint32_t>(bytes[3]) << 24);
}

int
assembleMode(const std::string &input, const ArchParams &params,
             const std::string &output, bool hex)
{
    const Program program = assemble(readFile(input), params);
    const unsigned words_per_pe =
        fieldWidths(params).padded() / 32 * params.numInstructions;

    if (hex) {
        for (unsigned pe = 0; pe < program.numPes(); ++pe) {
            std::printf("# PE %u\n", pe);
            const MachineCode store =
                encodeStore(params, program.pes[pe]);
            for (std::size_t w = 0; w < store.size(); ++w) {
                std::printf("%08x%s", store[w],
                            (w + 1) % 4 == 0 ? "\n" : " ");
            }
        }
        return 0;
    }

    std::ofstream out(output, std::ios::binary);
    fatalIf(!out, "cannot write ", output);
    out.write("TIA1", 4);
    writeU32(out, program.numPes());
    writeU32(out, words_per_pe);
    for (unsigned pe = 0; pe < program.numPes(); ++pe) {
        const MachineCode store = encodeStore(params, program.pes[pe]);
        for (std::uint32_t word : store)
            writeU32(out, word);
    }
    std::fprintf(stderr, "%s: %u PE(s), %u static instruction(s), %u "
                 "words/PE -> %s\n",
                 input.c_str(), program.numPes(),
                 program.staticInstructions(), words_per_pe,
                 output.c_str());
    return 0;
}

int
disassembleMode(const std::string &input, const ArchParams &params)
{
    const std::string data = readFile(input);
    fatalIf(data.size() < 12 || std::memcmp(data.data(), "TIA1", 4) != 0,
            input, " is not a TIA1 binary");
    const std::uint32_t num_pes = readU32(data, 4);
    const std::uint32_t words_per_pe = readU32(data, 8);
    const unsigned expected =
        fieldWidths(params).padded() / 32 * params.numInstructions;
    fatalIf(words_per_pe != expected,
            "binary was assembled with different parameters (",
            words_per_pe, " words/PE, expected ", expected, ")");

    Program program;
    program.params = params;
    std::size_t offset = 12;
    for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
        MachineCode store(words_per_pe);
        for (std::uint32_t w = 0; w < words_per_pe; ++w, offset += 4)
            store[w] = readU32(data, offset);
        std::vector<Instruction> all = decodeStore(params, store);
        std::vector<Instruction> valid;
        for (const auto &inst : all)
            if (inst.trigger.valid)
                valid.push_back(inst);
        program.pes.push_back(std::move(valid));
    }
    std::fputs(program.toString().c_str(), stdout);
    return 0;
}

void
usage()
{
    std::fputs(
        "usage: tia-asm prog.s [-p params] [-o out.bin] [--hex]\n"
        "       tia-asm --disassemble prog.bin [-p params]\n",
        stderr);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tia;
    std::string input;
    std::string output = "a.bin";
    std::string params_path;
    bool hex = false;
    bool disassemble = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-p" && i + 1 < argc) {
            params_path = argv[++i];
        } else if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--hex") {
            hex = true;
        } else if (arg == "--disassemble" || arg == "-d") {
            disassemble = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && input.empty()) {
            input = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (input.empty()) {
        usage();
        return 2;
    }

    try {
        ArchParams params;
        if (!params_path.empty())
            params = parseParams(readFile(params_path));
        if (disassemble)
            return disassembleMode(input, params);
        return assembleMode(input, params, output, hex);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "tia-asm: %s\n", error.what());
        return 1;
    }
}
