/**
 * @file
 * tia-trunc: truncate a file to a given byte length.
 *
 *   tia-trunc FILE BYTES
 *
 * Test helper for the cache-corruption ctest fixtures
 * (tools/CMakeLists.txt): chopping a TIASIMC1 warm tier mid-entry must
 * degrade to a miss, never a crash, and the next --cache run rewrites
 * the file. cmake -E has no truncate, hence this 20-line tool.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr, "usage: tia-trunc FILE BYTES\n");
        return 2;
    }
    const std::uint64_t size = std::strtoull(argv[2], nullptr, 10);
    std::error_code ec;
    std::filesystem::resize_file(argv[1], size, ec);
    if (ec) {
        std::fprintf(stderr, "tia-trunc: %s: %s\n", argv[1],
                     ec.message().c_str());
        return 1;
    }
    return 0;
}
