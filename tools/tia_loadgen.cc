/**
 * @file
 * tia-loadgen: load generator and drain-contract checker for tia-serve.
 *
 *   tia-loadgen --socket PATH | --port N | --spawn TIA_SERVE_BIN
 *               [options]
 *
 * Runs `--clients` concurrent connections, each issuing `--requests`
 * simulate calls, honoring `retry_after` rejections with jittered
 * exponential backoff (ServeClient::callWithRetry). Every request must
 * end in a result or a typed error; in normal mode any transport-level
 * loss is a failure (exit 1).
 *
 * With --spawn the tool fork/execs a private daemon on a Unix socket,
 * waits for it to accept, runs the load, fetches `stats`, SIGTERMs the
 * daemon and requires exit status 0 — the full deployment lifecycle in
 * one command. Adding --sigterm sends the SIGTERM *mid-load* instead,
 * turning the run into a drain-under-fire check: responses already
 * admitted must still arrive (or arrive as typed `shutting_down` /
 * `deadline` errors); only then may connections die.
 *
 * Options:
 *   --clients N         concurrent connections (default 4)
 *   --requests N        requests per client (default 25)
 *   --workloads A,B     workload names cycled per request
 *                       (default gcd,udiv,mean)
 *   --uarch NAME        microarchitecture (default TDX)
 *   --sizes small|full  workload sizes (default small)
 *   --deadline-ms N     per-request deadline
 *   --max-cycles N      per-request cycle budget override
 *   --no-cache          ask the server not to use its result cache
 *   --sigterm           (with --spawn) SIGTERM the daemon mid-load
 *   --sigterm-after-ms N  delay before the mid-load SIGTERM (default
 *                       200)
 *   --bench FILE        write a JSON summary (client-side latency
 *                       percentiles, outcome tallies, server stats)
 *   --seed N            jitter/backoff PRNG seed (default 1)
 *   Pass-through to a spawned daemon: --workers, --queue, --quota-rps,
 *   --quota-burst, --cache, --metrics (the daemon's exit document,
 *   checkable with tia-metrics-check).
 *
 * Exit codes: 0 contract held, 1 violation or daemon failure, 2 usage.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/logging.hh"
#include "obs/json.hh"
#include "serve/client.hh"

namespace {

using namespace tia;
using Clock = std::chrono::steady_clock;

struct Options
{
    std::string unixPath;
    int tcpPort = -1;
    std::string spawnBin;
    unsigned clients = 4;
    unsigned requests = 25;
    std::vector<std::string> workloads = {"gcd", "udiv", "mean"};
    std::string uarch = "TDX";
    std::string sizes = "small";
    std::uint64_t deadlineMs = 0;
    std::uint64_t maxCycles = 0;
    bool useCache = true;
    bool sigterm = false;
    std::uint64_t sigtermAfterMs = 200;
    std::string benchPath;
    std::uint64_t seed = 1;
    // Spawned-daemon pass-through.
    unsigned workers = 0;
    std::size_t queueCapacity = 0;
    double quotaRps = 0.0;
    double quotaBurst = 0.0;
    std::string cachePath;
    std::string metricsPath;
};

/** Outcome tallies across all client threads. */
struct Tally
{
    std::mutex mu;
    std::uint64_t ok = 0;
    std::map<std::string, std::uint64_t> typedErrors;
    std::uint64_t transportErrors = 0;
    std::uint64_t retries = 0;
    std::vector<double> latenciesMs;
};

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : text) {
        if (c == ',') {
            fatalIf(current.empty(), "empty list entry in \"", text, "\"");
            out.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    fatalIf(current.empty(), "empty list entry in \"", text, "\"");
    out.push_back(current);
    return out;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5));
    return sorted[idx];
}

std::optional<ServeClient>
connect(const Options &opt, std::string *error)
{
    if (!opt.unixPath.empty())
        return ServeClient::connectUnix(opt.unixPath, error);
    return ServeClient::connectTcp("127.0.0.1", opt.tcpPort, error);
}

/** fork/exec a private daemon; returns its pid (fatal on failure). */
pid_t
spawnDaemon(const Options &opt)
{
    std::vector<std::string> args = {opt.spawnBin, "--socket",
                                     opt.unixPath};
    const auto push = [&args](const std::string &flag,
                              const std::string &value) {
        args.push_back(flag);
        args.push_back(value);
    };
    if (opt.workers != 0)
        push("--workers", std::to_string(opt.workers));
    if (opt.queueCapacity != 0)
        push("--queue", std::to_string(opt.queueCapacity));
    if (opt.quotaRps > 0.0)
        push("--quota-rps", std::to_string(opt.quotaRps));
    if (opt.quotaBurst > 0.0)
        push("--quota-burst", std::to_string(opt.quotaBurst));
    if (!opt.cachePath.empty())
        push("--cache", opt.cachePath);
    if (!opt.metricsPath.empty())
        push("--metrics", opt.metricsPath);

    const pid_t pid = ::fork();
    fatalIf(pid < 0, "fork failed");
    if (pid == 0) {
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &arg : args)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        std::perror("tia-loadgen: execv");
        ::_exit(127);
    }
    // Readiness: the daemon is up once its socket accepts.
    for (int attempt = 0; attempt < 500; ++attempt) {
        std::string error;
        if (auto probe = ServeClient::connectUnix(opt.unixPath, &error))
            return pid;
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            fatal("spawned daemon exited during startup (status ",
                  status, ")");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(pid, SIGKILL);
    fatal("spawned daemon never became ready on ", opt.unixPath);
}

void
clientThread(const Options &opt, unsigned index, Tally &tally,
             std::atomic<bool> &serverGone)
{
    std::string error;
    auto client = connect(opt, &error);
    if (!client.has_value()) {
        std::lock_guard lk(tally.mu);
        tally.transportErrors++;
        return;
    }
    client->setClient("load" + std::to_string(index));
    client->setDeadlineMs(opt.deadlineMs);
    BackoffPolicy policy;
    policy.seed = opt.seed * 0x9e3779b97f4a7c15ull + index + 1;

    for (unsigned req = 0; req < opt.requests; ++req) {
        JsonValue params = JsonValue::object();
        params["workload"] =
            opt.workloads[(index + req) % opt.workloads.size()];
        params["uarch"] = opt.uarch;
        params["sizes"] = opt.sizes;
        if (opt.maxCycles != 0)
            params["max_cycles"] = opt.maxCycles;
        if (!opt.useCache)
            params["cache"] = JsonValue(false);

        unsigned retries = 0;
        const auto start = Clock::now();
        auto response = client->callWithRetry("simulate",
                                              std::move(params), policy,
                                              &error, &retries);
        const double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - start)
                              .count();
        std::lock_guard lk(tally.mu);
        tally.retries += retries;
        if (!response.has_value()) {
            tally.transportErrors++;
            if (serverGone.load())
                return; // connection died during a requested drain
            // Transport hiccup outside shutdown: reconnect and go on;
            // the final tally decides whether the contract held.
            client = connect(opt, &error);
            if (!client.has_value())
                return;
            client->setClient("load" + std::to_string(index));
            client->setDeadlineMs(opt.deadlineMs);
            continue;
        }
        if (response->ok) {
            tally.ok++;
            tally.latenciesMs.push_back(ms);
        } else {
            tally.typedErrors[serveErrorCode(response->error)]++;
            if (response->error == ServeError::ShuttingDown)
                return; // drain reached us; stop sending
        }
    }
}

int
run(const Options &opt)
{
    pid_t daemon = -1;
    if (!opt.spawnBin.empty())
        daemon = spawnDaemon(opt);

    Tally tally;
    std::atomic<bool> serverGone{false};
    const auto loadStart = Clock::now();

    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (unsigned i = 0; i < opt.clients; ++i)
        threads.emplace_back(
            [&opt, i, &tally, &serverGone] {
                clientThread(opt, i, tally, serverGone);
            });

    if (opt.sigterm && daemon > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt.sigtermAfterMs));
        std::fprintf(stderr, "tia-loadgen: SIGTERM mid-load\n");
        serverGone.store(true);
        ::kill(daemon, SIGTERM);
    }
    for (std::thread &t : threads)
        t.join();
    const double wallMs = std::chrono::duration<double, std::milli>(
                              Clock::now() - loadStart)
                              .count();

    // Post-load stats (the server is still up unless we SIGTERMed it).
    JsonValue serverStats;
    if (!opt.sigterm) {
        std::string error;
        if (auto client = connect(opt, &error)) {
            if (auto response = client->call("stats", JsonValue(), &error);
                response.has_value() && response->ok)
                serverStats = response->result;
        }
    }

    int daemonExit = -1;
    if (daemon > 0) {
        if (!opt.sigterm) {
            serverGone.store(true);
            ::kill(daemon, SIGTERM);
        }
        // A draining daemon must exit 0 promptly once in-flight work
        // finishes; give it ample budget, then treat a hang as failure.
        int status = 0;
        for (int attempt = 0; attempt < 3000; ++attempt) {
            const pid_t got = ::waitpid(daemon, &status, WNOHANG);
            if (got == daemon) {
                daemonExit = WIFEXITED(status) ? WEXITSTATUS(status)
                                               : 128 + WTERMSIG(status);
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        if (daemonExit < 0) {
            std::fprintf(stderr,
                         "tia-loadgen: daemon did not exit; SIGKILL\n");
            ::kill(daemon, SIGKILL);
            ::waitpid(daemon, &status, 0);
        }
    }

    // Report.
    std::sort(tally.latenciesMs.begin(), tally.latenciesMs.end());
    const double p50 = percentile(tally.latenciesMs, 0.50);
    const double p99 = percentile(tally.latenciesMs, 0.99);
    const double maxMs =
        tally.latenciesMs.empty() ? 0.0 : tally.latenciesMs.back();
    std::uint64_t typedTotal = 0;
    for (const auto &[code, count] : tally.typedErrors)
        typedTotal += count;
    const double rps =
        wallMs > 0.0 ? static_cast<double>(tally.ok) / (wallMs / 1000.0)
                     : 0.0;
    std::fprintf(stderr,
                 "tia-loadgen: %llu ok, %llu typed errors, %llu "
                 "transport errors, %llu retries in %.1f ms "
                 "(%.0f ok/s; p50 %.3f ms, p99 %.3f ms)\n",
                 static_cast<unsigned long long>(tally.ok),
                 static_cast<unsigned long long>(typedTotal),
                 static_cast<unsigned long long>(tally.transportErrors),
                 static_cast<unsigned long long>(tally.retries), wallMs,
                 rps, p50, p99);
    for (const auto &[code, count] : tally.typedErrors)
        std::fprintf(stderr, "tia-loadgen:   %s: %llu\n", code.c_str(),
                     static_cast<unsigned long long>(count));

    if (!opt.benchPath.empty()) {
        JsonValue doc = JsonValue::object();
        doc["tool"] = "tia-loadgen";
        JsonValue config = JsonValue::object();
        config["clients"] = opt.clients;
        config["requests_per_client"] = opt.requests;
        JsonValue names = JsonValue::array();
        for (const std::string &name : opt.workloads)
            names.push(name);
        config["workloads"] = std::move(names);
        config["uarch"] = opt.uarch;
        config["sizes"] = opt.sizes;
        config["deadline_ms"] = opt.deadlineMs;
        config["cache"] = JsonValue(opt.useCache);
        config["sigterm_mid_load"] = JsonValue(opt.sigterm);
        doc["config"] = std::move(config);
        JsonValue results = JsonValue::object();
        results["ok"] = tally.ok;
        JsonValue typed = JsonValue::object();
        for (const auto &[code, count] : tally.typedErrors)
            typed[code] = count;
        results["typed_errors"] = std::move(typed);
        results["transport_errors"] = tally.transportErrors;
        results["retries"] = tally.retries;
        results["wall_ms"] = wallMs;
        results["ok_per_sec"] = rps;
        JsonValue latency = JsonValue::object();
        latency["count"] = tally.latenciesMs.size();
        latency["p50"] = p50;
        latency["p99"] = p99;
        latency["max"] = maxMs;
        results["latency_ms"] = std::move(latency);
        doc["results"] = std::move(results);
        doc["server"] = std::move(serverStats);
        if (daemon > 0)
            doc["daemon_exit"] = daemonExit;
        std::ofstream out(opt.benchPath, std::ios::trunc);
        fatalIf(!out, "cannot write ", opt.benchPath);
        out << doc.dump() << "\n";
        std::fprintf(stderr, "tia-loadgen: wrote %s\n",
                     opt.benchPath.c_str());
    }

    // Contract verdict.
    if (daemon > 0 && daemonExit != 0) {
        std::fprintf(stderr,
                     "tia-loadgen: FAIL: daemon exit status %d\n",
                     daemonExit);
        return 1;
    }
    if (!opt.sigterm && tally.transportErrors > 0) {
        std::fprintf(stderr,
                     "tia-loadgen: FAIL: %llu transport errors without "
                     "a shutdown in progress\n",
                     static_cast<unsigned long long>(
                         tally.transportErrors));
        return 1;
    }
    // Typed errors are responses: a run where every request was
    // answered `deadline` honored the contract. Only silence fails.
    if (tally.ok + typedTotal == 0 && !opt.sigterm) {
        std::fprintf(stderr, "tia-loadgen: FAIL: no responses at all\n");
        return 1;
    }
    std::fprintf(stderr,
                 "tia-loadgen: contract held: %llu ok, %llu typed "
                 "errors, %llu transport errors, %llu retries\n",
                 static_cast<unsigned long long>(tally.ok),
                 static_cast<unsigned long long>(typedTotal),
                 static_cast<unsigned long long>(tally.transportErrors),
                 static_cast<unsigned long long>(tally.retries));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool haveTarget = false;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg, " needs an argument");
                return argv[++i];
            };
            if (arg == "--socket") {
                opt.unixPath = next();
                haveTarget = true;
            } else if (arg == "--port") {
                opt.tcpPort = static_cast<int>(std::stoul(next()));
                haveTarget = true;
            } else if (arg == "--spawn") {
                opt.spawnBin = next();
                haveTarget = true;
            } else if (arg == "--clients") {
                opt.clients = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--requests") {
                opt.requests = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--workloads") {
                opt.workloads = splitCsv(next());
            } else if (arg == "--uarch") {
                opt.uarch = next();
            } else if (arg == "--sizes") {
                opt.sizes = next();
            } else if (arg == "--deadline-ms") {
                opt.deadlineMs = std::stoull(next());
            } else if (arg == "--max-cycles") {
                opt.maxCycles = std::stoull(next());
            } else if (arg == "--no-cache") {
                opt.useCache = false;
            } else if (arg == "--sigterm") {
                opt.sigterm = true;
            } else if (arg == "--sigterm-after-ms") {
                opt.sigtermAfterMs = std::stoull(next());
            } else if (arg == "--bench") {
                opt.benchPath = next();
            } else if (arg == "--seed") {
                opt.seed = std::stoull(next());
            } else if (arg == "--workers") {
                opt.workers = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--queue") {
                opt.queueCapacity = std::stoul(next());
            } else if (arg == "--quota-rps") {
                opt.quotaRps = std::stod(next());
            } else if (arg == "--quota-burst") {
                opt.quotaBurst = std::stod(next());
            } else if (arg == "--cache") {
                opt.cachePath = next();
            } else if (arg == "--metrics") {
                opt.metricsPath = next();
            } else {
                std::fprintf(stderr, "unknown option %s\n", arg.c_str());
                return 2;
            }
        }
        fatalIf(!haveTarget,
                "need --socket PATH, --port N or --spawn TIA_SERVE_BIN");
        if (!opt.spawnBin.empty() && opt.unixPath.empty()) {
            // Short relative path: sockaddr_un caps paths at ~107
            // bytes, and ctest working directories can be deep.
            opt.unixPath =
                "loadgen." + std::to_string(::getpid()) + ".sock";
        }
        ::signal(SIGPIPE, SIG_IGN);
        return run(opt);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "tia-loadgen: %s\n", error.what());
        return 1;
    }
}
