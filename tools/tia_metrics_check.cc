/**
 * @file
 * tia-metrics-check: validator for tia-metrics/v1 documents.
 *
 *   tia-metrics-check [--json-only] FILE...
 *
 * Parses each file as JSON and, unless --json-only is given, checks
 * the tia-metrics/v1 schema and counter-integrity invariants
 * (obs/metrics.hh): per-PE attribution buckets + in-flight == cycles,
 * CPI null exactly when nothing retired and otherwise equal to
 * cycles/retired, sleep-step accounting consistent with the
 * per-PE cycle totals, and — when the optional root "cache" block is
 * present (simcache stats; docs/simcache.md) — hits + misses +
 * coalesced == lookups with verified_hits <= hits.
 * --json-only reduces the tool to a strict JSON
 * well-formedness check — handy for Chrome trace files, which share
 * no schema with the metrics documents.
 *
 * Exit code 0 when every file passes, 1 otherwise, 2 on usage errors.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"

int
main(int argc, char **argv)
{
    bool json_only = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json-only") {
            json_only = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: tia-metrics-check [--json-only] FILE...\n");
        return 2;
    }

    int failures = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path.c_str());
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string text = buffer.str();

        std::string error;
        const auto doc = tia::JsonValue::parse(text, &error);
        if (!doc.has_value()) {
            std::fprintf(stderr, "%s: JSON error: %s\n", path.c_str(),
                         error.c_str());
            ++failures;
            continue;
        }
        if (json_only) {
            std::printf("%s: well-formed JSON\n", path.c_str());
            continue;
        }
        const auto problems = tia::validateMetricsDocument(*doc);
        if (problems.empty()) {
            std::printf("%s: ok\n", path.c_str());
            continue;
        }
        for (const std::string &problem : problems)
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         problem.c_str());
        ++failures;
    }
    return failures == 0 ? 0 : 1;
}
