/**
 * @file
 * tia-sim: command-line simulator, the C++ counterpart of the paper
 * toolchain's functional ISA simulator plus the cycle-accurate
 * microarchitecture models.
 *
 *   tia-sim prog.s [options]
 *
 * Options:
 *   -p FILE            parameter file (Table 1 keys)
 *   -u NAMES           microarchitecture ("functional" by default;
 *                      e.g. "TDX", "T|DX +P+Q", "T|D|X1|X2 +P+N+Q").
 *                      A comma-separated list (or "all" for all 32
 *                      configurations) sweeps the program over every
 *                      named microarchitecture.
 *   --jobs N           worker threads for multi-uarch sweeps
 *                      (default: hardware concurrency). Results are
 *                      printed in list order and are bit-identical to
 *                      a serial sweep.
 *   --batch N          batched lockstep simulation for multi-uarch
 *                      sweeps: advance N microarchitectures per
 *                      BatchedFabric in lockstep (docs/batched_sim.md).
 *                      Reports are bit-identical to the scalar sweep
 *                      (the --stats host-time line uses the lockstep
 *                      group's wall time). Default off. Junk values
 *                      are fatal and absurd widths clamp with a
 *                      warning (parseBatchWidth); --jobs 1 disables
 *                      batching with a stderr note and an
 *                      "auto_disabled" flag in --metrics.
 *   --pes N            fabric size (default: as many PEs as the
 *                      program targets)
 *   --connect A.O:B.I  wire PE A output O to PE B input I (repeat)
 *   --read-port P.A.D  memory read port on PE P (addr out A, data in D)
 *   --write-port P.A.D memory write port on PE P (addr out A, data out D)
 *   --reg P.R=V        preload register R of PE P with V
 *   --mem A=V          preload memory word A with V (repeat)
 *   --dump A[:N]       print N (default 1) memory words from A after
 *                      the run (repeat)
 *   --max-cycles N     simulation budget (default 100,000,000 — the
 *                      shared kDefaultMaxCycles)
 *   --quiescence N     quiescence/watchdog window in cycles
 *                      (default 10,000)
 *   --inject PLAN      fault-injection plan (see sim/fault.hh), e.g.
 *                      "seed=7;drop:ch0@p0.01;mispredict:pe0@p0.1"
 *   --watchdog         print the full hang diagnosis (wait-for chain,
 *                      blocked agents) when a run does not halt
 *   --trace FILE       write a Chrome trace_event JSON trace (load in
 *                      chrome://tracing or Perfetto); single cycle-
 *                      accurate -u only
 *   --trace-level L    trace granularity: "events" (default; issue,
 *                      retire, quash, predictor, park/wake) or
 *                      "cycles" (adds per-stage occupancy tracks and
 *                      per-cycle channel depths)
 *   --trace-binary FILE  write the compact binary ring trace instead
 *                      of (or besides) the JSON one; keeps the last
 *                      1M records (see obs/binary_ring.hh)
 *   --metrics FILE     write a tia-metrics/v1 JSON document with one
 *                      run entry per swept microarchitecture
 *                      (validate with tia-metrics-check)
 *   --stats            print host-side simulation statistics: wall
 *                      time, simulated cycles per host second, and how
 *                      many PE steps the idle-sleep optimization
 *                      skipped (cycle-accurate runs only)
 *   --cache FILE       content-addressed result cache (see
 *                      docs/simcache.md): memoize each swept run's
 *                      report under a digest of every input and
 *                      persist it to FILE. Cycle-accurate -u only;
 *                      incompatible with --trace/--trace-binary
 *                      (tracing is a side effect a cached result
 *                      cannot replay). With --stats, the per-run wall
 *                      line is replaced by a deterministic "sim
 *                      stats:" header so cached and fresh runs print
 *                      identical reports; cache hit/miss counts go to
 *                      stderr.
 *   --cache-verify     with --cache: re-simulate every hit and fail
 *                      unless the cached report is bit-identical
 *
 * Single-PE programs with no wiring options get the conventional port
 * map automatically: read port on %o0/%i0, write port on %o1/%o2.
 *
 * Exit codes: 0 halted, 1 error, 2 usage, 3 quiescent (starved),
 * 4 deadlock, 5 livelock, 6 step limit — so scripts can distinguish
 * the failure classes. A multi-uarch sweep exits with the worst
 * (highest) per-run code.
 */

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cache/digest.hh"
#include "cache/serialize.hh"
#include "cache/simcache.hh"
#include "core/assembler.hh"
#include "core/logging.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "obs/binary_ring.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "sim/fault.hh"
#include "sim/functional.hh"
#include "uarch/batched_fabric.hh"
#include "uarch/cycle_fabric.hh"
#include "uarch/fabric_metrics.hh"
#include "workloads/runner.hh" // parseBatchWidth, BatchStats

namespace {

using namespace tia;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** printf into a growing string (per-run output is buffered so a
 *  parallel sweep prints deterministically in list order). */
void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

/** Split "12.3:4.5"-style argument forms on the given separators. */
std::vector<unsigned long>
numbers(const std::string &text, const std::string &separators)
{
    std::vector<unsigned long> values;
    std::string current;
    auto flush = [&] {
        fatalIf(current.empty(), "malformed option argument \"", text,
                "\"");
        values.push_back(std::stoul(current, nullptr, 0));
        current.clear();
    };
    for (char c : text) {
        if (separators.find(c) != std::string::npos) {
            flush();
        } else {
            current += c;
        }
    }
    flush();
    return values;
}

/** Split a comma-separated -u list, trimming surrounding blanks. */
std::vector<std::string>
splitUarchList(const std::string &text)
{
    std::vector<std::string> names;
    std::string current;
    auto flush = [&] {
        const auto begin = current.find_first_not_of(' ');
        const auto end = current.find_last_not_of(' ');
        fatalIf(begin == std::string::npos, "empty -u list entry in \"",
                text, "\"");
        names.push_back(current.substr(begin, end - begin + 1));
        current.clear();
    };
    for (char c : text) {
        if (c == ',') {
            flush();
        } else {
            current += c;
        }
    }
    flush();
    return names;
}

struct Options
{
    std::string program;
    std::string paramsPath;
    std::string uarch = "functional";
    unsigned pes = 0;
    unsigned jobs = 0; ///< Sweep workers; 0 = hardware concurrency.
    std::size_t batch = 0; ///< Lockstep width (0/1 = scalar sweep).
    std::vector<std::array<unsigned long, 4>> connects;
    std::vector<std::array<unsigned long, 3>> readPorts;
    std::vector<std::array<unsigned long, 3>> writePorts;
    std::vector<std::array<unsigned long, 3>> regs;
    std::vector<std::array<unsigned long, 2>> mems;
    std::vector<std::array<unsigned long, 2>> dumps;
    std::uint64_t maxCycles = kDefaultMaxCycles;
    std::uint64_t quiescenceWindow = kDefaultQuiescenceWindow;
    std::string injectPlan;
    bool watchdog = false;
    bool stats = false;
    std::string tracePath;       ///< Chrome trace_event JSON output.
    std::string traceBinaryPath; ///< Binary ring trace output.
    TraceLevel traceLevel = TraceLevel::Events;
    std::string metricsPath;     ///< tia-metrics/v1 JSON output.
    std::string cachePath;       ///< Persistent result cache file.
    bool cacheVerify = false;    ///< Re-simulate and compare on hits.
};

/**
 * One swept run's complete deterministic output: the exit code, the
 * rendered report text and the tia-metrics run entry (as a JSON
 * string; empty when --metrics is off). This is the unit the result
 * cache stores — everything host-time-dependent is kept out of it.
 */
struct RunReport
{
    int code = 1;
    std::string text;
    std::string metricsJson;
};

std::string
encodeRunReport(const RunReport &report)
{
    ByteWriter out;
    out.u32(static_cast<std::uint32_t>(report.code));
    out.str(report.text);
    out.str(report.metricsJson);
    return out.take();
}

std::optional<RunReport>
decodeRunReport(const std::string &payload)
{
    ByteReader in(payload);
    RunReport report;
    report.code = static_cast<int>(in.u32());
    report.text = in.str();
    report.metricsJson = in.str();
    if (!in.done())
        return std::nullopt;
    return report;
}

/** Map a run status to the tool's documented exit code. */
int
exitCode(RunStatus status)
{
    switch (status) {
      case RunStatus::Halted:
        return 0;
      case RunStatus::Quiescent:
        return 3;
      case RunStatus::Deadlock:
        return 4;
      case RunStatus::Livelock:
        return 5;
      case RunStatus::StepLimit:
        return 6;
      case RunStatus::Cancelled:
        return 7;
    }
    return 1;
}

void
printCounters(std::string &out, const char *label, const PerfCounters &c)
{
    appendf(out, "%s: cycles %llu, retired %llu, CPI %s\n", label,
            static_cast<unsigned long long>(c.cycles),
            static_cast<unsigned long long>(c.retired),
            formatCpi(c.cpi()).c_str());
    appendf(out,
            "  quashed %llu, predicate-hazard %llu, data-hazard "
            "%llu, forbidden %llu, no-trigger %llu\n",
            static_cast<unsigned long long>(c.quashed),
            static_cast<unsigned long long>(c.predicateHazard),
            static_cast<unsigned long long>(c.dataHazard),
            static_cast<unsigned long long>(c.forbidden),
            static_cast<unsigned long long>(c.noTrigger));
    if (c.predictions > 0) {
        appendf(out, "  predictions %llu (%.1f%% accurate)\n",
                static_cast<unsigned long long>(c.predictions),
                c.predictionAccuracy() * 100.0);
    }
    if (c.faultsInjected > 0) {
        appendf(out, "  faults injected %llu, recovered %llu\n",
                static_cast<unsigned long long>(c.faultsInjected),
                static_cast<unsigned long long>(c.faultRecoveries));
    }
}

int
run(const Options &opt)
{
    ArchParams params;
    if (!opt.paramsPath.empty())
        params = parseParams(readFile(opt.paramsPath));
    const Program program = assemble(readFile(opt.program), params);

    const unsigned pes = opt.pes ? opt.pes : program.numPes();
    FabricBuilder builder(params, pes);
    const bool default_ports = opt.connects.empty() &&
                               opt.readPorts.empty() &&
                               opt.writePorts.empty();
    if (default_ports && pes == 1) {
        builder.addReadPort(0, 0, 0);
        builder.addWritePort(0, 1, 2);
    }
    for (const auto &c : opt.connects) {
        builder.connect(static_cast<unsigned>(c[0]),
                        static_cast<unsigned>(c[1]),
                        static_cast<unsigned>(c[2]),
                        static_cast<unsigned>(c[3]));
    }
    for (const auto &r : opt.readPorts) {
        builder.addReadPort(static_cast<unsigned>(r[0]),
                            static_cast<unsigned>(r[1]),
                            static_cast<unsigned>(r[2]));
    }
    for (const auto &w : opt.writePorts) {
        builder.addWritePort(static_cast<unsigned>(w[0]),
                             static_cast<unsigned>(w[1]),
                             static_cast<unsigned>(w[2]));
    }
    std::vector<std::vector<Word>> reg_files(pes);
    for (const auto &r : opt.regs) {
        auto &file = reg_files.at(r[0]);
        if (file.size() <= r[1])
            file.resize(r[1] + 1, 0);
        file[r[1]] = static_cast<Word>(r[2]);
    }
    for (unsigned pe = 0; pe < pes; ++pe) {
        if (!reg_files[pe].empty())
            builder.setInitialRegs(pe, reg_files[pe]);
    }
    const FabricConfig config = builder.build();

    auto preload = [&](Memory &memory) {
        for (const auto &m : opt.mems)
            memory.write(static_cast<Word>(m[0]),
                         static_cast<Word>(m[1]));
    };
    auto dump = [&](std::string &out, const Memory &memory) {
        for (const auto &d : opt.dumps) {
            const unsigned long count = d[1] ? d[1] : 1;
            for (unsigned long i = 0; i < count; ++i) {
                const Word addr = static_cast<Word>(d[0] + i);
                appendf(out, "mem[%u] = %u (0x%08x)\n", addr,
                        memory.read(addr), memory.read(addr));
            }
        }
    };
    const bool tracing =
        !opt.tracePath.empty() || !opt.traceBinaryPath.empty();
    if (opt.uarch == "functional") {
        fatalIf(!opt.injectPlan.empty(),
                "--inject requires a cycle-accurate -u microarchitecture");
        fatalIf(opt.stats,
                "--stats requires a cycle-accurate -u microarchitecture");
        fatalIf(tracing, "--trace requires a cycle-accurate -u "
                         "microarchitecture");
        fatalIf(!opt.metricsPath.empty(),
                "--metrics requires a cycle-accurate -u "
                "microarchitecture");
        fatalIf(!opt.cachePath.empty(),
                "--cache requires a cycle-accurate -u microarchitecture");
        FunctionalFabric fabric(config, program);
        preload(fabric.memory());
        const RunStatus status = fabric.run(opt.maxCycles);
        std::printf("functional simulation: %s\n", runStatusName(status));
        for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
            std::printf("PE %u: %llu instructions%s\n", pe,
                        static_cast<unsigned long long>(
                            fabric.pe(pe).dynamicInstructions()),
                        fabric.pe(pe).halted() ? " (halted)" : "");
        }
        std::string text;
        dump(text, fabric.memory());
        std::fputs(text.c_str(), stdout);
        return exitCode(status);
    }

    // Resolve the microarchitecture sweep list up front so a typo
    // fails before any simulation starts.
    std::vector<PeConfig> uarchs;
    for (const std::string &name : splitUarchList(opt.uarch)) {
        if (name == "all") {
            const auto all = allConfigs();
            uarchs.insert(uarchs.end(), all.begin(), all.end());
            continue;
        }
        fatalIf(name == "functional",
                "\"functional\" cannot appear in a multi-uarch sweep");
        const auto uarch = parseConfigName(name);
        fatalIf(!uarch.has_value(), "unknown microarchitecture \"", name,
                "\" (try e.g. \"TDX\", \"T|DX +P+Q\", or \"all\")");
        uarchs.push_back(*uarch);
    }

    fatalIf(tracing && uarchs.size() > 1,
            "--trace wants a single -u microarchitecture (traces from a "
            "sweep would interleave)");
    fatalIf(tracing && !opt.cachePath.empty(),
            "--cache cannot replay traces; drop --trace/--trace-binary "
            "or the cache");
    fatalIf(opt.cacheVerify && opt.cachePath.empty(),
            "--cache-verify needs --cache (there is nothing to verify "
            "without a warm tier)");

    std::optional<FaultPlan> plan;
    if (!opt.injectPlan.empty())
        plan.emplace(FaultPlan::parse(opt.injectPlan));

    std::optional<SimCache> cache;
    if (!opt.cachePath.empty()) {
        cache.emplace();
        cache->setVerifyHits(opt.cacheVerify);
        std::string load_error;
        if (!cache->load(opt.cachePath, &load_error) ||
            !load_error.empty()) {
            std::fprintf(stderr, "tia-sim: %s\n", load_error.c_str());
        }
    }

    // Cache key for one swept microarchitecture: everything the report
    // text and metrics entry are a function of.
    auto reportKey = [&](const PeConfig &uarch) {
        ByteWriter key;
        key.u32(kCacheSchemaVersion);
        key.str("tia.sim-report");
        serializeProgram(key, program);
        serializeFabricConfig(key, config);
        key.u64(opt.mems.size());
        for (const auto &m : opt.mems) {
            key.u64(m[0]);
            key.u64(m[1]);
        }
        key.u64(opt.dumps.size());
        for (const auto &d : opt.dumps) {
            key.u64(d[0]);
            key.u64(d[1]);
        }
        key.u64(opt.maxCycles);
        key.u64(opt.quiescenceWindow);
        key.u8(opt.watchdog ? 1 : 0);
        key.u8(opt.stats ? 1 : 0);
        key.u8(opt.metricsPath.empty() ? 0 : 1);
        serializeFaultPlan(key, plan ? &*plan : nullptr);
        serializePeConfig(key, uarch);
        return digest128(key.data());
    };

    // Per-run metrics entries, written by index — safe under a
    // parallel sweep, assembled in list order afterwards.
    std::vector<JsonValue> metricsRuns(uarchs.size());

    // Everything printed for one finished run, shared by the scalar
    // and batched sweeps so a batched report is byte-identical by
    // construction. @p chrome / @p ring are the scalar path's trace
    // sinks (nullptr in a batched sweep, which cannot trace).
    auto renderReport = [&](CycleFabric &fabric, const PeConfig &uarch,
                            RunStatus status, FaultInjector *injector,
                            double host_seconds, ChromeTraceSink *chrome,
                            BinaryRingSink *ring) -> RunReport {
        std::string text;
        appendf(text, "%s simulation: %s after %llu cycles\n",
                uarch.name().c_str(), runStatusName(status),
                static_cast<unsigned long long>(fabric.now()));
        const HangReport &report = fabric.hangReport();
        if (!report.summary.empty())
            appendf(text, "  %s\n", report.summary.c_str());
        if (opt.watchdog) {
            for (const auto &line : report.waitChain)
                appendf(text, "  %s\n", line.c_str());
            for (const auto &agent : report.blockedAgents)
                appendf(text, "  blocked: %s\n", agent.c_str());
        }
        for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
            std::string label = "PE " + std::to_string(pe);
            printCounters(text, label.c_str(), fabric.pe(pe).counters());
        }
        if (injector != nullptr) {
            appendf(text, "fault injection (%s):\n%s",
                    injector->plan().toString().c_str(),
                    injector->stats().summary().c_str());
        }
        if (opt.stats) {
            const FabricStepStats steps = fabric.stepStats();
            const std::uint64_t total =
                steps.peStepsExecuted + steps.peStepsSkipped;
            if (cache) {
                // Host wall time is not a function of the inputs; a
                // cached report must render identically to a fresh
                // one, so the header degrades to a deterministic line.
                appendf(text, "sim stats:\n");
            } else {
                appendf(text,
                        "host stats: %.3f ms wall, %.0f simulated "
                        "cycles/s\n",
                        host_seconds * 1e3,
                        host_seconds > 0.0
                            ? static_cast<double>(fabric.now()) /
                                  host_seconds
                            : 0.0);
            }
            appendf(text,
                    "  PE steps: %llu executed, %llu skipped while "
                    "asleep (%.1f%%)\n",
                    static_cast<unsigned long long>(steps.peStepsExecuted),
                    static_cast<unsigned long long>(steps.peStepsSkipped),
                    total > 0
                        ? 100.0 * static_cast<double>(steps.peStepsSkipped) /
                              static_cast<double>(total)
                        : 0.0);
            const ResolutionStats resolution = fabric.resolutionStats();
            const std::uint64_t resolved = resolution.triggersResolved();
            appendf(text,
                    "  trigger resolutions: %llu incremental skip(s), "
                    "%llu full (%.1f%% skipped)\n",
                    static_cast<unsigned long long>(
                        resolution.incrementalSkips),
                    static_cast<unsigned long long>(
                        resolution.fullResolves),
                    resolved > 0
                        ? 100.0 *
                              static_cast<double>(
                                  resolution.incrementalSkips) /
                              static_cast<double>(resolved)
                        : 0.0);
        }
        if (chrome != nullptr) {
            fatalIf(!chrome->writeTo(opt.tracePath), "cannot write ",
                    opt.tracePath);
            appendf(text, "trace: %s\n", opt.tracePath.c_str());
        }
        if (ring != nullptr) {
            fatalIf(!ring->writeTo(opt.traceBinaryPath), "cannot write ",
                    opt.traceBinaryPath);
            appendf(text,
                    "binary trace: %s (%llu records stored, %llu "
                    "dropped)\n",
                    opt.traceBinaryPath.c_str(),
                    static_cast<unsigned long long>(ring->size()),
                    static_cast<unsigned long long>(ring->dropped()));
        }
        RunReport result;
        if (!opt.metricsPath.empty()) {
            JsonValue entry = fabricRunMetrics(fabric, uarch, status);
            if (injector != nullptr) {
                JsonValue faults = JsonValue::object();
                faults["plan"] = injector->plan().toString();
                faults["total_fired"] = injector->stats().totalFired();
                JsonValue lines = JsonValue::array();
                for (const auto &line : injector->stats().lines) {
                    JsonValue item = JsonValue::object();
                    item["name"] = line.name;
                    item["fired"] = line.fired;
                    item["declined"] = line.declined;
                    lines.push(std::move(item));
                }
                faults["lines"] = std::move(lines);
                entry["faults"] = std::move(faults);
            }
            result.metricsJson = entry.dump();
        }
        dump(text, fabric.memory());
        result.code = exitCode(status);
        result.text = std::move(text);
        return result;
    };

    // One task per microarchitecture; each owns its fabric and
    // injector, so the sweep result does not depend on --jobs.
    auto simulateFresh = [&](std::size_t index) -> RunReport {
        const PeConfig &uarch = uarchs[index];
        std::optional<FaultInjector> injector;
        if (plan)
            injector.emplace(*plan);

        CycleFabric fabric(config, program, uarch,
                           injector ? &*injector : nullptr);
        preload(fabric.memory());

        // Trace sinks live on this task's stack — --trace is rejected
        // for multi-uarch sweeps, so at most one task builds them.
        std::optional<ChromeTraceSink> chrome;
        std::optional<BinaryRingSink> ring;
        TeeSink tee;
        if (!opt.tracePath.empty()) {
            chrome.emplace();
            for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
                chrome->setPeMetadata(pe, "PE " + std::to_string(pe),
                                      uarch.shape.segmentNames());
            }
            tee.add(&*chrome);
        }
        if (!opt.traceBinaryPath.empty()) {
            ring.emplace(1u << 20);
            tee.add(&*ring);
        }
        TraceSink *sink = nullptr;
        if (chrome && ring)
            sink = &tee;
        else if (chrome)
            sink = &*chrome;
        else if (ring)
            sink = &*ring;
        if (sink != nullptr)
            fabric.setTraceSink(sink, opt.traceLevel);

        const auto host_start = std::chrono::steady_clock::now();
        FabricRunOptions runOptions;
        runOptions.maxCycles = opt.maxCycles;
        runOptions.quiescenceWindow = opt.quiescenceWindow;
        const RunStatus status = fabric.run(runOptions);
        const double host_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - host_start)
                .count();
        return renderReport(fabric, uarch, status,
                            injector ? &*injector : nullptr,
                            host_seconds, chrome ? &*chrome : nullptr,
                            ring ? &*ring : nullptr);
    };

    // Cached dispatch around the fresh simulation; the metrics entry
    // rides inside the cached payload and is re-parsed here so a hit
    // fills metricsRuns exactly like a fresh run.
    auto simulate = [&](std::size_t index) {
        RunReport report;
        if (cache) {
            const Digest128 key = reportKey(uarchs[index]);
            const std::string payload = cache->getOrCompute(
                key, [&, index] { return encodeRunReport(
                                      simulateFresh(index)); });
            if (auto decoded = decodeRunReport(payload)) {
                report = std::move(*decoded);
            } else {
                // Undecodable persisted payload: degrade to a miss.
                cache->erase(key);
                report = simulateFresh(index);
                cache->put(key, encodeRunReport(report));
            }
        } else {
            report = simulateFresh(index);
        }
        if (!opt.metricsPath.empty() && !report.metricsJson.empty()) {
            std::string parse_error;
            auto entry = JsonValue::parse(report.metricsJson,
                                          &parse_error);
            fatalIf(!entry.has_value(), "corrupt cached metrics entry: ",
                    parse_error);
            metricsRuns[index] = std::move(*entry);
        }
        return std::make_pair(report.code, std::move(report.text));
    };

    std::vector<std::pair<int, std::string>> results;
    unsigned sweep_jobs = 1;
    double sweep_wall_ms = 0.0;
    // Lockstep lanes only pay off when groups overlap across worker
    // threads; an explicit --jobs 1 sweep falls back to scalar with a
    // note (and an "auto_disabled" flag in the metrics document).
    bool batch_auto_disabled = false;
    std::size_t batch = opt.batch;
    if (batch > 1 && uarchs.size() > 1 && opt.jobs == 1) {
        std::fprintf(stderr,
                     "tia-sim: --batch %zu disabled: one worker "
                     "thread (--jobs 1) gains nothing from lockstep "
                     "batching; running scalar\n",
                     batch);
        batch = 0;
        batch_auto_disabled = true;
    }
    // --trace is already rejected for multi-uarch sweeps, so the
    // batched path never has to reconcile a trace sink with lockstep.
    if (batch > 1 && uarchs.size() > 1) {
        const std::size_t width = std::min(batch, uarchs.size());
        const std::size_t groups = (uarchs.size() + width - 1) / width;
        auto runGroup = [&](std::size_t g) {
            const std::size_t lo = g * width;
            const std::size_t hi = std::min(lo + width, uarchs.size());
            const std::size_t n = hi - lo;
            std::vector<RunReport> reports(n);
            std::vector<Digest128> keys(n);
            std::vector<std::string> cached(n);
            std::vector<std::uint8_t> verify(n, 0);
            std::vector<std::size_t> sim_lanes;
            for (std::size_t l = 0; l < n; ++l) {
                if (!cache) {
                    sim_lanes.push_back(l);
                    continue;
                }
                keys[l] = reportKey(uarchs[lo + l]);
                std::optional<std::string> payload =
                    cache->lookup(keys[l]);
                if (!payload) {
                    sim_lanes.push_back(l);
                    continue;
                }
                if (auto decoded = decodeRunReport(*payload)) {
                    reports[l] = std::move(*decoded);
                    if (cache->verifyHits()) {
                        cached[l] = std::move(*payload);
                        verify[l] = 1;
                        sim_lanes.push_back(l);
                    }
                    continue;
                }
                cache->erase(keys[l]);
                sim_lanes.push_back(l);
            }
            if (!sim_lanes.empty()) {
                std::vector<PeConfig> lanes;
                std::vector<std::unique_ptr<FaultInjector>> injectors;
                std::vector<FaultInjector *> injector_ptrs;
                lanes.reserve(sim_lanes.size());
                for (const std::size_t l : sim_lanes) {
                    lanes.push_back(uarchs[lo + l]);
                    if (plan) {
                        injectors.push_back(
                            std::make_unique<FaultInjector>(*plan));
                        injector_ptrs.push_back(injectors.back().get());
                    } else {
                        injector_ptrs.push_back(nullptr);
                    }
                }
                BatchedFabric fabric(config, program, lanes,
                                     injector_ptrs);
                for (unsigned b = 0; b < fabric.numLanes(); ++b)
                    preload(fabric.lane(b).memory());
                const auto host_start = std::chrono::steady_clock::now();
                FabricRunOptions runOptions;
                runOptions.maxCycles = opt.maxCycles;
                runOptions.quiescenceWindow = opt.quiescenceWindow;
                const auto outcomes = fabric.run(runOptions);
                const double host_seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - host_start)
                        .count();
                for (std::size_t b = 0; b < sim_lanes.size(); ++b) {
                    // The scalar sweep has no trap harness — an
                    // injected run's FatalError aborts the tool — so
                    // a trapped lane rethrows, preserving exit
                    // semantics and the original message.
                    fatalIf(outcomes[b].trapped,
                            outcomes[b].trapMessage);
                    const std::size_t l = sim_lanes[b];
                    RunReport fresh = renderReport(
                        fabric.lane(static_cast<unsigned>(b)),
                        uarchs[lo + l], outcomes[b].status,
                        injector_ptrs[b], host_seconds, nullptr,
                        nullptr);
                    if (cache && verify[l]) {
                        cache->verifyHit(keys[l], cached[l],
                                         encodeRunReport(fresh));
                    } else {
                        if (cache)
                            cache->put(keys[l], encodeRunReport(fresh));
                        reports[l] = std::move(fresh);
                    }
                }
            }
            std::vector<std::pair<int, std::string>> out;
            out.reserve(n);
            for (std::size_t l = 0; l < n; ++l) {
                if (!opt.metricsPath.empty() &&
                    !reports[l].metricsJson.empty()) {
                    std::string parse_error;
                    auto entry = JsonValue::parse(reports[l].metricsJson,
                                                  &parse_error);
                    fatalIf(!entry.has_value(),
                            "corrupt cached metrics entry: ",
                            parse_error);
                    metricsRuns[lo + l] = std::move(*entry);
                }
                out.emplace_back(reports[l].code,
                                 std::move(reports[l].text));
            }
            return out;
        };
        const SweepEngine engine(opt.jobs);
        auto sweep = engine.map(groups, runGroup);
        for (auto &group : sweep.values) {
            for (auto &report : group)
                results.push_back(std::move(report));
        }
        sweep_jobs = sweep.jobs;
        sweep_wall_ms = sweep.wallMs;
    } else {
        const SweepEngine engine(uarchs.size() == 1 ? 1 : opt.jobs);
        auto sweep = engine.map(uarchs.size(), simulate);
        results = std::move(sweep.values);
        sweep_jobs = sweep.jobs;
        sweep_wall_ms = sweep.wallMs;
    }

    if (cache) {
        std::string save_error;
        fatalIf(!cache->save(opt.cachePath, &save_error),
                "cannot save cache: ", save_error);
        std::fprintf(stderr, "tia-sim: %s\n",
                     cache->statsSummary().c_str());
    }

    int worst = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i > 0)
            std::printf("\n");
        std::fputs(results[i].second.c_str(), stdout);
        worst = std::max(worst, results[i].first);
    }
    if (uarchs.size() > 1) {
        std::printf("\nswept %zu microarchitectures on %u worker "
                    "thread(s) in %.1f ms\n",
                    uarchs.size(), sweep_jobs, sweep_wall_ms);
    }
    if (!opt.metricsPath.empty()) {
        MetricsRegistry registry("tia-sim");
        registry.root()["program"] = opt.program;
        for (auto &entry : metricsRuns)
            registry.addRun(std::move(entry));
        if (batch_auto_disabled) {
            BatchStats stats;
            stats.autoDisabled = true;
            JsonValue sweep = JsonValue::object();
            sweep["batch"] = batchStatsJson(stats);
            registry.root()["sweep"] = std::move(sweep);
        }
        fatalIf(!registry.writeTo(opt.metricsPath), "cannot write ",
                opt.metricsPath);
        std::printf("metrics: %s\n", opt.metricsPath.c_str());
    }
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg, " needs an argument");
                return argv[++i];
            };
            if (arg == "-p") {
                opt.paramsPath = next();
            } else if (arg == "-u") {
                opt.uarch = next();
            } else if (arg == "--pes") {
                opt.pes = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--jobs") {
                opt.jobs = ThreadPool::parseJobs(next());
            } else if (arg == "--batch") {
                opt.batch = parseBatchWidth(next());
            } else if (arg == "--connect") {
                const auto v = numbers(next(), ".:");
                fatalIf(v.size() != 4, "--connect wants A.O:B.I");
                opt.connects.push_back({v[0], v[1], v[2], v[3]});
            } else if (arg == "--read-port") {
                const auto v = numbers(next(), ".");
                fatalIf(v.size() != 3, "--read-port wants P.A.D");
                opt.readPorts.push_back({v[0], v[1], v[2]});
            } else if (arg == "--write-port") {
                const auto v = numbers(next(), ".");
                fatalIf(v.size() != 3, "--write-port wants P.A.D");
                opt.writePorts.push_back({v[0], v[1], v[2]});
            } else if (arg == "--reg") {
                const auto v = numbers(next(), ".=");
                fatalIf(v.size() != 3, "--reg wants P.R=V");
                opt.regs.push_back({v[0], v[1], v[2]});
            } else if (arg == "--mem") {
                const auto v = numbers(next(), "=");
                fatalIf(v.size() != 2, "--mem wants A=V");
                opt.mems.push_back({v[0], v[1]});
            } else if (arg == "--dump") {
                const auto v = numbers(next(), ":");
                fatalIf(v.empty() || v.size() > 2, "--dump wants A[:N]");
                opt.dumps.push_back({v[0], v.size() > 1 ? v[1] : 1});
            } else if (arg == "--max-cycles") {
                opt.maxCycles = std::stoull(next());
            } else if (arg == "--quiescence") {
                opt.quiescenceWindow = std::stoull(next());
            } else if (arg == "--inject") {
                opt.injectPlan = next();
            } else if (arg == "--watchdog") {
                opt.watchdog = true;
            } else if (arg == "--stats") {
                opt.stats = true;
            } else if (arg == "--trace") {
                opt.tracePath = next();
            } else if (arg == "--trace-binary") {
                opt.traceBinaryPath = next();
            } else if (arg == "--trace-level") {
                const std::string level = next();
                if (level == "events") {
                    opt.traceLevel = TraceLevel::Events;
                } else if (level == "cycles") {
                    opt.traceLevel = TraceLevel::Cycles;
                } else {
                    tia::fatalIf(true, "--trace-level wants \"events\" "
                                       "or \"cycles\", got \"",
                                 level, "\"");
                }
            } else if (arg == "--metrics") {
                opt.metricsPath = next();
            } else if (arg == "--cache") {
                opt.cachePath = next();
            } else if (arg == "--cache-verify") {
                opt.cacheVerify = true;
            } else if (!arg.empty() && arg[0] != '-' &&
                       opt.program.empty()) {
                opt.program = arg;
            } else {
                std::fprintf(stderr, "unknown option %s\n", arg.c_str());
                return 2;
            }
        }
        tia::fatalIf(opt.program.empty(), "no program given");
        return run(opt);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "tia-sim: %s\n", error.what());
        return 1;
    }
}
