/**
 * @file
 * tia-serve: the fault-tolerant simulation service daemon.
 *
 *   tia-serve [--socket PATH] [--port N] [options]
 *
 * Serves the tia-serve/v1 protocol (docs/serve.md): assemble /
 * simulate / sweep / stats / methods / drain over length-prefixed JSON
 * frames, with per-client token-bucket quotas, a bounded job queue
 * with typed backpressure, per-request deadlines enforced as
 * cooperative cancellation inside the simulator, and a crash-safe
 * persistent result cache shared with the tia-sweep / tia-sim CLIs.
 *
 * Options:
 *   --socket PATH        listen on a Unix socket at PATH
 *   --port N             listen on 127.0.0.1:N (0 = ephemeral port)
 *   --port-file FILE     write the bound TCP port to FILE (for
 *                        scripts using --port 0)
 *   --workers N          worker threads (default: hardware concurrency)
 *   --queue N            job-queue capacity (default 64); overflow is
 *                        shed with a typed retry_after error
 *   --quota-rps X        per-client sustained requests/second
 *                        (default: unlimited)
 *   --quota-burst X      per-client burst size (default 8)
 *   --deadline-ms N      default per-request deadline when the client
 *                        sends none (default: none)
 *   --max-deadline-ms N  hard cap on client deadlines
 *   --frame-timeout-ms N slow-loris cutoff once a frame has started
 *                        (default 5000)
 *   --idle-timeout-ms N  close idle connections (default 60000)
 *   --cache FILE         persistent TIASIMC1 warm tier, loaded at
 *                        start and flushed (crash-safely) at drain
 *   --cache-verify       re-simulate every cache hit and compare
 *   --metrics FILE       write the final tia-metrics/v1 document
 *                        (server + cache blocks) on exit
 *
 * SIGTERM / SIGINT request a graceful drain: stop admitting, finish
 * in-flight work, answer everything, flush the cache, exit 0. The
 * `drain` RPC does the same remotely.
 *
 * Exit codes: 0 drained cleanly, 1 fatal error, 2 usage.
 */

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/logging.hh"
#include "serve/server.hh"

namespace {

using namespace tia;

int g_signalPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    // Self-pipe: the only async-signal-safe thing to do is poke the fd
    // the main loop is polling.
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_signalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions opt;
    std::string metricsPath;
    std::string portFile;
    bool haveListener = false;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg, " needs an argument");
                return argv[++i];
            };
            if (arg == "--socket") {
                opt.unixPath = next();
                haveListener = true;
            } else if (arg == "--port") {
                opt.tcpPort = static_cast<int>(std::stoul(next()));
                haveListener = true;
            } else if (arg == "--port-file") {
                portFile = next();
            } else if (arg == "--workers") {
                opt.workers = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--queue") {
                opt.queueCapacity = std::stoul(next());
            } else if (arg == "--quota-rps") {
                opt.quotaRate = std::stod(next());
            } else if (arg == "--quota-burst") {
                opt.quotaBurst = std::stod(next());
            } else if (arg == "--deadline-ms") {
                opt.defaultDeadlineMs = std::stoull(next());
            } else if (arg == "--max-deadline-ms") {
                opt.maxDeadlineMs = std::stoull(next());
            } else if (arg == "--frame-timeout-ms") {
                opt.frameTimeoutMs = static_cast<int>(std::stol(next()));
            } else if (arg == "--idle-timeout-ms") {
                opt.idleTimeoutMs = static_cast<int>(std::stol(next()));
            } else if (arg == "--max-frame-bytes") {
                opt.maxFrameBytes = std::stoul(next());
            } else if (arg == "--cache") {
                opt.cachePath = next();
            } else if (arg == "--cache-verify") {
                opt.cacheVerify = true;
            } else if (arg == "--metrics") {
                metricsPath = next();
            } else {
                std::fprintf(stderr, "unknown option %s\n", arg.c_str());
                return 2;
            }
        }
        if (!haveListener) {
            std::fprintf(stderr,
                         "tia-serve: need --socket PATH and/or --port N "
                         "(see tools/tia_serve_main.cc)\n");
            return 2;
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "tia-serve: %s\n", error.what());
        return 2;
    }

    try {
        if (::pipe2(g_signalPipe, O_CLOEXEC | O_NONBLOCK) != 0) {
            std::perror("tia-serve: pipe2");
            return 1;
        }
        struct sigaction action = {};
        action.sa_handler = onSignal;
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        const std::string unixPath = opt.unixPath;
        Server server(std::move(opt));
        std::string error;
        if (!server.start(&error)) {
            std::fprintf(stderr, "tia-serve: %s\n", error.c_str());
            return 1;
        }
        if (!portFile.empty() && server.tcpPort() >= 0) {
            std::ofstream out(portFile, std::ios::trunc);
            out << server.tcpPort() << "\n";
        }
        std::string listening = "tia-serve: listening on";
        if (!unixPath.empty())
            listening += " " + unixPath;
        if (server.tcpPort() >= 0)
            listening += " 127.0.0.1:" + std::to_string(server.tcpPort());
        std::fprintf(stderr, "%s\n", listening.c_str());

        // Wait for a shutdown signal or a remote `drain` request.
        for (;;) {
            struct pollfd pfd = {};
            pfd.fd = g_signalPipe[0];
            pfd.events = POLLIN;
            const int rc = ::poll(&pfd, 1, 200);
            if (rc > 0 && (pfd.revents & POLLIN) != 0) {
                char sink[16];
                while (::read(g_signalPipe[0], sink, sizeof(sink)) > 0) {
                }
                std::fprintf(stderr,
                             "tia-serve: signal received; draining\n");
                server.requestDrain();
                break;
            }
            if (server.draining()) {
                std::fprintf(stderr,
                             "tia-serve: drain requested; draining\n");
                break;
            }
        }
        server.waitDrained();

        if (!server.flushCache(&error)) {
            std::fprintf(stderr, "tia-serve: cache flush failed: %s\n",
                         error.c_str());
            return 1;
        }
        if (!metricsPath.empty()) {
            std::ofstream out(metricsPath, std::ios::trunc);
            if (!out) {
                std::fprintf(stderr, "tia-serve: cannot write %s\n",
                             metricsPath.c_str());
                return 1;
            }
            out << server.metricsDocument().dump() << "\n";
        }
        const Server::Counters c = server.counters();
        std::fprintf(stderr,
                     "tia-serve: drained: %llu received, %llu completed, "
                     "%llu cancelled, %llu shed, %llu failed\n",
                     static_cast<unsigned long long>(c.received),
                     static_cast<unsigned long long>(c.completed),
                     static_cast<unsigned long long>(
                         c.cancelledDeadline + c.cancelledDisconnect),
                     static_cast<unsigned long long>(
                         c.shedQueueFull + c.shedQuota + c.shedDraining),
                     static_cast<unsigned long long>(c.failed));
        return 0;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "tia-serve: %s\n", error.what());
        return 1;
    }
}
