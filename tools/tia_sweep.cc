/**
 * @file
 * tia-sweep: batch sweep driver emitting machine-readable JSON.
 *
 * Runs the full uarch x workload CPI matrix (the Figure 5 product)
 * and the VLSI design-space exploration (Figures 6-8) on the streaming
 * sweep pipeline (exec/pipeline.hh): JSON row assembly and metrics
 * entries are built in the pipeline's in-order sink while later cells
 * are still simulating, and the cache save overlaps the DSE phase.
 * Emits one JSON document with the matrix, the attempted/evaluated
 * design-point counts and the energy-delay Pareto frontier. Results
 * are bit-identical for any --jobs value and for --flat vs the
 * pipeline (asserted by the ctest fixtures); the wall_ms fields are
 * the measured sweep times (the speedup evidence on multi-core hosts).
 *
 *   tia-sweep [options]
 *
 * Options:
 *   --jobs N     worker threads (default: hardware concurrency;
 *                absurd values are clamped with a warning)
 *   --batch N    batched lockstep simulation: advance N uarch configs
 *                of each workload in lockstep per BatchedFabric task
 *                (docs/batched_sim.md). Output is byte-identical to
 *                scalar; per-batch stats go to stderr and the
 *                --metrics "sweep" block. Default off; ignored by
 *                --flat (the scalar reference barrier). Junk values
 *                are fatal, absurd widths clamp with a warning
 *                (parseBatchWidth), and one worker thread (--jobs 1)
 *                auto-disables batching with a stderr note and
 *                "auto_disabled": true in the metrics batch block.
 *   --small      reduced workload sizes (fast smoke pass)
 *   --configs X  "all" (default), "fig5", or a comma-separated list
 *                of microarchitecture names
 *   --suite-cpi  drive the DSE with suite-average CPI instead of the
 *                paper's bst-only methodology
 *   --no-dse     emit only the CPI matrix
 *   --flat       run on the flat SweepEngine::map barrier instead of
 *                the pipeline (reference implementation; the output
 *                must be byte-identical modulo wall_ms)
 *   --incremental  overlap the DSE with the CPI matrix: each config's
 *                design shards are enumerated in the matrix sink as
 *                soon as its CPI lands (while later rows simulate),
 *                streaming Pareto-frontier updates to stderr, and the
 *                enumeration stops once the frontier has been stable
 *                for --stable-window consecutive design points. The
 *                "dse" block gains incremental/early-exit fields plus
 *                "overlapped": true and "dse_phase_ms", the residual
 *                post-matrix DSE time (the overlap win: wall_ms worth
 *                of enumeration now hides inside the matrix phase)
 *   --stable-window N  early-exit window for --incremental
 *                (default 500 points; 0 = never exit early)
 *   --out FILE   write the JSON to FILE instead of stdout
 *   --metrics FILE  also write a tia-metrics/v1 document with one run
 *                entry per matrix cell (validate with
 *                tia-metrics-check; see docs/observability.md)
 *   --cache FILE    content-addressed result cache (docs/simcache.md):
 *                load the warm tier from FILE if present, memoize
 *                every matrix cell, save back atomically. Hit/miss/
 *                coalesced stats go to stderr and the --metrics
 *                document, never the --out JSON, so warm and cold
 *                runs emit identical documents (modulo wall_ms).
 *   --cache-verify  with --cache: re-simulate every hit and fail
 *                unless the cached result is bit-identical
 *
 * The JSON schema is documented in docs/sweep_engine.md
 * ("tia-sweep/v1").
 */

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/simcache.hh"
#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "sim/functional.hh"
#include "vlsi/dse.hh"
#include "vlsi/pareto.hh"
#include "vlsi/timing.hh"
#include "workloads/cpi.hh"
#include "workloads/runner.hh"

namespace {

using namespace tia;

struct Options
{
    unsigned jobs = 0; ///< 0 = hardware concurrency.
    std::size_t batch = 0; ///< Lockstep width (0/1 = scalar).
    bool small = false;
    bool suiteCpi = false;
    bool dse = true;
    bool flat = false;        ///< Reference flat engine, no pipeline.
    bool incremental = false; ///< Stream frontier updates + early exit.
    std::size_t stableWindow = 500;
    std::string configs = "all";
    std::string outPath;
    std::string metricsPath;
    std::string cachePath;
    bool cacheVerify = false;
};

std::vector<PeConfig>
parseConfigList(const std::string &text)
{
    if (text == "all")
        return allConfigs();
    if (text == "fig5")
        return figure5Configs();
    std::vector<PeConfig> configs;
    std::string current;
    auto flush = [&] {
        const auto uarch = parseConfigName(current);
        fatalIf(!uarch.has_value(), "unknown microarchitecture \"",
                current, "\" in --configs");
        configs.push_back(*uarch);
        current.clear();
    };
    for (char c : text) {
        if (c == ',') {
            flush();
        } else {
            current += c;
        }
    }
    flush();
    return configs;
}

/** Append a JSON-quoted string (names here never need escaping). */
void
jsonString(std::string &out, const std::string &value)
{
    out += '"';
    out += value;
    out += '"';
}

void
jsonNumber(std::string &out, double value)
{
    // JSON has no NaN/Infinity literal; a PE that retired nothing has
    // CPI NaN (uarch/counters.hh) and serializes as null.
    if (!std::isfinite(value)) {
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out += buf;
}

int
run(const Options &opt)
{
    const WorkloadSizes sizes =
        opt.small ? WorkloadSizes::small() : WorkloadSizes::full();
    const std::vector<PeConfig> configs = parseConfigList(opt.configs);
    const std::vector<Workload> suite = allWorkloads(sizes);
    const unsigned jobs =
        opt.jobs == 0 ? ThreadPool::defaultConcurrency() : opt.jobs;

    fatalIf(opt.cacheVerify && opt.cachePath.empty(),
            "--cache-verify needs --cache (there is nothing to verify "
            "without a warm tier)");
    std::optional<SimCache> cache;
    CycleRunOptions run_options;
    run_options.batch = opt.batch;
    // Lockstep lanes only pay off when groups overlap across worker
    // threads; on a single worker the batch just serializes with
    // extra bookkeeping, so fall back to scalar and say so.
    bool batch_auto_disabled = false;
    if (opt.batch > 1 && jobs == 1) {
        std::fprintf(stderr,
                     "tia-sweep: --batch %zu disabled: one worker "
                     "thread (--jobs 1) gains nothing from lockstep "
                     "batching; running scalar\n",
                     opt.batch);
        run_options.batch = 0;
        batch_auto_disabled = true;
    }
    if (!opt.cachePath.empty()) {
        cache.emplace();
        cache->setVerifyHits(opt.cacheVerify);
        std::string load_error;
        if (!cache->load(opt.cachePath, &load_error) ||
            !load_error.empty()) {
            // Degraded warm tier (corrupt / version-mismatched file):
            // report it and proceed cache-cold.
            std::fprintf(stderr, "tia-sweep: %s\n", load_error.c_str());
        }
        run_options.cache = &*cache;
    }

    // Per-config JSON rows and metrics entries, built cell-by-cell in
    // the pipeline's in-order sink while later cells simulate. The
    // --flat path feeds the same builder in the same row-major order
    // after the barrier, so the two outputs are byte-identical.
    MetricsRegistry registry("tia-sweep");
    bool all_ok = true;
    std::vector<std::string> cpiRows(configs.size());
    std::vector<std::string> cycleRows(configs.size());
    std::vector<std::string> statusRows(configs.size());

    // Overlapped DSE (--incremental on the pipeline): each config's
    // design shards are enumerated right here in the sink once its
    // driving CPI lands, so the DSE's compute hides inside the matrix
    // phase instead of trailing it. Shards run in the same
    // config-major order as DesignSpace::enumerateStreamed, so the
    // frontier is identical; the work is speculative and discarded if
    // any cell fails (no "dse" block is emitted then anyway).
    const bool overlapDse = opt.dse && !opt.flat && opt.incremental;
    struct OverlapState
    {
        IncrementalPareto pareto;
        std::size_t sinceChange = 0;
        std::size_t evaluated = 0;
        std::size_t shardsCompleted = 0;
        bool stopped = false;   ///< stableWindow reached.
        double computeMs = 0.0; ///< Enumeration time inside the sink.
    } overlap;
    std::size_t bstIndex = suite.size();
    for (std::size_t w = 0; w < suite.size(); ++w) {
        if (suite[w].name == "bst")
            bstIndex = w;
    }
    std::vector<double> rowCpiSum(configs.size(), 0.0);
    std::vector<std::uint8_t> rowOk(configs.size(), 1);
    const auto enumerateConfig = [&](const PeConfig &config, double cpi) {
        if (overlap.stopped)
            return;
        const auto start = std::chrono::steady_clock::now();
        const DesignSpace space(CpiTable{{config.name(), cpi}});
        for (VtClass vt :
             {VtClass::Low, VtClass::Standard, VtClass::High}) {
            for (double vdd : DesignSpace::supplyGrid(vt)) {
                if (overlap.stopped)
                    break;
                const double fmax =
                    maxFrequencyMhz(config, vdd, vt, space.tech());
                bool changed = false;
                for (double f : space.frequencyGridMhz(vt, vdd)) {
                    if (f > fmax)
                        break;
                    if (overlap.pareto.add(
                            space.evaluate(config, vt, vdd, f))) {
                        changed = true;
                        overlap.sinceChange = 0;
                    } else {
                        ++overlap.sinceChange;
                    }
                    ++overlap.evaluated;
                }
                ++overlap.shardsCompleted;
                if (changed) {
                    std::fprintf(stderr,
                                 "tia-sweep: frontier %zu points "
                                 "after %zu design points\n",
                                 overlap.pareto.frontier().size(),
                                 overlap.pareto.pointsSeen());
                }
                if (opt.stableWindow != 0 &&
                    overlap.sinceChange >= opt.stableWindow)
                    overlap.stopped = true;
            }
        }
        overlap.computeMs +=
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
    };

    const auto addCell = [&](std::size_t c, std::size_t w,
                             const WorkloadRun &cell) {
        std::string &cpiRow = cpiRows[c];
        if (w)
            cpiRow += ", ";
        jsonNumber(cpiRow, cell.worker.cpi());
        std::string &cycleRow = cycleRows[c];
        if (w)
            cycleRow += ", ";
        cycleRow += std::to_string(cell.totalCycles);
        std::string &statusRow = statusRows[c];
        if (w)
            statusRow += ", ";
        jsonString(statusRow,
                   cell.ok() ? "ok" : runStatusName(cell.status));
        all_ok = all_ok && cell.ok();
        if (!opt.metricsPath.empty()) {
            registry.addRun(workloadRunMetrics(cell, configs[c],
                                               suite[w].name));
        }
        if (!overlapDse)
            return;
        rowOk[c] = rowOk[c] && cell.ok();
        if (opt.suiteCpi) {
            rowCpiSum[c] += cell.worker.cpi();
            if (w + 1 == suite.size() && rowOk[c]) {
                enumerateConfig(configs[c],
                                rowCpiSum[c] /
                                    static_cast<double>(suite.size()));
            }
        } else if (w == bstIndex && cell.ok()) {
            enumerateConfig(configs[c], cell.worker.cpi());
        }
    };

    CycleMatrix matrix;
    if (opt.flat) {
        matrix = runCycleMatrixFlat(suite, configs, run_options, jobs);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            for (std::size_t w = 0; w < suite.size(); ++w)
                addCell(c, w, matrix.run(c, w));
        }
    } else {
        matrix = runCycleMatrixStreamed(suite, configs, run_options,
                                        jobs, addCell);
    }

    // Kick the cache save off in the background so its serialization
    // and fsync I/O overlap the DSE phase (a fully warm cache skips
    // the save entirely — see SimCache::save). Joined before exit.
    const bool dsePhase = opt.dse && all_ok;
    bool save_ok = true;
    std::string save_error;
    std::thread cacheSaver;
    // Joins the saver even if something below throws (a joinable
    // std::thread destructor would terminate the process).
    struct Joiner
    {
        std::thread &t;
        ~Joiner()
        {
            if (t.joinable())
                t.join();
        }
    } joiner{cacheSaver};
    if (cache) {
        const auto saveCache = [&] {
            save_ok = cache->save(opt.cachePath, &save_error);
        };
        if (dsePhase) {
            cacheSaver = std::thread(saveCache);
        } else {
            saveCache();
        }
    }

    std::string json;
    json += "{\n";
    json += "  \"schema\": \"tia-sweep/v1\",\n";
    json += "  \"jobs\": " + std::to_string(matrix.jobs) + ",\n";
    json += std::string("  \"sizes\": ") +
            (opt.small ? "\"small\"" : "\"full\"") + ",\n";

    json += "  \"cpi_matrix\": {\n";
    json += "    \"wall_ms\": ";
    jsonNumber(json, matrix.wallMs);
    json += ",\n    \"workloads\": [";
    for (std::size_t w = 0; w < suite.size(); ++w) {
        if (w)
            json += ", ";
        jsonString(json, suite[w].name);
    }
    json += "],\n    \"configs\": [";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (c)
            json += ", ";
        jsonString(json, configs[c].name());
    }
    // Row-major [config][workload] arrays, rows parallel to "configs".
    json += "],\n    \"cpi\": [\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        json += "      [" + cpiRows[c];
        json += c + 1 < configs.size() ? "],\n" : "]\n";
    }
    json += "    ],\n    \"cycles\": [\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        json += "      [" + cycleRows[c];
        json += c + 1 < configs.size() ? "],\n" : "]\n";
    }
    json += "    ],\n    \"status\": [\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        json += "      [" + statusRows[c];
        json += c + 1 < configs.size() ? "],\n" : "]\n";
    }
    json += "    ]\n  }";

    if (dsePhase) {
        // Residual post-matrix DSE time: with the overlapped sink this
        // is table assembly + frontier retrieval only — the
        // enumeration itself (wall_ms) already ran during the matrix.
        const auto phase_start = std::chrono::steady_clock::now();
        CpiTable table;
        if (opt.suiteCpi) {
            for (std::size_t c = 0; c < configs.size(); ++c) {
                double sum = 0.0;
                for (std::size_t w = 0; w < suite.size(); ++w)
                    sum += matrix.run(c, w).worker.cpi();
                table[configs[c].name()] =
                    sum / static_cast<double>(suite.size());
            }
        } else {
            // The paper's methodology: bst alone drives the DSE.
            std::size_t bst = suite.size();
            for (std::size_t w = 0; w < suite.size(); ++w) {
                if (suite[w].name == "bst")
                    bst = w;
            }
            fatalIf(bst == suite.size(), "suite has no bst workload");
            for (std::size_t c = 0; c < configs.size(); ++c)
                table[configs[c].name()] = matrix.run(c, bst).worker.cpi();
        }

        const DesignSpace dse(std::move(table));
        std::vector<DesignPoint> frontier;
        double dse_ms = 0.0;
        std::size_t evaluated = 0;
        std::string incrementalJson;
        if (opt.flat) {
            const auto dse_start = std::chrono::steady_clock::now();
            const auto points = dse.enumerateParallel(jobs, configs);
            dse_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - dse_start)
                         .count();
            frontier = DesignSpace::paretoFrontier(points);
            evaluated = points.size();
        } else if (overlapDse) {
            frontier = overlap.pareto.frontier();
            dse_ms = overlap.computeMs;
            evaluated = overlap.evaluated;
            std::size_t shards_per_config = 0;
            for (VtClass vt :
                 {VtClass::Low, VtClass::Standard, VtClass::High})
                shards_per_config += DesignSpace::supplyGrid(vt).size();
            const double phase_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - phase_start)
                    .count();
            incrementalJson +=
                "    \"incremental\": true,\n    \"overlapped\": "
                "true,\n    \"dse_phase_ms\": ";
            jsonNumber(incrementalJson, phase_ms);
            incrementalJson +=
                ",\n    \"stable_window\": " +
                std::to_string(opt.stableWindow) +
                ",\n    \"early_exit\": " +
                (overlap.stopped ? "true" : "false") +
                ",\n    \"frontier_updates\": " +
                std::to_string(overlap.pareto.updates()) +
                ",\n    \"shards_completed\": " +
                std::to_string(overlap.shardsCompleted) +
                ",\n    \"shards_total\": " +
                std::to_string(shards_per_config * configs.size()) +
                ",\n";
        } else {
            DseStreamResult stream =
                dse.enumerateStreamed(jobs, configs, {});
            frontier = std::move(stream.frontier);
            dse_ms = stream.wallMs;
            evaluated = stream.points.size();
        }

        json += ",\n  \"dse\": {\n";
        json += std::string("    \"cpi_source\": ") +
                (opt.suiteCpi ? "\"suite-average\"" : "\"bst\"") + ",\n";
        json += "    \"wall_ms\": ";
        jsonNumber(json, dse_ms);
        json += ",\n    \"grid_points\": " +
                std::to_string(dse.gridSize(configs)) + ",\n";
        json += incrementalJson;
        json += "    \"evaluated\": " + std::to_string(evaluated) +
                ",\n";
        json += "    \"pareto\": [\n";
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            const DesignPoint &p = frontier[i];
            json += "      {\"config\": ";
            jsonString(json, p.config.name());
            json += ", \"vt\": ";
            jsonString(json, vtName(p.vt));
            json += ", \"vdd\": ";
            jsonNumber(json, p.vdd);
            json += ", \"freq_mhz\": ";
            jsonNumber(json, p.freqMhz);
            json += ", \"max_freq_mhz\": ";
            jsonNumber(json, p.maxFreqMhz);
            json += ", \"cpi\": ";
            jsonNumber(json, p.cpi);
            json += ", \"ns_per_ins\": ";
            jsonNumber(json, p.nsPerInstruction);
            json += ", \"pj_per_ins\": ";
            jsonNumber(json, p.pjPerInstruction);
            json += ", \"area_um2\": ";
            jsonNumber(json, p.areaUm2);
            json += ", \"power_mw\": ";
            jsonNumber(json, p.powerMw);
            json += ", \"power_density_mw_mm2\": ";
            jsonNumber(json, p.powerDensity());
            json += ", \"edp\": ";
            jsonNumber(json, p.edp());
            json += i + 1 < frontier.size() ? "},\n" : "}\n";
        }
        json += "    ]\n  }";
    }
    json += "\n}\n";

    if (cacheSaver.joinable())
        cacheSaver.join();
    fatalIf(!save_ok, "cannot save cache: ", save_error);

    if (!opt.metricsPath.empty()) {
        registry.root()["sizes"] = opt.small ? "small" : "full";
        if (cache)
            registry.root()["cache"] = cache->statsJson();
        JsonValue sweep = JsonValue::object();
        std::uint64_t skips = 0, fulls = 0;
        for (const WorkloadRun &run : matrix.runs) {
            skips += run.resolutionSkips;
            fulls += run.resolutionFulls;
        }
        JsonValue resolution = resolutionMetricsJson(skips, fulls);
        resolution["bitplane_ops"] = matrix.batch.bitplaneOps;
        sweep["resolution"] = std::move(resolution);
        if (matrix.batch.width > 0 || batch_auto_disabled) {
            matrix.batch.autoDisabled = batch_auto_disabled;
            sweep["batch"] = batchStatsJson(matrix.batch);
        }
        registry.root()["sweep"] = std::move(sweep);
        fatalIf(!registry.writeTo(opt.metricsPath), "cannot write ",
                opt.metricsPath);
    }

    if (opt.outPath.empty()) {
        std::fputs(json.c_str(), stdout);
    } else {
        std::FILE *out = std::fopen(opt.outPath.c_str(), "w");
        fatalIf(out == nullptr, "cannot open ", opt.outPath);
        std::fputs(json.c_str(), out);
        std::fclose(out);
    }
    std::fprintf(stderr,
                 "tia-sweep: %zu configs x %zu workloads on %u worker "
                 "thread(s), CPI matrix %.1f ms\n",
                 configs.size(), suite.size(), matrix.jobs,
                 matrix.wallMs);
    if (matrix.batch.width > 0) {
        std::fprintf(stderr,
                     "tia-sweep: batch width %zu: %zu group(s), %zu "
                     "lane(s), %zu hit(s), %zu miss(es), %zu "
                     "simulated, %zu verified, %zu cancelled, "
                     "%llu bitplane op(s)\n",
                     matrix.batch.width, matrix.batch.groups,
                     matrix.batch.lanes, matrix.batch.hits,
                     matrix.batch.misses, matrix.batch.simulated,
                     matrix.batch.verified, matrix.batch.cancelled,
                     static_cast<unsigned long long>(
                         matrix.batch.bitplaneOps));
    }
    if (cache)
        std::fprintf(stderr, "tia-sweep: %s\n",
                     cache->statsSummary().c_str());
    return all_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg, " needs an argument");
                return argv[++i];
            };
            if (arg == "--jobs") {
                opt.jobs = ThreadPool::parseJobs(next());
            } else if (arg == "--batch") {
                opt.batch = parseBatchWidth(next());
            } else if (arg == "--small") {
                opt.small = true;
            } else if (arg == "--suite-cpi") {
                opt.suiteCpi = true;
            } else if (arg == "--no-dse") {
                opt.dse = false;
            } else if (arg == "--flat") {
                opt.flat = true;
            } else if (arg == "--incremental") {
                opt.incremental = true;
            } else if (arg == "--stable-window") {
                const std::string text = next();
                for (char c : text) {
                    fatalIf(!std::isdigit(
                                static_cast<unsigned char>(c)) ||
                                text.empty(),
                            "--stable-window wants a non-negative "
                            "integer, got \"",
                            text, "\"");
                }
                fatalIf(text.empty(), "--stable-window wants a "
                                      "non-negative integer");
                opt.stableWindow =
                    static_cast<std::size_t>(std::stoull(text));
            } else if (arg == "--configs") {
                opt.configs = next();
            } else if (arg == "--out") {
                opt.outPath = next();
            } else if (arg == "--metrics") {
                opt.metricsPath = next();
            } else if (arg == "--cache") {
                opt.cachePath = next();
            } else if (arg == "--cache-verify") {
                opt.cacheVerify = true;
            } else {
                std::fprintf(stderr, "unknown option %s\n", arg.c_str());
                return 2;
            }
        }
        return run(opt);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "tia-sweep: %s\n", error.what());
        return 1;
    }
}
