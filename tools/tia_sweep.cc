/**
 * @file
 * tia-sweep: batch sweep driver emitting machine-readable JSON.
 *
 * Runs the full uarch x workload CPI matrix (the Figure 5 product)
 * and the VLSI design-space exploration (Figures 6-8) on the parallel
 * sweep engine, and emits one JSON document with the matrix, the
 * attempted/evaluated design-point counts and the energy-delay Pareto
 * frontier. Results are bit-identical for any --jobs value; the
 * wall_ms fields are the measured sweep times (the speedup evidence
 * on multi-core hosts).
 *
 *   tia-sweep [options]
 *
 * Options:
 *   --jobs N     worker threads (default: hardware concurrency)
 *   --small      reduced workload sizes (fast smoke pass)
 *   --configs X  "all" (default), "fig5", or a comma-separated list
 *                of microarchitecture names
 *   --suite-cpi  drive the DSE with suite-average CPI instead of the
 *                paper's bst-only methodology
 *   --no-dse     emit only the CPI matrix
 *   --out FILE   write the JSON to FILE instead of stdout
 *   --metrics FILE  also write a tia-metrics/v1 document with one run
 *                entry per matrix cell (validate with
 *                tia-metrics-check; see docs/observability.md)
 *   --cache FILE    content-addressed result cache (docs/simcache.md):
 *                load the warm tier from FILE if present, memoize
 *                every matrix cell, save back atomically. Hit/miss/
 *                coalesced stats go to stderr and the --metrics
 *                document, never the --out JSON, so warm and cold
 *                runs emit identical documents (modulo wall_ms).
 *   --cache-verify  with --cache: re-simulate every hit and fail
 *                unless the cached result is bit-identical
 *
 * The JSON schema is documented in docs/sweep_engine.md
 * ("tia-sweep/v1").
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cache/simcache.hh"
#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "sim/functional.hh"
#include "vlsi/dse.hh"
#include "workloads/cpi.hh"
#include "workloads/runner.hh"

namespace {

using namespace tia;

struct Options
{
    unsigned jobs = 0; ///< 0 = hardware concurrency.
    bool small = false;
    bool suiteCpi = false;
    bool dse = true;
    std::string configs = "all";
    std::string outPath;
    std::string metricsPath;
    std::string cachePath;
    bool cacheVerify = false;
};

std::vector<PeConfig>
parseConfigList(const std::string &text)
{
    if (text == "all")
        return allConfigs();
    if (text == "fig5")
        return figure5Configs();
    std::vector<PeConfig> configs;
    std::string current;
    auto flush = [&] {
        const auto uarch = parseConfigName(current);
        fatalIf(!uarch.has_value(), "unknown microarchitecture \"",
                current, "\" in --configs");
        configs.push_back(*uarch);
        current.clear();
    };
    for (char c : text) {
        if (c == ',') {
            flush();
        } else {
            current += c;
        }
    }
    flush();
    return configs;
}

/** Append a JSON-quoted string (names here never need escaping). */
void
jsonString(std::string &out, const std::string &value)
{
    out += '"';
    out += value;
    out += '"';
}

void
jsonNumber(std::string &out, double value)
{
    // JSON has no NaN/Infinity literal; a PE that retired nothing has
    // CPI NaN (uarch/counters.hh) and serializes as null.
    if (!std::isfinite(value)) {
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out += buf;
}

int
run(const Options &opt)
{
    const WorkloadSizes sizes =
        opt.small ? WorkloadSizes::small() : WorkloadSizes::full();
    const std::vector<PeConfig> configs = parseConfigList(opt.configs);
    const std::vector<Workload> suite = allWorkloads(sizes);
    const unsigned jobs =
        opt.jobs == 0 ? ThreadPool::defaultConcurrency() : opt.jobs;

    fatalIf(opt.cacheVerify && opt.cachePath.empty(),
            "--cache-verify needs --cache (there is nothing to verify "
            "without a warm tier)");
    std::optional<SimCache> cache;
    CycleRunOptions run_options;
    if (!opt.cachePath.empty()) {
        cache.emplace();
        cache->setVerifyHits(opt.cacheVerify);
        std::string load_error;
        if (!cache->load(opt.cachePath, &load_error) ||
            !load_error.empty()) {
            // Degraded warm tier (corrupt / version-mismatched file):
            // report it and proceed cache-cold.
            std::fprintf(stderr, "tia-sweep: %s\n", load_error.c_str());
        }
        run_options.cache = &*cache;
    }

    const CycleMatrix matrix =
        runCycleMatrix(suite, configs, run_options, jobs);

    if (cache) {
        std::string save_error;
        fatalIf(!cache->save(opt.cachePath, &save_error),
                "cannot save cache: ", save_error);
    }

    bool all_ok = true;
    std::string json;
    json += "{\n";
    json += "  \"schema\": \"tia-sweep/v1\",\n";
    json += "  \"jobs\": " + std::to_string(matrix.jobs) + ",\n";
    json += std::string("  \"sizes\": ") +
            (opt.small ? "\"small\"" : "\"full\"") + ",\n";

    json += "  \"cpi_matrix\": {\n";
    json += "    \"wall_ms\": ";
    jsonNumber(json, matrix.wallMs);
    json += ",\n    \"workloads\": [";
    for (std::size_t w = 0; w < suite.size(); ++w) {
        if (w)
            json += ", ";
        jsonString(json, suite[w].name);
    }
    json += "],\n    \"configs\": [";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (c)
            json += ", ";
        jsonString(json, configs[c].name());
    }
    // Row-major [config][workload] arrays, rows parallel to "configs".
    json += "],\n    \"cpi\": [\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        json += "      [";
        for (std::size_t w = 0; w < suite.size(); ++w) {
            if (w)
                json += ", ";
            jsonNumber(json, matrix.run(c, w).worker.cpi());
        }
        json += c + 1 < configs.size() ? "],\n" : "]\n";
    }
    json += "    ],\n    \"cycles\": [\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        json += "      [";
        for (std::size_t w = 0; w < suite.size(); ++w) {
            if (w)
                json += ", ";
            json += std::to_string(matrix.run(c, w).totalCycles);
        }
        json += c + 1 < configs.size() ? "],\n" : "]\n";
    }
    json += "    ],\n    \"status\": [\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        json += "      [";
        for (std::size_t w = 0; w < suite.size(); ++w) {
            if (w)
                json += ", ";
            const WorkloadRun &cell = matrix.run(c, w);
            jsonString(json, cell.ok() ? "ok"
                                       : runStatusName(cell.status));
            all_ok = all_ok && cell.ok();
        }
        json += c + 1 < configs.size() ? "],\n" : "]\n";
    }
    json += "    ]\n  }";

    if (opt.dse && all_ok) {
        CpiTable table;
        if (opt.suiteCpi) {
            for (std::size_t c = 0; c < configs.size(); ++c) {
                double sum = 0.0;
                for (std::size_t w = 0; w < suite.size(); ++w)
                    sum += matrix.run(c, w).worker.cpi();
                table[configs[c].name()] =
                    sum / static_cast<double>(suite.size());
            }
        } else {
            // The paper's methodology: bst alone drives the DSE.
            std::size_t bst = suite.size();
            for (std::size_t w = 0; w < suite.size(); ++w) {
                if (suite[w].name == "bst")
                    bst = w;
            }
            fatalIf(bst == suite.size(), "suite has no bst workload");
            for (std::size_t c = 0; c < configs.size(); ++c)
                table[configs[c].name()] = matrix.run(c, bst).worker.cpi();
        }

        const DesignSpace dse(std::move(table));
        const auto dse_start = std::chrono::steady_clock::now();
        const auto points = dse.enumerateParallel(jobs, configs);
        const double dse_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - dse_start)
                .count();
        const auto frontier = DesignSpace::paretoFrontier(points);

        json += ",\n  \"dse\": {\n";
        json += std::string("    \"cpi_source\": ") +
                (opt.suiteCpi ? "\"suite-average\"" : "\"bst\"") + ",\n";
        json += "    \"wall_ms\": ";
        jsonNumber(json, dse_ms);
        json += ",\n    \"grid_points\": " +
                std::to_string(dse.gridSize(configs)) + ",\n";
        json += "    \"evaluated\": " + std::to_string(points.size()) +
                ",\n";
        json += "    \"pareto\": [\n";
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            const DesignPoint &p = frontier[i];
            json += "      {\"config\": ";
            jsonString(json, p.config.name());
            json += ", \"vt\": ";
            jsonString(json, vtName(p.vt));
            json += ", \"vdd\": ";
            jsonNumber(json, p.vdd);
            json += ", \"freq_mhz\": ";
            jsonNumber(json, p.freqMhz);
            json += ", \"max_freq_mhz\": ";
            jsonNumber(json, p.maxFreqMhz);
            json += ", \"cpi\": ";
            jsonNumber(json, p.cpi);
            json += ", \"ns_per_ins\": ";
            jsonNumber(json, p.nsPerInstruction);
            json += ", \"pj_per_ins\": ";
            jsonNumber(json, p.pjPerInstruction);
            json += ", \"area_um2\": ";
            jsonNumber(json, p.areaUm2);
            json += ", \"power_mw\": ";
            jsonNumber(json, p.powerMw);
            json += ", \"power_density_mw_mm2\": ";
            jsonNumber(json, p.powerDensity());
            json += ", \"edp\": ";
            jsonNumber(json, p.edp());
            json += i + 1 < frontier.size() ? "},\n" : "}\n";
        }
        json += "    ]\n  }";
    }
    json += "\n}\n";

    if (!opt.metricsPath.empty()) {
        MetricsRegistry registry("tia-sweep");
        registry.root()["sizes"] = opt.small ? "small" : "full";
        if (cache)
            registry.root()["cache"] = cache->statsJson();
        for (std::size_t c = 0; c < configs.size(); ++c) {
            for (std::size_t w = 0; w < suite.size(); ++w) {
                registry.addRun(workloadRunMetrics(
                    matrix.run(c, w), configs[c], suite[w].name));
            }
        }
        fatalIf(!registry.writeTo(opt.metricsPath), "cannot write ",
                opt.metricsPath);
    }

    if (opt.outPath.empty()) {
        std::fputs(json.c_str(), stdout);
    } else {
        std::FILE *out = std::fopen(opt.outPath.c_str(), "w");
        fatalIf(out == nullptr, "cannot open ", opt.outPath);
        std::fputs(json.c_str(), out);
        std::fclose(out);
    }
    std::fprintf(stderr,
                 "tia-sweep: %zu configs x %zu workloads on %u worker "
                 "thread(s), CPI matrix %.1f ms\n",
                 configs.size(), suite.size(), matrix.jobs,
                 matrix.wallMs);
    if (cache)
        std::fprintf(stderr, "tia-sweep: %s\n",
                     cache->statsSummary().c_str());
    return all_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg, " needs an argument");
                return argv[++i];
            };
            if (arg == "--jobs") {
                opt.jobs = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--small") {
                opt.small = true;
            } else if (arg == "--suite-cpi") {
                opt.suiteCpi = true;
            } else if (arg == "--no-dse") {
                opt.dse = false;
            } else if (arg == "--configs") {
                opt.configs = next();
            } else if (arg == "--out") {
                opt.outPath = next();
            } else if (arg == "--metrics") {
                opt.metricsPath = next();
            } else if (arg == "--cache") {
                opt.cachePath = next();
            } else if (arg == "--cache-verify") {
                opt.cacheVerify = true;
            } else {
                std::fprintf(stderr, "unknown option %s\n", arg.c_str());
                return 2;
            }
        }
        return run(opt);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "tia-sweep: %s\n", error.what());
        return 1;
    }
}
