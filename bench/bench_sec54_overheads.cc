/**
 * @file
 * Section 5.4 "Area and Power Overheads" + "Timing Overhead": costs of
 * the speculative predicate unit, the effective-queue-status adders,
 * the padded-output-queue alternative, and pipeline registers, on the
 * deepest (T|D|X1|X2) pipeline at 1.0 V std-VT and a 500 MHz target.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vlsi/area_power.hh"
#include "vlsi/timing.hh"

int
main()
{
    using namespace tia;
    bench::banner("Section 5.4 — optimization overheads on T|D|X1|X2",
                  "+P: +0.5% area/+7% power; +Q: ~+0.2% area/no power; "
                  "both: +1.4%/+8%; padding: +13%/+12%; +0.301 mW per "
                  "pipe register; trigger 53.6 -> 64.3 FO4 with +P");

    const AreaPowerModel model;
    const PipelineShape deepest{true, true, true};
    const double vdd = 1.0;
    const VtClass vt = VtClass::Standard;
    const double f = 500.0;

    struct Variant
    {
        const char *label;
        PeConfig config;
        ImplementationOptions opts;
    };
    const Variant variants[] = {
        {"baseline", {deepest, false, false}, {}},
        {"+P (speculative predicates)", {deepest, true, false}, {}},
        {"+Q (effective queue status)", {deepest, false, true}, {}},
        {"+P+Q (both)", {deepest, true, true}, {}},
        {"padded output queues", {deepest, false, false}, {true}},
    };

    const double base_area = model.areaUm2(variants[0].config);
    const double base_power =
        model.calibrationPowerMw(variants[0].config);

    std::printf("%-30s %-12s %-8s %-10s %-8s\n", "Variant", "Area um^2",
                "dArea", "Power mW", "dPower");
    for (const Variant &v : variants) {
        const double area = model.areaUm2(v.config, v.opts);
        const double power = model.calibrationPowerMw(v.config, v.opts);
        std::printf("%-30s %-12.1f %+-8.1f%% %-10.3f %+-8.1f%%\n",
                    v.label, area, (area / base_area - 1.0) * 100.0,
                    power, (power / base_power - 1.0) * 100.0);
    }

    // Pipeline-register power: iso-frequency, iso-VDD cost per added
    // register stage (paper: +0.301 mW each at 500 MHz).
    std::printf("\nPower by pipeline depth at 1.0 V std-VT, 500 MHz "
                "(register cost %.3f mW/stage; paper 0.301):\n",
                AreaPowerModel::kRegisterEnergyPj * f * 1e-3);
    for (const auto &shape : allShapes()) {
        const PeConfig config{shape, false, false};
        std::printf("  %-12s depth %u: %.3f mW\n", shape.name().c_str(),
                    shape.depth(),
                    model.calibrationPowerMw(config));
    }

    // Timing overhead of speculation.
    const PeConfig base{deepest, false, false};
    const PeConfig spec{deepest, true, false};
    std::printf("\nTiming: T|D|X1|X2 critical path %.1f FO4 "
                "(closes at %.0f MHz at nominal; paper 1184 MHz); "
                "with speculation %.1f FO4 (%.0f MHz). +Q has no "
                "timing impact.\n",
                criticalPathFo4(base), maxFrequencyMhz(base, vdd, vt),
                criticalPathFo4(spec), maxFrequencyMhz(spec, vdd, vt));
    return 0;
}
