/**
 * @file
 * Extension study (paper Sections 4 & 6): instruction-storage media.
 *
 * Section 4 reports a CACTI-based estimate that a mixed register /
 * latch-SRAM organization saves 16% of instruction-memory area and 24%
 * of its power over register-only storage (but constrains the pipeline
 * to trigger/decode splits), and that latch-only storage saves ~30% /
 * 75% on the store but failed timing in their cell library. Section 6
 * lists the SRAM-based organization as an intended extension. This
 * bench quantifies both options at the PE level with our model.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vlsi/area_power.hh"

int
main()
{
    using namespace tia;
    bench::banner("Extension — instruction-storage media (Sections 4/6)",
                  "mixed reg/SRAM: -16% store area, -24% store power; "
                  "latch: -30% / -75% on the store");

    const AreaPowerModel model;
    struct Row
    {
        const char *label;
        InstructionStorage storage;
    };
    const Row rows[] = {
        {"clock-gated registers", InstructionStorage::ClockGatedRegister},
        {"latches", InstructionStorage::Latch},
        {"mixed register/SRAM", InstructionStorage::MixedRegisterSram},
    };

    for (const auto &shape : allShapes()) {
        const PeConfig config{shape, false, false};
        std::printf("\n%s:\n", shape.name().c_str());
        for (const Row &row : rows) {
            ImplementationOptions opts;
            opts.instructionStorage = row.storage;
            if (row.storage == InstructionStorage::MixedRegisterSram &&
                !shape.splitTD) {
                std::printf("  %-24s (not possible: trigger and decode "
                            "share a stage)\n",
                            row.label);
                continue;
            }
            const double area = model.areaUm2(config, opts);
            const double power = model.calibrationPowerMw(config, opts);
            std::printf("  %-24s %9.1f um^2  %6.3f mW\n", row.label, area,
                        power);
        }
    }

    std::printf("\nNote: the paper kept clock-gated registers because "
                "latches lengthened the trigger critical path in their "
                "library; the mixed organization additionally restricts "
                "the pipelines one may study, which is why it was set "
                "aside (Section 4).\n");
    return 0;
}
