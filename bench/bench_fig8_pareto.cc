/**
 * @file
 * Figure 8: parametric analysis of the Pareto-optimal designs (VDD,
 * frequency, ns/ins, pJ/ins, power, area, power density, EDP).
 *
 * Paper anchors: the high-performance extreme is a two-stage split-ALU
 * pipeline with queue-status accounting in low-VT at 1157 MHz
 * (1.37 ns/ins at 21.42 pJ/ins); the same microarchitecture in high-VT
 * is also the global energy minimum (0.89 pJ/ins); the single-cycle
 * TDX stays competitive through the low-power region, narrowly
 * dominated by two-stage designs with both optimizations; every Pareto
 * design's power density sits below contemporary CPU/GPU envelopes
 * (max 167.6 mW/mm^2).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "vlsi/dse.hh"
#include "workloads/cpi.hh"

int
main()
{
    using namespace tia;
    bench::banner("Figure 8 — Pareto-optimal designs, parametric "
                  "analysis",
                  "best delay 1.37 ns/ins @ 21.42 pJ; global minimum "
                  "0.89 pJ/ins; max density 167.6 mW/mm^2");

    const WorkloadSizes sizes = bench::benchSizes();
    const unsigned jobs = bench::benchJobs();
    std::printf("Measuring suite-average CPI...\n\n");
    bench::BenchCache cache;
    const DesignSpace dse(
        suiteAverageCpiTable(sizes, allConfigs(), jobs,
                             cache.options()));
    // Streamed enumeration: the frontier is maintained incrementally
    // in the pipeline's in-order sink (identical to the batch
    // paretoFrontier of the full enumeration).
    const DseStreamResult stream = dse.enumerateStreamed(jobs);
    const auto &frontier = stream.frontier;
    std::printf("DSE: %zu points over %zu shards on %u worker "
                "thread(s) in %.1f ms; %zu frontier updates -> %zu "
                "Pareto designs\n\n",
                stream.points.size(), stream.shardsTotal, stream.jobs,
                stream.wallMs, stream.frontierUpdates,
                frontier.size());

    std::printf("%-18s %-8s %-5s %-7s %9s %10s %8s %9s %10s %9s\n",
                "Design", "VT", "VDD", "MHz", "ns/ins", "pJ/ins", "mW",
                "mm^2", "mW/mm^2", "EDP");
    double max_density = 0.0;
    for (const DesignPoint &p : frontier) {
        std::printf("%-18s %-8s %-5.1f %-7.0f %9.3f %10.3f %8.3f %9.4f "
                    "%10.1f %9.2f\n",
                    p.config.name().c_str(), vtName(p.vt), p.vdd,
                    p.freqMhz, p.nsPerInstruction, p.pjPerInstruction,
                    p.powerMw, p.areaUm2 * 1e-6, p.powerDensity(),
                    p.edp());
        max_density = std::max(max_density, p.powerDensity());
    }

    const auto &fastest = frontier.front();
    const auto &thriftiest = frontier.back();
    std::printf("\nHighest throughput: %s (%s, %.1f V) at %.0f MHz — "
                "%.2f ns/ins, %.2f pJ/ins\n",
                fastest.config.name().c_str(), vtName(fastest.vt),
                fastest.vdd, fastest.freqMhz, fastest.nsPerInstruction,
                fastest.pjPerInstruction);
    std::printf("Lowest energy:      %s (%s, %.1f V) at %.0f MHz — "
                "%.2f ns/ins, %.2f pJ/ins\n",
                thriftiest.config.name().c_str(), vtName(thriftiest.vt),
                thriftiest.vdd, thriftiest.freqMhz,
                thriftiest.nsPerInstruction,
                thriftiest.pjPerInstruction);
    std::printf("Max Pareto power density: %.1f mW/mm^2 (paper: 167.6; "
                "65 nm CPUs averaged ~500, GPUs ~300)\n",
                max_density);

    // How many of the Pareto designs are 2-stage pipelines with both
    // optimizations (the paper's headline conclusion)?
    unsigned two_stage_opt = 0;
    for (const DesignPoint &p : frontier) {
        if (p.config.shape.depth() == 2 &&
            (p.config.effectiveQueueStatus || p.config.predictPredicates))
            ++two_stage_opt;
    }
    std::printf("Two-stage optimized designs on the frontier: %u of %zu "
                "(paper: two-stage pipelines with both optimizations "
                "dominate)\n",
                two_stage_opt, frontier.size());
    return 0;
}
