/**
 * @file
 * Figure 5: CPI stacks of the seven pipelines (plus the single-cycle
 * TDX) with predicate prediction (+P) and effective queue status (+Q)
 * selectively enabled, averaged over the ten workloads.
 *
 * Paper shape anchors: predicate hazards grow with depth and are the
 * same for all pipelines of a given depth; +P removes them almost
 * entirely while adding a few quashed and (deeper pipes) forbidden
 * cycles; +Q drops the no-trigger component toward the single-cycle
 * constant; together the optimizations cut 4-stage CPI by ~35%.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/runner.hh"

int
main()
{
    using namespace tia;
    bench::banner("Figure 5 — CPI stacks (average over the ten "
                  "workloads)",
                  "predicate hazards +0.18/+0.24/+0.27 CPI at depth "
                  "2/3/4; +P+Q cuts 4-stage CPI ~35%");

    const WorkloadSizes sizes = bench::benchSizes();
    const auto suite = allWorkloads(sizes);
    const auto configs = figure5Configs();

    // The whole uarch x workload product runs on the streaming sweep
    // pipeline; the per-config CPI stacks accumulate in the in-order
    // sink while later cells simulate. The matrix is bit-identical
    // for any jobs count (and for any TIA_BENCH_CACHE state).
    bench::BenchCache cache;
    std::vector<CpiStack> stacks(configs.size());
    bool failed = false;
    const CycleMatrix matrix = runCycleMatrixStreamed(
        suite, configs, cache.options(), bench::benchJobs(),
        [&](std::size_t c, std::size_t w, const WorkloadRun &run) {
            if (!run.ok()) {
                std::printf("%s FAILED on %s: %s\n",
                            suite[w].name.c_str(),
                            configs[c].name().c_str(),
                            run.checkError.c_str());
                failed = true;
                return;
            }
            stacks[c] += cpiStack(run.worker);
        });
    if (failed)
        return 1;
    std::printf("%zu runs on %u worker thread(s) in %.1f ms\n\n",
                matrix.runs.size(), matrix.jobs, matrix.wallMs);

    std::printf("%-18s %-6s %-8s %-8s %-9s %-8s %-9s %-9s\n", "Design",
                "CPI", "Retired", "Quashed", "PredHaz", "DataHaz",
                "Forbidden", "NoTrig");

    double base_depth4 = 0.0;
    double opt_depth4 = 0.0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const PeConfig &config = configs[c];
        CpiStack avg = stacks[c];
        avg /= static_cast<double>(suite.size());
        std::printf("%-18s %-6s %-8.3f %-8.3f %-9.3f %-8.3f %-9.3f "
                    "%-9.3f\n",
                    config.name().c_str(),
                    formatCpi(avg.total()).c_str(), avg.retired,
                    avg.quashed, avg.predicateHazard, avg.dataHazard,
                    avg.forbidden, avg.noTrigger);
        if (config.shape.depth() == 4) {
            if (!config.predictPredicates && !config.effectiveQueueStatus)
                base_depth4 = avg.total();
            if (config.predictPredicates && config.effectiveQueueStatus)
                opt_depth4 = avg.total();
        }
    }
    if (base_depth4 > 0.0) {
        std::printf("\n4-stage CPI reduction from +P+Q: %.1f%% "
                    "(paper: ~35%%)\n",
                    (1.0 - opt_depth4 / base_depth4) * 100.0);
    }
    return 0;
}
