/**
 * @file
 * Extension study (paper Section 6): nested speculation (+N).
 *
 * The paper: "The fact that we do not support nested speculation —
 * which already showed evidence of hurting CPI in Figure 5 — would
 * have likely hurt even more in deeper pipelines ... we would like to
 * examine the effect of this addition on decreasing the number of
 * forbidden instructions in deep pipelines." This bench performs that
 * examination on our reproduction: forbidden-cycle and CPI deltas of
 * +P+N+Q over +P+Q per workload and pipeline depth.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/runner.hh"

int
main()
{
    using namespace tia;
    bench::banner("Extension — nested speculation (+N), Section 6 "
                  "future work",
                  "expected: forbidden-instruction cycles shrink in "
                  "deep pipelines; CPI improves");

    const WorkloadSizes sizes = bench::benchSizes();
    const auto suite = allWorkloads(sizes);

    for (const auto &shape : allShapes()) {
        if (shape.depth() < 3)
            continue; // nesting only matters with long windows
        const PeConfig base{shape, true, true, false};
        const PeConfig nested{shape, true, true, true};

        CpiStack base_avg, nested_avg;
        for (const Workload &w : suite) {
            const WorkloadRun b = runCycle(w, base);
            const WorkloadRun n = runCycle(w, nested);
            if (!b.ok() || !n.ok()) {
                std::printf("%s failed on %s\n", w.name.c_str(),
                            shape.name().c_str());
                return 1;
            }
            base_avg += cpiStack(b.worker);
            nested_avg += cpiStack(n.worker);
        }
        base_avg /= static_cast<double>(suite.size());
        nested_avg /= static_cast<double>(suite.size());

        std::printf("\n%s (depth %u):\n", shape.name().c_str(),
                    shape.depth());
        std::printf("  %-8s CPI %-7.3f forbidden %-7.3f quashed %-7.3f\n",
                    "+P+Q", base_avg.total(), base_avg.forbidden,
                    base_avg.quashed);
        std::printf("  %-8s CPI %-7.3f forbidden %-7.3f quashed %-7.3f\n",
                    "+P+N+Q", nested_avg.total(), nested_avg.forbidden,
                    nested_avg.quashed);
        std::printf("  forbidden reduced %.0f%%, CPI improved %.1f%%\n",
                    base_avg.forbidden > 0.0
                        ? (1.0 - nested_avg.forbidden /
                                     base_avg.forbidden) * 100.0
                        : 0.0,
                    (1.0 - nested_avg.total() / base_avg.total()) * 100.0);
    }

    std::printf("\nPer-workload forbidden CPI on T|D|X1|X2:\n");
    std::printf("  %-14s %-10s %-10s\n", "workload", "+P+Q", "+P+N+Q");
    const PipelineShape deepest{true, true, true};
    for (const Workload &w : suite) {
        const WorkloadRun b = runCycle(w, {deepest, true, true, false});
        const WorkloadRun n = runCycle(w, {deepest, true, true, true});
        std::printf("  %-14s %-10.3f %-10.3f\n", w.name.c_str(),
                    cpiStack(b.worker).forbidden,
                    cpiStack(n.worker).forbidden);
    }
    return 0;
}
