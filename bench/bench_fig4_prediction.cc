/**
 * @file
 * Figure 4: datapath predicate write frequency and prediction accuracy
 * per benchmark (dynamic write rate averages ~20%; accuracy ~50% for
 * the data-dependent filter/merge, near-perfect for loop-dominated
 * gcd/stream/mean; dot product's worker writes no predicates at all).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/runner.hh"

int
main()
{
    using namespace tia;
    bench::banner("Figure 4 — predicate write frequency & prediction "
                  "accuracy",
                  "worker-PE rates under +P on the T|D|X pipeline");

    const WorkloadSizes sizes = bench::benchSizes();
    // Accuracy is measured with the speculative predicate unit enabled
    // on a pipelined design (predictions only exist when a pipeline
    // gives them a window).
    const PeConfig config{PipelineShape{true, true, false}, true, true};

    std::printf("%-14s %-18s %-18s %-12s %-14s\n", "Benchmark",
                "PredWriteFreq", "PredictAccuracy", "Predictions",
                "Mispredicts");

    double freq_sum = 0.0;
    double acc_sum = 0.0;
    unsigned acc_count = 0;
    for (const Workload &w : allWorkloads(sizes)) {
        const WorkloadRun run = runCycle(w, config);
        if (!run.ok()) {
            std::printf("%s FAILED: %s\n", w.name.c_str(),
                        run.checkError.c_str());
            return 1;
        }
        const double freq = run.worker.predicateWriteRate();
        freq_sum += freq;
        if (run.worker.predictions > 0) {
            acc_sum += run.worker.predictionAccuracy();
            ++acc_count;
        }
        std::printf("%-14s %-18.1f %-18.1f %-12llu %-14llu\n",
                    w.name.c_str(), freq * 100.0,
                    run.worker.predictions > 0
                        ? run.worker.predictionAccuracy() * 100.0
                        : 0.0,
                    static_cast<unsigned long long>(
                        run.worker.predictions),
                    static_cast<unsigned long long>(
                        run.worker.mispredictions));
    }
    std::printf("%-14s %-18.1f %-18.1f\n", "average", freq_sum * 10.0,
                acc_count ? acc_sum / acc_count * 100.0 : 0.0);
    std::printf("\nPaper: average write rate ~20%% (\"almost exactly the "
                "rate of dynamic branches in SPEC\"); filter/merge "
                "~50%% accuracy; gcd/stream/mean near-perfect; dot "
                "product makes no predictions.\n");
    return 0;
}
