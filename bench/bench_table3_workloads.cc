/**
 * @file
 * Table 3 + Section 3: the ten microbenchmarks, their structure, and
 * the dynamic instruction / cycle counts the paper quotes (dot product
 * 20,003 instructions; gcd 411,540; bst 90,000-160,000 cycles across
 * microarchitectures; everything under ~700,000 cycles).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/runner.hh"

int
main()
{
    using namespace tia;
    bench::banner("Table 3 — benchmark suite",
                  "dynamic counts: dot=20,003 ins, gcd=411,540 ins, "
                  "bst 90k-160k cycles, max ~700k cycles");

    const WorkloadSizes sizes = bench::benchSizes();
    std::printf("%-14s %-4s %-7s %-12s %-12s %-10s %s\n", "Benchmark",
                "PEs", "Worker", "Worker ins", "Total ins", "Validated",
                "Description");

    for (const Workload &w : allWorkloads(sizes)) {
        const WorkloadRun run = runFunctional(w);
        std::uint64_t total = 0;
        for (auto n : run.dynamicInstructions)
            total += n;
        std::printf("%-14s %-4u %-7u %-12llu %-12llu %-10s %s\n",
                    w.name.c_str(), w.config.numPes, w.workerPe,
                    static_cast<unsigned long long>(run.worker.retired),
                    static_cast<unsigned long long>(total),
                    run.ok() ? "yes" : "NO", w.description.c_str());
    }

    // Cycle ranges across all 32 microarchitectures for bst (the
    // paper's 90k-160k window) and the suite-wide maximum.
    std::printf("\nCycle ranges over the 32 microarchitectures:\n");
    std::printf("%-14s %-12s %-12s\n", "Benchmark", "Min cycles",
                "Max cycles");
    for (const Workload &w : allWorkloads(sizes)) {
        Cycle min_cycles = ~Cycle{0};
        Cycle max_cycles = 0;
        for (const PeConfig &config : allConfigs()) {
            const WorkloadRun run = runCycle(w, config);
            if (!run.ok()) {
                std::printf("%-14s FAILED on %s: %s\n", w.name.c_str(),
                            config.name().c_str(),
                            run.checkError.c_str());
                return 1;
            }
            min_cycles = std::min(min_cycles, run.worker.cycles);
            max_cycles = std::max(max_cycles, run.worker.cycles);
        }
        std::printf("%-14s %-12llu %-12llu\n", w.name.c_str(),
                    static_cast<unsigned long long>(min_cycles),
                    static_cast<unsigned long long>(max_cycles));
    }
    return 0;
}
