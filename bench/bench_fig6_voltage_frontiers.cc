/**
 * @file
 * Figure 6: energy-delay frontiers for each supply voltage across the
 * full >4,000-point design space (the overall span is 71x in energy —
 * 0.67 to 47.59 pJ/instruction — and 225x in delay — 1.37 to
 * 309.03 ns/instruction in the paper).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "vlsi/dse.hh"
#include "workloads/cpi.hh"

int
main()
{
    using namespace tia;
    bench::banner("Figure 6 — per-supply-voltage energy-delay "
                  "frontiers",
                  "71x energy span (0.67-47.59 pJ/ins), 225x delay "
                  "span (1.37-309.03 ns/ins)");

    const WorkloadSizes sizes = bench::benchSizes();
    std::printf("Measuring suite-average CPI on all 32 "
                "microarchitectures...\n");
    const unsigned jobs = bench::benchJobs();
    bench::BenchCache cache;
    const DesignSpace dse(
        suiteAverageCpiTable(sizes, allConfigs(), jobs,
                             cache.options()));
    // Streamed enumeration (exec/pipeline.hh); identical point order
    // and values to the flat enumerateParallel.
    const DseStreamResult stream = dse.enumerateStreamed(jobs);

    double min_e = 1e30, max_e = 0.0, min_d = 1e30, max_d = 0.0;
    std::map<double, std::vector<DesignPoint>> by_vdd;
    for (const DesignPoint &p : stream.points) {
        by_vdd[p.vdd].push_back(p);
        min_e = std::min(min_e, p.pjPerInstruction);
        max_e = std::max(max_e, p.pjPerInstruction);
        min_d = std::min(min_d, p.nsPerInstruction);
        max_d = std::max(max_d, p.nsPerInstruction);
    }
    const std::size_t evaluated = stream.points.size();

    std::printf("\nGrid points attempted: %zu; timing-closed design "
                "points evaluated: %zu (paper: \"over 4,000\")\n",
                dse.gridSize(), evaluated);
    std::printf("Energy span: %.2f - %.2f pJ/ins (%.0fx; paper 71x)\n",
                min_e, max_e, max_e / min_e);
    std::printf("Delay span:  %.2f - %.2f ns/ins (%.0fx; paper 225x)\n\n",
                min_d, max_d, max_d / min_d);

    for (auto &[vdd, vec] : by_vdd) {
        const auto frontier = DesignSpace::paretoFrontier(vec);
        std::printf("VDD = %.1f V frontier (%zu points):\n", vdd,
                    frontier.size());
        std::printf("  %-18s %-8s %-9s %12s %13s\n", "design", "VT",
                    "f (MHz)", "ns/ins", "pJ/ins");
        for (const DesignPoint &p : frontier) {
            std::printf("  %-18s %-8s %-9.0f %12.3f %13.3f\n",
                        p.config.name().c_str(), vtName(p.vt), p.freqMhz,
                        p.nsPerInstruction, p.pjPerInstruction);
        }
        std::printf("\n");
    }
    return 0;
}
