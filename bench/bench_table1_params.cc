/**
 * @file
 * Table 1: architectural and microarchitectural parameters.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/params.hh"

int
main()
{
    using namespace tia;
    bench::banner("Table 1 — architectural parameters",
                  "fixed parameter assignment used throughout the study");

    const ArchParams p;
    p.validate();
    std::printf("%-12s %-38s %s\n", "Parameter", "Description", "Value");
    std::printf("%-12s %-38s %u\n", "NRegs", "Number of registers",
                p.numRegs);
    std::printf("%-12s %-38s %u\n", "NIQueues", "Number of input queues",
                p.numInputQueues);
    std::printf("%-12s %-38s %u\n", "NOQueues", "Number of output queues",
                p.numOutputQueues);
    std::printf("%-12s %-38s %u\n", "MaxCheck",
                "Max queues checked per trigger", p.maxCheck);
    std::printf("%-12s %-38s %u\n", "MaxDeq", "Max dequeues allowed / ins",
                p.maxDeq);
    std::printf("%-12s %-38s %u\n", "NPreds", "Number of predicates",
                p.numPreds);
    std::printf("%-12s %-38s %u\n", "Word", "Word width", p.wordWidth);
    std::printf("%-12s %-38s %u\n", "TagWidth", "Queue tag width",
                p.tagWidth);
    std::printf("%-12s %-38s %u\n", "NIns", "Instructions per PE",
                p.numInstructions);
    std::printf("%-12s %-38s %u\n", "NOps", "Number of operations",
                p.numOps);
    std::printf("%-12s %-38s %u\n", "NSrcs", "Source operands / ins",
                p.numSrcs);
    std::printf("%-12s %-38s %u\n", "NDsts", "Destinations / ins",
                p.numDsts);
    std::printf("\nParameter-file round trip:\n%s", p.toString().c_str());
    return 0;
}
