/**
 * @file
 * Simulator microbenchmarks (google-benchmark): cycle throughput of
 * the pipelined PE model, functional-simulator step rate, assembler
 * and encoder throughput. Not a paper figure — this characterizes the
 * reproduction infrastructure itself.
 */

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.hh"
#include "cache/simcache.hh"
#include "core/assembler.hh"
#include "core/encoding.hh"
#include "exec/thread_pool.hh"
#include "obs/binary_ring.hh"
#include "obs/reconstruct.hh"
#include "uarch/cycle_fabric.hh"
#include "vlsi/dse.hh"
#include "workloads/cpi.hh"
#include "workloads/runner.hh"

namespace {

using namespace tia;

void
BM_CyclePeAluLoop(benchmark::State &state)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r1, %r1, #1; set %p = ZZZZZZZ0;\n");
    FabricBuilder builder(program.params, 1);
    const PipelineShape shape{
        state.range(0) != 0, state.range(0) != 0, state.range(0) != 0};
    CycleFabric fabric(builder.build(), program, {shape, true, true});
    for (auto _ : state)
        fabric.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(shape.name());
}
BENCHMARK(BM_CyclePeAluLoop)->Arg(0)->Arg(1);

void
BM_CycleFabricDotProduct(benchmark::State &state)
{
    const Workload w = makeDotProduct(WorkloadSizes::small());
    for (auto _ : state) {
        const WorkloadRun run =
            runCycle(w, {PipelineShape{true, false, false}, true, true});
        benchmark::DoNotOptimize(run.worker.cycles);
        state.SetIterationTime(0.0); // wall-clock measured by default
        state.counters["cycles"] = static_cast<double>(run.totalCycles);
    }
}
BENCHMARK(BM_CycleFabricDotProduct)->Unit(benchmark::kMillisecond);

// The same run with a trace sink attached: the observability tax when
// tracing is ON. Arg 0 = binary ring sink (a store + two increments
// per event), Arg 1 = counter reconstruction (branchier). Compare
// against BM_CycleFabricDotProduct for the enabled overhead; the
// DISABLED overhead (sink unset) is the <2% regression bound
// BM_CycleFabricDotProduct itself guards via BENCH_throughput.json.
void
BM_CycleFabricDotProductTraced(benchmark::State &state)
{
    const Workload w = makeDotProduct(WorkloadSizes::small());
    for (auto _ : state) {
        // Construct only the sink under test: a 1M-record ring (the
        // tia-sim default) zero-fills 24 MB, which would swamp a
        // sub-millisecond run with allocator time.
        std::optional<BinaryRingSink> ring;
        std::optional<CpiReconstructor> recon;
        CycleRunOptions options;
        if (state.range(0) == 0) {
            ring.emplace(1u << 12);
            options.trace = &*ring;
        } else {
            recon.emplace();
            options.trace = &*recon;
        }
        const WorkloadRun run = runCycle(
            w, {PipelineShape{true, false, false}, true, true}, options);
        benchmark::DoNotOptimize(run.worker.cycles);
        state.counters["cycles"] = static_cast<double>(run.totalCycles);
        state.counters["events"] = static_cast<double>(
            state.range(0) == 0
                ? static_cast<double>(ring->recorded())
                : static_cast<double>(recon->totalEvents()));
    }
    state.SetLabel(state.range(0) == 0 ? "binary ring" : "reconstruct");
}
BENCHMARK(BM_CycleFabricDotProductTraced)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// A sparse fabric: one busy ALU-loop PE among many programless ones.
// Exercises the idle-PE sleep list — host throughput should track the
// number of *busy* PEs, not the fabric size.
void
BM_CycleFabricSparse(benchmark::State &state)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r1, %r1, #1; set %p = ZZZZZZZ0;\n");
    const unsigned pes = static_cast<unsigned>(state.range(0));
    FabricBuilder builder(program.params, pes);
    CycleFabric fabric(builder.build(), program,
                       {PipelineShape{}, true, true});
    for (auto _ : state)
        fabric.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(std::to_string(pes) + " PEs, 1 busy");
}
BENCHMARK(BM_CycleFabricSparse)->Arg(4)->Arg(32);

// Two PEs trading a token back and forth: the steady state alternates
// busy and idle cycles on each PE, stressing the park/wake transition
// rather than either extreme.
void
BM_CycleFabricPingPong(benchmark::State &state)
{
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXX0: add %o0.0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1 with %i0.0: add %r0, %r0, %i0; deq %i0; "
        "set %p = ZZZZZZZ0;\n"
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i0.0: add %o0.0, %i0, #1; deq %i0;\n");
    FabricBuilder builder(program.params, 2);
    builder.connect(0, 0, 1, 0);
    builder.connect(1, 0, 0, 0);
    CycleFabric fabric(builder.build(), program,
                       {PipelineShape{}, true, true});
    for (auto _ : state)
        fabric.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleFabricPingPong);

void
BM_FunctionalBst(benchmark::State &state)
{
    const Workload w = makeBst(WorkloadSizes::small());
    for (auto _ : state) {
        const WorkloadRun run = runFunctional(w);
        benchmark::DoNotOptimize(run.worker.retired);
    }
}
BENCHMARK(BM_FunctionalBst)->Unit(benchmark::kMillisecond);

void
BM_Assemble(benchmark::State &state)
{
    const std::string source =
        "when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; "
        "set %p = ZZZZ0001;\n"
        "when %p == XXXX0001: add %o0.2, %r1, #7; deq %i0; "
        "set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: halt;\n";
    for (auto _ : state) {
        const Program program = assemble(source);
        benchmark::DoNotOptimize(program.staticInstructions());
    }
}
BENCHMARK(BM_Assemble);

void
BM_EncodeDecode(benchmark::State &state)
{
    const ArchParams params;
    const Program program = assemble(
        "when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; "
        "set %p = ZZZZ0001;\n");
    const Instruction &inst = program.pes[0][0];
    for (auto _ : state) {
        const MachineCode code = encode(params, inst);
        const Instruction decoded = decode(params, code);
        benchmark::DoNotOptimize(decoded.imm);
    }
}
BENCHMARK(BM_EncodeDecode);

// The Figure 5 matrix product on the sweep engine. Arg is the jobs
// count (0 = hardware concurrency); compare the Arg(1) serial
// reference against Arg(0) for the parallel wall-clock speedup on
// multi-core hosts.
void
BM_Fig5MatrixSweep(benchmark::State &state)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = figure5Configs();
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const CycleMatrix matrix =
            runCycleMatrix(suite, configs, {}, jobs);
        benchmark::DoNotOptimize(matrix.runs.data());
        state.counters["runs"] = static_cast<double>(matrix.runs.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(suite.size()) *
                            static_cast<std::int64_t>(configs.size()));
    state.SetLabel(jobs == 1 ? "serial"
                             : std::to_string(jobs == 0
                                                  ? ThreadPool::
                                                        defaultConcurrency()
                                                  : jobs) +
                                   " jobs");
}
BENCHMARK(BM_Fig5MatrixSweep)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The Figure 5 matrix through the simcache. Arg 0 = cold: a fresh
// cache every iteration, so the delta against BM_Fig5MatrixSweep is
// the key-hashing + result-serialization overhead (the <=2% bound in
// docs/perf.md). Arg 1 = warm: the cache is pre-populated once, so
// every cell is a hit and the measurement is pure memoized-sweep time
// (the >=5x warm speedup recorded in docs/perf.md).
void
BM_Fig5MatrixSweepCached(benchmark::State &state)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = figure5Configs();
    const bool warm = state.range(0) != 0;
    SimCache warm_cache;
    CycleRunOptions options;
    if (warm) {
        options.cache = &warm_cache;
        runCycleMatrix(suite, configs, options, 0);
    }
    for (auto _ : state) {
        std::optional<SimCache> cold_cache;
        if (!warm) {
            cold_cache.emplace();
            options.cache = &*cold_cache;
        }
        const CycleMatrix matrix =
            runCycleMatrix(suite, configs, options, 0);
        benchmark::DoNotOptimize(matrix.runs.data());
        state.counters["runs"] = static_cast<double>(matrix.runs.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(suite.size()) *
                            static_cast<std::int64_t>(configs.size()));
    state.SetLabel(warm ? "warm cache" : "cold cache");
}
BENCHMARK(BM_Fig5MatrixSweepCached)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The full 32-config DSE enumeration, serial vs parallel.
void
BM_DseEnumerate(benchmark::State &state)
{
    CpiTable table;
    for (const PeConfig &config : allConfigs())
        table[config.name()] = 1.5;
    const DesignSpace dse(std::move(table));
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto points = dse.enumerateParallel(jobs);
        benchmark::DoNotOptimize(points.data());
        state.counters["points"] = static_cast<double>(points.size());
    }
}
BENCHMARK(BM_DseEnumerate)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The Figure 5 matrix on the streaming pipeline vs the flat barrier
// (both at hardware concurrency). Arg 0 = pipeline, Arg 1 = flat; the
// delta is the pipeline's win from overlapping the in-order sink with
// simulation (plus the cost of its windowed hand-off).
void
BM_Fig5MatrixPipelined(benchmark::State &state)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = figure5Configs();
    const bool flat = state.range(0) != 0;
    for (auto _ : state) {
        const CycleMatrix matrix =
            flat ? runCycleMatrixFlat(suite, configs, {}, 0)
                 : runCycleMatrixStreamed(suite, configs, {}, 0,
                                          CycleMatrixSink{});
        benchmark::DoNotOptimize(matrix.runs.data());
        state.counters["runs"] = static_cast<double>(matrix.runs.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(suite.size()) *
                            static_cast<std::int64_t>(configs.size()));
    state.SetLabel(flat ? "flat barrier" : "pipeline");
}
BENCHMARK(BM_Fig5MatrixPipelined)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The full 32-config DSE on the streaming pipeline with the
// incremental Pareto frontier maintained in the sink, vs
// BM_DseEnumerate Arg(0) (flat barrier + batch frontier afterwards).
void
BM_DseStreamed(benchmark::State &state)
{
    CpiTable table;
    for (const PeConfig &config : allConfigs())
        table[config.name()] = 1.5;
    const DesignSpace dse(std::move(table));
    for (auto _ : state) {
        const DseStreamResult stream = dse.enumerateStreamed(0);
        benchmark::DoNotOptimize(stream.frontier.data());
        state.counters["points"] =
            static_cast<double>(stream.points.size());
        state.counters["frontier"] =
            static_cast<double>(stream.frontier.size());
    }
}
BENCHMARK(BM_DseStreamed)->Unit(benchmark::kMillisecond)->UseRealTime();

// The Figure 5 matrix with N configs advanced in lockstep per
// BatchedFabric task (--batch N) vs the scalar streamed pipeline
// (Arg 0), both cold and at hardware concurrency. Batching trades
// per-cell task dispatch for one fused task per (config group,
// workload); the win shows up on multi-core hosts where fewer, larger
// tasks keep the pool fed — on a single-CPU host expect parity or a
// small cache-locality penalty (docs/batched_sim.md).
void
BM_Fig5MatrixBatched(benchmark::State &state)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = figure5Configs();
    CycleRunOptions options;
    options.batch = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const CycleMatrix matrix = runCycleMatrixStreamed(
            suite, configs, options, 0, CycleMatrixSink{});
        benchmark::DoNotOptimize(matrix.runs.data());
        state.counters["runs"] = static_cast<double>(matrix.runs.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(suite.size()) *
                            static_cast<std::int64_t>(configs.size()));
    state.SetLabel(options.batch > 1
                       ? "batch " + std::to_string(options.batch)
                       : "scalar");
}
BENCHMARK(BM_Fig5MatrixBatched)
    ->Arg(0)
    ->Arg(8)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

// BENCHMARK_MAIN() expanded so the build-type cross-check runs before
// any measurement: a debug benchmark library under a release project
// (or vice versa) taints timings in a way the committed baseline must
// flag (bench_util.hh).
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    tia::bench::checkBenchmarkBuildType();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
