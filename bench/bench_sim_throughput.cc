/**
 * @file
 * Simulator microbenchmarks (google-benchmark): cycle throughput of
 * the pipelined PE model, functional-simulator step rate, assembler
 * and encoder throughput. Not a paper figure — this characterizes the
 * reproduction infrastructure itself.
 */

#include <benchmark/benchmark.h>

#include "core/assembler.hh"
#include "core/encoding.hh"
#include "uarch/cycle_fabric.hh"
#include "workloads/runner.hh"

namespace {

using namespace tia;

void
BM_CyclePeAluLoop(benchmark::State &state)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r1, %r1, #1; set %p = ZZZZZZZ0;\n");
    FabricBuilder builder(program.params, 1);
    const PipelineShape shape{
        state.range(0) != 0, state.range(0) != 0, state.range(0) != 0};
    CycleFabric fabric(builder.build(), program, {shape, true, true});
    for (auto _ : state)
        fabric.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(shape.name());
}
BENCHMARK(BM_CyclePeAluLoop)->Arg(0)->Arg(1);

void
BM_CycleFabricDotProduct(benchmark::State &state)
{
    const Workload w = makeDotProduct(WorkloadSizes::small());
    for (auto _ : state) {
        const WorkloadRun run =
            runCycle(w, {PipelineShape{true, false, false}, true, true});
        benchmark::DoNotOptimize(run.worker.cycles);
        state.SetIterationTime(0.0); // wall-clock measured by default
        state.counters["cycles"] = static_cast<double>(run.totalCycles);
    }
}
BENCHMARK(BM_CycleFabricDotProduct)->Unit(benchmark::kMillisecond);

void
BM_FunctionalBst(benchmark::State &state)
{
    const Workload w = makeBst(WorkloadSizes::small());
    for (auto _ : state) {
        const WorkloadRun run = runFunctional(w);
        benchmark::DoNotOptimize(run.worker.retired);
    }
}
BENCHMARK(BM_FunctionalBst)->Unit(benchmark::kMillisecond);

void
BM_Assemble(benchmark::State &state)
{
    const std::string source =
        "when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; "
        "set %p = ZZZZ0001;\n"
        "when %p == XXXX0001: add %o0.2, %r1, #7; deq %i0; "
        "set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: halt;\n";
    for (auto _ : state) {
        const Program program = assemble(source);
        benchmark::DoNotOptimize(program.staticInstructions());
    }
}
BENCHMARK(BM_Assemble);

void
BM_EncodeDecode(benchmark::State &state)
{
    const ArchParams params;
    const Program program = assemble(
        "when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; "
        "set %p = ZZZZ0001;\n");
    const Instruction &inst = program.pes[0][0];
    for (auto _ : state) {
        const MachineCode code = encode(params, inst);
        const Instruction decoded = decode(params, code);
        benchmark::DoNotOptimize(decoded.imm);
    }
}
BENCHMARK(BM_EncodeDecode);

} // namespace

BENCHMARK_MAIN();
