/**
 * @file
 * Figure 3: area and power breakdown of the single-cycle PE
 * (64,435 um^2 and 1.95 mW; back end dominates area, power split
 * roughly evenly between front and back end).
 */

#include <cstdio>

#include "bench_util.hh"
#include "vlsi/area_power.hh"
#include "vlsi/timing.hh"

int
main()
{
    using namespace tia;
    bench::banner("Figure 3 — single-cycle PE area/power breakdown",
                  "64,435 um^2, 1.95 mW; Ins.Mem 25%/41%, queues "
                  "18%/22%, scheduler 6%/5%, front 32%/48%, back "
                  "46%/23%");

    const AreaPowerModel model;
    const PeConfig tdx{PipelineShape{false, false, false}, false, false};
    const double area = model.areaUm2(tdx);
    const double power = model.calibrationPowerMw(tdx);

    std::printf("Single-cycle PE: %.1f um^2, %.3f mW "
                "(1.0 V, std-VT, 500 MHz, bst activity)\n\n",
                area, power);

    std::printf("%-12s %-10s %-10s %-14s %-12s\n", "Component", "Area %",
                "Power %", "Area (um^2)", "Power (mW)");
    double front_area = 0.0, front_power = 0.0;
    double back_area = 0.0, back_power = 0.0;
    for (const ComponentShare &c : singleCycleBreakdown()) {
        std::printf("%-12s %-10.0f %-10.0f %-14.1f %-12.4f\n",
                    c.name.c_str(), c.areaFraction * 100.0,
                    c.powerFraction * 100.0, c.areaFraction * area,
                    c.powerFraction * power);
        if (c.name == "Ins. Mem." || c.name == "Scheduler" ||
            c.name == "Pred. Unit") {
            front_area += c.areaFraction;
            front_power += c.powerFraction;
        } else if (c.name == "ALU" || c.name == "RegFile") {
            back_area += c.areaFraction;
            back_power += c.powerFraction;
        }
    }
    std::printf("\nFront end (Pred+InsMem+Sched): %.0f%% area, %.0f%% power"
                " (paper: 32%% / 48%%)\n",
                front_area * 100.0, front_power * 100.0);
    std::printf("Back end (RegFile+ALU):        %.0f%% area, %.0f%% power"
                " (paper: 46%% / 23%%)\n",
                back_area * 100.0, back_power * 100.0);
    return 0;
}
