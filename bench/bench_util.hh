/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Each bench prints the rows/series of one paper table or figure.
 * Absolute values come from our simulator + analytical VLSI model; the
 * point of comparison with the paper is the *shape* (who wins, by what
 * factor, where crossovers fall) — see EXPERIMENTS.md.
 */

#ifndef TIA_BENCH_BENCH_UTIL_HH
#define TIA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "cache/simcache.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace tia::bench {

/**
 * Workload sizes for bench runs: paper-scale by default; set
 * TIA_BENCH_SMALL=1 for a quick smoke pass.
 */
inline WorkloadSizes
benchSizes()
{
    const char *small = std::getenv("TIA_BENCH_SMALL");
    if (small != nullptr && std::string(small) == "1")
        return WorkloadSizes::small();
    return WorkloadSizes::full();
}

/**
 * Sweep worker threads for bench runs: hardware concurrency by
 * default; set TIA_BENCH_JOBS=N to pin (N=1 forces the serial
 * reference loop). Results are identical either way.
 */
inline unsigned
benchJobs()
{
    const char *jobs = std::getenv("TIA_BENCH_JOBS");
    if (jobs != nullptr)
        return static_cast<unsigned>(std::strtoul(jobs, nullptr, 10));
    return 0; // SweepEngine: hardware concurrency
}

/**
 * Optional result cache for bench runs: set TIA_BENCH_CACHE=PATH to
 * load a persistent warm tier from PATH, memoize every cycle run, and
 * save back on destruction (docs/simcache.md). Unset (the default)
 * disables caching entirely. Lets the fig5/fig6/fig8 drivers — which
 * all sweep the same uarch x workload product — share one warm tier
 * instead of each re-simulating it.
 */
class BenchCache
{
  public:
    BenchCache()
    {
        const char *path = std::getenv("TIA_BENCH_CACHE");
        if (path == nullptr || *path == '\0')
            return;
        path_ = path;
        cache_.emplace();
        std::string error;
        if (!cache_->load(path_, &error) || !error.empty())
            std::fprintf(stderr, "bench cache: %s\n", error.c_str());
    }

    ~BenchCache()
    {
        if (!cache_)
            return;
        std::string error;
        if (!cache_->save(path_, &error))
            std::fprintf(stderr, "bench cache: cannot save: %s\n",
                         error.c_str());
        std::fprintf(stderr, "bench %s\n",
                     cache_->statsSummary().c_str());
    }

    BenchCache(const BenchCache &) = delete;
    BenchCache &operator=(const BenchCache &) = delete;

    /** nullptr when TIA_BENCH_CACHE is unset. */
    SimCache *get() { return cache_ ? &*cache_ : nullptr; }

    /** Run options with the cache (if any) installed. */
    CycleRunOptions
    options()
    {
        CycleRunOptions run_options;
        run_options.cache = get();
        return run_options;
    }

  private:
    std::string path_;
    std::optional<SimCache> cache_;
};

/** Print a banner naming the reproduced table/figure. */
inline void
banner(const char *what, const char *paper_summary)
{
    std::printf("==============================================================================\n");
    std::printf("%s\n", what);
    std::printf("Paper reference: %s\n", paper_summary);
    std::printf("==============================================================================\n");
}

} // namespace tia::bench

#endif // TIA_BENCH_BENCH_UTIL_HH
