/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Each bench prints the rows/series of one paper table or figure.
 * Absolute values come from our simulator + analytical VLSI model; the
 * point of comparison with the paper is the *shape* (who wins, by what
 * factor, where crossovers fall) — see EXPERIMENTS.md.
 */

#ifndef TIA_BENCH_BENCH_UTIL_HH
#define TIA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workloads/workload.hh"

namespace tia::bench {

/**
 * Workload sizes for bench runs: paper-scale by default; set
 * TIA_BENCH_SMALL=1 for a quick smoke pass.
 */
inline WorkloadSizes
benchSizes()
{
    const char *small = std::getenv("TIA_BENCH_SMALL");
    if (small != nullptr && std::string(small) == "1")
        return WorkloadSizes::small();
    return WorkloadSizes::full();
}

/**
 * Sweep worker threads for bench runs: hardware concurrency by
 * default; set TIA_BENCH_JOBS=N to pin (N=1 forces the serial
 * reference loop). Results are identical either way.
 */
inline unsigned
benchJobs()
{
    const char *jobs = std::getenv("TIA_BENCH_JOBS");
    if (jobs != nullptr)
        return static_cast<unsigned>(std::strtoul(jobs, nullptr, 10));
    return 0; // SweepEngine: hardware concurrency
}

/** Print a banner naming the reproduced table/figure. */
inline void
banner(const char *what, const char *paper_summary)
{
    std::printf("==============================================================================\n");
    std::printf("%s\n", what);
    std::printf("Paper reference: %s\n", paper_summary);
    std::printf("==============================================================================\n");
}

} // namespace tia::bench

#endif // TIA_BENCH_BENCH_UTIL_HH
