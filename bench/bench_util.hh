/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Each bench prints the rows/series of one paper table or figure.
 * Absolute values come from our simulator + analytical VLSI model; the
 * point of comparison with the paper is the *shape* (who wins, by what
 * factor, where crossovers fall) — see EXPERIMENTS.md.
 */

#ifndef TIA_BENCH_BENCH_UTIL_HH
#define TIA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

#include "cache/simcache.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace tia::bench {

/**
 * Workload sizes for bench runs: paper-scale by default; set
 * TIA_BENCH_SMALL=1 for a quick smoke pass.
 */
inline WorkloadSizes
benchSizes()
{
    const char *small = std::getenv("TIA_BENCH_SMALL");
    if (small != nullptr && std::string(small) == "1")
        return WorkloadSizes::small();
    return WorkloadSizes::full();
}

/**
 * Sweep worker threads for bench runs: hardware concurrency by
 * default; set TIA_BENCH_JOBS=N to pin (N=1 forces the serial
 * reference loop). Results are identical either way.
 */
inline unsigned
benchJobs()
{
    const char *jobs = std::getenv("TIA_BENCH_JOBS");
    if (jobs != nullptr)
        return static_cast<unsigned>(std::strtoul(jobs, nullptr, 10));
    return 0; // SweepEngine: hardware concurrency
}

/**
 * Optional result cache for bench runs: set TIA_BENCH_CACHE=PATH to
 * load a persistent warm tier from PATH, memoize every cycle run, and
 * save back on destruction (docs/simcache.md). Unset (the default)
 * disables caching entirely. Lets the fig5/fig6/fig8 drivers — which
 * all sweep the same uarch x workload product — share one warm tier
 * instead of each re-simulating it.
 */
class BenchCache
{
  public:
    BenchCache()
    {
        const char *path = std::getenv("TIA_BENCH_CACHE");
        if (path == nullptr || *path == '\0')
            return;
        path_ = path;
        cache_.emplace();
        std::string error;
        if (!cache_->load(path_, &error) || !error.empty())
            std::fprintf(stderr, "bench cache: %s\n", error.c_str());
    }

    ~BenchCache()
    {
        if (!cache_)
            return;
        std::string error;
        if (!cache_->save(path_, &error))
            std::fprintf(stderr, "bench cache: cannot save: %s\n",
                         error.c_str());
        std::fprintf(stderr, "bench %s\n",
                     cache_->statsSummary().c_str());
    }

    BenchCache(const BenchCache &) = delete;
    BenchCache &operator=(const BenchCache &) = delete;

    /** nullptr when TIA_BENCH_CACHE is unset. */
    SimCache *get() { return cache_ ? &*cache_ : nullptr; }

    /** Run options with the cache (if any) installed. */
    CycleRunOptions
    options()
    {
        CycleRunOptions run_options;
        run_options.cache = get();
        return run_options;
    }

  private:
    std::string path_;
    std::optional<SimCache> cache_;
};

#ifdef BENCHMARK_BENCHMARK_H_

/**
 * How the google-benchmark *library* was compiled ("release" or
 * "debug"). The library bakes its own NDEBUG state into
 * JSONReporter::ReportContext as "library_build_type", so rendering an
 * empty context and parsing that key recovers it at runtime — there is
 * no direct API. Distro packages ship debug-assert builds surprisingly
 * often, and a debug library skews every timing it brackets.
 */
inline std::string
benchmarkLibraryBuildType()
{
    std::ostringstream json;
    benchmark::JSONReporter reporter;
    reporter.SetOutputStream(&json);
    reporter.SetErrorStream(&json);
    reporter.ReportContext(benchmark::BenchmarkReporter::Context());
    const std::string text = json.str();
    const std::string key = "\"library_build_type\": \"";
    const auto pos = text.find(key);
    if (pos == std::string::npos)
        return "unknown";
    const auto start = pos + key.size();
    const auto end = text.find('"', start);
    if (end == std::string::npos)
        return "unknown";
    return text.substr(start, end - start);
}

/**
 * Cross-check the benchmark library's build type against this
 * project's: warn on stderr and tag the emitted context
 * ("build_type_mismatch") on disagreement, so a baseline produced
 * against a debug library is visible in BENCH_throughput.json at
 * review time. Call after benchmark::Initialize (the context needs the
 * executable name), before RunSpecifiedBenchmarks.
 */
inline void
checkBenchmarkBuildType()
{
#ifdef NDEBUG
    const std::string project = "release";
#else
    const std::string project = "debug";
#endif
    const std::string library = benchmarkLibraryBuildType();
    benchmark::AddCustomContext("project_build_type", project);
    if (library != project) {
        std::fprintf(
            stderr,
            "bench: WARNING: google-benchmark library is a %s build "
            "but this project is a %s build; timings bracketed by "
            "library code are skewed. Configure with "
            "-DTIA_BENCHMARK_SOURCE_DIR=<benchmark checkout> to build "
            "the library with the project's flags.\n",
            library.c_str(), project.c_str());
        benchmark::AddCustomContext("build_type_mismatch",
                                    "library=" + library +
                                        " project=" + project);
    }
}

#endif // BENCHMARK_BENCHMARK_H_

/** Print a banner naming the reproduced table/figure. */
inline void
banner(const char *what, const char *paper_summary)
{
    std::printf("==============================================================================\n");
    std::printf("%s\n", what);
    std::printf("Paper reference: %s\n", paper_summary);
    std::printf("==============================================================================\n");
}

} // namespace tia::bench

#endif // TIA_BENCH_BENCH_UTIL_HH
