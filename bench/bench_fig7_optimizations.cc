/**
 * @file
 * Figure 7: the benefit of predicate prediction (+P) and effective
 * queue status (+Q) on the balanced region of the energy-delay Pareto
 * frontier (paper: +P+Q improves the frontier by 20-25% in both energy
 * and delay near the origin).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "vlsi/dse.hh"
#include "workloads/cpi.hh"

namespace {

using namespace tia;

/** Frontier restricted to one optimization setting. */
std::vector<DesignPoint>
frontierFor(const DesignSpace &dse, bool p, bool q)
{
    std::vector<PeConfig> configs;
    for (const auto &shape : allShapes())
        configs.push_back({shape, p, q});
    return DesignSpace::paretoFrontier(dse.enumerate(configs));
}

/** Interpolated frontier energy at a given delay (nan if outside). */
double
energyAtDelay(const std::vector<DesignPoint> &frontier, double ns)
{
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        const auto &a = frontier[i - 1];
        const auto &b = frontier[i];
        if (a.nsPerInstruction <= ns && ns <= b.nsPerInstruction) {
            const double t = (ns - a.nsPerInstruction) /
                             (b.nsPerInstruction - a.nsPerInstruction);
            return a.pjPerInstruction +
                   t * (b.pjPerInstruction - a.pjPerInstruction);
        }
    }
    return -1.0;
}

} // namespace

int
main()
{
    using namespace tia;
    bench::banner("Figure 7 — frontier benefit of +P and +Q (balanced "
                  "region)",
                  "+P+Q improves the Pareto frontier 20-25% in energy "
                  "and delay near the origin");

    const WorkloadSizes sizes = bench::benchSizes();
    std::printf("Measuring suite-average CPI...\n");
    const DesignSpace dse(suiteAverageCpiTable(sizes));

    struct Variant
    {
        const char *label;
        bool p;
        bool q;
    };
    const Variant variants[] = {
        {"None", false, false},
        {"+P", true, false},
        {"+Q", false, true},
        {"+P+Q", true, true},
    };

    std::vector<std::vector<DesignPoint>> frontiers;
    for (const Variant &v : variants) {
        frontiers.push_back(frontierFor(dse, v.p, v.q));
        std::printf("\n%s frontier (balanced region, <= 10 ns/ins):\n",
                    v.label);
        std::printf("  %-18s %-8s %-7s %-9s %10s %11s\n", "design", "VT",
                    "VDD", "f (MHz)", "ns/ins", "pJ/ins");
        for (const DesignPoint &p : frontiers.back()) {
            if (p.nsPerInstruction > 10.0)
                continue;
            std::printf("  %-18s %-8s %-7.1f %-9.0f %10.3f %11.3f\n",
                        p.config.name().c_str(), vtName(p.vt), p.vdd,
                        p.freqMhz, p.nsPerInstruction,
                        p.pjPerInstruction);
        }
    }

    // Iso-delay energy improvement of +P+Q over None across the
    // balanced region.
    std::printf("\nIso-delay energy improvement of +P+Q over the "
                "unoptimized frontier:\n");
    double improvement_sum = 0.0;
    unsigned improvement_count = 0;
    for (double ns = 2.0; ns <= 8.0; ns += 1.0) {
        const double base = energyAtDelay(frontiers[0], ns);
        const double best = energyAtDelay(frontiers[3], ns);
        if (base > 0.0 && best > 0.0) {
            const double gain = (1.0 - best / base) * 100.0;
            improvement_sum += gain;
            ++improvement_count;
            std::printf("  at %4.1f ns/ins: %6.2f pJ -> %6.2f pJ "
                        "(%.0f%% better)\n",
                        ns, base, best, gain);
        }
    }
    if (improvement_count > 0) {
        std::printf("Average iso-delay energy gain: %.0f%% "
                    "(paper: 20-25%%)\n",
                    improvement_sum / improvement_count);
    }

    // Delay improvement at the fast end.
    const double base_fastest = frontiers[0].front().nsPerInstruction;
    const double best_fastest = frontiers[3].front().nsPerInstruction;
    std::printf("Fastest point: %.3f ns (None) vs %.3f ns (+P+Q): "
                "%.0f%% better\n",
                base_fastest, best_fastest,
                (1.0 - best_fastest / base_fastest) * 100.0);
    return 0;
}
