/**
 * @file
 * Ablations over the modeling choices DESIGN.md calls out:
 *
 *  - Queue capacity. Not specified in the paper (our default is 4);
 *    it bounds producer/consumer slack and therefore how much of the
 *    conservative queue-status penalty +Q can recover.
 *  - Memory load latency. The paper's test system pins it at 4 cycles;
 *    sweeping it shows which workloads are latency- vs
 *    throughput-bound.
 *  - CPI source for the DSE. The paper extracts activity from bst; we
 *    compare a bst-only CPI table against the suite average.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vlsi/dse.hh"
#include "workloads/cpi.hh"
#include "workloads/runner.hh"

namespace {

using namespace tia;

void
queueCapacitySweep(const WorkloadSizes &sizes)
{
    std::printf("\n--- Queue capacity sweep (T|DX, +P+Q vs base; "
                "suite-average CPI) ---\n");
    std::printf("%-10s %-12s %-12s %-14s\n", "capacity", "base CPI",
                "+P+Q CPI", "+Q recovers");
    for (unsigned capacity : {1u, 2u, 4u, 8u, 16u}) {
        WorkloadSizes local = sizes;
        double base_sum = 0.0, opt_sum = 0.0;
        auto suite = allWorkloads(local);
        for (auto &w : suite) {
            w.config.params.queueCapacity = capacity;
            w.program.params.queueCapacity = capacity;
            const PipelineShape shape{true, false, false};
            const WorkloadRun base =
                runCycle(w, {shape, false, false});
            const WorkloadRun opt = runCycle(w, {shape, true, true});
            if (!base.ok() || !opt.ok()) {
                std::printf("  capacity %u: %s failed\n", capacity,
                            w.name.c_str());
                return;
            }
            base_sum += base.worker.cpi();
            opt_sum += opt.worker.cpi();
        }
        std::printf("%-10u %-12.3f %-12.3f %-14.1f%%\n", capacity,
                    base_sum / 10.0, opt_sum / 10.0,
                    (1.0 - opt_sum / base_sum) * 100.0);
    }
}

void
memoryLatencySweep(const WorkloadSizes &sizes)
{
    std::printf("\n--- Memory load latency sweep (T|DX +P+Q, worker "
                "CPI) ---\n");
    std::printf("%-10s", "latency");
    auto suite = allWorkloads(sizes);
    for (const auto &w : suite)
        std::printf(" %-9.9s", w.name.c_str());
    std::printf("\n");
    for (unsigned latency : {2u, 4u, 8u, 16u}) {
        std::printf("%-10u", latency);
        for (auto &w : suite) {
            w.config.memLatency = latency;
            const WorkloadRun run =
                runCycle(w, {PipelineShape{true, false, false}, true,
                             true});
            if (!run.ok()) {
                std::printf(" FAIL");
                continue;
            }
            std::printf(" %-9s", formatCpi(run.worker.cpi()).c_str());
        }
        std::printf("\n");
    }
}

void
cpiSourceComparison(const WorkloadSizes &sizes)
{
    std::printf("\n--- DSE CPI source: bst-only vs suite average ---\n");
    const DesignSpace bst_dse(measureCpiTable(sizes));
    const DesignSpace avg_dse(suiteAverageCpiTable(sizes));
    const auto bst_front =
        DesignSpace::paretoFrontier(bst_dse.enumerate());
    const auto avg_front =
        DesignSpace::paretoFrontier(avg_dse.enumerate());
    std::printf("bst-only frontier:     fastest %.3f ns/ins, minimum "
                "%.3f pJ/ins (%zu points)\n",
                bst_front.front().nsPerInstruction,
                bst_front.back().pjPerInstruction, bst_front.size());
    std::printf("suite-average frontier: fastest %.3f ns/ins, minimum "
                "%.3f pJ/ins (%zu points)\n",
                avg_front.front().nsPerInstruction,
                avg_front.back().pjPerInstruction, avg_front.size());
    std::printf("(The paper's absolute numbers derive from bst "
                "activity; its conclusions are CPI-source robust — "
                "check that the winning design families agree.)\n");
    std::printf("bst-only fastest design:      %s (%s)\n",
                bst_front.front().config.name().c_str(),
                vtName(bst_front.front().vt));
    std::printf("suite-average fastest design: %s (%s)\n",
                avg_front.front().config.name().c_str(),
                vtName(avg_front.front().vt));
}

} // namespace

int
main()
{
    using namespace tia;
    bench::banner("Ablations — queue capacity, memory latency, DSE CPI "
                  "source",
                  "sensitivity of the reproduction to modeling choices "
                  "the paper leaves open");
    const WorkloadSizes sizes = bench::benchSizes();
    queueCapacitySweep(sizes);
    memoryLatencySweep(sizes);
    cpiSourceComparison(sizes);
    return 0;
}
