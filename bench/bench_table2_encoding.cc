/**
 * @file
 * Table 2: instruction fields and widths of the binary encoding.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/params.hh"

int
main()
{
    using namespace tia;
    bench::banner("Table 2 — instruction field widths",
                  "106-bit encoding, padded to 128 bits for host I/O");

    const ArchParams p;
    const FieldWidths w = fieldWidths(p);

    struct Row
    {
        const char *field;
        const char *description;
        unsigned width;
    };
    const Row rows[] = {
        {"Val", "Valid bit", w.val},
        {"PredMask", "Required on-set and off-set of predicates",
         w.predMask},
        {"QueueIndices", "Input queues to check", w.queueIndices},
        {"NotTags", "Queues checked for absence of given tag", w.notTags},
        {"TagVals", "Tags sought on input queues", w.tagVals},
        {"Op", "Opcode", w.op},
        {"SrcTypes", "Source types", w.srcTypes},
        {"SrcIDs", "Source indices", w.srcIds},
        {"DstTypes", "Destination types", w.dstTypes},
        {"DstIDs", "Destination indices", w.dstIds},
        {"OutTag", "Tag with which to enqueue the result", w.outTag},
        {"IQueueDeq", "Input queues to dequeue", w.iQueueDeq},
        {"PredUpdate", "Masks of predicates to force high/low",
         w.predUpdate},
        {"Imm", "Immediate value", w.imm},
    };

    std::printf("%-14s %-44s %s\n", "Field", "Description", "Width");
    unsigned total = 0;
    for (const Row &row : rows) {
        std::printf("%-14s %-44s %u\n", row.field, row.description,
                    row.width);
        total += row.width;
    }
    std::printf("%-14s %-44s %u (paper: 106)\n", "Total", "", total);
    std::printf("%-14s %-44s %u (paper: 128)\n", "Padded", "", w.padded());
    return 0;
}
