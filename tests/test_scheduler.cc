/**
 * @file
 * Trigger-resolution unit tests with a scripted queue-status view:
 * priority, predicate matching, tag checks (including negation),
 * implicit operand/dequeue/destination conditions, and the
 * priority-correct stall on unresolved predicates.
 */

#include <array>

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "sim/scheduler.hh"

namespace tia {
namespace {

/** A fully scripted view. */
class StubView : public QueueStatusView
{
  public:
    std::array<unsigned, 4> occupancy = {0, 0, 0, 0};
    std::array<Tag, 4> headTag = {0, 0, 0, 0};
    std::array<bool, 4> outputSpace = {true, true, true, true};

    unsigned
    inputOccupancy(unsigned q) const override
    {
        return occupancy.at(q);
    }

    std::optional<Tag>
    inputHeadTag(unsigned q) const override
    {
        if (occupancy.at(q) == 0)
            return std::nullopt;
        return headTag.at(q);
    }

    bool outputHasSpace(unsigned q) const override
    {
        return outputSpace.at(q);
    }
};

std::vector<Instruction>
prog(const std::string &source)
{
    return assemble(source).pes.at(0);
}

TEST(Scheduler, PredicatePatternMatching)
{
    const auto insts = prog("when %p == XXXX1010: nop;\n");
    StubView view;
    EXPECT_EQ(schedule(insts, 0b1010, 0, view).outcome,
              ScheduleOutcome::Fire);
    EXPECT_EQ(schedule(insts, 0b11111010, 0, view).outcome,
              ScheduleOutcome::Fire); // upper bits are don't-care
    EXPECT_EQ(schedule(insts, 0b1000, 0, view).outcome,
              ScheduleOutcome::None);
    EXPECT_EQ(schedule(insts, 0b1011, 0, view).outcome,
              ScheduleOutcome::None);
}

TEST(Scheduler, PriorityPicksTheFirstEligible)
{
    const auto insts = prog(
        "when %p == XXXXXXX1: nop;\n"
        "when %p == XXXXXXXX: mov %r0, #1;\n"
        "when %p == XXXXXXXX: mov %r1, #1;\n");
    StubView view;
    EXPECT_EQ(schedule(insts, 0, 0, view).index, 1u);
    EXPECT_EQ(schedule(insts, 1, 0, view).index, 0u);
}

TEST(Scheduler, TagCheckRequiresMatchAndOccupancy)
{
    const auto insts =
        prog("when %p == XXXXXXXX with %i1.2: mov %r0, %i1; deq %i1;\n");
    StubView view;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome,
              ScheduleOutcome::None); // empty
    view.occupancy[1] = 1;
    view.headTag[1] = 1;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome,
              ScheduleOutcome::None); // wrong tag
    view.headTag[1] = 2;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::Fire);
}

TEST(Scheduler, NegatedTagFiresOnAnyOtherTag)
{
    const auto insts =
        prog("when %p == XXXXXXXX with %i0.!3: mov %r0, %i0; deq %i0;\n");
    StubView view;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome,
              ScheduleOutcome::None); // empty: absence needs a token
    view.occupancy[0] = 1;
    view.headTag[0] = 3;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::None);
    view.headTag[0] = 0;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::Fire);
}

TEST(Scheduler, ImplicitSourceAvailability)
{
    // Reading %i2 as a source requires a token even without a tag
    // check.
    const auto insts =
        prog("when %p == XXXXXXXX: add %r0, %r0, %i2;\n");
    StubView view;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::None);
    view.occupancy[2] = 1;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::Fire);
}

TEST(Scheduler, ImplicitDequeueAvailability)
{
    const auto insts = prog("when %p == XXXXXXXX: nop; deq %i3;\n");
    StubView view;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::None);
    view.occupancy[3] = 2;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::Fire);
}

TEST(Scheduler, OutputSpaceGatesEnqueues)
{
    const auto insts = prog("when %p == XXXXXXXX: mov %o2.1, %r0;\n");
    StubView view;
    view.outputSpace[2] = false;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::None);
    view.outputSpace[2] = true;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::Fire);
}

TEST(Scheduler, PendingPredicateBlocksDependentTrigger)
{
    const auto insts = prog("when %p == XXXXXXX1: nop;\n");
    StubView view;
    // p0 pending and required: outcome unknown -> stall.
    EXPECT_EQ(schedule(insts, 0, 0b1, view).outcome,
              ScheduleOutcome::BlockedOnPredicate);
    // p0 pending but the trigger would fail on a *resolved* bit?
    // There is none here; with p0=1 currently and pending, still
    // blocked (the in-flight write may clear it).
    EXPECT_EQ(schedule(insts, 1, 0b1, view).outcome,
              ScheduleOutcome::BlockedOnPredicate);
    // Unrelated pending bit does not stall.
    EXPECT_EQ(schedule(insts, 1, 0b10, view).outcome,
              ScheduleOutcome::Fire);
}

TEST(Scheduler, PriorityForbidsBypassingAnUnresolvedTrigger)
{
    // i0 depends on pending p0; i1 is unconditionally ready. Priority
    // correctness demands a stall, not issuing i1 (Section 5.1 /
    // DESIGN.md).
    const auto insts = prog(
        "when %p == XXXXXXX1: mov %r0, #1;\n"
        "when %p == XXXXXXXX: mov %r1, #1;\n");
    StubView view;
    const auto result = schedule(insts, 0, 0b1, view);
    EXPECT_EQ(result.outcome, ScheduleOutcome::BlockedOnPredicate);
    EXPECT_EQ(result.index, 0u);
}

TEST(Scheduler, DefinitelyFailingTriggerIsSkippedEvenWhenPending)
{
    // i0 requires p1=1 (resolved 0) and p0 (pending): it *cannot* fire
    // regardless of p0, so i1 may issue.
    const auto insts = prog(
        "when %p == XXXXXX11: mov %r0, #1;\n"
        "when %p == XXXXXXXX: mov %r1, #1;\n");
    StubView view;
    const auto result = schedule(insts, 0b00, 0b01, view);
    EXPECT_EQ(result.outcome, ScheduleOutcome::Fire);
    EXPECT_EQ(result.index, 1u);
}

TEST(Scheduler, QueueFailureSkipsRegardlessOfPendingPredicates)
{
    // i0's queue condition fails outright; its pending predicate must
    // not stall i1.
    const auto insts = prog(
        "when %p == XXXXXXX1 with %i0.0: mov %r0, %i0; deq %i0;\n"
        "when %p == XXXXXXXX: mov %r1, #1;\n");
    StubView view; // queue 0 empty
    const auto result = schedule(insts, 0, 0b1, view);
    EXPECT_EQ(result.outcome, ScheduleOutcome::Fire);
    EXPECT_EQ(result.index, 1u);
}

TEST(Scheduler, InvalidSlotsNeverFire)
{
    std::vector<Instruction> insts(3);
    for (auto &inst : insts)
        inst.trigger.valid = false;
    StubView view;
    EXPECT_EQ(schedule(insts, 0, 0, view).outcome, ScheduleOutcome::None);
}

} // namespace
} // namespace tia
