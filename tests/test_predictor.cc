/**
 * @file
 * Two-bit saturating predicate predictor tests (paper Section 5.2).
 */

#include <gtest/gtest.h>

#include "uarch/predictor.hh"

namespace tia {
namespace {

TEST(Predictor, StartsWeaklyTaken)
{
    PredicatePredictor p(8);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(p.counter(i), PredicatePredictor::kWeaklyTaken);
        EXPECT_TRUE(p.predict(i));
    }
}

TEST(Predictor, SaturatesUp)
{
    PredicatePredictor p(1);
    for (int i = 0; i < 10; ++i)
        p.train(0, true);
    EXPECT_EQ(p.counter(0), PredicatePredictor::kStronglyTaken);
    EXPECT_TRUE(p.predict(0));
}

TEST(Predictor, SaturatesDown)
{
    PredicatePredictor p(1);
    for (int i = 0; i < 10; ++i)
        p.train(0, false);
    EXPECT_EQ(p.counter(0), PredicatePredictor::kStronglyNotTaken);
    EXPECT_FALSE(p.predict(0));
}

TEST(Predictor, HysteresisSurvivesOneFlip)
{
    // The classic property: a single anomalous outcome inside a biased
    // stream does not flip a saturated prediction.
    PredicatePredictor p(1);
    for (int i = 0; i < 4; ++i)
        p.train(0, true);
    p.train(0, false);
    EXPECT_TRUE(p.predict(0));
    p.train(0, false);
    EXPECT_FALSE(p.predict(0));
}

TEST(Predictor, PerPredicateIndependence)
{
    // Figure 4's "per-branch predictor without the indexing overhead":
    // each predicate trains independently.
    PredicatePredictor p(4);
    for (int i = 0; i < 4; ++i) {
        p.train(0, true);
        p.train(1, false);
    }
    EXPECT_TRUE(p.predict(0));
    EXPECT_FALSE(p.predict(1));
    EXPECT_TRUE(p.predict(2)); // untouched keeps its reset bias
}

TEST(Predictor, AlternatingPatternIsWrongHalfTheTime)
{
    PredicatePredictor p(1);
    unsigned wrong = 0;
    bool outcome = true;
    for (int i = 0; i < 1000; ++i) {
        if (p.predict(0) != outcome)
            ++wrong;
        p.train(0, outcome);
        outcome = !outcome;
    }
    EXPECT_NEAR(static_cast<double>(wrong) / 1000.0, 0.5, 0.05);
}

TEST(Predictor, ResetRestoresBias)
{
    PredicatePredictor p(2);
    p.train(0, false);
    p.train(0, false);
    p.reset();
    EXPECT_EQ(p.counter(0), PredicatePredictor::kWeaklyTaken);
}

TEST(Predictor, OutOfRangeIndexThrows)
{
    PredicatePredictor p(2);
    EXPECT_ANY_THROW(p.predict(2));
    EXPECT_ANY_THROW(p.train(5, true));
}

} // namespace
} // namespace tia
