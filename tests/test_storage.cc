/**
 * @file
 * Instruction-storage alternatives in the VLSI model (paper Section 4:
 * register, latch, and mixed register/latch-SRAM organizations).
 */

#include <gtest/gtest.h>

#include "vlsi/area_power.hh"

namespace tia {
namespace {

const PeConfig kTdx{PipelineShape{false, false, false}, false, false};
const PeConfig kSplit{PipelineShape{true, false, false}, false, false};

ImplementationOptions
with(InstructionStorage storage)
{
    ImplementationOptions opts;
    opts.instructionStorage = storage;
    return opts;
}

TEST(Storage, MixedSramSavesSixteenAndTwentyFourPercentOfTheStore)
{
    // Section 4: "we can reduce instruction memory area and power
    // usage by 16% and 24%, respectively, over register-only
    // instruction memory".
    AreaPowerModel model;
    const double base_area = model.areaUm2(kSplit);
    const double mixed_area =
        model.areaUm2(kSplit, with(InstructionStorage::MixedRegisterSram));
    const double store_area =
        base_area * AreaPowerModel::kInsMemAreaFraction;
    EXPECT_NEAR((base_area - mixed_area) / store_area, 0.16, 1e-9);

    const double base_power = model.calibrationPowerMw(kSplit);
    const double mixed_power = model.calibrationPowerMw(
        kSplit, with(InstructionStorage::MixedRegisterSram));
    const double store_power = AreaPowerModel::kLogicEnergyPj * 500.0 *
                               1e-3 *
                               AreaPowerModel::kInsMemPowerFraction;
    // (the small excess over 0.24 is the shrunken store's leakage)
    EXPECT_NEAR((base_power - mixed_power) / store_power, 0.24, 0.01);
}

TEST(Storage, MixedSramRequiresTriggerDecodeSplit)
{
    // "so long as the design is pipelined such that the stage in which
    // instructions are triggered is separate from the stage in which
    // those fields are decoded" — TDX and TD|X cannot use it.
    AreaPowerModel model;
    EXPECT_ANY_THROW(
        model.areaUm2(kTdx, with(InstructionStorage::MixedRegisterSram)));
    const PeConfig td_x{PipelineShape{false, true, false}, false, false};
    EXPECT_ANY_THROW(model.areaUm2(
        td_x, with(InstructionStorage::MixedRegisterSram)));
    EXPECT_NO_THROW(model.areaUm2(
        kSplit, with(InstructionStorage::MixedRegisterSram)));
}

TEST(Storage, LatchesSaveMoreButAreAllowedAnywhere)
{
    // Latches shrink the store by ~30% area / 75% power (the paper
    // rejected them for timing, which our FO4 model keeps out of
    // scope for storage media).
    AreaPowerModel model;
    const double base_area = model.areaUm2(kTdx);
    const double latch_area =
        model.areaUm2(kTdx, with(InstructionStorage::Latch));
    EXPECT_LT(latch_area, base_area);
    const double mixed_saving =
        model.areaUm2(kSplit) -
        model.areaUm2(kSplit, with(InstructionStorage::MixedRegisterSram));
    EXPECT_GT(base_area - latch_area, mixed_saving);

    EXPECT_LT(model.calibrationPowerMw(
                  kTdx, with(InstructionStorage::Latch)),
              model.calibrationPowerMw(kTdx));
}

TEST(Storage, DefaultIsClockGatedRegisters)
{
    AreaPowerModel model;
    EXPECT_EQ(model.areaUm2(kTdx, {}), model.areaUm2(kTdx));
    EXPECT_NEAR(model.areaUm2(kTdx), 64'435.0, 1e-6);
}

} // namespace
} // namespace tia
