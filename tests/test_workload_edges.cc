/**
 * @file
 * Workload edge cases: minimal sizes, degenerate inputs, and protocol
 * corner cases (every workload must terminate and validate even with
 * one element / one pair / one query).
 */

#include <gtest/gtest.h>

#include "workloads/runner.hh"

namespace tia {
namespace {

WorkloadSizes
minimalSizes()
{
    WorkloadSizes sizes;
    sizes.bstNodes = 1;
    sizes.bstQueries = 1;
    sizes.gcdA = 1;
    sizes.gcdB = 1;
    sizes.meanCount = 1;
    sizes.argMaxCount = 1;
    sizes.dotCount = 1;
    sizes.filterCount = 1;
    sizes.mergeCount = 1;
    sizes.streamCount = 1;
    sizes.searchChars = 8;
    sizes.udivPairs = 1;
    return sizes;
}

TEST(WorkloadEdges, MinimalSizesTerminateAndValidate)
{
    for (const Workload &w : allWorkloads(minimalSizes())) {
        const WorkloadRun functional = runFunctional(w);
        EXPECT_TRUE(functional.ok())
            << w.name << ": " << functional.checkError;
        const WorkloadRun cycle =
            runCycle(w, {PipelineShape{true, true, true}, true, true});
        EXPECT_TRUE(cycle.ok()) << w.name << ": " << cycle.checkError;
    }
}

TEST(WorkloadEdges, GcdOfEqualOperandsIsImmediate)
{
    WorkloadSizes sizes = WorkloadSizes::small();
    sizes.gcdA = 12345;
    sizes.gcdB = 12345;
    const WorkloadRun run = runFunctional(makeGcd(sizes));
    ASSERT_TRUE(run.ok()) << run.checkError;
    // init (4) + one eq + store addr/data + halt.
    EXPECT_EQ(run.worker.retired, 8u);
}

TEST(WorkloadEdges, GcdOfCoprimesReachesOne)
{
    WorkloadSizes sizes = WorkloadSizes::small();
    sizes.gcdA = 35;
    sizes.gcdB = 64;
    const WorkloadRun run = runFunctional(makeGcd(sizes));
    EXPECT_TRUE(run.ok()) << run.checkError;
}

TEST(WorkloadEdges, UdivCoversDegenerateQuotients)
{
    // The generator avoids zero denominators, but numerators smaller
    // than denominators (quotient 0) and tiny denominators (huge
    // quotients) must both be exercised and validate.
    WorkloadSizes sizes = WorkloadSizes::small();
    sizes.udivPairs = 16;
    const WorkloadRun run = runFunctional(makeUdiv(sizes));
    EXPECT_TRUE(run.ok()) << run.checkError;
}

TEST(WorkloadEdges, MeanRequiresPowerOfTwo)
{
    WorkloadSizes sizes = WorkloadSizes::small();
    sizes.meanCount = 100; // not a power of two: no division op exists
    EXPECT_ANY_THROW(makeMean(sizes));
}

TEST(WorkloadEdges, StringSearchTextWithoutMatches)
{
    // A text that happens to contain no "MICRO" still produces a
    // validated all-zero output array; our generator plants matches,
    // so shrink until the planted probability is zero and rely on the
    // golden model either way.
    WorkloadSizes sizes = WorkloadSizes::small();
    sizes.searchChars = 16;
    const WorkloadRun run = runFunctional(makeStringSearch(sizes));
    EXPECT_TRUE(run.ok()) << run.checkError;
}

TEST(WorkloadEdges, DeterministicAcrossConstructions)
{
    // Two constructions of the same workload must produce identical
    // programs and identical golden expectations (fixed PRNG seeds).
    const WorkloadSizes sizes = WorkloadSizes::small();
    const Workload a = makeMerge(sizes);
    const Workload b = makeMerge(sizes);
    EXPECT_EQ(a.program.toString(), b.program.toString());
    const WorkloadRun ra = runFunctional(a);
    const WorkloadRun rb = runFunctional(b);
    EXPECT_EQ(ra.worker.retired, rb.worker.retired);
}

TEST(WorkloadEdges, WorkerCountersComeFromTheDesignatedPe)
{
    // Table 3: "All reported performance counter figures from multi-PE
    // workloads come from the designated worker PE."
    const Workload w = makeDotProduct(WorkloadSizes::small());
    EXPECT_EQ(w.workerPe, 2u);
    const WorkloadRun run =
        runCycle(w, {PipelineShape{false, false, false}, false, false});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.worker.retired, run.dynamicInstructions[2]);
    EXPECT_NE(run.worker.retired, run.dynamicInstructions[0]);
}

} // namespace
} // namespace tia
