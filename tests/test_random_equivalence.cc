/**
 * @file
 * Randomized architectural-equivalence property test.
 *
 * Generates random looping single-PE programs — random ALU/scratchpad
 * operations, random register dependences (exercising forwarding and
 * split-ALU bubbles), random datapath predicate writes and
 * data-dependent branch pairs (exercising predicate hazards,
 * speculation, flush/rollback and the forbidden-instruction rules) —
 * and checks that every one of the 32 microarchitectures produces
 * exactly the architectural state of the functional reference.
 */

#include <random>

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "sim/functional.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {
namespace {

constexpr unsigned kLoopIterations = 40;

/**
 * Build a random program structured as a 16-state loop:
 * states 0..13 hold random work, state 14 advances the iteration
 * counter in r0 and compares against the limit (a datapath write of
 * p7), state 15 either loops (p7 = 0) or halts.
 */
Program
randomProgram(std::mt19937 &rng)
{
    // Branch pairs emit two instructions per state, so give the PE a
    // 32-entry store (NIns is an architecture parameter; this also
    // exercises a non-default parameterization end to end).
    ArchParams params;
    params.numInstructions = 32;
    auto pick = [&](unsigned bound) {
        return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng);
    };

    // Candidate body operations: a mix of ALU classes plus scratchpad.
    static const Op body_ops[] = {
        Op::Add, Op::Sub,  Op::Mul,  Op::Mulhu, Op::And,  Op::Or,
        Op::Xor, Op::Sll,  Op::Srl,  Op::Sra,   Op::Clz,  Op::Ctz,
        Op::Popc, Op::Min, Op::Umax, Op::Bswap, Op::Lsw,  Op::Ssw,
    };
    static const Op cmp_ops[] = {Op::Eq,  Op::Ne,  Op::Ult,
                                 Op::Slt, Op::Uge, Op::Sle};

    auto state_pattern = [&](unsigned state) {
        std::string pattern = "XXXX";
        for (int bit = 3; bit >= 0; --bit)
            pattern += ((state >> bit) & 1u) ? '1' : '0';
        return pattern;
    };
    auto next_state_set = [&](unsigned next) {
        std::string set = "ZZZZ";
        for (int bit = 3; bit >= 0; --bit)
            set += ((next >> bit) & 1u) ? '1' : '0';
        return set;
    };
    // Registers r1..r6 are scratch; r0 is the loop counter. Scratchpad
    // addresses stay tiny.
    auto reg = [&] { return "%r" + std::to_string(1 + pick(6)); };
    auto src = [&]() -> std::string {
        switch (pick(3)) {
          case 0:
            return reg();
          case 1:
            return "#" + std::to_string(pick(64));
          default:
            return "#" + std::to_string(rng());
        }
    };

    std::string source;
    // Predicates p4..p6 hold random branch conditions.
    for (unsigned state = 0; state < 13; ++state) {
        const std::string when = state_pattern(state);
        const std::string advance = next_state_set(state + 1);
        switch (pick(4)) {
          case 0: { // plain operation
            const Op op = body_ops[pick(std::size(body_ops))];
            const OpInfo &info = opInfo(op);
            std::string operands;
            if (op == Op::Lsw) {
                // r7 is never written and stays zero, bounding the
                // scratchpad address to the immediate.
                operands = " " + reg() + ", #" + std::to_string(pick(16)) +
                           ", %r7";
            } else if (op == Op::Ssw) {
                operands =
                    " #" + std::to_string(pick(16)) + ", " + reg();
            } else if (info.numSrcs == 1) {
                operands = " " + reg() + ", " + src();
            } else {
                // Keep the first source a register so at most one
                // immediate appears (the encoding has a single field).
                operands = " " + reg() + ", " + reg() + ", " + src();
            }
            source += "when %p == " + when + ": " +
                      std::string(info.mnemonic) + operands + "; set %p = " +
                      advance + ";\n";
            break;
          }
          case 1: { // datapath predicate write
            const Op op = cmp_ops[pick(std::size(cmp_ops))];
            const unsigned pred = 4 + pick(3);
            source += "when %p == " + when + ": " +
                      std::string(opInfo(op).mnemonic) + " %p" +
                      std::to_string(pred) + ", " + reg() + ", " + src() +
                      "; set %p = " + advance + ";\n";
            break;
          }
          case 2: { // branch pair consuming a condition predicate
            const unsigned pred = 4 + pick(3);
            std::string taken = when;
            std::string fallthrough = when;
            taken[7 - pred] = '1';
            fallthrough[7 - pred] = '0';
            source += "when %p == " + taken + ": add " + reg() + ", " +
                      reg() + ", #1; set %p = " + advance + ";\n";
            source += "when %p == " + fallthrough + ": xor " + reg() +
                      ", " + reg() + ", #3; set %p = " + advance + ";\n";
            break;
          }
          default: { // back-to-back dependence chain on one register
            const std::string r = reg();
            source += "when %p == " + when + ": add " + r + ", " + r +
                      ", " + r + "; set %p = " + advance + ";\n";
            break;
          }
        }
    }
    // State 13: advance the iteration counter; state 14: compare it;
    // state 15: loop back or halt on p7.
    source += "when %p == " + state_pattern(13) + ": add %r0, %r0, #1; "
              "set %p = " + next_state_set(14) + ";\n";
    source += "when %p == " + state_pattern(14) + ": uge %p7, %r0, #" +
              std::to_string(kLoopIterations) +
              "; set %p = " + next_state_set(15) + ";\n";
    source += "when %p == 0XXX1111: nop; set %p = ZZZZ0000;\n";
    source += "when %p == 1XXX1111: halt;\n";

    return assemble(source, params);
}

struct ArchState
{
    std::vector<Word> regs;
    std::uint64_t preds;
    std::vector<Word> scratchpad;
    std::uint64_t retired;

    bool operator==(const ArchState &) const = default;
};

class RandomEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomEquivalence, AllMicroarchitecturesMatchFunctional)
{
    std::mt19937 rng(GetParam() * 7919 + 13);
    const Program program = randomProgram(rng);
    FabricBuilder builder(program.params, 1);
    const FabricConfig config = builder.build();

    FunctionalFabric golden(config, program);
    ASSERT_EQ(golden.run(), RunStatus::Halted) << program.toString();
    const ArchState expected{golden.pe(0).regs(), golden.pe(0).preds(),
                             golden.pe(0).scratchpad(),
                             golden.pe(0).dynamicInstructions()};

    std::vector<PeConfig> configs = allConfigs();
    for (const auto &shape : allShapes()) {
        configs.push_back({shape, true, false, true});  // +P+N
        configs.push_back({shape, true, true, true});   // +P+N+Q
    }
    for (const PeConfig &uarch : configs) {
        CycleFabric fabric(config, program, uarch);
        ASSERT_EQ(fabric.run(2'000'000), RunStatus::Halted)
            << uarch.name() << "\n"
            << program.toString();
        const PipelinedPe &pe = fabric.pe(0);
        const ArchState actual{pe.regs(), pe.preds(), pe.scratchpad(),
                               pe.counters().retired};
        ASSERT_EQ(actual, expected)
            << uarch.name() << "\n"
            << program.toString();
        // Counter identity at halt.
        const PerfCounters &c = pe.counters();
        EXPECT_EQ(c.cycles, c.retired + c.quashed + c.predicateHazard +
                                c.dataHazard + c.forbidden + c.noTrigger)
            << uarch.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Programs, RandomEquivalence,
                         ::testing::Range(0u, 25u));

} // namespace
} // namespace tia
