/**
 * @file
 * Failure-injection tests: out-of-bounds accesses, run-status
 * reporting, and misuse of the public API must fail loudly and
 * specifically, never silently.
 */

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "core/encoding.hh"
#include "core/logging.hh"
#include "sim/functional.hh"
#include "uarch/cycle_fabric.hh"
#include "workloads/runner.hh"

namespace tia {
namespace {

FabricConfig
loneConfig()
{
    FabricBuilder builder(ArchParams{}, 1);
    return builder.build();
}

TEST(RuntimeErrors, ScratchpadLoadOutOfBoundsIsFatal)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: lsw %r0, #999999, %r1; "
        "set %p = ZZZZZZZ1;\n");
    FunctionalFabric fabric(loneConfig(), program);
    EXPECT_THROW(fabric.run(10), FatalError);
}

TEST(RuntimeErrors, ScratchpadStoreOutOfBoundsIsFatal)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: ssw #999999, %r1; set %p = ZZZZZZZ1;\n");
    CycleFabric fabric(loneConfig(), program,
                       {PipelineShape{true, false, false}, false, false});
    EXPECT_THROW(fabric.run(10), FatalError);
}

TEST(RuntimeErrors, MemoryAccessOutOfBoundsIsFatal)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: mov %o0.0, #99; set %p = ZZZZZZZ1;\n");
    FabricBuilder builder(ArchParams{}, 1);
    builder.addReadPort(0, 0, 0);
    builder.setMemoryWords(16);
    FunctionalFabric fabric(builder.build(), program);
    EXPECT_THROW(fabric.run(10), FatalError);
}

TEST(RuntimeErrors, ProgramWithMorePesThanFabricIsRejected)
{
    const Program program = assemble(
        ".pe 0\nwhen %p == XXXXXXXX: halt;\n"
        ".pe 1\nwhen %p == XXXXXXXX: halt;\n");
    EXPECT_THROW(FunctionalFabric(loneConfig(), program), FatalError);
    EXPECT_THROW(CycleFabric(loneConfig(), program,
                             {PipelineShape{false, false, false}, false,
                              false}),
                 FatalError);
}

TEST(RuntimeErrors, StepLimitReported)
{
    // A PE that never halts.
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r0, %r0, #1; set %p = ZZZZZZZ0;\n");
    CycleFabric fabric(loneConfig(), program,
                       {PipelineShape{false, false, false}, false, false});
    EXPECT_EQ(fabric.run(100), RunStatus::StepLimit);
    EXPECT_EQ(fabric.now(), 100u);
}

TEST(RuntimeErrors, QuiescenceDetectedQuickly)
{
    // A PE waiting on a token that never comes goes quiescent well
    // before the cycle budget.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXXX with %i0.0: mov %r0, %i0; deq %i0;\n"
        ".pe 1\n"
        "when %p == XXXXXXX1: mov %o0.0, #1;\n");
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(1, 0, 0, 0);
    CycleFabric fabric(builder.build(), program,
                       {PipelineShape{true, false, false}, true, true});
    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Quiescent);
    EXPECT_LT(fabric.now(), 2'000u);
}

TEST(RuntimeErrors, RunnerSurfacesNonCompletion)
{
    // Sabotage a workload by truncating its program: the runner must
    // report failure rather than validate garbage.
    Workload w = makeGcd(WorkloadSizes::small());
    w.program.pes[0].resize(2); // drop most of the program
    const WorkloadRun run = runFunctional(w, 100'000);
    EXPECT_FALSE(run.ok());
    EXPECT_NE(run.checkError, "");
}

TEST(RuntimeErrors, DecodeStoreRejectsWrongSize)
{
    const ArchParams params;
    EXPECT_THROW(decodeStore(params, MachineCode(7, 0)), FatalError);
}

TEST(RuntimeErrors, ValidateCatchesHandBuiltNonsense)
{
    const ArchParams params;
    Instruction inst;
    inst.trigger.valid = true;
    inst.op = static_cast<Op>(60); // beyond NOps
    EXPECT_THROW(inst.validate(params), FatalError);

    Instruction conflicting;
    conflicting.trigger.valid = true;
    conflicting.trigger.predOn = 0b1;
    conflicting.trigger.predOff = 0b1; // both set and clear
    conflicting.op = Op::Nop;
    EXPECT_THROW(conflicting.validate(params), FatalError);
}

} // namespace
} // namespace tia
