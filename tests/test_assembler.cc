/**
 * @file
 * Assembler tests: the paper's example, grammar coverage, diagnostics.
 */

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "core/logging.hh"

namespace tia {
namespace {

TEST(Assembler, PaperExample)
{
    // Section 2.2 verbatim: the merge-sort worker comparison.
    const Program program = assemble(
        "when %p == XXXX0000 with %i0.0, %i3.0:\n"
        "    ult %p7, %i3, %i0; set %p = ZZZZ0001;\n");
    ASSERT_EQ(program.pes.size(), 1u);
    ASSERT_EQ(program.pes[0].size(), 1u);
    const Instruction &inst = program.pes[0][0];

    EXPECT_TRUE(inst.trigger.valid);
    EXPECT_EQ(inst.trigger.predOn, 0u);
    EXPECT_EQ(inst.trigger.predOff, 0x0fu); // low four predicates clear
    ASSERT_EQ(inst.trigger.queueChecks.size(), 2u);
    EXPECT_EQ(inst.trigger.queueChecks[0].queue, 0u);
    EXPECT_EQ(inst.trigger.queueChecks[0].tag, 0u);
    EXPECT_FALSE(inst.trigger.queueChecks[0].negate);
    EXPECT_EQ(inst.trigger.queueChecks[1].queue, 3u);

    EXPECT_EQ(inst.op, Op::Ult);
    EXPECT_EQ(inst.dst.type, DstType::Predicate);
    EXPECT_EQ(inst.dst.index, 7u);
    EXPECT_EQ(inst.srcs[0].type, SrcType::InputQueue);
    EXPECT_EQ(inst.srcs[0].index, 3u);
    EXPECT_EQ(inst.srcs[1].type, SrcType::InputQueue);
    EXPECT_EQ(inst.srcs[1].index, 0u);

    EXPECT_EQ(inst.predSet, 0x01u);
    EXPECT_EQ(inst.predClear, 0x0eu);
}

TEST(Assembler, OperandKinds)
{
    const Program program = assemble(
        "when %p == XXXXXXXX: add %r0, %r1, #42;\n"
        "when %p == XXXXXXXX: add %o2.1, %i3, 0x10;\n"
        "when %p == XXXXXXXX: mov %r7, -1;\n"
        "when %p == XXXXXXXX: eq %p0, %i0, 'M';\n");
    const auto &pe = program.pes[0];
    ASSERT_EQ(pe.size(), 4u);

    EXPECT_EQ(pe[0].srcs[1].type, SrcType::Immediate);
    EXPECT_EQ(pe[0].imm, 42u);

    EXPECT_EQ(pe[1].dst.type, DstType::OutputQueue);
    EXPECT_EQ(pe[1].dst.index, 2u);
    EXPECT_EQ(pe[1].outTag, 1u);
    EXPECT_EQ(pe[1].imm, 0x10u);

    EXPECT_EQ(pe[2].imm, 0xffffffffu);

    EXPECT_EQ(pe[3].imm, static_cast<Word>('M'));
}

TEST(Assembler, DequeueClause)
{
    const Program program = assemble(
        "when %p == XXXXXXXX with %i0.0: mov %r0, %i0; deq %i0;\n"
        "when %p == XXXXXXXX: add %r1, %i1, %i2; deq %i1, %i2;\n");
    EXPECT_EQ(program.pes[0][0].dequeues, (std::vector<std::uint8_t>{0}));
    EXPECT_EQ(program.pes[0][1].dequeues, (std::vector<std::uint8_t>{1, 2}));
}

TEST(Assembler, NegatedTagCheck)
{
    const Program program = assemble(
        "when %p == XXXXXXXX with %i1.!3: mov %r0, %i1; deq %i1;\n");
    const auto &check = program.pes[0][0].trigger.queueChecks[0];
    EXPECT_EQ(check.queue, 1u);
    EXPECT_EQ(check.tag, 3u);
    EXPECT_TRUE(check.negate);
}

TEST(Assembler, MultiPeProgramsAndComments)
{
    const Program program = assemble(
        "// producer\n"
        ".pe 0\n"
        "when %p == XXXXXXXX: mov %o0.0, %r0;\n"
        "// worker, two slots\n"
        ".pe 2\n"
        "when %p == XXXXXXXX: mov %r0, %i0; deq %i0;\n"
        "when %p == XXXXXXX1: halt;\n");
    ASSERT_EQ(program.pes.size(), 3u);
    EXPECT_EQ(program.pes[0].size(), 1u);
    EXPECT_EQ(program.pes[1].size(), 0u);
    EXPECT_EQ(program.pes[2].size(), 2u);
    EXPECT_EQ(program.pes[2][1].op, Op::Halt);
    EXPECT_EQ(program.pes[2][1].trigger.predOn, 1u);
}

TEST(Assembler, DefConstants)
{
    const Program program = assemble(
        ".def LIMIT 100\n"
        ".def NEG_STEP -4\n"
        "when %p == XXXXXXXX: add %r0, %r0, LIMIT;\n"
        "when %p == XXXXXXXX: add %r1, %r1, NEG_STEP;\n");
    EXPECT_EQ(program.pes[0][0].imm, 100u);
    EXPECT_EQ(program.pes[0][1].imm, 0xfffffffcu);
}

TEST(Assembler, HaltAndNopTakeNoOperands)
{
    const Program program = assemble(
        "when %p == XXXXXXXX: nop; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n");
    EXPECT_EQ(program.pes[0][0].op, Op::Nop);
    EXPECT_EQ(program.pes[0][0].predSet, 1u);
    EXPECT_EQ(program.pes[0][1].op, Op::Halt);
}

TEST(Assembler, StoreHasNoDestination)
{
    const Program program = assemble(
        "when %p == XXXXXXXX: ssw %r0, %r1;\n");
    const Instruction &inst = program.pes[0][0];
    EXPECT_EQ(inst.op, Op::Ssw);
    EXPECT_EQ(inst.dst.type, DstType::None);
    EXPECT_EQ(inst.srcs[0].type, SrcType::Reg);
    EXPECT_EQ(inst.srcs[1].type, SrcType::Reg);
}

TEST(Assembler, DiagnosticsCarryLineNumbers)
{
    try {
        assemble("when %p == XXXXXXXX: add %r0, %r1, %r2;\n"
                 "when %p == XXXXXXXX: frob %r0, %r1, %r2;\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 2"), std::string::npos)
            << err.what();
        EXPECT_NE(std::string(err.what()).find("frob"), std::string::npos);
    }
}

TEST(Assembler, RejectsBadPrograms)
{
    // Pattern of the wrong width.
    EXPECT_THROW(assemble("when %p == XXXX: nop;\n"), FatalError);
    // Unknown pattern character.
    EXPECT_THROW(assemble("when %p == XXXXXXX2: nop;\n"), FatalError);
    // Too many queue checks (MaxCheck = 2).
    EXPECT_THROW(
        assemble("when %p == XXXXXXXX with %i0.0, %i1.0, %i2.0: nop;\n"),
        FatalError);
    // Too many dequeues (MaxDeq = 2).
    EXPECT_THROW(assemble("when %p == XXXXXXXX: nop; deq %i0, %i1, %i2;\n"),
                 FatalError);
    // Register index out of range.
    EXPECT_THROW(assemble("when %p == XXXXXXXX: mov %r9, %r0;\n"),
                 FatalError);
    // Two immediates.
    EXPECT_THROW(assemble("when %p == XXXXXXXX: add %r0, #1, #2;\n"),
                 FatalError);
    // Tag out of range (TagWidth = 2).
    EXPECT_THROW(assemble("when %p == XXXXXXXX with %i0.5: nop;\n"),
                 FatalError);
    // Destination predicate conflicts with the update mask.
    EXPECT_THROW(
        assemble(
            "when %p == XXXXXXXX: eq %p0, %r0, %r1; set %p = ZZZZZZZ1;\n"),
        FatalError);
    // Missing colon.
    EXPECT_THROW(assemble("when %p == XXXXXXXX nop;\n"), FatalError);
    // Too many instructions for one PE (NIns = 16).
    std::string big;
    for (int i = 0; i < 17; ++i)
        big += "when %p == XXXXXXXX: nop;\n";
    EXPECT_THROW(assemble(big), FatalError);
}

TEST(Assembler, ProgramToStringRoundTrip)
{
    const std::string source =
        ".pe 0\n"
        "when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; "
        "set %p = ZZZZ0001;\n"
        ".pe 1\n"
        "when %p == XXXXXXX1: add %o0.2, %r1, #7; deq %i0; "
        "set %p = ZZZZZZX0;\n";
    const Program first = assemble(source);
    const Program second = assemble(first.toString());
    ASSERT_EQ(first.pes.size(), second.pes.size());
    for (unsigned pe = 0; pe < first.pes.size(); ++pe)
        EXPECT_EQ(first.pes[pe], second.pes[pe]) << "PE " << pe;
}

} // namespace
} // namespace tia
