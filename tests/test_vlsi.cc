/**
 * @file
 * VLSI model tests: technology scaling laws, the paper's Section 4 /
 * 5.4 calibration anchors, critical-path structure, and design-space /
 * Pareto properties.
 */

#include <gtest/gtest.h>

#include "vlsi/area_power.hh"
#include "vlsi/dse.hh"
#include "vlsi/tech.hh"
#include "vlsi/timing.hh"

namespace tia {
namespace {

const PeConfig kTdx{PipelineShape{false, false, false}, false, false};
const PeConfig kDeep{PipelineShape{true, true, true}, false, false};
const PeConfig kDeepP{PipelineShape{true, true, true}, true, false};
const PeConfig kDeepQ{PipelineShape{true, true, true}, false, true};
const PeConfig kDeepPQ{PipelineShape{true, true, true}, true, true};

TEST(Tech, Fo4DecreasesWithSupply)
{
    TechModel tech;
    for (VtClass vt :
         {VtClass::Low, VtClass::Standard, VtClass::High}) {
        double previous = 1e18;
        for (double vdd = 0.4; vdd <= 1.01; vdd += 0.05) {
            const double fo4 = tech.fo4Ps(vdd, vt);
            EXPECT_LT(fo4, previous) << vtName(vt) << " @ " << vdd;
            previous = fo4;
        }
    }
}

TEST(Tech, VtClassOrderingHoldsEverywhere)
{
    TechModel tech;
    for (double vdd = 0.4; vdd <= 1.01; vdd += 0.1) {
        // Delay: low < std < high.
        EXPECT_LT(tech.fo4Ps(vdd, VtClass::Low),
                  tech.fo4Ps(vdd, VtClass::Standard));
        EXPECT_LT(tech.fo4Ps(vdd, VtClass::Standard),
                  tech.fo4Ps(vdd, VtClass::High));
        // Leakage: low > std > high.
        EXPECT_GT(tech.leakageFactor(vdd, VtClass::Low),
                  tech.leakageFactor(vdd, VtClass::Standard));
        EXPECT_GT(tech.leakageFactor(vdd, VtClass::Standard),
                  tech.leakageFactor(vdd, VtClass::High));
    }
}

TEST(Tech, NearThresholdDelayExplodes)
{
    // The paper's subthreshold high-VT points run at tens of MHz: FO4
    // at 0.4 V high-VT must be >10x the nominal value.
    TechModel tech;
    EXPECT_GT(tech.fo4Ps(0.4, VtClass::High),
              10.0 * tech.fo4Ps(1.0, VtClass::High));
}

TEST(Tech, LeakageNormalizedAtStdNominal)
{
    TechModel tech;
    EXPECT_NEAR(tech.leakageFactor(1.0, VtClass::Standard), 1.0, 1e-9);
}

TEST(Timing, TriggerStageAnchors)
{
    // Section 5.4: 53.6 FO4 trigger logic (64.3 with speculation);
    // queue-status accounting has no timing impact; the unspeculated
    // T|D|X1|X2 closes at 1184 MHz at nominal voltage.
    EXPECT_NEAR(criticalPathFo4(kDeep), 53.6 + 3.0, 1e-9);
    EXPECT_NEAR(criticalPathFo4(kDeepP), 64.3 + 3.0, 1e-9);
    EXPECT_EQ(criticalPathFo4(kDeepQ), criticalPathFo4(kDeep));
    EXPECT_EQ(criticalPathFo4(kDeepPQ), criticalPathFo4(kDeepP));
    EXPECT_NEAR(maxFrequencyMhz(kDeep, 1.0, VtClass::Standard), 1184.0,
                5.0);
}

TEST(Timing, BalancedPipelinesSitIn50To60Fo4)
{
    // "placing the balanced pipeline delay in the 50-60 FO4 range";
    // only trigger-split designs can reach it, TD-combined designs sit
    // above, the single-cycle design far above.
    for (const auto &shape : allShapes()) {
        const double crit = criticalPathFo4({shape, false, false});
        if (shape.splitTD) {
            EXPECT_NEAR(crit, 56.6, 1e-9) << shape.name();
        } else if (shape.depth() > 1) {
            EXPECT_GT(crit, 60.0) << shape.name();
            EXPECT_LT(crit, 80.0) << shape.name();
        } else {
            EXPECT_GT(crit, 90.0) << shape.name();
        }
    }
}

TEST(Timing, DeeperNeverSlowerThanShallowerSameOpts)
{
    // Adding a pipeline register can only shorten (or keep) the
    // critical path.
    const double tdx = criticalPathFo4(kTdx);
    for (const auto &shape : allShapes()) {
        EXPECT_LE(criticalPathFo4({shape, false, false}), tdx)
            << shape.name();
    }
}

TEST(AreaPower, SingleCycleAnchor)
{
    AreaPowerModel model;
    EXPECT_NEAR(model.areaUm2(kTdx), 64'435.0, 1e-6);
    EXPECT_NEAR(model.calibrationPowerMw(kTdx), 1.95, 0.01);
}

TEST(AreaPower, Section54Anchors)
{
    AreaPowerModel model;
    EXPECT_NEAR(model.areaUm2(kDeep), 63'991.4, 1e-6);
    EXPECT_NEAR(model.areaUm2(kDeepP), 64'278.4, 1e-6);
    EXPECT_NEAR(model.areaUm2(kDeepQ), 64'131.8, 1e-6);
    EXPECT_NEAR(model.areaUm2(kDeepPQ), 64'895.4, 1e-6);
    EXPECT_NEAR(model.calibrationPowerMw(kDeep), 2.852, 0.01);
    // +P costs ~7% power; +Q costs nothing measurable.
    EXPECT_NEAR(model.calibrationPowerMw(kDeepP) /
                    model.calibrationPowerMw(kDeep),
                1.07, 0.005);
    // "no measurable difference in power consumption" — only the
    // +Q adders' leakage (sub-milliwatt) separates them.
    EXPECT_NEAR(model.calibrationPowerMw(kDeepQ),
                model.calibrationPowerMw(kDeep), 1e-3);
}

TEST(AreaPower, PaddingAlternativeCosts)
{
    // Section 5.4: padding the output queues would cost +13% area and
    // +12% power instead.
    AreaPowerModel model;
    ImplementationOptions padded;
    padded.paddedOutputQueues = true;
    EXPECT_NEAR(model.areaUm2(kDeep, padded), 72'439.4, 1e-6);
    EXPECT_NEAR(model.calibrationPowerMw(kDeep, padded) /
                    model.calibrationPowerMw(kDeep),
                1.12, 0.01);
    // Padding is an *alternative* to +Q, not a combination.
    EXPECT_ANY_THROW(model.areaUm2(kDeepQ, padded));
}

TEST(AreaPower, PipelineRegisterCostIsLinear)
{
    // "the power increases linearly with the addition of each pipeline
    // register ... 0.301 mW per pipeline register" at 500 MHz.
    AreaPowerModel model;
    const double two_stage = model.calibrationPowerMw(
        {PipelineShape{true, false, false}, false, false});
    for (const auto &shape : allShapes()) {
        const double power =
            model.calibrationPowerMw({shape, false, false});
        if (shape.depth() == 1) {
            // The single-cycle design differs additionally by its
            // slightly larger (sized-up) area's leakage.
            EXPECT_NEAR(power - two_stage, -0.301, 2e-3) << shape.name();
        } else {
            EXPECT_NEAR(power - two_stage,
                        0.301 * (shape.depth() - 2.0), 1e-9)
                << shape.name();
        }
    }
}

TEST(AreaPower, DynamicEnergyScalesQuadraticallyWithVdd)
{
    AreaPowerModel model;
    const double e10 =
        model.dynamicEnergyPerCyclePj(kDeep, 1.0, 500, 1184);
    const double e05 =
        model.dynamicEnergyPerCyclePj(kDeep, 0.5, 500, 1184);
    EXPECT_NEAR(e05 / e10, 0.25, 1e-9);
}

TEST(AreaPower, TimingPressureInflatesEnergy)
{
    AreaPowerModel model;
    const double relaxed =
        model.dynamicEnergyPerCyclePj(kDeep, 1.0, 200, 1000);
    const double pushed =
        model.dynamicEnergyPerCyclePj(kDeep, 1.0, 1000, 1000);
    EXPECT_GT(pushed, 2.0 * relaxed);
}

CpiTable
flatCpi(double value)
{
    CpiTable table;
    for (const PeConfig &config : allConfigs())
        table[config.name()] = value;
    return table;
}

TEST(Dse, GridMatchesMethodologyShape)
{
    // Standard VT sweeps five supplies, low/high four; base frequency
    // granularity 100 MHz to 1.5 GHz; subthreshold high-VT refinement
    // reaches down to 10 MHz.
    EXPECT_EQ(DesignSpace::supplyGrid(VtClass::Standard).size(), 5u);
    EXPECT_EQ(DesignSpace::supplyGrid(VtClass::Low).size(), 4u);
    EXPECT_EQ(DesignSpace::supplyGrid(VtClass::High).size(), 4u);
    const DesignSpace dse(flatCpi(1.5));
    const auto base = dse.frequencyGridMhz(VtClass::Standard, 1.0);
    EXPECT_EQ(base.size(), 15u);
    EXPECT_EQ(base.front(), 100.0);
    EXPECT_EQ(base.back(), 1500.0);
    const auto sub = dse.frequencyGridMhz(VtClass::High, 0.4);
    EXPECT_EQ(sub.front(), 10.0);
    // The attempted grid exceeds the paper's 4,000-point count.
    EXPECT_GT(dse.gridSize(), 4000u);
}

TEST(Dse, EvaluateRejectsFrequenciesAboveClosure)
{
    DesignSpace dse(flatCpi(1.5));
    EXPECT_ANY_THROW(dse.evaluate(kDeep, VtClass::Standard, 1.0, 1400.0));
    EXPECT_NO_THROW(dse.evaluate(kDeep, VtClass::Standard, 1.0, 1100.0));
}

TEST(Dse, DelayIsCpiOverFrequency)
{
    DesignSpace dse(flatCpi(2.0));
    const DesignPoint p =
        dse.evaluate(kDeep, VtClass::Standard, 1.0, 500.0);
    EXPECT_NEAR(p.nsPerInstruction, 2.0 * 1000.0 / 500.0, 1e-9);
    EXPECT_GT(p.pjPerInstruction, 0.0);
    EXPECT_GT(p.powerMw, 0.0);
}

TEST(Dse, ParetoFrontierIsNonDominatedAndSorted)
{
    DesignSpace dse(flatCpi(1.5));
    const auto points = dse.enumerate();
    EXPECT_GT(points.size(), 1000u);
    const auto frontier = DesignSpace::paretoFrontier(points);
    ASSERT_GT(frontier.size(), 2u);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(frontier[i].nsPerInstruction,
                  frontier[i - 1].nsPerInstruction);
        EXPECT_LT(frontier[i].pjPerInstruction,
                  frontier[i - 1].pjPerInstruction);
    }
    // No enumerated point strictly dominates a frontier point.
    for (const auto &f : frontier) {
        for (const auto &p : points) {
            EXPECT_FALSE(p.nsPerInstruction < f.nsPerInstruction &&
                         p.pjPerInstruction < f.pjPerInstruction)
                << "frontier point dominated";
        }
    }
}

TEST(Dse, LowerCpiNeverHurts)
{
    // With all else equal, a microarchitecture with lower CPI yields
    // strictly better delay and energy per instruction.
    DesignSpace fast(flatCpi(1.2));
    DesignSpace slow(flatCpi(2.4));
    const auto a = fast.evaluate(kDeep, VtClass::Standard, 0.8, 300.0);
    const auto b = slow.evaluate(kDeep, VtClass::Standard, 0.8, 300.0);
    EXPECT_LT(a.nsPerInstruction, b.nsPerInstruction);
    EXPECT_LT(a.pjPerInstruction, b.pjPerInstruction);
}

TEST(Dse, MissingCpiEntryIsAnError)
{
    DesignSpace dse(CpiTable{});
    EXPECT_ANY_THROW(dse.cpiFor(kDeep));
}

TEST(Dse, PowerDensityUsesArea)
{
    DesignSpace dse(flatCpi(1.5));
    const auto p = dse.evaluate(kDeep, VtClass::Standard, 1.0, 500.0);
    EXPECT_NEAR(p.powerDensity(), p.powerMw / (p.areaUm2 * 1e-6), 1e-9);
}

} // namespace
} // namespace tia
