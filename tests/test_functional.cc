/**
 * @file
 * Functional-simulator tests: trigger semantics, queues, memory ports.
 *
 * Trigger patterns are written so that machine states are disjoint:
 * because triggers are priority-ordered and re-evaluated every step, a
 * state that remains eligible after firing would spin forever.
 */

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "sim/functional.hh"

namespace tia {
namespace {

/** A single-PE fabric with a read port (out0/in0) + write port (out1/out2). */
FabricConfig
singlePeConfig(const ArchParams &params = ArchParams{})
{
    FabricBuilder builder(params, 1);
    builder.addReadPort(0, 0, 0);  // %o0 = load address, %i0 = load data
    builder.addWritePort(0, 1, 2); // %o1 = store address, %o2 = store data
    builder.setMemoryWords(4096);
    return builder.build();
}

TEST(Functional, CountUpLoop)
{
    // Count %r0 from 0 to 10 (p1 = "done" from the comparison), then
    // store the result to memory[100] and halt.
    const Program program = assemble(
        "when %p == XXXXXX00: add %r0, %r0, #1; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: uge %p1, %r0, #10; set %p = ZZZZZZX0;\n"
        "when %p == XXXXX010: mov %o1.0, #100; set %p = ZZZZZ110;\n"
        "when %p == XXXX0110: mov %o2.0, %r0; set %p = ZZZZ1110;\n"
        "when %p == XXXX1110: halt;\n");
    FunctionalFabric fabric(singlePeConfig(), program);
    const RunStatus status = fabric.run();
    EXPECT_EQ(status, RunStatus::Halted);
    EXPECT_EQ(fabric.memory().read(100), 10u);
    EXPECT_TRUE(fabric.pe(0).halted());
    // (add + uge) x 10 iterations, plus two moves and the halt.
    EXPECT_EQ(fabric.pe(0).dynamicInstructions(), 23u);
    EXPECT_EQ(fabric.pe(0).predicateWrites(), 10u);
}

TEST(Functional, PriorityOrderBreaksTies)
{
    // Two always-eligible instructions: the first must win.
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX0: add %r1, %r1, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n");
    FunctionalFabric fabric(singlePeConfig(), program);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(0).regs()[0], 1u);
    EXPECT_EQ(fabric.pe(0).regs()[1], 0u);
}

TEST(Functional, TagMatchingGatesTriggers)
{
    // PE 0 sends tag-1 then tag-0 tokens; PE 1 routes by tag.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXX0: mov %o0.1, #111; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXX01: mov %o0.0, #222; set %p = ZZZZZZ1Z;\n"
        "when %p == XXXXXX11: halt;\n"
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i0.0: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXX0X with %i0.1: mov %r1, %i0; deq %i0; "
        "set %p = ZZZZZZ1Z;\n"
        "when %p == XXXXXX11: halt;\n");

    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);
    FunctionalFabric fabric(builder.build(), program);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(1).regs()[0], 222u);
    EXPECT_EQ(fabric.pe(1).regs()[1], 111u);
}

TEST(Functional, NegatedTagCheckStopsAtSentinel)
{
    // PE 0 streams three values with tag 0 and a sentinel with tag 1;
    // PE 1 accumulates while the head is NOT tag 1.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXX000: mov %o0.0, #5; set %p = ZZZZZ001;\n"
        "when %p == XXXXX001: mov %o0.0, #6; set %p = ZZZZZ010;\n"
        "when %p == XXXXX010: mov %o0.0, #7; set %p = ZZZZZ011;\n"
        "when %p == XXXXX011: mov %o0.1, #0; set %p = ZZZZZ100;\n"
        "when %p == XXXXX100: halt;\n"
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i0.!1: add %r0, %r0, %i0; deq %i0;\n"
        "when %p == XXXXXXX0 with %i0.1: nop; deq %i0; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n");

    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);
    FunctionalFabric fabric(builder.build(), program);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(1).regs()[0], 18u);
}

TEST(Functional, MemoryRoundTrip)
{
    // Load memory[7], add 1, store to memory[8].
    const Program program = assemble(
        "when %p == XXXXXX00: mov %o0.0, #7; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01 with %i0.0: add %r0, %i0, #1; deq %i0; "
        "set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: mov %o1.0, #8; set %p = ZZZZZZ11;\n"
        "when %p == XXXXX011: mov %o2.0, %r0; set %p = ZZZZZ1XX;\n"
        "when %p == XXXXX1XX: halt;\n");
    FunctionalFabric fabric(singlePeConfig(), program);
    fabric.memory().write(7, 41);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_EQ(fabric.memory().read(8), 42u);
}

TEST(Functional, ScratchpadLoadStore)
{
    const Program program = assemble(
        "when %p == XXXXXX00: ssw %r0, #99; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: lsw %r1, %r0, #0; set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: mov %o1.0, #0; set %p = ZZZZZZ11;\n"
        "when %p == XXXXX011: mov %o2.0, %r1; set %p = ZZZZZ1XX;\n"
        "when %p == XXXXX1XX: halt;\n");
    FunctionalFabric fabric(singlePeConfig(), program);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_EQ(fabric.memory().read(0), 99u);
}

TEST(Functional, BlockedFabricReportsQuiescent)
{
    // A PE waiting forever on an input that never arrives.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXXX with %i0.0: mov %r0, %i0; deq %i0;\n"
        ".pe 1\n"
        "when %p == XXXXXXX1: mov %o0.0, #1;\n"); // never fires (p0 = 0)
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(1, 0, 0, 0);
    FunctionalFabric fabric(builder.build(), program);
    EXPECT_EQ(fabric.run(), RunStatus::Quiescent);
}

TEST(Functional, BackpressureBoundsQueueDepth)
{
    // Producer free-runs into a consumer that never dequeues; the
    // producer must stop at queue capacity rather than overflow.
    const ArchParams params;
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXXX: mov %o0.0, #1;\n"
        ".pe 1\n"
        "when %p == XXXXXXX1: mov %r0, %i0;\n"); // p0 never set
    FabricBuilder builder(params, 2);
    builder.connect(0, 0, 1, 0);
    FunctionalFabric fabric(builder.build(), program);
    EXPECT_EQ(fabric.run(), RunStatus::Quiescent);
    EXPECT_EQ(fabric.pe(0).dynamicInstructions(), params.queueCapacity);
}

TEST(Functional, InitialRegistersAndPredicates)
{
    const Program program = assemble(
        "when %p == XXXXXXX1: add %o1.0, %r3, #0; set %p = ZZZZZZ10;\n"
        "when %p == XXXXX010: mov %o2.0, %r4; set %p = ZZZZZ1XX;\n"
        "when %p == XXXXX1XX: halt;\n");
    FabricBuilder builder(ArchParams{}, 1);
    builder.addReadPort(0, 0, 0);
    builder.addWritePort(0, 1, 2);
    builder.setInitialRegs(0, {0, 0, 0, 55, 77});
    builder.setInitialPreds(0, 1);
    FunctionalFabric fabric(builder.build(), program);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_EQ(fabric.memory().read(55), 77u);
}

TEST(Functional, ReadPortEchoesRequestTag)
{
    // Request with tag 2; the response must carry tag 2.
    const Program program = assemble(
        "when %p == XXXXXX00: mov %o0.2, #5; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01 with %i0.2: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZZZ10;\n"
        "when %p == XXXXX010: halt;\n");
    FunctionalFabric fabric(singlePeConfig(), program);
    fabric.memory().write(5, 1234);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(0).regs()[0], 1234u);
}

} // namespace
} // namespace tia
