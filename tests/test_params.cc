/**
 * @file
 * Tests for ArchParams and the derived Table 2 field widths.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/params.hh"

namespace tia {
namespace {

TEST(Params, DefaultsMatchTable1)
{
    ArchParams p;
    EXPECT_EQ(p.numRegs, 8u);
    EXPECT_EQ(p.numInputQueues, 4u);
    EXPECT_EQ(p.numOutputQueues, 4u);
    EXPECT_EQ(p.maxCheck, 2u);
    EXPECT_EQ(p.maxDeq, 2u);
    EXPECT_EQ(p.numPreds, 8u);
    EXPECT_EQ(p.wordWidth, 32u);
    EXPECT_EQ(p.tagWidth, 2u);
    EXPECT_EQ(p.numInstructions, 16u);
    EXPECT_EQ(p.numOps, 42u);
    EXPECT_EQ(p.numSrcs, 2u);
    EXPECT_EQ(p.numDsts, 1u);
    EXPECT_NO_THROW(p.validate());
}

TEST(Params, FieldWidthsMatchTable2)
{
    const FieldWidths w = fieldWidths(ArchParams{});
    EXPECT_EQ(w.val, 1u);
    EXPECT_EQ(w.predMask, 16u);
    EXPECT_EQ(w.queueIndices, 6u);
    EXPECT_EQ(w.notTags, 2u);
    EXPECT_EQ(w.tagVals, 4u);
    EXPECT_EQ(w.op, 6u);
    EXPECT_EQ(w.srcTypes, 4u);
    EXPECT_EQ(w.srcIds, 6u);
    EXPECT_EQ(w.dstTypes, 2u);
    EXPECT_EQ(w.dstIds, 3u);
    EXPECT_EQ(w.outTag, 2u);
    EXPECT_EQ(w.iQueueDeq, 6u);
    EXPECT_EQ(w.predUpdate, 16u);
    EXPECT_EQ(w.imm, 32u);
}

TEST(Params, TotalEncodedWidthIs106BitsPaddedTo128)
{
    // Section 2.3: "we have padded each 106-bit instruction to a round
    // 128 bits".
    const FieldWidths w = fieldWidths(ArchParams{});
    EXPECT_EQ(w.total(), 106u);
    EXPECT_EQ(w.padded(), 128u);
}

TEST(Params, Clog2)
{
    EXPECT_EQ(clog2(0), 0u);
    EXPECT_EQ(clog2(1), 0u);
    EXPECT_EQ(clog2(2), 1u);
    EXPECT_EQ(clog2(3), 2u);
    EXPECT_EQ(clog2(4), 2u);
    EXPECT_EQ(clog2(5), 3u);
    EXPECT_EQ(clog2(8), 3u);
    EXPECT_EQ(clog2(9), 4u);
    EXPECT_EQ(clog2(42), 6u);
}

TEST(Params, ParseRoundTrip)
{
    ArchParams p;
    p.numRegs = 16;
    p.tagWidth = 3;
    p.queueCapacity = 8;
    const ArchParams parsed = parseParams(p.toString());
    EXPECT_EQ(parsed, p);
}

TEST(Params, ParseAcceptsCommentsAndBlanks)
{
    const ArchParams parsed = parseParams(
        "# a comment\n"
        "\n"
        "NRegs: 4   # trailing comment\n"
        "NIns: 8\n");
    EXPECT_EQ(parsed.numRegs, 4u);
    EXPECT_EQ(parsed.numInstructions, 8u);
    EXPECT_EQ(parsed.numPreds, 8u); // default retained
}

TEST(Params, ParseRejectsUnknownKey)
{
    EXPECT_THROW(parseParams("Bogus: 3\n"), FatalError);
}

TEST(Params, ParseRejectsMalformedValue)
{
    EXPECT_THROW(parseParams("NRegs: eight\n"), FatalError);
    EXPECT_THROW(parseParams("NRegs\n"), FatalError);
    EXPECT_THROW(parseParams("NRegs: -2\n"), FatalError);
}

TEST(Params, ValidateRejectsBadCombinations)
{
    ArchParams p;
    p.maxCheck = 5; // exceeds NIQueues
    EXPECT_THROW(p.validate(), FatalError);

    p = ArchParams{};
    p.wordWidth = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = ArchParams{};
    p.queueCapacity = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Params, WidthsScaleWithParameters)
{
    // Doubling predicate count grows PredMask and PredUpdate by
    // 2 x NPreds each.
    ArchParams p;
    const unsigned base = fieldWidths(p).total();
    p.numPreds = 16;
    EXPECT_EQ(fieldWidths(p).total(), base + 2 * 8 + 2 * 8 + 1);
    // +1: DstIDs grows from 3 to 4 bits (max(8,4,16) = 16).
}

} // namespace
} // namespace tia
