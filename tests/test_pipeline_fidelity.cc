/**
 * @file
 * RTL-fidelity contract tests for the pipelined PE: exact timing of
 * predicate visibility, head-and-neck tag peeking, single-cycle +P
 * no-ops, enqueue capacity guarantees, and drain behavior.
 */

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "sim/fabric_config.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {
namespace {

FabricConfig
loneConfig()
{
    FabricBuilder builder(ArchParams{}, 1);
    return builder.build();
}

TEST(PipelineFidelity, PredicateWriteInvisibleToSameCycleTrigger)
{
    // On TD|X the eq issues+decodes at cycle t and writes back at the
    // end of t+1. The trigger resolution *during* t+1 must still see
    // the bit as pending (a one-cycle predicate hazard); the dependent
    // instruction issues at t+2.
    const Program program = assemble(
        "when %p == XXXX0X00: eq %p2, %r1, %r1; set %p = ZZZZZZ01;\n"
        "when %p == XXXXX101: add %r0, %r0, #1; set %p = ZZZZ1Z00;\n"
        "when %p == XXXX1XXX: halt;\n");
    CycleFabric fabric(loneConfig(), program,
                       {PipelineShape{false, true, false}, false, false});
    ASSERT_EQ(fabric.run(1'000), RunStatus::Halted);
    const PerfCounters &c = fabric.pe(0).counters();
    // Exactly one predicate-hazard cycle for the depth-2 window.
    EXPECT_EQ(c.predicateHazard, 1u);
    // t0 issue eq, t1 hazard, t2 issue add, t3 issue halt, t4 halt
    // retires: 5 cycles.
    EXPECT_EQ(c.cycles, 5u);
}

TEST(PipelineFidelity, SingleCyclePredictionIsInert)
{
    // TDX has no speculation window: +P must not predict at all.
    const Program program = assemble(
        "when %p == XXXXXX00: eq %p2, %r1, %r1; set %p = ZZZZZZ01;\n"
        "when %p == XXXXX101: halt;\n");
    CycleFabric fabric(loneConfig(), program,
                       {PipelineShape{false, false, false}, true, true});
    ASSERT_EQ(fabric.run(1'000), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(0).counters().predictions, 0u);
    EXPECT_EQ(fabric.pe(0).counters().quashed, 0u);
    EXPECT_EQ(fabric.pe(0).counters().cycles, 2u); // CPI exactly 1
}

TEST(PipelineFidelity, HeadAndNeckTagPeek)
{
    // Section 5.3: with T|D split and +Q, the scheduler must check the
    // tag at depth = in-flight dequeues. The consumer alternates
    // instructions by tag; tokens alternate tags. With +Q the
    // sequence proceeds back-to-back because the *neck* is visible.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXX00: mov %o0.0, #10; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: mov %o0.1, #11; set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: mov %o0.0, #12; set %p = ZZZZZZ11;\n"
        "when %p == XXXXXX11: halt;\n"
        ".pe 1\n"
        "when %p == XXXXXX00 with %i0.0: add %r0, %r0, %i0; deq %i0; "
        "set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01 with %i0.1: add %r1, %r1, %i0; deq %i0; "
        "set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10 with %i0.0: add %r0, %r0, %i0; deq %i0; "
        "set %p = ZZZZZZ11;\n"
        "when %p == XXXXXX11: halt;\n");
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);

    auto consumer_counters = [&](bool q) {
        CycleFabric fabric(builder.build(), program,
                           {PipelineShape{true, false, false}, false, q});
        EXPECT_EQ(fabric.run(10'000), RunStatus::Halted);
        EXPECT_EQ(fabric.pe(1).regs()[0], 22u);
        EXPECT_EQ(fabric.pe(1).regs()[1], 11u);
        return fabric.pe(1).counters();
    };
    const PerfCounters base = consumer_counters(false);
    const PerfCounters with_q = consumer_counters(true);
    // Both are architecturally correct, but +Q consumes tokens
    // back-to-back while the conservative design inserts a no-trigger
    // bubble after each dequeue.
    EXPECT_LT(with_q.cycles, base.cycles);
    EXPECT_GT(base.noTrigger, with_q.noTrigger);
}

TEST(PipelineFidelity, EffectiveStatusNeverOverflowsQueues)
{
    // A producer enqueueing on every instruction under +Q must respect
    // in-flight enqueue accounting even with a slow consumer; any
    // overflow would panic inside TaggedQueue.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXXX: mov %o0.0, #1;\n"
        ".pe 1\n"
        "when %p == XXXXX000 with %i0.0: add %r0, %r0, %i0; deq %i0; "
        "set %p = ZZZZZ001;\n"
        "when %p == XXXXX001: nop; set %p = ZZZZZ010;\n"
        "when %p == XXXXX010: nop; set %p = ZZZZZ011;\n"
        "when %p == XXXXX011: nop; set %p = ZZZZZ000;\n");
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);
    for (const auto &shape : allShapes()) {
        CycleFabric fabric(builder.build(), program, {shape, true, true});
        ASSERT_NO_THROW({
            for (int i = 0; i < 3000; ++i)
                fabric.step();
        }) << shape.name();
        // Consumer takes 4 cycles per token: producer throughput must
        // settle at exactly one token per 4 cycles.
        EXPECT_NEAR(static_cast<double>(
                        fabric.pe(0).counters().retired),
                    3000.0 / 4.0, 8.0)
            << shape.name();
    }
}

TEST(PipelineFidelity, DrainCyclesAreCountedAfterHaltIssue)
{
    const Program program = assemble("when %p == XXXXXXXX: halt;\n");
    for (const auto &shape : allShapes()) {
        CycleFabric fabric(loneConfig(), program,
                           {shape, false, false});
        ASSERT_EQ(fabric.run(100), RunStatus::Halted) << shape.name();
        const PerfCounters &c = fabric.pe(0).counters();
        EXPECT_EQ(c.retired, 1u);
        EXPECT_EQ(c.cycles, shape.depth()) << shape.name();
        EXPECT_EQ(c.noTrigger, shape.depth() - 1) << shape.name();
    }
}

TEST(PipelineFidelity, InFlightTracksPipelineOccupancy)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r1, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r2, %r3, #1; set %p = ZZZZZZZ0;\n");
    CycleFabric fabric(loneConfig(), program,
                       {PipelineShape{true, true, true}, false, false});
    EXPECT_EQ(fabric.pe(0).inFlight(), 0u);
    fabric.step();
    EXPECT_EQ(fabric.pe(0).inFlight(), 1u);
    fabric.step();
    EXPECT_EQ(fabric.pe(0).inFlight(), 2u);
    fabric.step();
    EXPECT_EQ(fabric.pe(0).inFlight(), 3u);
    // Steady state: one issue and one retirement per step leaves
    // depth-1 instructions resident between steps.
    fabric.step();
    EXPECT_EQ(fabric.pe(0).inFlight(), 3u);
    fabric.step();
    EXPECT_EQ(fabric.pe(0).inFlight(), 3u);
    EXPECT_TRUE(fabric.pe(0).busy());
}

TEST(PipelineFidelity, DequeueCountersMatchTraffic)
{
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXX00: mov %o0.0, #5; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: mov %o0.0, #6; set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: halt;\n"
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i0.0: add %r0, %r0, %i0; deq %i0;\n");
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);
    CycleFabric fabric(builder.build(), program,
                       {PipelineShape{true, false, false}, false, true});
    for (int i = 0; i < 200; ++i)
        fabric.step();
    EXPECT_EQ(fabric.pe(0).counters().enqueues, 2u);
    EXPECT_EQ(fabric.pe(1).counters().dequeues, 2u);
    EXPECT_EQ(fabric.pe(1).regs()[0], 11u);
}

} // namespace
} // namespace tia
