/**
 * @file
 * TaggedQueue unit tests: FIFO order, deep peek, capacity enforcement,
 * and the cycle-start snapshot / deferred-push discipline the
 * cycle-accurate fabric relies on.
 */

#include <gtest/gtest.h>

#include "sim/queue.hh"

namespace tia {
namespace {

TEST(Queue, FifoOrderAndTags)
{
    TaggedQueue q(4);
    q.pushImmediate({10, 0});
    q.pushImmediate({20, 1});
    q.pushImmediate({30, 2});
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), (Token{10, 0}));
    EXPECT_EQ(q.pop(), (Token{20, 1}));
    EXPECT_EQ(q.pop(), (Token{30, 2}));
    EXPECT_TRUE(q.empty());
}

TEST(Queue, PeekHeadAndNeck)
{
    // Section 5.3: effective queue status must expose "the head and
    // neck" for tag checks past in-flight dequeues.
    TaggedQueue q(4);
    q.pushImmediate({1, 3});
    q.pushImmediate({2, 1});
    ASSERT_TRUE(q.peek(0).has_value());
    EXPECT_EQ(q.peek(0)->tag, 3u);
    ASSERT_TRUE(q.peek(1).has_value());
    EXPECT_EQ(q.peek(1)->tag, 1u);
    EXPECT_FALSE(q.peek(2).has_value());
}

TEST(Queue, DeferredPushesBecomeVisibleAtCommit)
{
    TaggedQueue q(4);
    q.beginCycle();
    q.push({42, 0});
    EXPECT_EQ(q.size(), 0u); // not yet visible
    EXPECT_TRUE(q.hasPendingPush());
    EXPECT_EQ(q.pendingPushes(), 1u);
    q.commit();
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.hasPendingPush());
    EXPECT_EQ(q.peek(0)->data, 42u);
}

TEST(Queue, SnapshotFreezesOccupancyAtCycleStart)
{
    TaggedQueue q(4);
    q.pushImmediate({1, 0});
    q.pushImmediate({2, 0});
    q.beginCycle();
    EXPECT_EQ(q.snapshotSize(), 2u);
    q.pop();
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.snapshotSize(), 2u); // unchanged mid-cycle
    q.push({3, 0});
    EXPECT_EQ(q.snapshotSize(), 2u);
    q.commit();
    q.beginCycle();
    EXPECT_EQ(q.snapshotSize(), 2u); // 1 left + 1 committed
}

TEST(Queue, PopsThisCycleResetAtBeginCycle)
{
    TaggedQueue q(4);
    q.pushImmediate({1, 0});
    q.pushImmediate({2, 0});
    q.beginCycle();
    EXPECT_EQ(q.popsThisCycle(), 0u);
    q.pop();
    EXPECT_EQ(q.popsThisCycle(), 1u);
    q.pop();
    EXPECT_EQ(q.popsThisCycle(), 2u);
    q.beginCycle();
    EXPECT_EQ(q.popsThisCycle(), 0u);
}

TEST(Queue, CapacityIncludesPendingPushes)
{
    TaggedQueue q(2);
    q.beginCycle();
    q.push({1, 0});
    q.push({2, 0});
    // A third push would exceed capacity even though nothing is
    // committed yet: the hazard checks upstream must prevent this.
    EXPECT_ANY_THROW(q.push({3, 0}));
    q.commit();
    EXPECT_ANY_THROW(q.pushImmediate({4, 0}));
}

TEST(Queue, PopFromEmptyPanics)
{
    TaggedQueue q(2);
    EXPECT_ANY_THROW(q.pop());
}

TEST(Queue, ZeroCapacityRejected)
{
    EXPECT_ANY_THROW(TaggedQueue(0));
}

TEST(Queue, RingWraparoundKeepsFifoOrder)
{
    // Odd capacity so the ring indices exercise the non-power-of-two
    // wrap path; enough rounds that head_ laps the buffer repeatedly.
    TaggedQueue q(3);
    Word next_in = 0;
    Word next_out = 0;
    q.pushImmediate({next_in++, 0});
    q.pushImmediate({next_in++, 0});
    for (int round = 0; round < 50; ++round) {
        q.beginCycle();
        EXPECT_EQ(q.pop().data, next_out++);
        q.push({next_in++, static_cast<Tag>(next_in % 4)});
        ASSERT_TRUE(q.peek(0).has_value());
        EXPECT_EQ(q.peek(0)->data, next_out);
        q.commit();
        EXPECT_EQ(q.size(), 2u);
    }
    EXPECT_EQ(q.pop().data, next_out++);
    EXPECT_EQ(q.pop().data, next_out);
    EXPECT_TRUE(q.empty());
}

TEST(Queue, TotalsCountLifetimeTraffic)
{
    TaggedQueue q(2);
    q.beginCycle();
    for (int round = 0; round < 5; ++round) {
        q.push({static_cast<Word>(round), 0});
        q.commit();
        q.beginCycle();
        q.pop();
    }
    EXPECT_EQ(q.totalPushes(), 5u);
    EXPECT_EQ(q.totalPops(), 5u);
}

} // namespace
} // namespace tia
