/**
 * @file
 * Tests for the +N nested-speculation extension (paper Section 6:
 * "Our initial exploration suggests that it would not be terribly
 * expensive to support nested speculation, and we would like to
 * examine the effect of this addition on decreasing the number of
 * forbidden instructions in deep pipelines").
 */

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "uarch/cycle_fabric.hh"
#include "workloads/runner.hh"

namespace tia {
namespace {

const PipelineShape kDeep{true, true, true}; // T|D|X1|X2

FabricConfig
loneConfig()
{
    FabricBuilder builder(ArchParams{}, 1);
    return builder.build();
}

// Back-to-back predicate writers: i0 writes p1, i1 consumes p1 and
// writes p2, i2 consumes p2 — without nesting, i1 is forbidden until
// i0 resolves every iteration.
const char *kChainedPredLoop =
    "when %p == XX00XXXX: eq %p1, %r2, %r2; set %p = ZZ01ZZZZ;\n"
    "when %p == XX01XX1X: ne %p3, %r3, #5; set %p = ZZ10ZZZZ;\n"
    "when %p == XX101XXX: add %r0, %r0, #1; set %p = ZZ00ZZZZ;\n";
// (p1 is always 1 and p3 always 1: both predictions converge; the
// point is the *structural* nesting of two in-flight predictions.)

TEST(NestedSpeculation, RequiresPrediction)
{
    EXPECT_ANY_THROW(PipelinedPe(ArchParams{},
                                 {kDeep, false, false, true}, {}));
}

TEST(NestedSpeculation, NameCarriesSuffix)
{
    EXPECT_EQ((PeConfig{kDeep, true, true, true}).name(),
              "T|D|X1|X2 +P+N+Q");
    EXPECT_EQ((PeConfig{kDeep, true, false, true}).name(),
              "T|D|X1|X2 +P+N");
}

TEST(NestedSpeculation, ReducesForbiddenCycles)
{
    const Program program = assemble(kChainedPredLoop);
    auto run = [&](bool nested) {
        CycleFabric fabric(loneConfig(), program,
                           {kDeep, true, false, nested});
        for (int i = 0; i < 3000; ++i)
            fabric.step();
        return fabric.pe(0).counters();
    };
    const PerfCounters base = run(false);
    const PerfCounters nested = run(true);
    EXPECT_GT(base.forbidden, 0u);
    EXPECT_LT(nested.forbidden, base.forbidden / 2);
    EXPECT_GT(nested.retired, base.retired);
    // Same forward progress semantics.
    EXPECT_EQ(base.predicateHazard, 0u);
    EXPECT_EQ(nested.predicateHazard, 0u);
}

TEST(NestedSpeculation, NestedMispredictionRecovers)
{
    // Two back-to-back data-dependent predicate writes (p2 and p3
    // alternate every iteration, so the two-bit counters mispredict
    // constantly) feeding two branch pairs. Nested wrong-path work
    // must roll back to exactly the functional result.
    const Program program = assemble(
        "when %p == 1000XXXX: halt;\n"
        "when %p == X000XXXX: add %r0, %r0, #1; set %p = Z001ZZZZ;\n"
        "when %p == X001XXXX: and %r1, %r0, #1; set %p = Z010ZZZZ;\n"
        "when %p == X010XXXX: eq %p2, %r1, #0; set %p = Z011ZZZZ;\n"
        "when %p == X011XXXX: ne %p3, %r1, #0; set %p = Z100ZZZZ;\n"
        "when %p == X100X1XX: add %r4, %r4, #1; set %p = Z101ZZZZ;\n"
        "when %p == X100X0XX: add %r5, %r5, #1; set %p = Z101ZZZZ;\n"
        "when %p == X1011XXX: add %r6, %r6, #3; set %p = Z110ZZZZ;\n"
        "when %p == X1010XXX: xor %r6, %r6, #7; set %p = Z110ZZZZ;\n"
        "when %p == X110XXXX: uge %p7, %r0, #60; set %p = Z000ZZZZ;\n");

    FabricBuilder builder(program.params, 1);
    const FabricConfig config = builder.build();
    FunctionalFabric golden(config, program);
    ASSERT_EQ(golden.run(), RunStatus::Halted);

    for (bool nested : {false, true}) {
        CycleFabric fabric(config, program,
                           {kDeep, true, false, nested});
        ASSERT_EQ(fabric.run(100'000), RunStatus::Halted)
            << (nested ? "+N" : "base");
        EXPECT_EQ(fabric.pe(0).regs(), golden.pe(0).regs())
            << (nested ? "+N" : "base");
        if (nested)
            EXPECT_GT(fabric.pe(0).counters().mispredictions, 20u);
    }
}

TEST(NestedSpeculation, WorkloadsValidateUnderNesting)
{
    const WorkloadSizes sizes = WorkloadSizes::small();
    for (const Workload &w : allWorkloads(sizes)) {
        const WorkloadRun run =
            runCycle(w, {kDeep, true, true, true});
        EXPECT_TRUE(run.ok()) << w.name << ": " << run.checkError;
    }
}

TEST(NestedSpeculation, MatchesFunctionalResultsOnWorkloads)
{
    const WorkloadSizes sizes = WorkloadSizes::small();
    for (const Workload &w : allWorkloads(sizes)) {
        const WorkloadRun golden = runFunctional(w);
        for (const auto &shape : allShapes()) {
            if (shape.depth() < 3)
                continue;
            const WorkloadRun run =
                runCycle(w, {shape, true, true, true});
            ASSERT_TRUE(run.ok()) << w.name;
            EXPECT_EQ(run.dynamicInstructions,
                      golden.dynamicInstructions)
                << w.name << " on " << shape.name() << " +P+N+Q";
        }
    }
}

} // namespace
} // namespace tia
