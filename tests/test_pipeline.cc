/**
 * @file
 * Directed microarchitecture tests for the pipelined PE: CPI, hazard
 * windows, speculation, queue-status accounting (paper Section 5).
 */

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "sim/fabric_config.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {
namespace {

/** Build a minimal single-PE fabric (no channels). */
FabricConfig
loneConfig(const ArchParams &params = ArchParams{})
{
    FabricBuilder builder(params, 1);
    // A dummy self-loop channel keeps validate() happy without being
    // used: actually unnecessary — a fabric may have zero channels.
    return builder.build();
}

/** Step @p fabric for @p cycles cycles. */
void
stepFor(CycleFabric &fabric, unsigned cycles)
{
    for (unsigned i = 0; i < cycles; ++i)
        fabric.step();
}

/**
 * Assert the bucket identity: every cycle is attributed to exactly one
 * bucket, except for issue cycles of still-in-flight instructions.
 */
void
expectBucketsSumToCycles(const PipelinedPe &pe)
{
    const PerfCounters &c = pe.counters();
    EXPECT_EQ(c.cycles, c.retired + c.quashed + c.predicateHazard +
                            c.dataHazard + c.forbidden + c.noTrigger +
                            pe.inFlight());
}

// Free-running ALU loop: no predicate datapath writes, no queues.
const char *kAluLoop =
    "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
    "when %p == XXXXXXX1: add %r1, %r1, #1; set %p = ZZZZZZZ0;\n";

// Loop with a datapath predicate write per iteration: i0 computes
// p1 := (r2 == r2) = 1, i1 consumes p1. (i0 deliberately reads a
// register i1 does not write, so no register hazard pollutes the
// predicate-hazard measurement.)
const char *kPredLoop =
    "when %p == XXXXXXX0: eq %p1, %r2, %r2; set %p = ZZZZZZZ1;\n"
    "when %p == XXXXXX11: add %r0, %r0, #1; set %p = ZZZZZZ00;\n";

// Back-to-back register dependence chain (r0 -> r0).
const char *kDepChain =
    "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
    "when %p == XXXXXXX1: add %r0, %r0, #1; set %p = ZZZZZZZ0;\n";

class PipelineAllShapes : public ::testing::TestWithParam<unsigned>
{
  protected:
    PipelineShape shape() const { return allShapes()[GetParam()]; }
};

TEST_P(PipelineAllShapes, IndependentAluLoopHasCpiOne)
{
    // With no predicate datapath writes, no queue traffic and no
    // register dependences, every shape sustains one instruction per
    // cycle (after the fill).
    const Program program = assemble(kAluLoop);
    CycleFabric fabric(loneConfig(), program, {shape(), false, false});
    stepFor(fabric, 1000);
    const auto &c = fabric.pe(0).counters();
    expectBucketsSumToCycles(fabric.pe(0));
    EXPECT_EQ(c.predicateHazard, 0u);
    EXPECT_EQ(c.dataHazard, 0u);
    EXPECT_EQ(c.noTrigger, 0u);
    EXPECT_EQ(c.retired + shape().depth() - 1, 1000u)
        << shape().name();
}

TEST_P(PipelineAllShapes, PredicateHazardWindowIsDepthMinusOne)
{
    // Without +P, each datapath predicate write stalls the dependent
    // trigger for depth-1 cycles; the loop body is 2 instructions.
    const Program program = assemble(kPredLoop);
    CycleFabric fabric(loneConfig(), program, {shape(), false, false});
    stepFor(fabric, 1200);
    const auto &c = fabric.pe(0).counters();
    expectBucketsSumToCycles(fabric.pe(0));
    EXPECT_EQ(c.quashed, 0u);
    EXPECT_EQ(c.forbidden, 0u);
    const double per_ins =
        static_cast<double>(c.predicateHazard) /
        static_cast<double>(c.retired);
    const double expected = (shape().depth() - 1) / 2.0;
    EXPECT_NEAR(per_ins, expected, 0.05) << shape().name();
}

TEST_P(PipelineAllShapes, PredictionEliminatesPredicateHazards)
{
    // The eq in kPredLoop always produces 1: the two-bit counter locks
    // on, so +P leaves no predicate hazards and (after warmup) no
    // quashes.
    const Program program = assemble(kPredLoop);
    CycleFabric fabric(loneConfig(), program, {shape(), true, false});
    stepFor(fabric, 1200);
    const auto &c = fabric.pe(0).counters();
    expectBucketsSumToCycles(fabric.pe(0));
    EXPECT_EQ(c.predicateHazard, 0u) << shape().name();
    EXPECT_LE(c.quashed, 2u) << shape().name();
    if (shape().depth() > 1) {
        EXPECT_GT(c.predictions, 0u);
        // i0 is a predicate writer: it cannot start a nested
        // speculation, so deep pipes see forbidden cycles instead.
        EXPECT_GE(c.retired, 1200u / shape().depth());
    }
}

TEST_P(PipelineAllShapes, DataHazardsOnlyInSplitAluShapes)
{
    const Program program = assemble(kDepChain);
    CycleFabric fabric(loneConfig(), program, {shape(), false, false});
    stepFor(fabric, 1000);
    const auto &c = fabric.pe(0).counters();
    expectBucketsSumToCycles(fabric.pe(0));
    if (shape().splitX) {
        // One bubble per dependent pair: dataHazard == retired (+/-
        // pipeline fill effects).
        EXPECT_NEAR(static_cast<double>(c.dataHazard) /
                        static_cast<double>(c.retired),
                    1.0, 0.05)
            << shape().name();
    } else {
        EXPECT_EQ(c.dataHazard, 0u) << shape().name();
    }
}

TEST_P(PipelineAllShapes, ArchitecturalResultMatchesAcrossOptimizations)
{
    // All four optimization settings must compute the same registers.
    const Program program = assemble(kDepChain);
    std::vector<Word> results;
    for (bool p : {false, true}) {
        for (bool q : {false, true}) {
            CycleFabric fabric(loneConfig(), program, {shape(), p, q});
            stepFor(fabric, 500);
            // Drain the pipe so the last writeback lands.
            const auto &c = fabric.pe(0).counters();
            expectBucketsSumToCycles(fabric.pe(0));
            results.push_back(
                static_cast<Word>(fabric.pe(0).counters().retired));
        }
    }
    // kDepChain has no triggers gated on predictions-from-queues; all
    // variants retire the same count stream (+Q/+P have nothing to do).
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], results[2]);
    EXPECT_EQ(results[0], results[3]);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PipelineAllShapes,
                         ::testing::Range(0u, 8u),
                         [](const auto &info) {
                             std::string name =
                                 allShapes()[info.param].name();
                             for (auto &c : name)
                                 if (c == '|')
                                     c = '_';
                             return name;
                         });

TEST(Pipeline, SingleCycleMatchesFunctionalCpi)
{
    // TDX retires one instruction per cycle on a pure ALU loop.
    const Program program = assemble(kAluLoop);
    CycleFabric fabric(loneConfig(), program,
                       {PipelineShape{false, false, false}, false, false});
    stepFor(fabric, 100);
    EXPECT_EQ(fabric.pe(0).counters().retired, 100u);
    EXPECT_DOUBLE_EQ(fabric.pe(0).counters().cpi(), 1.0);
}

TEST(Pipeline, MispredictionQuashesAndRecovers)
{
    // p1 alternates 1,0,1,0,... via eq(r0 & 1, 0); the two-bit counter
    // cannot track an alternating pattern perfectly, so quashes must
    // appear, yet the architectural result must stay correct.
    // States on (p2, p0), with p1 the data-dependent branch bit:
    //   (0,0) compute parity bit; (0,1) write p1; (1,0) branch on p1
    //   into the r2/r3 counters; (1,1) increment r0 and loop.
    const Program program = assemble(
        "when %p == XXXXX0X0: and %r1, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXX0X1: eq %p1, %r1, #0; set %p = ZZZZZ1X0;\n"
        "when %p == XXXXX110: add %r2, %r2, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXX100: add %r3, %r3, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXX1X1: add %r0, %r0, #1; set %p = ZZZZZ0Z0;\n");
    const PipelineShape deep{true, true, true}; // T|D|X1|X2
    CycleFabric fabric(loneConfig(), program, {deep, true, false});
    stepFor(fabric, 3000);
    const auto &c = fabric.pe(0).counters();
    expectBucketsSumToCycles(fabric.pe(0));
    EXPECT_GT(c.quashed, 0u);
    EXPECT_GT(c.mispredictions, 0u);
    // Correctness: parity alternates, so the two counters track r0.
    const auto &regs = fabric.pe(0).regs();
    const Word sum = regs[2] + regs[3];
    EXPECT_LE(sum > regs[0] ? sum - regs[0] : regs[0] - sum, 1u);
    EXPECT_LE(regs[2] > regs[3] ? regs[2] - regs[3] : regs[3] - regs[2],
              1u);
    EXPECT_GT(regs[0], 100u); // forward progress despite mispredictions
}

TEST(Pipeline, ForbiddenBlocksSideEffectsDuringSpeculation)
{
    // While a prediction is unconfirmed, a ready dequeue-carrying
    // instruction must wait (forbidden), not issue.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXXX: mov %o0.0, #9;\n"
        ".pe 1\n"
        "when %p == XXXXXXX0: eq %p1, %r0, %r0; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXX11 with %i0.0: add %r1, %r1, %i0; deq %i0; "
        "set %p = ZZZZZZ00;\n");
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);
    const PipelineShape deep{true, true, true};
    CycleFabric fabric(builder.build(), program, {deep, true, true});
    stepFor(fabric, 2000);
    const auto &c = fabric.pe(1).counters();
    expectBucketsSumToCycles(fabric.pe(1));
    EXPECT_GT(c.forbidden, 0u);
    EXPECT_EQ(c.predicateHazard, 0u);
}

TEST(Pipeline, EffectiveQueueStatusRestoresThroughput)
{
    // Producer streams tokens; the consumer dequeues one per
    // instruction. Conservative accounting halves throughput on T|D
    // splits; +Q restores back-to-back consumption (Section 5.3).
    const char *source =
        ".pe 0\n"
        "when %p == XXXXXXXX: mov %o0.0, #3;\n"
        ".pe 1\n"
        "when %p == XXXXXXXX with %i0.0: add %r0, %r0, %i0; deq %i0;\n";
    const Program program = assemble(source);
    const PipelineShape shape{true, false, false}; // T|DX

    auto run = [&](bool q) {
        FabricBuilder builder(ArchParams{}, 2);
        builder.connect(0, 0, 1, 0);
        CycleFabric fabric(builder.build(), program, {shape, false, q});
        stepFor(fabric, 2000);
        return fabric.pe(1).counters();
    };

    const PerfCounters base = run(false);
    const PerfCounters with_q = run(true);
    EXPECT_GT(base.noTrigger, with_q.noTrigger);
    EXPECT_GT(with_q.retired, base.retired + 200);
}

TEST(Pipeline, ConservativeOutputAccountingThrottlesProducer)
{
    // A producer that enqueues every instruction: without +Q the
    // in-flight enqueue makes its output look full, capping it at one
    // token per two cycles even with a fast consumer.
    const char *source =
        ".pe 0\n"
        "when %p == XXXXXXXX: mov %o0.0, #3;\n"
        ".pe 1\n"
        "when %p == XXXXXXXX with %i0.0: add %r0, %r0, %i0; deq %i0;\n";
    const Program program = assemble(source);
    const PipelineShape shape{false, true, false}; // TD|X

    auto producer_retired = [&](bool q) {
        FabricBuilder builder(ArchParams{}, 2);
        builder.connect(0, 0, 1, 0);
        CycleFabric fabric(builder.build(), program, {shape, false, q});
        stepFor(fabric, 2000);
        return fabric.pe(0).counters().retired;
    };

    const auto base = producer_retired(false);
    const auto with_q = producer_retired(true);
    EXPECT_NEAR(static_cast<double>(base), 1000.0, 30.0);
    EXPECT_GT(with_q, base + 500);
}

TEST(Pipeline, HaltStopsTheCounterAndDrains)
{
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n");
    for (const auto &shape : allShapes()) {
        CycleFabric fabric(loneConfig(), program, {shape, false, false});
        const RunStatus status = fabric.run(10'000);
        EXPECT_EQ(status, RunStatus::Halted) << shape.name();
        const auto &c = fabric.pe(0).counters();
        expectBucketsSumToCycles(fabric.pe(0));
        EXPECT_EQ(c.retired, 2u) << shape.name();
        EXPECT_TRUE(fabric.pe(0).halted());
        // Two instructions, each needing `depth` cycles from issue to
        // retirement, issued back to back: depth + 1 total cycles.
        EXPECT_EQ(c.cycles, shape.depth() + 1) << shape.name();
    }
}

TEST(Pipeline, CountersIncludePredicateWriteRate)
{
    const Program program = assemble(kPredLoop);
    CycleFabric fabric(loneConfig(), program,
                       {PipelineShape{false, false, false}, false, false});
    stepFor(fabric, 1000);
    // Half the retired instructions write predicates.
    EXPECT_NEAR(fabric.pe(0).counters().predicateWriteRate(), 0.5, 0.01);
}

} // namespace
} // namespace tia
