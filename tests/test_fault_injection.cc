/**
 * @file
 * Fault-injection tests: FaultPlan parsing, deterministic replay (same
 * seed, same faults, same report), and the architectural response to
 * each fault class — drops starve, duplicates skew, corruptions break
 * the golden check, stuck status stalls, forced mispredictions are
 * repaired by the +P recovery machinery, and memory latency spikes
 * slow a run without corrupting it.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/assembler.hh"
#include "core/logging.hh"
#include "sim/fault.hh"
#include "uarch/cycle_fabric.hh"
#include "workloads/runner.hh"

namespace tia {
namespace {

const PeConfig kUarch{PipelineShape{true, false, false}, true, true};
const PeConfig kDeepP{PipelineShape{true, true, true}, true, true};

TEST(FaultPlan, ParsesAndRoundTrips)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=42;drop:ch0@p0.01;stuckfull:ch1@c100+50;mispredict:pe0@p1;"
        "corrupt:ch2@p0.005,mask=0xff;memspike:rp0@p0.1,extra=16");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.events.size(), 5u);

    EXPECT_EQ(plan.events[0].cls, FaultClass::Drop);
    EXPECT_EQ(plan.events[0].site, FaultSite::Channel);
    EXPECT_EQ(plan.events[0].index, 0u);
    EXPECT_DOUBLE_EQ(plan.events[0].probability, 0.01);

    EXPECT_EQ(plan.events[1].cls, FaultClass::StuckFull);
    EXPECT_LT(plan.events[1].probability, 0.0);
    EXPECT_EQ(plan.events[1].start, 100u);
    EXPECT_EQ(plan.events[1].length, 50u);

    EXPECT_EQ(plan.events[2].cls, FaultClass::Mispredict);
    EXPECT_EQ(plan.events[2].site, FaultSite::Pe);

    EXPECT_EQ(plan.events[3].mask, 0xffu);
    EXPECT_EQ(plan.events[4].cls, FaultClass::MemLatency);
    EXPECT_EQ(plan.events[4].site, FaultSite::ReadPort);
    EXPECT_EQ(plan.events[4].extra, 16u);

    // The canonical form reparses to the same plan.
    const FaultPlan again = FaultPlan::parse(plan.toString());
    EXPECT_EQ(again.toString(), plan.toString());
    EXPECT_EQ(again.seed, plan.seed);
    EXPECT_EQ(again.events.size(), plan.events.size());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("gibberish"), FatalError);
    EXPECT_THROW(FaultPlan::parse("explode:ch0@p0.5"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop:pe0@p0.5"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop:ch0@x5"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop:ch0@p2"), FatalError);
    EXPECT_THROW(FaultPlan::parse("drop:ch0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("mispredict:pe0@p1,bogus=3"),
                 FatalError);
}

/**
 * Producer/consumer pair over channel 0: PE 0 sends 1..5 then halts,
 * PE 1 sums five tokens into %r0 then halts. Clean sum = 15.
 */
FabricConfig
pairConfig()
{
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);
    return builder.build();
}

Program
pairProgram()
{
    return assemble(
        ".pe 0\n"
        "when %p == XXXXXX00: add %r0, %r0, #1; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: mov %o0.0, %r0; set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: uge %p4, %r0, #5; set %p = ZZZZZZ11;\n"
        "when %p == XXX0XX11: mov %r1, #0; set %p = ZZZ0ZZ00;\n"
        "when %p == XXX1XX11: halt;\n"
        ".pe 1\n"
        "when %p == XXXXXX00 with %i0.0: add %r0, %r0, %i0; deq %i0; "
        "set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: add %r1, %r1, #1; set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: uge %p4, %r1, #5; set %p = ZZZZZZ11;\n"
        "when %p == XXX0XX11: mov %r2, #0; set %p = ZZZ0ZZ00;\n"
        "when %p == XXX1XX11: halt;\n");
}

TEST(FaultInjection, CleanPairRunHalts)
{
    CycleFabric fabric(pairConfig(), pairProgram(), kUarch);
    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(1).regs()[0], 15u);
}

TEST(FaultInjection, DropStarvesTheConsumer)
{
    FaultInjector injector(FaultPlan::parse("seed=7;drop:ch0@p1"));
    CycleFabric fabric(pairConfig(), pairProgram(), kUarch, &injector);

    // Every push is dropped: the producer happily halts, the consumer
    // starves (no wait cycle: the producer is done, not blocked).
    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Quiescent);
    EXPECT_EQ(fabric.pe(1).regs()[0], 0u);

    const FaultStats &stats = injector.stats();
    ASSERT_EQ(stats.lines.size(), 1u);
    EXPECT_EQ(stats.lines[0].name, "drop:ch0@p1");
    EXPECT_EQ(stats.lines[0].fired, 5u);
    EXPECT_EQ(stats.totalFired(), 5u);
}

TEST(FaultInjection, DuplicateSkewsTheStream)
{
    FaultInjector injector(FaultPlan::parse("seed=7;dup:ch0@p1"));
    CycleFabric fabric(pairConfig(), pairProgram(), kUarch, &injector);

    // Each push is delivered twice; the consumer still stops after
    // five tokens, so it sums 1,1,2,2,3 = 9 instead of 15.
    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(1).regs()[0], 9u);
    EXPECT_EQ(injector.stats().totalFired(), 5u);
}

TEST(FaultInjection, CorruptionBreaksTheSum)
{
    FaultInjector injector(
        FaultPlan::parse("seed=7;corrupt:ch0@p1,mask=0x10"));
    CycleFabric fabric(pairConfig(), pairProgram(), kUarch, &injector);

    // Every token arrives XORed with 0x10: 17+18+19+20+21 = 95.
    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(1).regs()[0], 95u);
    EXPECT_EQ(injector.stats().totalFired(), 5u);
}

TEST(FaultInjection, StuckEmptyStallsTheConsumer)
{
    // Channel 0 reads as empty for the first 300 cycles; the run must
    // stall through the window and still finish correctly.
    FaultInjector injector(
        FaultPlan::parse("seed=7;stuckempty:ch0@c0+300"));
    CycleFabric fabric(pairConfig(), pairProgram(), kUarch, &injector);

    EXPECT_EQ(fabric.run(1'000'000), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(1).regs()[0], 15u);
    EXPECT_GE(fabric.now(), 300u);
}

TEST(FaultInjection, StuckFullStallsTheProducer)
{
    FaultInjector injector(
        FaultPlan::parse("seed=7;stuckfull:ch0@c0+300"));
    CycleFabric fabric(pairConfig(), pairProgram(), kUarch, &injector);

    EXPECT_EQ(fabric.run(1'000'000), RunStatus::Halted);
    EXPECT_EQ(fabric.pe(1).regs()[0], 15u);
    EXPECT_GE(fabric.now(), 300u);
}

TEST(FaultInjection, SameSeedReplaysIdentically)
{
    // The acceptance bar: two invocations of the same seeded plan are
    // bit-identical — same stats, same counters, same hang report.
    const FaultPlan plan = FaultPlan::parse(
        "seed=99;drop:ch0@p0.3;corrupt:ch0@p0.2,mask=0x4;"
        "mispredict:pe1@p0.1");
    const Workload workload = makeGcd(WorkloadSizes::small());

    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const WorkloadRun first = runCycle(workload, kDeepP, options);
    const WorkloadRun second = runCycle(workload, kDeepP, options);

    EXPECT_EQ(first.faultStats, second.faultStats);
    EXPECT_EQ(first.hang, second.hang);
    EXPECT_EQ(first.status, second.status);
    EXPECT_EQ(first.totalCycles, second.totalCycles);
    EXPECT_EQ(first.checkError, second.checkError);
    EXPECT_EQ(first.faultOutcome, second.faultOutcome);
    EXPECT_EQ(first.worker.retired, second.worker.retired);
    EXPECT_EQ(first.worker.faultsInjected, second.worker.faultsInjected);
    EXPECT_EQ(first.worker.faultRecoveries,
              second.worker.faultRecoveries);
}

TEST(FaultInjection, ForcedMispredictsAreRecovered)
{
    // Inverting predictions on a deep +P pipe provokes the flush and
    // recovery machinery; the architectural result must survive and
    // the per-PE counters must show injected faults being repaired.
    const FaultPlan plan = FaultPlan::parse("seed=3;mispredict:pe0@p0.5");
    const Workload workload = makeGcd(WorkloadSizes::small());

    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const WorkloadRun run = runCycle(workload, kDeepP, options);
    EXPECT_TRUE(run.ok()) << run.checkError;
    EXPECT_GT(run.worker.faultsInjected, 0u);
    EXPECT_GT(run.worker.faultRecoveries, 0u);
    EXPECT_EQ(run.faultOutcome, FaultOutcome::Recovered);

    // The same workload, clean, is strictly faster.
    const WorkloadRun clean = runCycle(workload, kDeepP);
    EXPECT_TRUE(clean.ok());
    EXPECT_GT(run.totalCycles, clean.totalCycles);
}

TEST(FaultInjection, MemorySpikesSlowButDoNotCorrupt)
{
    // Read-latency spikes delay tokens without changing them: the run
    // is slower but the memory image still validates (Masked).
    const FaultPlan plan =
        FaultPlan::parse("seed=9;memspike:rp0@p1,extra=32");
    const Workload workload = makeGcd(WorkloadSizes::small());

    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const WorkloadRun injected = runCycle(workload, kUarch, options);
    const WorkloadRun clean = runCycle(workload, kUarch);

    EXPECT_TRUE(clean.ok());
    EXPECT_TRUE(injected.ok()) << injected.checkError;
    EXPECT_EQ(injected.faultOutcome, FaultOutcome::Masked);
    EXPECT_GT(injected.faultStats.totalFired(), 0u);
    EXPECT_GT(injected.totalCycles, clean.totalCycles);
}

TEST(FaultInjection, DroppedWorkloadTokensAreReportedHung)
{
    // Dropping a workload's internal traffic leaves it unable to
    // finish; with the cross-check enabled that classifies as Hung,
    // and the hang report explains how the run ended.
    const FaultPlan plan = FaultPlan::parse("seed=5;drop:ch0@p1");
    const Workload workload = makeStream(WorkloadSizes::small());

    CycleRunOptions options;
    options.maxCycles = 200'000;
    options.quiescenceWindow = 1'000;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const WorkloadRun run = runCycle(workload, kUarch, options);
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(run.faultOutcome, FaultOutcome::Hung);
    EXPECT_NE(run.status, RunStatus::Halted);
    EXPECT_FALSE(run.hang.summary.empty());
}

} // namespace
} // namespace tia
