/**
 * @file
 * PerfCounters / CpiStack arithmetic tests.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "uarch/counters.hh"

namespace tia {
namespace {

PerfCounters
sample()
{
    PerfCounters c;
    c.cycles = 100;
    c.retired = 50;
    c.quashed = 5;
    c.predicateHazard = 20;
    c.dataHazard = 10;
    c.forbidden = 5;
    c.noTrigger = 10;
    c.predicateWrites = 10;
    c.predictions = 8;
    c.mispredictions = 2;
    return c;
}

TEST(Counters, CpiAndRates)
{
    const PerfCounters c = sample();
    EXPECT_DOUBLE_EQ(c.cpi(), 2.0);
    EXPECT_DOUBLE_EQ(c.predicateWriteRate(), 0.2);
    EXPECT_DOUBLE_EQ(c.predictionAccuracy(), 0.75);
}

TEST(Counters, ZeroRetiredCpiIsNan)
{
    // A PE that retired nothing has no CPI; reporting 0.0 (a perfect
    // score) silently skewed averages and tables. NaN propagates and
    // formats as "-".
    PerfCounters c;
    c.cycles = 10;
    EXPECT_TRUE(std::isnan(c.cpi()));
    EXPECT_DOUBLE_EQ(c.predicateWriteRate(), 0.0);
    EXPECT_DOUBLE_EQ(c.predictionAccuracy(), 1.0);
    const CpiStack stack = cpiStack(c);
    EXPECT_DOUBLE_EQ(stack.total(), 0.0);
}

TEST(Counters, StackDivideByZeroYieldsNan)
{
    // Averaging an empty workload set must not fabricate a 0-CPI
    // stack; every component goes NaN instead.
    CpiStack empty;
    empty /= 0.0;
    EXPECT_TRUE(std::isnan(empty.retired));
    EXPECT_TRUE(std::isnan(empty.quashed));
    EXPECT_TRUE(std::isnan(empty.predicateHazard));
    EXPECT_TRUE(std::isnan(empty.dataHazard));
    EXPECT_TRUE(std::isnan(empty.forbidden));
    EXPECT_TRUE(std::isnan(empty.noTrigger));
    EXPECT_TRUE(std::isnan(empty.total()));
}

TEST(Counters, FormatCpiRendersNonFiniteAsDash)
{
    EXPECT_EQ(formatCpi(2.0), "2.000");
    EXPECT_EQ(formatCpi(1.2345, 2), "1.23");
    EXPECT_EQ(formatCpi(std::numeric_limits<double>::quiet_NaN()), "-");
    EXPECT_EQ(formatCpi(std::numeric_limits<double>::infinity()), "-");
    PerfCounters c;
    c.cycles = 10;
    EXPECT_EQ(formatCpi(c.cpi()), "-");
}

TEST(Counters, StackNormalizesByRetired)
{
    const CpiStack stack = cpiStack(sample());
    EXPECT_DOUBLE_EQ(stack.retired, 1.0);
    EXPECT_DOUBLE_EQ(stack.quashed, 0.1);
    EXPECT_DOUBLE_EQ(stack.predicateHazard, 0.4);
    EXPECT_DOUBLE_EQ(stack.dataHazard, 0.2);
    EXPECT_DOUBLE_EQ(stack.forbidden, 0.1);
    EXPECT_DOUBLE_EQ(stack.noTrigger, 0.2);
    EXPECT_DOUBLE_EQ(stack.total(), 2.0); // == CPI
}

TEST(Counters, AccumulateAndAverage)
{
    PerfCounters total;
    total += sample();
    total += sample();
    EXPECT_EQ(total.cycles, 200u);
    EXPECT_EQ(total.retired, 100u);
    EXPECT_DOUBLE_EQ(total.cpi(), 2.0);

    CpiStack avg;
    avg += cpiStack(sample());
    avg += cpiStack(sample());
    avg /= 2.0;
    EXPECT_DOUBLE_EQ(avg.total(), 2.0);
    EXPECT_DOUBLE_EQ(avg.retired, 1.0);
}

} // namespace
} // namespace tia
