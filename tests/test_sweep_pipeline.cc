/**
 * @file
 * The streaming sweep pipeline (exec/pipeline.hh) and its satellites:
 * in-order sink delivery, bit-identity of the streamed CPI matrix vs
 * the flat SweepEngine::map barrier across jobs counts (clean and
 * fault-injected), fail-fast cancellation of sibling tasks on the
 * first exception, mid-pipeline StopToken cancellation (every slot
 * Cancelled-or-filled, nothing cached), the incremental Pareto
 * frontier vs the batch algorithm (including --incremental early
 * exit), StopToken::anyOf merging, ThreadPool::parseJobs validation,
 * the SimCache dirty-skip, and the NaN-serializes-as-null pin.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/digest.hh"
#include "cache/simcache.hh"
#include "core/logging.hh"
#include "exec/pipeline.hh"
#include "exec/stop_token.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "obs/json.hh"
#include "sim/fault.hh"
#include "vlsi/dse.hh"
#include "vlsi/pareto.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace tia;

// ---------------------------------------------------------------------
// SweepPipeline mechanics.

TEST(SweepPipeline, SinkSeesEveryResultInIndexOrder)
{
    const SweepPipeline pipeline(4);
    std::size_t expected = 0;
    const PipelineResult result = pipeline.run(
        1000, [](std::size_t i) { return i * i; },
        [&](std::size_t i, std::size_t &&value) {
            EXPECT_EQ(i, expected) << "sink delivered out of order";
            EXPECT_EQ(value, i * i);
            ++expected;
        });
    EXPECT_EQ(expected, 1000u);
    EXPECT_EQ(result.generated, 1000u);
    EXPECT_EQ(result.sunk, 1000u);
    EXPECT_FALSE(result.stoppedEarly);
    EXPECT_EQ(result.jobs, 4u);
}

TEST(SweepPipeline, SerialPathMatchesParallel)
{
    auto fn = [](std::size_t i) { return 3 * i + 7; };
    std::vector<std::size_t> serial, parallel;
    SweepPipeline(1).run(257, fn, [&](std::size_t, std::size_t &&v) {
        serial.push_back(v);
    });
    SweepPipeline(8).run(257, fn, [&](std::size_t, std::size_t &&v) {
        parallel.push_back(v);
    });
    EXPECT_EQ(serial, parallel);
}

TEST(SweepPipeline, UsesNoMoreJobsThanTasks)
{
    const PipelineResult result = SweepPipeline(16).run(
        3, [](std::size_t i) { return i; },
        [](std::size_t, std::size_t &&) {});
    EXPECT_EQ(result.jobs, 3u);
}

TEST(SweepPipeline, RethrowsTaskExceptionAndStopsSinking)
{
    const SweepPipeline pipeline(4);
    std::size_t sunk = 0;
    try {
        pipeline.run(
            100,
            [](std::size_t i) -> int {
                if (i == 17 || i == 80)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
                return 0;
            },
            [&](std::size_t i, int &&) {
                EXPECT_LT(i, 17u)
                    << "sank a result past the first failure";
                ++sunk;
            });
        FAIL() << "run() swallowed the task exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "task 17");
    }
    EXPECT_LE(sunk, 17u);
}

TEST(SweepPipeline, TaskFailureCancelsTokenAwareSiblings)
{
    // Token-aware siblings park on the fail-fast token; if the first
    // exception did not fire it, they would spin out the full 5 s
    // deadline and the test would time out instead of finishing fast.
    const SweepPipeline pipeline(4);
    std::atomic<unsigned> cancelled{0};
    try {
        pipeline.run(
            8,
            [&](std::size_t i, StopToken cancel) -> int {
                if (i == 0)
                    throw std::runtime_error("boom");
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
                while (!cancel.stopRequested()) {
                    if (std::chrono::steady_clock::now() > deadline)
                        return 0; // not cancelled: fail below
                    std::this_thread::yield();
                }
                cancelled.fetch_add(1);
                return 1;
            },
            [](std::size_t, int &&) {});
        FAIL() << "run() swallowed the task exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "boom");
    }
    EXPECT_GT(cancelled.load(), 0u)
        << "no sibling observed the fail-fast token";
}

TEST(SweepPipeline, SinkExceptionFailsTheRunFast)
{
    const SweepPipeline pipeline(4);
    try {
        pipeline.run(
            100, [](std::size_t i) { return i; },
            [](std::size_t i, std::size_t &&) {
                if (i == 3)
                    throw std::runtime_error("sink 3");
            });
        FAIL() << "run() swallowed the sink exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "sink 3");
    }
}

TEST(SweepPipeline, GeneratorStopDeliversAContiguousPrefix)
{
    StopSource stop;
    std::size_t next = 0;
    const PipelineResult result = SweepPipeline(4).run(
        10'000, [](std::size_t i) { return i; },
        [&](std::size_t i, std::size_t &&) {
            EXPECT_EQ(i, next);
            ++next;
            if (next == 20)
                stop.requestStop();
        },
        stop.token());
    EXPECT_TRUE(result.stoppedEarly);
    EXPECT_EQ(result.sunk, next);
    // Everything generated before the stop was observed is still
    // simulated and sunk: no gaps, no dropped in-flight work.
    EXPECT_EQ(result.generated, result.sunk);
    EXPECT_GE(result.sunk, 20u);
    EXPECT_LT(result.sunk, 10'000u);
}

// ---------------------------------------------------------------------
// SweepEngine fail-fast (satellite bugfix).

TEST(SweepEngineFailFast, TaskFailureCancelsTokenAwareSiblings)
{
    const SweepEngine engine(4);
    std::atomic<unsigned> cancelled{0};
    try {
        engine.map(8, [&](std::size_t i, StopToken cancel) -> int {
            if (i == 0)
                throw std::runtime_error("boom");
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::seconds(5);
            while (!cancel.stopRequested()) {
                if (std::chrono::steady_clock::now() > deadline)
                    return 0;
                std::this_thread::yield();
            }
            cancelled.fetch_add(1);
            return 1;
        });
        FAIL() << "map() swallowed the task exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "boom");
    }
    EXPECT_GT(cancelled.load(), 0u);
}

TEST(SweepEngineFailFast, QueuedTokenlessTasksAreSkipped)
{
    // 2 workers, 64 tasks: task 0 throws immediately, so most of the
    // queued token-less siblings must be skipped, not run.
    const SweepEngine engine(2);
    std::atomic<unsigned> ran{0};
    EXPECT_THROW(engine.map(64,
                            [&](std::size_t i) -> int {
                                if (i == 0)
                                    throw std::runtime_error("boom");
                                std::this_thread::sleep_for(
                                    std::chrono::milliseconds(1));
                                ran.fetch_add(1);
                                return 0;
                            }),
                 std::runtime_error);
    EXPECT_LT(ran.load(), 63u)
        << "every queued sibling still ran to completion";
}

TEST(SweepEngineFailFast, SerialJobsStillThrowImmediately)
{
    const SweepEngine engine(1);
    unsigned ran = 0;
    EXPECT_THROW(engine.map(10,
                            [&](std::size_t i) -> int {
                                ++ran;
                                if (i == 3)
                                    throw std::runtime_error("boom");
                                return 0;
                            }),
                 std::runtime_error);
    EXPECT_EQ(ran, 4u);
}

// ---------------------------------------------------------------------
// StopToken::anyOf.

TEST(StopTokenAnyOf, FiresWhenEitherInputFires)
{
    StopSource a, b;
    const StopToken merged = StopToken::anyOf(a.token(), b.token());
    EXPECT_TRUE(merged.possible());
    EXPECT_FALSE(merged.stopRequested());
    b.requestStop();
    EXPECT_TRUE(merged.stopRequested());
    EXPECT_STREQ(merged.why(), "stop requested");
}

TEST(StopTokenAnyOf, DetachedInputsCollapse)
{
    StopSource a;
    const StopToken left = StopToken::anyOf(a.token(), StopToken{});
    const StopToken right = StopToken::anyOf(StopToken{}, a.token());
    const StopToken none = StopToken::anyOf(StopToken{}, StopToken{});
    EXPECT_FALSE(none.possible());
    EXPECT_FALSE(left.stopRequested());
    a.requestStop();
    EXPECT_TRUE(left.stopRequested());
    EXPECT_TRUE(right.stopRequested());
}

TEST(StopTokenAnyOf, PropagatesDeadlineWhy)
{
    StopSource deadline;
    deadline.setDeadline(std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1));
    StopSource other;
    const StopToken merged =
        StopToken::anyOf(other.token(), deadline.token());
    EXPECT_TRUE(merged.stopRequested());
    EXPECT_STREQ(merged.why(), "deadline expired");
}

// ---------------------------------------------------------------------
// Streamed CPI matrix vs the flat barrier: bit-identity.

std::vector<PeConfig>
matrixConfigs()
{
    return {
        PeConfig{PipelineShape{false, false, false}, false, false},
        PeConfig{PipelineShape{true, false, false}, true, true},
        PeConfig{PipelineShape{true, true, true}, true, true},
    };
}

void
expectMatricesIdentical(const CycleMatrix &a, const CycleMatrix &b,
                        const std::string &what)
{
    ASSERT_EQ(a.runs.size(), b.runs.size()) << what;
    EXPECT_EQ(a.numConfigs, b.numConfigs) << what;
    EXPECT_EQ(a.numWorkloads, b.numWorkloads) << what;
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        // WorkloadRun has field-wise operator==; bit-identity of every
        // counter is the determinism contract.
        EXPECT_TRUE(a.runs[i] == b.runs[i]) << what << " cell " << i;
    }
}

TEST(StreamedMatrix, BitIdenticalToFlatAcrossJobsCounts)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = matrixConfigs();

    const CycleMatrix flat = runCycleMatrixFlat(suite, configs, {}, 1);
    for (unsigned jobs : {1u, 2u, 8u}) {
        std::size_t cells = 0;
        std::size_t expect = 0;
        const CycleMatrix streamed = runCycleMatrixStreamed(
            suite, configs, {}, jobs,
            [&](std::size_t c, std::size_t w, const WorkloadRun &run) {
                // Row-major in-order delivery, and the sink sees the
                // same run object the matrix retains.
                EXPECT_EQ(c * suite.size() + w, expect);
                ++expect;
                EXPECT_TRUE(run == flat.run(c, w));
                ++cells;
            });
        expectMatricesIdentical(flat, streamed,
                                "jobs=" + std::to_string(jobs));
        EXPECT_EQ(cells, flat.runs.size());
    }
}

TEST(StreamedMatrix, BitIdenticalToFlatUnderFaultInjection)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=99;drop:ch0@p0.05;corrupt:ch0@p0.02,mask=0x4;"
        "mispredict:pe0@p0.1");
    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = matrixConfigs();

    const CycleMatrix flat =
        runCycleMatrixFlat(suite, configs, options, 4);
    const CycleMatrix streamed = runCycleMatrixStreamed(
        suite, configs, options, 4, CycleMatrixSink{});
    expectMatricesIdentical(flat, streamed, "fault-injected");

    bool any_fired = false;
    for (const WorkloadRun &run : flat.runs)
        any_fired = any_fired || run.faultStats.totalFired() > 0;
    EXPECT_TRUE(any_fired) << "the plan never fired; the test is vacuous";
}

TEST(StreamedMatrix, MidSweepCancellationFillsEverySlotAndCachesNothing)
{
    // jobs = 1 makes the schedule deterministic: the sink fires the
    // caller's stop source after the first cell, so cell 0 completes
    // (and is cached) and every later cell returns Cancelled at its
    // first stop poll — and must never be cached.
    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = matrixConfigs();

    SimCache cache;
    StopSource stop;
    CycleRunOptions options;
    options.cache = &cache;
    options.stop = stop.token();

    const CycleMatrix matrix = runCycleMatrixStreamed(
        suite, configs, options, 1,
        [&](std::size_t c, std::size_t w, const WorkloadRun &) {
            if (c == 0 && w == 0)
                stop.requestStop();
        });

    ASSERT_EQ(matrix.runs.size(), suite.size() * configs.size());
    std::size_t completed = 0;
    for (std::size_t i = 0; i < matrix.runs.size(); ++i) {
        const RunStatus status = matrix.runs[i].status;
        if (i == 0) {
            EXPECT_NE(status, RunStatus::Cancelled);
            ++completed;
        } else {
            EXPECT_EQ(status, RunStatus::Cancelled)
                << "cell " << i << " ran to completion after the stop";
        }
    }
    // Cancelled runs are never cached: only the completed cell is
    // resident.
    EXPECT_EQ(cache.size(), completed);
}

// ---------------------------------------------------------------------
// Incremental Pareto frontier.

void
expectSameFrontier(const std::vector<DesignPoint> &batch,
                   const std::vector<DesignPoint> &incremental,
                   const std::string &what)
{
    ASSERT_EQ(batch.size(), incremental.size()) << what;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i].nsPerInstruction,
                  incremental[i].nsPerInstruction)
            << what << " point " << i;
        EXPECT_EQ(batch[i].pjPerInstruction,
                  incremental[i].pjPerInstruction)
            << what << " point " << i;
        EXPECT_EQ(batch[i].config, incremental[i].config)
            << what << " point " << i;
    }
}

TEST(IncrementalPareto, MatchesBatchOnRandomPoints)
{
    std::mt19937 rng(12345);
    std::uniform_real_distribution<double> dist(0.1, 100.0);
    std::vector<DesignPoint> points(2000);
    for (DesignPoint &p : points) {
        p.nsPerInstruction = dist(rng);
        p.pjPerInstruction = dist(rng);
    }

    IncrementalPareto pareto;
    for (const DesignPoint &p : points)
        pareto.add(p);

    const auto batch = DesignSpace::paretoFrontier(points);
    expectSameFrontier(batch, pareto.frontier(), "random");
    EXPECT_EQ(pareto.pointsSeen(), points.size());
    EXPECT_GE(pareto.updates(), pareto.frontier().size());
}

TEST(IncrementalPareto, WeakDominanceRejectsTies)
{
    auto point = [](double ns, double pj) {
        DesignPoint p;
        p.nsPerInstruction = ns;
        p.pjPerInstruction = pj;
        return p;
    };
    IncrementalPareto pareto;
    EXPECT_TRUE(pareto.add(point(2.0, 5.0)));
    EXPECT_FALSE(pareto.add(point(2.0, 5.0))); // exact duplicate
    EXPECT_FALSE(pareto.add(point(3.0, 5.0))); // dominated (equal pj)
    EXPECT_TRUE(pareto.add(point(2.0, 4.0)));  // evicts equal-ns worse
    ASSERT_EQ(pareto.size(), 1u);
    EXPECT_EQ(pareto.frontier()[0].pjPerInstruction, 4.0);
    EXPECT_TRUE(pareto.add(point(1.0, 9.0)));  // faster, pricier
    EXPECT_TRUE(pareto.add(point(0.5, 3.0)));  // dominates everything
    ASSERT_EQ(pareto.size(), 1u);
    EXPECT_EQ(pareto.frontier()[0].nsPerInstruction, 0.5);
    EXPECT_EQ(pareto.evictions(), 3u);
}

TEST(IncrementalPareto, StreamedDseMatchesBatchFrontier)
{
    CpiTable table;
    for (const PeConfig &config : allConfigs())
        table[config.name()] = 1.5;
    const DesignSpace dse(std::move(table));

    const auto points = dse.enumerateParallel(4);
    const auto batch = DesignSpace::paretoFrontier(points);

    const DseStreamResult stream = dse.enumerateStreamed(4);
    EXPECT_FALSE(stream.earlyExit);
    EXPECT_EQ(stream.shardsCompleted, stream.shardsTotal);
    ASSERT_EQ(stream.points.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].nsPerInstruction,
                  stream.points[i].nsPerInstruction)
            << i;
        EXPECT_EQ(points[i].pjPerInstruction,
                  stream.points[i].pjPerInstruction)
            << i;
    }
    expectSameFrontier(batch, stream.frontier, "full DSE");
}

TEST(IncrementalPareto, EarlyExitReproducesTheFullRunFrontier)
{
    CpiTable table;
    for (const PeConfig &config : allConfigs())
        table[config.name()] = 1.5;
    const DesignSpace dse(std::move(table));

    // Reference: the full run, plus the positions (in points) where
    // the frontier last changed, to derive a window that is safe by
    // construction: one larger than the largest gap between
    // consecutive frontier changes.
    const DseStreamResult full = dse.enumerateStreamed(4);
    IncrementalPareto replay;
    std::size_t lastChange = 0;
    std::size_t maxGap = 0;
    for (std::size_t i = 0; i < full.points.size(); ++i) {
        if (replay.add(full.points[i])) {
            maxGap = std::max(maxGap, i - lastChange);
            lastChange = i;
        }
    }
    const std::size_t tail = full.points.size() - 1 - lastChange;
    const std::size_t window = maxGap + 1;
    ASSERT_GT(tail, window)
        << "the DSE's frontier stabilizes too late for an early-exit "
           "test; pick a different grid";

    DseStreamOptions options;
    options.stableWindow = window;
    std::size_t updates = 0;
    options.onFrontierUpdate =
        [&](std::size_t, const std::vector<DesignPoint> &) {
            ++updates;
        };
    const DseStreamResult early =
        dse.enumerateStreamed(4, allConfigs(), options);

    EXPECT_TRUE(early.earlyExit);
    EXPECT_LT(early.points.size(), full.points.size());
    EXPECT_LT(early.shardsCompleted, early.shardsTotal);
    EXPECT_GT(updates, 0u);
    expectSameFrontier(full.frontier, early.frontier, "early-exit");
}

// ---------------------------------------------------------------------
// --jobs parsing and clamping (satellite bugfix).

TEST(ParseJobs, ResolvesAutoAndPlainValues)
{
    EXPECT_EQ(ThreadPool::parseJobs("0"),
              ThreadPool::defaultConcurrency());
    EXPECT_EQ(ThreadPool::parseJobs("1"), 1u);
    EXPECT_EQ(ThreadPool::parseJobs("4"), 4u);
}

TEST(ParseJobs, ClampsAbsurdValues)
{
    const unsigned limit = ThreadPool::maxReasonableJobs();
    EXPECT_GE(limit, 64u);
    EXPECT_GE(limit, ThreadPool::defaultConcurrency());
    EXPECT_EQ(ThreadPool::parseJobs("999999"), limit);
    // Values past unsigned long range clamp too instead of throwing
    // std::out_of_range out of the CLI.
    EXPECT_EQ(ThreadPool::parseJobs("99999999999999999999999999"),
              limit);
    EXPECT_EQ(ThreadPool::parseJobs(std::to_string(limit)), limit);
}

TEST(ParseJobs, RejectsMalformedText)
{
    EXPECT_THROW(ThreadPool::parseJobs(""), FatalError);
    EXPECT_THROW(ThreadPool::parseJobs("abc"), FatalError);
    EXPECT_THROW(ThreadPool::parseJobs("-1"), FatalError);
    EXPECT_THROW(ThreadPool::parseJobs("4x"), FatalError);
    EXPECT_THROW(ThreadPool::parseJobs("1.5"), FatalError);
}

// ---------------------------------------------------------------------
// Non-finite floats serialize as null (satellite audit pin).

TEST(JsonNonFinite, JsonValueSerializesNonFiniteAsNull)
{
    JsonValue object = JsonValue::object();
    object["nan"] = std::numeric_limits<double>::quiet_NaN();
    object["inf"] = std::numeric_limits<double>::infinity();
    object["neg"] = -std::numeric_limits<double>::infinity();
    object["ok"] = 1.5;
    const std::string text = object.dump();
    EXPECT_NE(text.find("\"nan\": null"), std::string::npos) << text;
    EXPECT_NE(text.find("\"inf\": null"), std::string::npos) << text;
    EXPECT_NE(text.find("\"neg\": null"), std::string::npos) << text;
    EXPECT_EQ(text.find("nan,"), std::string::npos) << text;
    EXPECT_EQ(text.find("inf,"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// SimCache dirty-skip.

class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

TEST(SimCacheDirtySkip, UnchangedCacheSkipsTheRewrite)
{
    TempFile file("dirty_skip.tiasimc");
    SimCache cache;
    cache.put(digest128("a"), "alpha");
    ASSERT_TRUE(cache.save(file.path(), nullptr));

    // Scribble over the file out-of-band: a skipped save leaves the
    // scribble in place, a rewrite would restore the real contents.
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << "scribble";
    }
    ASSERT_TRUE(cache.save(file.path(), nullptr));
    EXPECT_EQ(fileBytes(file.path()), "scribble")
        << "save() rewrote a clean cache";

    // A mutation dirties the cache and the next save really writes.
    cache.put(digest128("b"), "beta");
    ASSERT_TRUE(cache.save(file.path(), nullptr));
    EXPECT_NE(fileBytes(file.path()), "scribble");

    SimCache reloaded;
    ASSERT_TRUE(reloaded.load(file.path(), nullptr));
    EXPECT_EQ(reloaded.size(), 2u);
}

TEST(SimCacheDirtySkip, CleanLoadIntoEmptyCacheSkipsSaveBack)
{
    TempFile file("dirty_skip_load.tiasimc");
    {
        SimCache seed;
        seed.put(digest128("a"), "alpha");
        ASSERT_TRUE(seed.save(file.path(), nullptr));
    }
    const std::string original = fileBytes(file.path());

    // A fully warm run: load, only hits, save back — must not rewrite.
    SimCache warm;
    ASSERT_TRUE(warm.load(file.path(), nullptr));
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << "scribble";
    }
    ASSERT_TRUE(warm.save(file.path(), nullptr));
    EXPECT_EQ(fileBytes(file.path()), "scribble")
        << "a clean loaded cache still rewrote its file";

    // Saving to a different path is never skipped.
    TempFile other("dirty_skip_other.tiasimc");
    ASSERT_TRUE(warm.save(other.path(), nullptr));
    EXPECT_EQ(fileBytes(other.path()), original);
}

TEST(SimCacheDirtySkip, EraseDirtiesTheCache)
{
    TempFile file("dirty_skip_erase.tiasimc");
    SimCache cache;
    cache.put(digest128("a"), "alpha");
    cache.put(digest128("b"), "beta");
    ASSERT_TRUE(cache.save(file.path(), nullptr));
    cache.erase(digest128("a"));
    ASSERT_TRUE(cache.save(file.path(), nullptr));
    SimCache reloaded;
    ASSERT_TRUE(reloaded.load(file.path(), nullptr));
    EXPECT_EQ(reloaded.size(), 1u);
}

} // namespace
