/**
 * @file
 * Tests for the 42-operation integer operation set.
 */

#include <gtest/gtest.h>

#include "core/opcode.hh"
#include "core/params.hh"

namespace tia {
namespace {

TEST(Opcode, CountMatchesTable1)
{
    EXPECT_EQ(kNumOps, 42u);
    EXPECT_EQ(kNumOps, ArchParams{}.numOps);
}

TEST(Opcode, MnemonicRoundTrip)
{
    for (unsigned i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        const auto looked_up = opFromMnemonic(opInfo(op).mnemonic);
        ASSERT_TRUE(looked_up.has_value()) << opInfo(op).mnemonic;
        EXPECT_EQ(*looked_up, op);
    }
    EXPECT_FALSE(opFromMnemonic("div").has_value());
    EXPECT_FALSE(opFromMnemonic("").has_value());
}

TEST(Opcode, Arithmetic)
{
    EXPECT_EQ(evalAlu(Op::Add, 2, 3), 5u);
    EXPECT_EQ(evalAlu(Op::Add, 0xffffffffu, 1), 0u); // wraparound
    EXPECT_EQ(evalAlu(Op::Sub, 3, 5), 0xfffffffeu);
    EXPECT_EQ(evalAlu(Op::Neg, 1, 0), 0xffffffffu);
    EXPECT_EQ(evalAlu(Op::Mov, 42, 99), 42u);
    EXPECT_EQ(evalAlu(Op::Nop, 7, 8), 0u);
}

TEST(Opcode, TwoWordMultiplication)
{
    // Section 2.2: "the lengthiest of these being two-word product
    // integer multiplication".
    EXPECT_EQ(evalAlu(Op::Mul, 0x10000u, 0x10000u), 0u);
    EXPECT_EQ(evalAlu(Op::Mulhu, 0x10000u, 0x10000u), 1u);
    EXPECT_EQ(evalAlu(Op::Mul, 7, 6), 42u);
    // Signed high product: (-1) * (-1) = 1 → high word 0.
    EXPECT_EQ(evalAlu(Op::Mulhs, 0xffffffffu, 0xffffffffu), 0u);
    // Unsigned high product of the same bits is large.
    EXPECT_EQ(evalAlu(Op::Mulhu, 0xffffffffu, 0xffffffffu), 0xfffffffeu);
    // (-2) * 3 = -6 → high word all ones.
    EXPECT_EQ(evalAlu(Op::Mulhs, 0xfffffffeu, 3), 0xffffffffu);
}

TEST(Opcode, Logic)
{
    EXPECT_EQ(evalAlu(Op::And, 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(evalAlu(Op::Or, 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(evalAlu(Op::Xor, 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(evalAlu(Op::Not, 0, 0), 0xffffffffu);
    EXPECT_EQ(evalAlu(Op::Nand, 0b1100, 0b1010), ~0b1000u);
    EXPECT_EQ(evalAlu(Op::Nor, 0b1100, 0b1010), ~0b1110u);
    EXPECT_EQ(evalAlu(Op::Xnor, 0b1100, 0b1010), ~0b0110u);
}

TEST(Opcode, ShiftsAndRotates)
{
    EXPECT_EQ(evalAlu(Op::Sll, 1, 4), 16u);
    EXPECT_EQ(evalAlu(Op::Srl, 0x80000000u, 31), 1u);
    EXPECT_EQ(evalAlu(Op::Sra, 0x80000000u, 31), 0xffffffffu);
    EXPECT_EQ(evalAlu(Op::Rol, 0x80000001u, 1), 3u);
    EXPECT_EQ(evalAlu(Op::Ror, 3, 1), 0x80000001u);
    // Shift amounts are modulo 32.
    EXPECT_EQ(evalAlu(Op::Sll, 1, 33), 2u);
}

TEST(Opcode, ComparisonsAreBoolean)
{
    EXPECT_EQ(evalAlu(Op::Eq, 4, 4), 1u);
    EXPECT_EQ(evalAlu(Op::Eq, 4, 5), 0u);
    EXPECT_EQ(evalAlu(Op::Ne, 4, 5), 1u);
    // Signed vs unsigned disagreement on negative values.
    EXPECT_EQ(evalAlu(Op::Slt, 0xffffffffu, 0), 1u); // -1 < 0 signed
    EXPECT_EQ(evalAlu(Op::Ult, 0xffffffffu, 0), 0u); // huge > 0 unsigned
    EXPECT_EQ(evalAlu(Op::Sle, 5, 5), 1u);
    EXPECT_EQ(evalAlu(Op::Sgt, 6, 5), 1u);
    EXPECT_EQ(evalAlu(Op::Sge, 5, 5), 1u);
    EXPECT_EQ(evalAlu(Op::Ule, 5, 5), 1u);
    EXPECT_EQ(evalAlu(Op::Ugt, 6, 5), 1u);
    EXPECT_EQ(evalAlu(Op::Uge, 5, 6), 0u);
}

TEST(Opcode, BitManipulation)
{
    // Section 2.2 calls out clz and ctz explicitly.
    EXPECT_EQ(evalAlu(Op::Clz, 0, 0), 32u);
    EXPECT_EQ(evalAlu(Op::Clz, 1, 0), 31u);
    EXPECT_EQ(evalAlu(Op::Clz, 0x80000000u, 0), 0u);
    EXPECT_EQ(evalAlu(Op::Ctz, 0, 0), 32u);
    EXPECT_EQ(evalAlu(Op::Ctz, 0x80000000u, 0), 31u);
    EXPECT_EQ(evalAlu(Op::Popc, 0xf0f0f0f0u, 0), 16u);
    EXPECT_EQ(evalAlu(Op::Brev, 0x80000000u, 0), 1u);
    EXPECT_EQ(evalAlu(Op::Brev, 0x00000001u, 0), 0x80000000u);
    EXPECT_EQ(evalAlu(Op::Bswap, 0x12345678u, 0), 0x78563412u);
}

TEST(Opcode, MinMax)
{
    EXPECT_EQ(evalAlu(Op::Min, 0xffffffffu, 1), 0xffffffffu); // -1 < 1
    EXPECT_EQ(evalAlu(Op::Umin, 0xffffffffu, 1), 1u);
    EXPECT_EQ(evalAlu(Op::Max, 0xffffffffu, 1), 1u);
    EXPECT_EQ(evalAlu(Op::Umax, 0xffffffffu, 1), 0xffffffffu);
}

TEST(Opcode, TraitsAreConsistent)
{
    unsigned comparisons = 0;
    for (unsigned i = 0; i < kNumOps; ++i) {
        const OpInfo &info = opInfo(static_cast<Op>(i));
        EXPECT_FALSE(info.mnemonic.empty());
        EXPECT_LE(info.numSrcs, 2u);
        if (info.isComparison) {
            ++comparisons;
            EXPECT_TRUE(info.hasResult);
        }
        if (info.isHalt || info.writesScratchpad)
            EXPECT_FALSE(info.hasResult && info.isHalt);
    }
    EXPECT_EQ(comparisons, 10u);
}

TEST(Opcode, NonPureOpsPanicInEvalAlu)
{
    EXPECT_ANY_THROW(evalAlu(Op::Lsw, 0, 0));
    EXPECT_ANY_THROW(evalAlu(Op::Ssw, 0, 0));
    EXPECT_ANY_THROW(evalAlu(Op::Halt, 0, 0));
}

} // namespace
} // namespace tia
