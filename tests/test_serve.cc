/**
 * @file
 * Torture and unit tests for the tia-serve service layer.
 *
 * The failure paths are the product here, so most of these tests
 * exercise the server under abuse: slow-loris clients trickling a
 * frame forever, clients that disconnect mid-request, quota
 * exhaustion, queue-full backpressure, drain under load, and a
 * SIGKILLed cache writer. The invariant every scenario checks is the
 * robustness contract from serve/server.hh: every admitted request
 * produces exactly one response, the counter identities hold in any
 * stats snapshot, and a hostile client never costs more than its own
 * connection.
 */

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/simcache.hh"
#include "exec/stop_token.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/token_bucket.hh"
#include "uarch/config.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace tia {
namespace {

using namespace std::chrono_literals;

// Unique short socket paths (sun_path caps out near 107 bytes, so the
// tests bind relative to the build directory cwd).
std::string
socketPath(const std::string &tag)
{
    static std::atomic<unsigned> next{0};
    const std::string path = "ts_" + tag + "_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(next++) + ".sock";
    std::remove(path.c_str());
    return path;
}

ServerOptions
baseOptions(const std::string &socket)
{
    ServerOptions opt;
    opt.unixPath = socket;
    opt.workers = 2;
    return opt;
}

JsonValue
simulateParams(const std::string &workload)
{
    JsonValue params = JsonValue::object();
    params["workload"] = workload;
    params["uarch"] = "TDX";
    params["sizes"] = "small";
    return params;
}

bool
waitFor(const std::function<bool()> &predicate, int budgetMs = 5000)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(budgetMs);
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(5ms);
    }
    return predicate();
}

/**
 * The accounting identities from serve/server.hh, checked against a
 * live counter snapshot. Valid at any moment, not just quiescence.
 */
void
expectCounterIdentities(const Server::Counters &c)
{
    const std::uint64_t shed =
        c.shedQueueFull + c.shedQuota + c.shedDraining;
    const std::uint64_t cancelled =
        c.cancelledDeadline + c.cancelledDisconnect;
    EXPECT_EQ(c.received, c.admitted + shed + c.rejected);
    EXPECT_EQ(c.admitted, c.completed + cancelled + c.failed +
                              c.active + c.queueDepth);
    EXPECT_LE(c.hangs, c.completed);
}

// ---------------------------------------------------------------------
// Frame codec.

struct SocketPair
{
    int fds[2] = {-1, -1};
    SocketPair()
    {
        EXPECT_EQ(
            ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    }
    ~SocketPair()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        if (fds[1] >= 0)
            ::close(fds[1]);
    }
};

TEST(Frame, RoundTripsPayloads)
{
    SocketPair pair;
    const std::string payloads[] = {"", "{}", std::string(100'000, 'x')};
    for (const std::string &payload : payloads) {
        ASSERT_TRUE(writeFrame(pair.fds[0], payload));
        const FrameResult got =
            readFrame(pair.fds[1], 1u << 20, 1000, 1000);
        ASSERT_EQ(got.status, FrameStatus::Ok);
        EXPECT_EQ(got.payload, payload);
    }
}

TEST(Frame, RejectsOversizeBeforeAllocating)
{
    SocketPair pair;
    // A 256 MiB length prefix against a 4 KiB limit: must be rejected
    // from the prefix alone, no allocation, no drain attempt.
    const std::uint32_t huge = 256u << 20;
    ASSERT_EQ(::write(pair.fds[0], &huge, 4), 4);
    const FrameResult got = readFrame(pair.fds[1], 4096, 1000, 1000);
    EXPECT_EQ(got.status, FrameStatus::TooLarge);
}

TEST(Frame, DistinguishesIdleTimeoutTruncation)
{
    {
        SocketPair pair;
        // Nothing sent: first-byte budget elapses -> Idle.
        EXPECT_EQ(readFrame(pair.fds[1], 4096, 30, 1000).status,
                  FrameStatus::Idle);
    }
    {
        SocketPair pair;
        // Two bytes of prefix then silence: slow-loris -> Timeout.
        ASSERT_EQ(::write(pair.fds[0], "\x08\x00", 2), 2);
        EXPECT_EQ(readFrame(pair.fds[1], 4096, 1000, 50).status,
                  FrameStatus::Timeout);
    }
    {
        SocketPair pair;
        // Prefix promises 8 bytes, close after 2 -> Truncated.
        const std::uint32_t len = 8;
        ASSERT_EQ(::write(pair.fds[0], &len, 4), 4);
        ASSERT_EQ(::write(pair.fds[0], "ab", 2), 2);
        ::close(pair.fds[0]);
        pair.fds[0] = -1;
        EXPECT_EQ(readFrame(pair.fds[1], 4096, 1000, 1000).status,
                  FrameStatus::Truncated);
    }
    {
        SocketPair pair;
        // Clean close at a frame boundary -> Eof.
        ::close(pair.fds[0]);
        pair.fds[0] = -1;
        EXPECT_EQ(readFrame(pair.fds[1], 4096, 1000, 1000).status,
                  FrameStatus::Eof);
    }
}

// ---------------------------------------------------------------------
// Protocol envelopes.

TEST(Protocol, RequestRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc["id"] = std::uint64_t{42};
    doc["method"] = "simulate";
    doc["client"] = "alice";
    doc["deadline_ms"] = std::uint64_t{250};
    doc["params"] = simulateParams("gcd");
    std::string error;
    const auto req = parseRequest(doc, &error);
    ASSERT_TRUE(req.has_value()) << error;
    EXPECT_EQ(req->id, 42u);
    EXPECT_EQ(req->method, "simulate");
    EXPECT_EQ(req->client, "alice");
    EXPECT_EQ(req->deadlineMs, 250u);
}

TEST(Protocol, ErrorCodesRoundTrip)
{
    for (ServeError error :
         {ServeError::BadRequest, ServeError::RetryAfter,
          ServeError::Deadline, ServeError::Hang,
          ServeError::ShuttingDown, ServeError::Internal}) {
        EXPECT_EQ(parseServeErrorCode(serveErrorCode(error)), error);
    }
    EXPECT_EQ(parseServeErrorCode("no_such_code"), ServeError::None);
}

TEST(Protocol, ErrorResponseCarriesHintAndDetail)
{
    JsonValue detail = JsonValue::object();
    detail["classification"] = "livelock";
    const JsonValue wire = makeError(7, ServeError::RetryAfter,
                                     "queue full", 12,
                                     std::move(detail));
    std::string error;
    const auto resp = parseResponse(wire, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_EQ(resp->id, 7u);
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->error, ServeError::RetryAfter);
    EXPECT_TRUE(resp->retryable());
    EXPECT_EQ(resp->retryAfterMs, 12u);
    ASSERT_NE(resp->errorDetail.find("classification"), nullptr);
}

// ---------------------------------------------------------------------
// Admission building blocks (time-travel, no sleeping).

TEST(TokenBucketTest, RefillsAtSustainedRate)
{
    const auto t0 = TokenBucket::Clock::now();
    TokenBucket bucket(10.0, 2.0, t0); // 10/s sustained, burst 2
    std::uint64_t hint = 0;
    EXPECT_TRUE(bucket.tryAcquire(t0, &hint));
    EXPECT_TRUE(bucket.tryAcquire(t0, &hint));
    EXPECT_FALSE(bucket.tryAcquire(t0, &hint));
    // Empty bucket at 10/s: next token is ~100ms out, and the hint
    // must cover the full deficit (retrying at the hint succeeds).
    EXPECT_GE(hint, 100u);
    EXPECT_LE(hint, 110u);
    EXPECT_TRUE(bucket.tryAcquire(
        t0 + std::chrono::milliseconds(hint), nullptr));
    // Refill clamps at burst: a long sleep is still only 2 tokens.
    TokenBucket clamped(10.0, 2.0, t0);
    EXPECT_GT(clamped.tokens(t0 + 1h), 1.9);
    EXPECT_LT(clamped.tokens(t0 + 1h), 2.1);
}

TEST(TokenBucketTest, ZeroRateDisablesTheLimiter)
{
    const auto t0 = TokenBucket::Clock::now();
    TokenBucket bucket(0.0, 1.0, t0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(bucket.tryAcquire(t0, nullptr));
}

TEST(Backoff, JitterStaysInHalfOpenWindow)
{
    const BackoffPolicy policy;
    std::uint64_t rng = 0x1234abcdull;
    for (unsigned attempt = 0; attempt < 10; ++attempt) {
        // Un-jittered delay: base * mult^attempt, floored by the
        // server hint, capped at maxMs.
        double raw = static_cast<double>(policy.baseMs);
        for (unsigned i = 0; i < attempt; ++i)
            raw *= policy.multiplier;
        const std::uint64_t hint = 40;
        const std::uint64_t full = std::min<std::uint64_t>(
            std::max<std::uint64_t>(static_cast<std::uint64_t>(raw),
                                    hint),
            policy.maxMs);
        for (int trial = 0; trial < 32; ++trial) {
            const std::uint64_t delay =
                policy.delayMs(attempt, hint, rng);
            EXPECT_GE(delay, full / 2);
            EXPECT_LE(delay, full);
        }
    }
}

TEST(Backoff, DistinctSeedsDecorrelate)
{
    const BackoffPolicy policy;
    std::uint64_t rngA = 1, rngB = 2;
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (policy.delayMs(3, 0, rngA) == policy.delayMs(3, 0, rngB))
            ++same;
    }
    // Jitter over [d/2, d] on a 200ms window: two fleets colliding on
    // most draws would defeat the thundering-herd spreading.
    EXPECT_LT(same, 16);
}

// ---------------------------------------------------------------------
// Cooperative cancellation units.

TEST(Cancellation, PreFiredTokenReturnsWithoutSimulating)
{
    const Workload workload = makeGcd(WorkloadSizes::small());
    StopSource stop;
    stop.requestStop();
    CycleRunOptions options;
    options.stop = stop.token();
    const auto start = std::chrono::steady_clock::now();
    const WorkloadRun run = runCycle(workload, PeConfig{}, options);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(run.status, RunStatus::Cancelled);
    EXPECT_LT(elapsed, 1s); // O(1), not a full simulation budget
}

TEST(Cancellation, UnfiredTokenIsBitIdentical)
{
    const Workload workload = makeGcd(WorkloadSizes::small());
    StopSource stop;
    CycleRunOptions withToken;
    withToken.stop = stop.token();
    const WorkloadRun watched = runCycle(workload, PeConfig{}, withToken);
    const WorkloadRun plain =
        runCycle(workload, PeConfig{}, CycleRunOptions{});
    EXPECT_EQ(watched, plain);
    EXPECT_EQ(watched.status, RunStatus::Halted);
}

TEST(Cancellation, CancelledRunsAreNeverCached)
{
    SimCache cache;
    const Workload workload = makeGcd(WorkloadSizes::small());
    StopSource stop;
    stop.requestStop();
    CycleRunOptions options;
    options.cache = &cache;
    options.stop = stop.token();
    const WorkloadRun run = runCycle(workload, PeConfig{}, options);
    EXPECT_EQ(run.status, RunStatus::Cancelled);
    EXPECT_EQ(cache.size(), 0u);
    // The same request with a live token computes and caches.
    CycleRunOptions clean;
    clean.cache = &cache;
    EXPECT_EQ(runCycle(workload, PeConfig{}, clean).status,
              RunStatus::Halted);
    EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------
// In-process server: happy path, coalescing, metrics.

TEST(Serve, SimulateRoundTrip)
{
    const std::string socket = socketPath("basic");
    Server server(baseOptions(socket));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->setClient("t");
    const auto resp =
        client->call("simulate", simulateParams("gcd"), &error);
    ASSERT_TRUE(resp.has_value()) << error;
    ASSERT_TRUE(resp->ok) << resp->errorMessage;
    const JsonValue *status = resp->result.find("status");
    ASSERT_NE(status, nullptr);
    EXPECT_EQ(status->str(), "halted");
    ASSERT_NE(resp->result.find("analyses"), nullptr);

    // Unknown methods are typed bad_request, not dropped connections.
    const auto bad =
        client->call("no_such_method", JsonValue::object(), &error);
    ASSERT_TRUE(bad.has_value()) << error;
    EXPECT_EQ(bad->error, ServeError::BadRequest);
    // ... and the connection is still usable afterwards.
    const auto again =
        client->call("simulate", simulateParams("gcd"), &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_TRUE(again->ok);

    expectCounterIdentities(server.counters());
    server.hardStop();
}

TEST(Serve, MalformedJsonPoisonsOneFrameOnly)
{
    const std::string socket = socketPath("badjson");
    Server server(baseOptions(socket));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    // Raw garbage frame: framing stays in sync, so the server answers
    // with bad_request and keeps the connection.
    ASSERT_TRUE(writeFrame(client->fd(), "this is not json"));
    const FrameResult raw =
        readFrame(client->fd(), 1u << 20, 5000, 5000);
    ASSERT_EQ(raw.status, FrameStatus::Ok);
    EXPECT_NE(raw.payload.find("bad_request"), std::string::npos);
    // Next request on the same connection is served normally.
    const auto resp =
        client->call("simulate", simulateParams("gcd"), &error);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_TRUE(resp->ok);
    server.hardStop();
}

TEST(Serve, IdenticalRequestsCoalesceOntoOneSimulation)
{
    const std::string socket = socketPath("coalesce");
    ServerOptions opt = baseOptions(socket);
    opt.workers = 4;
    Server server(std::move(opt));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    constexpr int kClients = 4;
    std::atomic<int> okCount{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            std::string err;
            auto client = ServeClient::connectUnix(socket, &err);
            if (!client)
                return;
            client->setClient("c" + std::to_string(i));
            const auto resp =
                client->call("simulate", simulateParams("bst"), &err);
            if (resp && resp->ok)
                ++okCount;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(okCount.load(), kClients);

    // All four answered, but the cache saw one computation: the rest
    // were warm hits or coalesced onto the in-flight leader.
    const SimCache::Stats stats = server.cache().stats();
    EXPECT_EQ(stats.lookups, static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.coalesced + stats.misses,
              stats.lookups);
    expectCounterIdentities(server.counters());
    server.hardStop();
}

TEST(Serve, MetricsDocumentValidates)
{
    const std::string socket = socketPath("metrics");
    Server server(baseOptions(socket));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->call("simulate", simulateParams("gcd"), &error);
    client->call("stats", JsonValue::object(), &error);

    const std::vector<std::string> problems =
        validateMetricsDocument(server.metricsDocument());
    EXPECT_TRUE(problems.empty())
        << "first problem: " << (problems.empty() ? "" : problems[0]);
    server.hardStop();
}

// ---------------------------------------------------------------------
// Backpressure and quotas.

TEST(Serve, QuotaExhaustionShedsWithHonestHint)
{
    const std::string socket = socketPath("quota");
    ServerOptions opt = baseOptions(socket);
    opt.quotaRate = 5.0;
    opt.quotaBurst = 2.0;
    Server server(std::move(opt));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->setClient("greedy");
    // Burst past the bucket: some requests must come back retry_after
    // with a usable hint.
    int shed = 0;
    for (int i = 0; i < 6; ++i) {
        const auto resp =
            client->call("simulate", simulateParams("gcd"), &error);
        ASSERT_TRUE(resp.has_value()) << error;
        if (!resp->ok) {
            ASSERT_EQ(resp->error, ServeError::RetryAfter);
            EXPECT_GT(resp->retryAfterMs, 0u);
            ++shed;
        }
    }
    EXPECT_GT(shed, 0);
    const Server::Counters c = server.counters();
    EXPECT_EQ(c.shedQuota, static_cast<std::uint64_t>(shed));
    expectCounterIdentities(c);

    // callWithRetry honors the hint and eventually lands.
    unsigned retries = 0;
    const auto resp = client->callWithRetry(
        "simulate", simulateParams("gcd"), BackoffPolicy{}, &error,
        &retries);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_TRUE(resp->ok);
    server.hardStop();
}

TEST(Serve, QueueFullShedsInsteadOfBlocking)
{
    const std::string socket = socketPath("queuefull");
    ServerOptions opt = baseOptions(socket);
    opt.workers = 1;
    opt.queueCapacity = 1;
    Server server(std::move(opt));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Two spin requests: one occupies the only worker, one fills the
    // queue. Launched one at a time — the second must not race the
    // worker's dequeue of the first, or it would be shed instead of
    // queued. Their deadlines guarantee eventual cleanup; the huge
    // cycle budget guarantees the deadline (not the step limit) is
    // what ends them, however slow or fast the host is.
    JsonValue spin = simulateParams("spin");
    spin["cache"] = false;
    spin["max_cycles"] = std::uint64_t{4'000'000'000};
    std::vector<std::thread> pinned;
    auto launchPin = [&](int i) {
        pinned.emplace_back([&, i] {
            std::string err;
            auto client = ServeClient::connectUnix(socket, &err);
            if (!client)
                return;
            client->setClient("pin" + std::to_string(i));
            client->setDeadlineMs(3000);
            client->call("simulate", spin, &err);
        });
    };
    launchPin(0);
    const bool workerBusy =
        waitFor([&] { return server.counters().active == 1; });
    launchPin(1);
    const bool queueFull = waitFor([&] {
        const Server::Counters c = server.counters();
        return c.active == 1 && c.queueDepth == 1;
    });
    if (!workerBusy || !queueFull) {
        // Unwind the pinned threads before failing: hardStop cancels
        // their spins, so the joins cannot hang.
        server.hardStop();
        for (std::thread &t : pinned)
            t.join();
        FAIL() << "worker/queue never pinned (busy=" << workerBusy
               << ", queued=" << queueFull << ")";
    }

    // The third request must be shed promptly — a full queue is a
    // typed rejection, never a blocked connection thread.
    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->setClient("shed-me");
    const auto start = std::chrono::steady_clock::now();
    const auto resp =
        client->call("simulate", simulateParams("gcd"), &error);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_EQ(resp->error, ServeError::RetryAfter);
    EXPECT_LT(elapsed, 1s);
    Server::Counters c = server.counters();
    EXPECT_EQ(c.shedQueueFull, 1u);
    EXPECT_EQ(c.queueHighWater, 1u);
    expectCounterIdentities(c);

    for (std::thread &t : pinned)
        t.join();
    // Both pinned spins resolved via their deadline, cancelled
    // cooperatively inside the simulator. The counter bump can trail
    // the response delivery by a beat, so poll rather than assert.
    EXPECT_TRUE(waitFor(
        [&] { return server.counters().cancelledDeadline == 2; }));
    expectCounterIdentities(server.counters());
    server.hardStop();
}

TEST(Serve, DeadlineCancelsLivelockedSimulation)
{
    const std::string socket = socketPath("deadline");
    Server server(baseOptions(socket));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->setClient("t");
    client->setDeadlineMs(200);
    JsonValue spin = simulateParams("spin");
    spin["cache"] = false;
    // Budget far beyond what any host simulates in 200ms: the typed
    // error must come from the deadline, not the step limit.
    spin["max_cycles"] = std::uint64_t{4'000'000'000};
    const auto start = std::chrono::steady_clock::now();
    const auto resp = client->call("simulate", spin, &error);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_EQ(resp->error, ServeError::Deadline);
    // Cooperative cancellation frees the worker within the stop-poll
    // granularity, not after the full simulation budget.
    EXPECT_LT(elapsed, 5s);
    const Server::Counters c = server.counters();
    EXPECT_EQ(c.cancelledDeadline, 1u);
    expectCounterIdentities(c);
    server.hardStop();
}

TEST(Serve, HangIsAServedResultNotAFailure)
{
    const std::string socket = socketPath("hang");
    Server server(baseOptions(socket));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->setClient("t");
    JsonValue spin = simulateParams("spin");
    spin["cache"] = false;
    spin["max_cycles"] = std::uint64_t{50'000};
    const auto resp = client->call("simulate", spin, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_EQ(resp->error, ServeError::Hang);
    ASSERT_NE(resp->errorDetail.find("classification"), nullptr);
    const Server::Counters c = server.counters();
    // The request completed; the simulation hung. Both are true.
    EXPECT_EQ(c.completed, 1u);
    EXPECT_EQ(c.hangs, 1u);
    EXPECT_EQ(c.failed, 0u);
    expectCounterIdentities(c);
    server.hardStop();
}

// ---------------------------------------------------------------------
// Hostile clients.

TEST(Serve, SlowLorisIsCutOffWhileOthersAreServed)
{
    const std::string socket = socketPath("loris");
    ServerOptions opt = baseOptions(socket);
    opt.frameTimeoutMs = 200;
    Server server(std::move(opt));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // The attacker: starts a frame and stalls forever.
    auto attacker = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(attacker.has_value()) << error;
    ASSERT_EQ(::write(attacker->fd(), "\xff\x00", 2), 2);

    // A well-behaved client is served while the attacker trickles.
    auto victim = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(victim.has_value()) << error;
    victim->setClient("victim");
    const auto resp =
        victim->call("simulate", simulateParams("gcd"), &error);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_TRUE(resp->ok);

    // The attacker gets a farewell bad_request frame at the cutoff,
    // then its connection is closed and the timeout is counted.
    const FrameResult farewell =
        readFrame(attacker->fd(), 1u << 20, 5000, 5000);
    ASSERT_EQ(farewell.status, FrameStatus::Ok);
    EXPECT_NE(farewell.payload.find("bad_request"), std::string::npos);
    struct pollfd pfd = {};
    pfd.fd = attacker->fd();
    pfd.events = POLLIN;
    ASSERT_GT(::poll(&pfd, 1, 5000), 0);
    char sink[8];
    EXPECT_EQ(::recv(attacker->fd(), sink, sizeof(sink), 0), 0);
    EXPECT_TRUE(
        waitFor([&] { return server.counters().frameTimeouts >= 1; }));
    expectCounterIdentities(server.counters());
    server.hardStop();
}

TEST(Serve, MidRequestDisconnectCancelsTheJob)
{
    const std::string socket = socketPath("discon");
    ServerOptions opt = baseOptions(socket);
    opt.workers = 1;
    Server server(std::move(opt));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Send a long spin request, then vanish without reading the
    // response. The connection thread must notice and cancel the job
    // long before its 30s deadline so the worker is freed.
    auto ghost = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(ghost.has_value()) << error;
    JsonValue req = JsonValue::object();
    req["id"] = std::uint64_t{1};
    req["method"] = "simulate";
    req["client"] = "ghost";
    req["deadline_ms"] = std::uint64_t{30'000};
    JsonValue spin = simulateParams("spin");
    spin["cache"] = false;
    spin["max_cycles"] = std::uint64_t{4'000'000'000};
    req["params"] = std::move(spin);
    ASSERT_TRUE(writeFrame(ghost->fd(), req.dump()));
    ASSERT_TRUE(
        waitFor([&] { return server.counters().active == 1; }));
    ghost->close();

    EXPECT_TRUE(waitFor(
        [&] { return server.counters().cancelledDisconnect == 1; }));

    // The freed worker serves the next client promptly.
    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->setClient("next");
    const auto resp =
        client->call("simulate", simulateParams("gcd"), &error);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_TRUE(resp->ok);
    expectCounterIdentities(server.counters());
    server.hardStop();
}

// ---------------------------------------------------------------------
// Drain.

TEST(Serve, DrainUnderLoadAnswersEverythingAdmitted)
{
    const std::string socket = socketPath("drain");
    ServerOptions opt = baseOptions(socket);
    opt.workers = 2;
    Server server(std::move(opt));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    constexpr int kClients = 4;
    std::atomic<int> responses{0};
    std::atomic<int> shutdownErrors{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            std::string err;
            auto client = ServeClient::connectUnix(socket, &err);
            if (!client)
                return;
            client->setClient("d" + std::to_string(i));
            for (int r = 0; r < 6; ++r) {
                JsonValue params = simulateParams("gcd");
                params["cache"] = (r % 2) == 0;
                const auto resp =
                    client->call("simulate", params, &err);
                if (!resp)
                    break; // connection closed post-drain: fine
                ++responses;
                if (resp->error == ServeError::ShuttingDown) {
                    ++shutdownErrors;
                    break;
                }
            }
        });
    }
    // Let some requests land, then drain mid-load.
    ASSERT_TRUE(waitFor([&] { return responses.load() >= 2; }));
    server.requestDrain();
    server.waitDrained();
    for (std::thread &t : threads)
        t.join();

    // Quiescent post-drain accounting: every admitted request reached
    // a terminal state and was answered; nothing is active or queued.
    const Server::Counters c = server.counters();
    EXPECT_EQ(c.active, 0u);
    EXPECT_EQ(c.queueDepth, 0u);
    EXPECT_EQ(c.admitted,
              c.completed + c.cancelledDeadline +
                  c.cancelledDisconnect + c.failed);
    expectCounterIdentities(c);
    EXPECT_GT(c.completed, 0u);
}

TEST(Serve, DrainingServerShedsNewRequests)
{
    const std::string socket = socketPath("drained");
    Server server(baseOptions(socket));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    auto client = ServeClient::connectUnix(socket, &error);
    ASSERT_TRUE(client.has_value()) << error;
    client->setClient("late");

    server.requestDrain();
    const auto resp =
        client->call("simulate", simulateParams("gcd"), &error);
    // Either a typed shutting_down response or a closed listener —
    // never a hang, never silence.
    if (resp.has_value()) {
        EXPECT_EQ(resp->error, ServeError::ShuttingDown);
    }
    server.waitDrained();
    expectCounterIdentities(server.counters());
}

// ---------------------------------------------------------------------
// Daemon end-to-end: SIGTERM drain, exit 0, crash-safe cache.

#ifdef TIA_SERVE_BIN
TEST(ServeDaemon, SigtermDrainsFlushesAndExitsZero)
{
    const std::string socket = socketPath("daemon");
    const std::string cachePath =
        "ts_daemon_" + std::to_string(::getpid()) + ".tiasimc";
    std::remove(cachePath.c_str());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        const char *argv[] = {TIA_SERVE_BIN,  "--socket",
                              socket.c_str(), "--cache",
                              cachePath.c_str(), nullptr};
        ::execv(TIA_SERVE_BIN, const_cast<char **>(argv));
        _exit(127);
    }

    // Readiness: the socket appears once the daemon is listening.
    std::optional<ServeClient> client;
    ASSERT_TRUE(waitFor([&] {
        std::string err;
        client = ServeClient::connectUnix(socket, &err);
        return client.has_value();
    }, 10'000));
    client->setClient("e2e");
    const auto resp =
        client->call("simulate", simulateParams("gcd"));
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->ok);

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    // The drain flushed a loadable cache holding the completed run.
    SimCache cache;
    std::string error;
    ASSERT_TRUE(cache.load(cachePath, &error)) << error;
    EXPECT_GE(cache.size(), 1u);
    std::remove(cachePath.c_str());
    std::remove((cachePath + ".lock").c_str());
}
#endif // TIA_SERVE_BIN

// ---------------------------------------------------------------------
// Multi-process cache crash-safety: SIGKILL mid-save never corrupts.

TEST(CacheCrash, KilledWriterNeverCorruptsTheFile)
{
    const std::string path =
        "ts_crash_" + std::to_string(::getpid()) + ".tiasimc";
    std::remove(path.c_str());

    // Seed a valid baseline file.
    SimCache seed;
    CycleRunOptions seedOptions;
    seedOptions.cache = &seed;
    runCycle(makeGcd(WorkloadSizes::small()), PeConfig{}, seedOptions);
    std::string error;
    ASSERT_TRUE(seed.save(path, &error)) << error;

    for (int round = 0; round < 5; ++round) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: rewrite the cache as fast as possible until
            // killed. Any save may be interrupted at any point —
            // including between fsync and rename.
            for (;;)
                seed.save(path, nullptr);
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(5 + 7 * round));
        ASSERT_EQ(::kill(pid, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFSIGNALED(status));

        // The published file must always be a complete, valid cache:
        // saves go to a tmp file and rename in atomically.
        SimCache check;
        ASSERT_TRUE(check.load(path, &error))
            << "round " << round << ": " << error;
        EXPECT_EQ(check.size(), seed.size());
    }
    std::remove(path.c_str());
    // The kill may have left tmp/lock files behind; that is allowed
    // (the next completed save garbage-collects them), but clean up.
    std::remove((path + ".tmp").c_str());
    std::remove((path + ".lock").c_str());
}

TEST(CacheCrash, ConcurrentWritersSerializeViaTheLock)
{
    const std::string path =
        "ts_lock_" + std::to_string(::getpid()) + ".tiasimc";
    std::remove(path.c_str());
    SimCache cache;
    CycleRunOptions options;
    options.cache = &cache;
    runCycle(makeGcd(WorkloadSizes::small()), PeConfig{}, options);

    constexpr int kWriters = 4;
    std::vector<pid_t> pids;
    for (int i = 0; i < kWriters; ++i) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            bool ok = true;
            for (int j = 0; j < 20; ++j)
                ok = cache.save(path, nullptr) && ok;
            _exit(ok ? 0 : 1);
        }
        pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    SimCache check;
    std::string error;
    ASSERT_TRUE(check.load(path, &error)) << error;
    EXPECT_EQ(check.size(), cache.size());
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

} // namespace
} // namespace tia
