/**
 * @file
 * Assembler robustness: random garbage and mutated programs must
 * produce FatalError diagnostics (never crashes, hangs, or silently
 * wrong programs).
 */

#include <random>

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "core/logging.hh"

namespace tia {
namespace {

TEST(AssemblerFuzz, RandomBytesNeverCrash)
{
    std::mt19937 rng(42);
    for (int trial = 0; trial < 500; ++trial) {
        std::string source;
        const unsigned length = rng() % 200;
        for (unsigned i = 0; i < length; ++i)
            source += static_cast<char>(rng() % 96 + 32);
        try {
            const Program program = assemble(source);
            // Assembling garbage *may* succeed only if it happens to
            // be valid; validate it then.
            program.validate();
        } catch (const FatalError &) {
            // Expected for almost every input.
        }
    }
    SUCCEED();
}

TEST(AssemblerFuzz, TokenSoupNeverCrashes)
{
    // Syntactically plausible fragments shuffled together.
    const char *fragments[] = {
        "when",  "%p",    "==",  "XXXXXXXX", ":",    "add",  "%r0",
        ",",     "%i1",   "#42", ";",        "set",  "=",    "deq",
        "%o2",   ".",     "1",   "halt",     "mov",  ".pe",  "0",
        ".def",  "K",     "7",   "ZZZZZZZ1", "!",    "ult",  "%p7",
        "'M'",   "nop",
    };
    std::mt19937 rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        std::string source;
        const unsigned count = rng() % 30;
        for (unsigned i = 0; i < count; ++i) {
            source += fragments[rng() % std::size(fragments)];
            source += (rng() % 4 == 0) ? "\n" : " ";
        }
        try {
            assemble(source);
        } catch (const FatalError &) {
        }
    }
    SUCCEED();
}

TEST(AssemblerFuzz, SingleCharacterMutationsOfAValidProgram)
{
    const std::string valid =
        "when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; "
        "deq %i0; set %p = ZZZZ0001;\n"
        "when %p == XXXX0001: add %o1.2, %r3, #99; set %p = ZZZZ0000;\n";
    ASSERT_NO_THROW(assemble(valid));

    std::mt19937 rng(99);
    static const char replacements[] = "xq%#;:.!=9Z ";
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = valid;
        mutated[rng() % mutated.size()] =
            replacements[rng() % (std::size(replacements) - 1)];
        try {
            const Program program = assemble(mutated);
            program.validate(); // if it parses, it must be coherent
        } catch (const FatalError &) {
        }
    }
    SUCCEED();
}

TEST(AssemblerFuzz, DeeplyNestedOrLongInputsTerminate)
{
    // Very long single-line programs and pathological whitespace.
    std::string long_line = "when %p == XXXXXXXX: nop";
    for (int i = 0; i < 10'000; ++i)
        long_line += " ;";
    EXPECT_NO_THROW(assemble(long_line + "\n"));

    std::string many_comments;
    for (int i = 0; i < 5'000; ++i)
        many_comments += "// comment line\n";
    many_comments += "when %p == XXXXXXXX: halt;\n";
    EXPECT_NO_THROW(assemble(many_comments));
}

} // namespace
} // namespace tia
