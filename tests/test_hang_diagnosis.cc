/**
 * @file
 * Hang-diagnosis tests: the wait-for graph classifier must tell a
 * finished fabric from a deadlocked or livelocked one, and the
 * cycle-accurate fabric must render a deadlock as a wait chain naming
 * the blocked PEs and the queues they wait on.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/assembler.hh"
#include "sim/hang_diagnosis.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {
namespace {

bool
anyLineContains(const std::vector<std::string> &lines,
                const std::string &needle)
{
    for (const auto &line : lines) {
        if (line.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(WaitForGraph, FindsCycleThroughBlockedAgent)
{
    WaitForGraph graph;
    const auto pe0 = graph.addNode(AgentKind::Pe, 0, "PE 0", true);
    const auto ch0 = graph.addNode(AgentKind::Channel, 0, "channel 0");
    const auto pe1 = graph.addNode(AgentKind::Pe, 1, "PE 1", true);
    const auto ch1 = graph.addNode(AgentKind::Channel, 1, "channel 1");
    graph.addEdge(pe0, ch0, "input %i0 empty");
    graph.addEdge(ch0, pe1, "fed by");
    graph.addEdge(pe1, ch1, "input %i0 empty");
    graph.addEdge(ch1, pe0, "fed by");

    const auto cycle = graph.findCycle();
    ASSERT_EQ(cycle.size(), 4u);

    const auto chain = graph.renderChain(cycle);
    EXPECT_TRUE(anyLineContains(chain, "PE 0"));
    EXPECT_TRUE(anyLineContains(chain, "PE 1"));
    EXPECT_TRUE(anyLineContains(chain, "channel"));
    EXPECT_TRUE(anyLineContains(chain, "input %i0 empty"));
}

TEST(WaitForGraph, IgnoresCycleWithoutBlockedAgents)
{
    // A ring of idle agents is wiring, not a deadlock.
    WaitForGraph graph;
    const auto a = graph.addNode(AgentKind::Pe, 0, "PE 0");
    const auto b = graph.addNode(AgentKind::Channel, 0, "channel 0");
    graph.addEdge(a, b, "x");
    graph.addEdge(b, a, "y");
    EXPECT_TRUE(graph.findCycle().empty());
}

TEST(WaitForGraph, AcyclicGraphHasNoCycle)
{
    WaitForGraph graph;
    const auto a = graph.addNode(AgentKind::Pe, 0, "PE 0", true);
    const auto b = graph.addNode(AgentKind::Channel, 0, "channel 0");
    const auto c = graph.addNode(AgentKind::Pe, 1, "PE 1");
    graph.addEdge(a, b, "input %i0 empty");
    graph.addEdge(b, c, "fed by");
    EXPECT_TRUE(graph.findCycle().empty());

    const HangReport report = classifyQuiescence(graph);
    EXPECT_EQ(report.classification, RunStatus::Quiescent);
    EXPECT_TRUE(anyLineContains(report.blockedAgents, "PE 0"));
}

TEST(HangClassifier, StepLimitBecomesLivelockPastTheWindow)
{
    EXPECT_EQ(classifyStepLimit(100, 500).classification,
              RunStatus::StepLimit);
    EXPECT_EQ(classifyStepLimit(500, 500).classification,
              RunStatus::Livelock);
    EXPECT_EQ(classifyStepLimit(4000, 500).classification,
              RunStatus::Livelock);
}

/** Two PEs cross-wired: channel 0 is 0 -> 1, channel 1 is 1 -> 0. */
FabricConfig
pingPongConfig()
{
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(0, 0, 1, 0);
    builder.connect(1, 0, 0, 0);
    return builder.build();
}

const PeConfig kUarch{PipelineShape{true, false, false}, true, true};

TEST(HangDiagnosis, PingPongDeadlockIsDiagnosedWithChain)
{
    // Both PEs wait for the other to send first; nobody seeds, so the
    // wait-for graph is PE 0 -> ch 1 -> PE 1 -> ch 0 -> PE 0.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXX0 with %i0.0: add %o0.0, %i0, #1; deq %i0; "
        "set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n"
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i0.0: add %o0.0, %i0, #1; deq %i0; "
        "set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n");
    CycleFabric fabric(pingPongConfig(), program, kUarch);

    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Deadlock);

    const HangReport &report = fabric.hangReport();
    EXPECT_EQ(report.classification, RunStatus::Deadlock);
    ASSERT_FALSE(report.waitChain.empty());
    // The chain names the blocked PEs and the queues they wait on.
    EXPECT_TRUE(anyLineContains(report.waitChain, "PE 0"));
    EXPECT_TRUE(anyLineContains(report.waitChain, "PE 1"));
    EXPECT_TRUE(anyLineContains(report.waitChain, "channel"));
    EXPECT_TRUE(anyLineContains(report.blockedAgents, "PE 0"));
    EXPECT_TRUE(anyLineContains(report.blockedAgents, "PE 1"));
    EXPECT_NE(report.summary.find("deadlock"), std::string::npos);
}

TEST(HangDiagnosis, SeededPingPongHalts)
{
    // The same exchange minus the bug: PE 0 seeds the first token, so
    // the ring drains and both PEs halt.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXX00: mov %o0.0, #1; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01 with %i0.0: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: halt;\n"
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i0.0: add %o0.0, %i0, #1; deq %i0; "
        "set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n");
    CycleFabric fabric(pingPongConfig(), program, kUarch);

    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Halted);
    EXPECT_EQ(fabric.hangReport().classification, RunStatus::Halted);
    EXPECT_TRUE(fabric.hangReport().waitChain.empty());
    EXPECT_EQ(fabric.pe(0).regs()[0], 2u);
}

TEST(HangDiagnosis, StarvationStaysQuiescent)
{
    // PE 0 waits on a producer that never fires (its trigger predicate
    // is unreachable). The producer is idle, not blocked: no wait
    // cycle, so this is starvation, not deadlock.
    const Program program = assemble(
        ".pe 0\n"
        "when %p == XXXXXXXX with %i0.0: mov %r0, %i0; deq %i0;\n"
        ".pe 1\n"
        "when %p == XXXXXXX1: mov %o0.0, #1;\n");
    FabricBuilder builder(ArchParams{}, 2);
    builder.connect(1, 0, 0, 0);
    CycleFabric fabric(builder.build(), program, kUarch);

    EXPECT_EQ(fabric.run(1'000'000, 500), RunStatus::Quiescent);
    const HangReport &report = fabric.hangReport();
    EXPECT_EQ(report.classification, RunStatus::Quiescent);
    EXPECT_TRUE(report.waitChain.empty());
    EXPECT_TRUE(anyLineContains(report.blockedAgents, "PE 0"));
}

TEST(HangDiagnosis, PollingLoopIsLivelock)
{
    // A PE spinning on its own predicates (a poll/timeout loop that
    // never sees the token it polls for) is active every cycle yet
    // moves no tokens: past the progress window that is a livelock.
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r0, %r0, #1; set %p = ZZZZZZZ0;\n");
    FabricBuilder builder(ArchParams{}, 1);
    CycleFabric fabric(builder.build(), program, kUarch);

    EXPECT_EQ(fabric.run(FabricRunOptions{4000, 500}),
              RunStatus::Livelock);
    const HangReport &report = fabric.hangReport();
    EXPECT_EQ(report.classification, RunStatus::Livelock);
    EXPECT_NE(report.summary.find("livelock"), std::string::npos);
}

TEST(HangDiagnosis, ShortBudgetStaysStepLimit)
{
    // The same spin loop under the default (10k-cycle) window: a
    // 100-cycle budget is far too short to call livelock.
    const Program program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r0, %r0, #1; set %p = ZZZZZZZ0;\n");
    FabricBuilder builder(ArchParams{}, 1);
    CycleFabric fabric(builder.build(), program, kUarch);

    EXPECT_EQ(fabric.run(100), RunStatus::StepLimit);
    EXPECT_EQ(fabric.hangReport().classification, RunStatus::StepLimit);
}

} // namespace
} // namespace tia
