/**
 * @file
 * The parallel sweep engine: ThreadPool/SweepEngine mechanics, and the
 * PR's headline determinism contract — parallel CPI matrices and
 * parallel DSE enumeration are element-wise identical to their serial
 * counterparts, including under an injected FaultPlan. Also pins the
 * two sweep-correctness fixes: the DSE frequency grid following the
 * sweep's tech model, and the unified default cycle budget.
 */

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "uarch/cycle_fabric.hh"
#include "vlsi/dse.hh"
#include "workloads/cpi.hh"
#include "workloads/runner.hh"

namespace {

using namespace tia;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 100);

    // The pool is reusable after a wait().
    for (int i = 0; i < 10; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 110);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

TEST(SweepEngine, MapPreservesSubmissionOrder)
{
    const SweepEngine parallel(4);
    const auto sweep =
        parallel.map(1000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(sweep.values.size(), 1000u);
    for (std::size_t i = 0; i < sweep.values.size(); ++i)
        EXPECT_EQ(sweep.values[i], i * i);
}

TEST(SweepEngine, SerialAndParallelAgree)
{
    auto fn = [](std::size_t i) { return 3 * i + 7; };
    const auto serial = SweepEngine(1).map(257, fn);
    const auto parallel = SweepEngine(8).map(257, fn);
    EXPECT_EQ(serial.values, parallel.values);
    EXPECT_EQ(serial.jobs, 1u);
    EXPECT_EQ(parallel.jobs, 8u);
}

TEST(SweepEngine, UsesNoMoreJobsThanTasks)
{
    const auto sweep =
        SweepEngine(16).map(3, [](std::size_t i) { return i; });
    EXPECT_EQ(sweep.jobs, 3u);
    EXPECT_EQ(sweep.values, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SweepEngine, RethrowsTheLowestIndexException)
{
    const SweepEngine engine(4);
    try {
        engine.map(100, [](std::size_t i) -> int {
            if (i == 17 || i == 80)
                throw std::runtime_error("task " + std::to_string(i));
            return 0;
        });
        FAIL() << "map() swallowed the task exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "task 17");
    }
}

/** Field-by-field equality of two WorkloadRuns (no operator== on
 *  PerfCounters; spell out every counter the figures consume). */
void
expectRunsEqual(const WorkloadRun &a, const WorkloadRun &b,
                const std::string &what)
{
    EXPECT_EQ(a.status, b.status) << what;
    EXPECT_EQ(a.checkError, b.checkError) << what;
    EXPECT_EQ(a.totalCycles, b.totalCycles) << what;
    EXPECT_EQ(a.dynamicInstructions, b.dynamicInstructions) << what;
    EXPECT_EQ(a.hang, b.hang) << what;
    EXPECT_EQ(a.faultOutcome, b.faultOutcome) << what;
    EXPECT_EQ(a.faultStats, b.faultStats) << what;
    EXPECT_EQ(a.worker.cycles, b.worker.cycles) << what;
    EXPECT_EQ(a.worker.retired, b.worker.retired) << what;
    EXPECT_EQ(a.worker.quashed, b.worker.quashed) << what;
    EXPECT_EQ(a.worker.predicateHazard, b.worker.predicateHazard)
        << what;
    EXPECT_EQ(a.worker.dataHazard, b.worker.dataHazard) << what;
    EXPECT_EQ(a.worker.forbidden, b.worker.forbidden) << what;
    EXPECT_EQ(a.worker.noTrigger, b.worker.noTrigger) << what;
    EXPECT_EQ(a.worker.predicateWrites, b.worker.predicateWrites)
        << what;
    EXPECT_EQ(a.worker.predictions, b.worker.predictions) << what;
    EXPECT_EQ(a.worker.mispredictions, b.worker.mispredictions) << what;
    EXPECT_EQ(a.worker.dequeues, b.worker.dequeues) << what;
    EXPECT_EQ(a.worker.enqueues, b.worker.enqueues) << what;
    EXPECT_EQ(a.worker.faultsInjected, b.worker.faultsInjected) << what;
    EXPECT_EQ(a.worker.faultRecoveries, b.worker.faultRecoveries)
        << what;
}

std::vector<PeConfig>
matrixConfigs()
{
    return {
        PeConfig{PipelineShape{false, false, false}, false, false},
        PeConfig{PipelineShape{true, false, false}, true, true},
        PeConfig{PipelineShape{true, true, true}, true, true},
    };
}

TEST(SweepEngine, ParallelCpiMatrixMatchesSerial)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = matrixConfigs();

    const CycleMatrix serial = runCycleMatrix(suite, configs, {}, 1);
    const CycleMatrix parallel = runCycleMatrix(suite, configs, {}, 4);

    ASSERT_EQ(serial.runs.size(), suite.size() * configs.size());
    ASSERT_EQ(parallel.runs.size(), serial.runs.size());
    EXPECT_EQ(parallel.numConfigs, configs.size());
    EXPECT_EQ(parallel.numWorkloads, suite.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t w = 0; w < suite.size(); ++w) {
            expectRunsEqual(serial.run(c, w), parallel.run(c, w),
                            suite[w].name + " on " + configs[c].name());
            EXPECT_TRUE(serial.run(c, w).ok())
                << serial.run(c, w).checkError;
        }
    }
}

TEST(SweepEngine, ParallelCpiMatrixMatchesSerialUnderInjection)
{
    // Each task owns its FaultInjector RNG, so a seeded plan replays
    // bit-identically regardless of how the matrix is scheduled.
    const FaultPlan plan = FaultPlan::parse(
        "seed=99;drop:ch0@p0.05;corrupt:ch0@p0.02,mask=0x4;"
        "mispredict:pe0@p0.1");
    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const auto suite = allWorkloads(WorkloadSizes::small());
    const auto configs = matrixConfigs();

    const CycleMatrix serial =
        runCycleMatrix(suite, configs, options, 1);
    const CycleMatrix parallel =
        runCycleMatrix(suite, configs, options, 4);

    ASSERT_EQ(parallel.runs.size(), serial.runs.size());
    bool any_fired = false;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t w = 0; w < suite.size(); ++w) {
            expectRunsEqual(serial.run(c, w), parallel.run(c, w),
                            suite[w].name + " on " + configs[c].name());
            any_fired =
                any_fired || serial.run(c, w).faultStats.totalFired() > 0;
        }
    }
    EXPECT_TRUE(any_fired) << "the plan never fired; the test is vacuous";
}

TEST(SweepEngine, ParallelCpiTablesMatchSerial)
{
    const WorkloadSizes sizes = WorkloadSizes::small();
    const auto configs = matrixConfigs();
    EXPECT_EQ(measureCpiTable(sizes, configs, 1),
              measureCpiTable(sizes, configs, 4));
    EXPECT_EQ(suiteAverageCpiTable(sizes, configs, 1),
              suiteAverageCpiTable(sizes, configs, 4));
}

TEST(SweepEngine, ParallelDseEnumerateMatchesSerial)
{
    CpiTable table;
    for (const PeConfig &config : allConfigs())
        table[config.name()] = 1.5;
    const DesignSpace dse(std::move(table));

    const auto serial = dse.enumerate();
    const auto parallel = dse.enumerateParallel(4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const DesignPoint &a = serial[i];
        const DesignPoint &b = parallel[i];
        EXPECT_EQ(a.config, b.config) << i;
        EXPECT_EQ(a.vt, b.vt) << i;
        // Bit-identical, not approximately equal: the parallel sweep
        // runs the same arithmetic on the same shard inputs.
        EXPECT_EQ(a.vdd, b.vdd) << i;
        EXPECT_EQ(a.freqMhz, b.freqMhz) << i;
        EXPECT_EQ(a.maxFreqMhz, b.maxFreqMhz) << i;
        EXPECT_EQ(a.cpi, b.cpi) << i;
        EXPECT_EQ(a.nsPerInstruction, b.nsPerInstruction) << i;
        EXPECT_EQ(a.pjPerInstruction, b.pjPerInstruction) << i;
        EXPECT_EQ(a.areaUm2, b.areaUm2) << i;
        EXPECT_EQ(a.powerMw, b.powerMw) << i;
    }
}

// Regression for the frequency-grid bugfix: the near/sub-threshold
// refinements must follow the sweep's tech model, not a
// default-constructed one.
TEST(SweepEngine, FrequencyGridFollowsTheSweepTechModel)
{
    CpiTable table;
    for (const PeConfig &config : allConfigs())
        table[config.name()] = 1.5;

    // Nominal corner: std-VT threshold 0.33 V, so 0.7 V is outside
    // the near-threshold band (0.33 + 0.35 = 0.68) and gets no 50 MHz
    // refinement.
    const DesignSpace nominal(table);
    const auto base = nominal.frequencyGridMhz(VtClass::Standard, 0.7);
    EXPECT_EQ(base.size(), 15u);

    // A high-threshold skewed corner moves the band up: 0.7 V is now
    // near-threshold and must be refined. Before the fix the grid
    // ignored the instance model and stayed at 15 points.
    const TechModel skewed(0.30, 0.50, 0.65);
    const DesignSpace corner(table, skewed);
    const auto refined = corner.frequencyGridMhz(VtClass::Standard, 0.7);
    EXPECT_EQ(refined.size(), 19u);
    EXPECT_NE(std::find(refined.begin(), refined.end(), 150.0),
              refined.end());

    // The subthreshold high-VT refinement moves with the corner too:
    // 0.6 V is subthreshold for a 0.65 V high-VT device.
    const auto sub = corner.frequencyGridMhz(VtClass::High, 0.6);
    EXPECT_NE(std::find(sub.begin(), sub.end(), 10.0), sub.end());
    const auto nominal_sub =
        nominal.frequencyGridMhz(VtClass::High, 0.6);
    EXPECT_EQ(std::find(nominal_sub.begin(), nominal_sub.end(), 10.0),
              nominal_sub.end());

    // And gridSize follows suit.
    EXPECT_GT(corner.gridSize(), nominal.gridSize());
}

// Regression for the unified cycle-budget defaults: the same workload
// must hang-classify identically from every entry point.
TEST(SweepEngine, DefaultCycleBudgetsAgreeAcrossEntryPoints)
{
    EXPECT_EQ(FabricRunOptions{}.maxCycles, kDefaultMaxCycles);
    EXPECT_EQ(CycleRunOptions{}.maxCycles, kDefaultMaxCycles);
    EXPECT_EQ(FabricRunOptions{}.maxCycles,
              CycleRunOptions{}.maxCycles);
    EXPECT_EQ(FabricRunOptions{}.quiescenceWindow,
              CycleRunOptions{}.quiescenceWindow);
}

} // namespace
