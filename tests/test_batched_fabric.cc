/**
 * @file
 * The batched lockstep simulation kernel (uarch/batched_fabric.hh,
 * runCycleBatch, runCycleMatrixStreamed --batch): bit-identity of
 * every lane against the scalar path across batch widths — clean,
 * fault-injected and cancelled — plus the per-lane cache semantics
 * (hits decode, verify-mode hits re-simulate and byte-compare,
 * cancelled lanes leave no entry) and the BatchStats accounting
 * identities the tia-metrics/v1 validator enforces.
 */

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/run_cache.hh"
#include "cache/simcache.hh"
#include "core/logging.hh"
#include "exec/stop_token.hh"
#include "obs/reconstruct.hh"
#include "sim/fault.hh"
#include "uarch/batched_fabric.hh"
#include "uarch/config.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace tia;

// The Table 3 suite at smoke sizes and every Table 4 shape variant:
// the full product the paper's Figure 5 sweeps.
const std::vector<Workload> &
suite()
{
    static const std::vector<Workload> workloads =
        allWorkloads(WorkloadSizes::small());
    return workloads;
}

const std::vector<PeConfig> &
configs32()
{
    static const std::vector<PeConfig> configs = allConfigs();
    return configs;
}

// 65 lanes by cycling the 32-config matrix: one more lane than a
// single uint64_t status bitplane holds, so the SoA kernel must carry
// two plane words (W = 2) with a lone lane in the high plane.
// Duplicate configs are fine — runCycleBatch without a cache never
// keys lanes, and duplicated lanes must simply produce bit-identical
// duplicated runs.
std::vector<PeConfig>
configs65()
{
    const auto &base = configs32();
    std::vector<PeConfig> lanes;
    lanes.reserve(65);
    for (std::size_t i = 0; i < 65; ++i)
        lanes.push_back(base[i % base.size()]);
    return lanes;
}

void
expectRunsEqual(const WorkloadRun &scalar, const WorkloadRun &batched,
                const std::string &what)
{
    // WorkloadRun has field-wise operator==; every counter, the hang
    // verdict and the fault classification must match bit-for-bit.
    EXPECT_TRUE(scalar == batched) << what;
}

void
expectStatsConsistent(const BatchStats &stats, const std::string &what)
{
    EXPECT_EQ(stats.hits + stats.misses, stats.lanes) << what;
    EXPECT_GE(stats.simulated, stats.misses) << what;
    EXPECT_LE(stats.simulated, stats.lanes) << what;
    EXPECT_LE(stats.verified, stats.hits) << what;
    EXPECT_LE(stats.cancelled, stats.simulated) << what;
}

// ---------------------------------------------------------------------
// runCycleBatch vs scalar runCycle: the core lockstep bit-identity.

TEST(BatchedFabric, BitIdenticalToScalarAcrossWidths)
{
    const auto &workloads = suite();
    const auto &configs = configs32();
    ASSERT_EQ(configs.size(), 32u);

    // Scalar reference: one run per (workload, config). Spelled-out
    // options — a braced {} third argument would select the Cycle
    // max_cycles overload (zero budget), not CycleRunOptions.
    const CycleRunOptions options;
    std::vector<std::vector<WorkloadRun>> scalar(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w)
        for (const PeConfig &config : configs)
            scalar[w].push_back(runCycle(workloads[w], config, options));

    for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}, std::size_t{32}}) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            // runCycleBatch runs one group; slice the config axis the
            // way the matrix runner would.
            for (std::size_t lo = 0; lo < configs.size(); lo += width) {
                const std::size_t hi =
                    std::min(lo + width, configs.size());
                const std::vector<PeConfig> group(
                    configs.begin() + static_cast<std::ptrdiff_t>(lo),
                    configs.begin() + static_cast<std::ptrdiff_t>(hi));
                const BatchRunResult batch =
                    runCycleBatch(workloads[w], group, options);
                ASSERT_EQ(batch.runs.size(), group.size());
                expectStatsConsistent(
                    batch.stats,
                    "width " + std::to_string(width));
                EXPECT_EQ(batch.stats.lanes, group.size());
                // No cache attached: every lane is a simulated miss.
                EXPECT_EQ(batch.stats.misses, group.size());
                EXPECT_EQ(batch.stats.simulated, group.size());
                for (std::size_t l = 0; l < group.size(); ++l) {
                    expectRunsEqual(
                        scalar[w][lo + l], batch.runs[l],
                        workloads[w].name + " / " +
                            group[l].name() + " width " +
                            std::to_string(width));
                }
            }
        }
    }
}

TEST(BatchedFabric, BitIdenticalToScalarUnderFaultInjection)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=99;drop:ch0@p0.05;corrupt:ch0@p0.02,mask=0x4;"
        "mispredict:pe0@p0.1");
    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const auto &workloads = suite();
    const auto &configs = configs32();

    bool any_fired = false;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::vector<WorkloadRun> scalar;
        for (const PeConfig &config : configs)
            scalar.push_back(runCycle(workloads[w], config, options));

        const BatchRunResult batch =
            runCycleBatch(workloads[w], configs, options);
        ASSERT_EQ(batch.runs.size(), configs.size());
        for (std::size_t l = 0; l < configs.size(); ++l) {
            expectRunsEqual(scalar[l], batch.runs[l],
                            workloads[w].name + " / " +
                                configs[l].name() + " injected");
            // Fault injection disarms the incremental resolution
            // cache (a dropped or corrupted push mutates queue state
            // behind the dirty tracking): every resolution must be a
            // full one.
            EXPECT_EQ(batch.runs[l].resolutionSkips, 0u)
                << workloads[w].name + " / " + configs[l].name();
            any_fired =
                any_fired || batch.runs[l].faultStats.totalFired() > 0;
        }
    }
    EXPECT_TRUE(any_fired) << "the plan never fired; the test is vacuous";
}

// ---------------------------------------------------------------------
// Multi-plane boundary: more lanes than one status bitplane word.

TEST(BatchedFabric, MultiPlaneWidthsBitIdenticalToScalar)
{
    // Widths 64 (one exactly-full plane word) and 65 (two plane
    // words, a lone lane in the high word) over a 65-lane cycled
    // config list. Every lane must match its scalar twin bit-for-bit,
    // including the resolution counters WorkloadRun== now pins.
    const CycleRunOptions options;
    const std::vector<PeConfig> lanes = configs65();
    const std::vector<Workload> workloads = {suite().front(),
                                             suite().back()};
    for (const Workload &workload : workloads) {
        std::vector<WorkloadRun> scalar;
        for (const PeConfig &config : configs32())
            scalar.push_back(runCycle(workload, config, options));

        for (const std::size_t width :
             {std::size_t{64}, std::size_t{65}}) {
            for (std::size_t lo = 0; lo < lanes.size(); lo += width) {
                const std::size_t hi =
                    std::min(lo + width, lanes.size());
                const std::vector<PeConfig> group(
                    lanes.begin() + static_cast<std::ptrdiff_t>(lo),
                    lanes.begin() + static_cast<std::ptrdiff_t>(hi));
                const BatchRunResult batch =
                    runCycleBatch(workload, group, options);
                ASSERT_EQ(batch.runs.size(), group.size());
                if (group.size() > 1) {
                    // Clean multi-lane groups go through the SoA
                    // kernel; the op counter proves it engaged.
                    EXPECT_GT(batch.stats.bitplaneOps, 0u)
                        << workload.name << " width " << width;
                }
                for (std::size_t l = 0; l < group.size(); ++l) {
                    expectRunsEqual(
                        scalar[(lo + l) % scalar.size()], batch.runs[l],
                        workload.name + " / " + group[l].name() +
                            " lane " + std::to_string(lo + l) +
                            " width " + std::to_string(width));
                }
            }
        }
    }
}

TEST(BatchedFabric, MultiPlaneFaultInjectedBitIdenticalToScalar)
{
    // The 65-lane group again, with every lane carrying a fresh
    // injector built from the same plan: lanes fall off the SoA fast
    // path onto the scalar-compatible slow path and must still match
    // their scalar twins (duplicated configs reuse the same seed, so
    // duplicated lanes stay deterministic twins too).
    const FaultPlan plan = FaultPlan::parse(
        "seed=99;drop:ch0@p0.05;corrupt:ch0@p0.02,mask=0x4;"
        "mispredict:pe0@p0.1");
    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;

    const Workload &workload = suite().front();
    const std::vector<PeConfig> lanes = configs65();

    std::vector<WorkloadRun> scalar;
    for (const PeConfig &config : configs32())
        scalar.push_back(runCycle(workload, config, options));

    const BatchRunResult batch = runCycleBatch(workload, lanes, options);
    ASSERT_EQ(batch.runs.size(), lanes.size());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
        expectRunsEqual(scalar[l % scalar.size()], batch.runs[l],
                        workload.name + " / " + lanes[l].name() +
                            " lane " + std::to_string(l) + " injected");
        EXPECT_EQ(batch.runs[l].resolutionSkips, 0u) << lanes[l].name();
    }
}

// ---------------------------------------------------------------------
// Resolution accounting: the incremental cache must actually engage.

TEST(BatchedFabric, ResolutionStatsNonVacuousAndConsistent)
{
    // Per-lane scalar/batched equality of resolutionSkips and
    // resolutionFulls is already pinned by WorkloadRun== in every
    // differential test above. This guards against the vacuous
    // flavour of that equality: both sides silently counting zero.
    const CycleRunOptions options;
    const BatchRunResult batch =
        runCycleBatch(suite().front(), configs32(), options);
    std::uint64_t skips = 0;
    std::uint64_t fulls = 0;
    for (const WorkloadRun &run : batch.runs) {
        skips += run.resolutionSkips;
        fulls += run.resolutionFulls;
    }
    EXPECT_GT(skips, 0u)
        << "the incremental cache never skipped a re-resolution";
    EXPECT_GT(fulls, 0u)
        << "every PE must take at least one full resolution to seed";
    EXPECT_GT(batch.stats.bitplaneOps, 0u);
}

// ---------------------------------------------------------------------
// Cache semantics: per-lane scalar equivalence.

TEST(BatchedFabric, ColdWarmVerifyCacheChain)
{
    const Workload workload = suite().front();
    const auto &configs = configs32();

    SimCache cache;
    CycleRunOptions options;
    options.cache = &cache;

    // Cold: every lane misses, simulates and is stored.
    const BatchRunResult cold = runCycleBatch(workload, configs, options);
    expectStatsConsistent(cold.stats, "cold");
    EXPECT_EQ(cold.stats.misses, configs.size());
    EXPECT_EQ(cold.stats.simulated, configs.size());
    EXPECT_EQ(cold.stats.verified, 0u);
    EXPECT_EQ(cache.size(), configs.size());

    // Warm: every lane decodes its hit; nothing simulates.
    const BatchRunResult warm = runCycleBatch(workload, configs, options);
    expectStatsConsistent(warm.stats, "warm");
    EXPECT_EQ(warm.stats.hits, configs.size());
    EXPECT_EQ(warm.stats.simulated, 0u);
    for (std::size_t l = 0; l < configs.size(); ++l)
        expectRunsEqual(cold.runs[l], warm.runs[l],
                        "warm lane " + std::to_string(l));

    // Verify mode: every hit lane re-simulates in the batch and
    // byte-compares against its cached payload.
    cache.setVerifyHits(true);
    const BatchRunResult verify =
        runCycleBatch(workload, configs, options);
    expectStatsConsistent(verify.stats, "verify");
    EXPECT_EQ(verify.stats.hits, configs.size());
    EXPECT_EQ(verify.stats.simulated, configs.size());
    EXPECT_EQ(verify.stats.verified, configs.size());
    EXPECT_EQ(cache.stats().verifiedHits, configs.size());
    for (std::size_t l = 0; l < configs.size(); ++l)
        expectRunsEqual(cold.runs[l], verify.runs[l],
                        "verified lane " + std::to_string(l));

    // The batched path writes the same per-config digests the scalar
    // path reads: a scalar run on the batched-written cache hits.
    cache.setVerifyHits(false);
    const std::size_t hits_before = cache.stats().hits;
    const WorkloadRun scalar =
        runCycle(workload, configs.front(), options);
    EXPECT_EQ(cache.stats().hits, hits_before + 1)
        << "scalar lookup missed a batched-written entry";
    expectRunsEqual(scalar, cold.runs.front(), "scalar on batched cache");
}

TEST(BatchedFabric, PreFiredStopCancelsEveryLaneAndCachesNothing)
{
    const Workload workload = suite().front();
    const auto &configs = configs32();

    SimCache cache;
    StopSource stop;
    stop.requestStop();
    CycleRunOptions options;
    options.cache = &cache;
    options.stop = stop.token();

    const BatchRunResult batch =
        runCycleBatch(workload, configs, options);
    expectStatsConsistent(batch.stats, "pre-fired stop");
    EXPECT_EQ(batch.stats.cancelled, configs.size());
    for (const WorkloadRun &run : batch.runs)
        EXPECT_EQ(run.status, RunStatus::Cancelled);
    // A parked lane leaves no cache entry.
    EXPECT_EQ(cache.size(), 0u);
}

TEST(BatchedFabric, MidSweepCancellationMatchesCacheResidency)
{
    // jobs = 1 makes the schedule deterministic: the sink fires the
    // caller's stop source as soon as the first group lands, so later
    // groups' lanes return Cancelled at their first stop poll. The
    // invariant under test: a cell is Cancelled exactly when its
    // workloadRunKey is absent from the cache.
    const auto &workloads = suite();
    const auto &configs = configs32();

    SimCache cache;
    StopSource stop;
    CycleRunOptions options;
    options.cache = &cache;
    options.stop = stop.token();
    options.batch = 8;

    const CycleMatrix matrix = runCycleMatrixStreamed(
        workloads, configs, options, 1,
        [&](std::size_t, std::size_t, const WorkloadRun &) {
            stop.requestStop();
        });

    ASSERT_EQ(matrix.runs.size(), workloads.size() * configs.size());
    EXPECT_EQ(matrix.batch.width, 8u);
    expectStatsConsistent(matrix.batch, "mid-sweep cancel");
    EXPECT_GT(matrix.batch.cancelled, 0u)
        << "nothing was cancelled; the test is vacuous";
    std::size_t cached_cells = 0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const WorkloadRun &run = matrix.run(c, w);
            CycleRunOptions key_options;
            const bool resident =
                cache
                    .peek(workloadRunKey(workloads[w], configs[c],
                                         key_options))
                    .has_value();
            if (run.status == RunStatus::Cancelled) {
                EXPECT_FALSE(resident)
                    << "cancelled cell (" << c << ", " << w
                    << ") left a cache entry";
            } else {
                EXPECT_TRUE(resident)
                    << "completed cell (" << c << ", " << w
                    << ") was not cached";
                ++cached_cells;
            }
        }
    }
    EXPECT_EQ(cache.size(), cached_cells);
}

// ---------------------------------------------------------------------
// The batched matrix runner: dispatch, sink order, accounting.

TEST(BatchedFabric, MatrixBatchedBitIdenticalToScalarWithOrderedSink)
{
    const auto &workloads = suite();
    const auto &configs = configs32();

    const CycleMatrix scalar = runCycleMatrixStreamed(
        workloads, configs, {}, 1, CycleMatrixSink{});
    EXPECT_EQ(scalar.batch.width, 0u) << "scalar run reported batching";

    for (const std::size_t width : {std::size_t{3}, std::size_t{8}}) {
        CycleRunOptions options;
        options.batch = width;
        std::size_t expect = 0;
        const CycleMatrix batched = runCycleMatrixStreamed(
            workloads, configs, options, 2,
            [&](std::size_t c, std::size_t w, const WorkloadRun &run) {
                // Row-major in-order delivery survives the group
                // transpose, and the sink sees the retained run.
                EXPECT_EQ(c * workloads.size() + w, expect);
                ++expect;
                EXPECT_TRUE(run == scalar.run(c, w));
            });
        EXPECT_EQ(expect, scalar.runs.size());
        ASSERT_EQ(batched.runs.size(), scalar.runs.size());
        for (std::size_t i = 0; i < scalar.runs.size(); ++i)
            expectRunsEqual(scalar.runs[i], batched.runs[i],
                            "width " + std::to_string(width) + " cell " +
                                std::to_string(i));
        EXPECT_EQ(batched.batch.width, width);
        EXPECT_EQ(batched.batch.lanes,
                  workloads.size() * configs.size());
        EXPECT_EQ(batched.batch.groups,
                  ((configs.size() + width - 1) / width) *
                      workloads.size());
        expectStatsConsistent(batched.batch,
                              "width " + std::to_string(width));
    }
}

TEST(BatchedFabric, TracedRunsStayScalar)
{
    // The dispatch guard: a trace sink forces the scalar path even
    // when --batch is set, and handing a trace to runCycleBatch
    // directly is a contract violation.
    const auto &workloads = suite();
    const auto &configs = configs32();

    CpiReconstructor recon;
    CycleRunOptions options;
    options.batch = 8;
    options.trace = &recon;
    const CycleMatrix traced = runCycleMatrixStreamed(
        workloads, configs, options, 1, CycleMatrixSink{});
    EXPECT_EQ(traced.batch.width, 0u)
        << "a traced matrix took the batched path";

    EXPECT_THROW(
        runCycleBatch(workloads.front(), configs, options),
        FatalError);
}

// ---------------------------------------------------------------------
// BatchedFabric proper.

TEST(BatchedFabric, ConstructorValidatesLanes)
{
    const Workload workload = suite().front();
    EXPECT_THROW(BatchedFabric(workload.config, workload.program, {}),
                 FatalError);

    const std::vector<PeConfig> lanes = {configs32().front()};
    const std::vector<FaultInjector *> injectors = {nullptr, nullptr};
    EXPECT_THROW(BatchedFabric(workload.config, workload.program, lanes,
                               injectors),
                 FatalError);
}

} // namespace
