/**
 * @file
 * Mesh fabric tests: wiring topology and an end-to-end token relay
 * around a 2x2 array (the paper's FPGA prototype arranges PEs in up to
 * 4x4 nearest-neighbor arrays).
 */

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "sim/mesh.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {
namespace {

TEST(Mesh, WiringCounts)
{
    // rows x cols mesh: 2 channels per adjacent pair, both directions.
    for (unsigned rows = 1; rows <= 4; ++rows) {
        for (unsigned cols = 1; cols <= 4; ++cols) {
            MeshBuilder builder(ArchParams{}, rows, cols);
            const FabricConfig config = builder.build();
            const unsigned links =
                rows * (cols - 1) + cols * (rows - 1);
            EXPECT_EQ(config.numChannels, 2 * links)
                << rows << "x" << cols;
            EXPECT_EQ(config.numPes, rows * cols);
        }
    }
}

TEST(Mesh, NeighborPortsAreCrossWired)
{
    MeshBuilder builder(ArchParams{}, 2, 2);
    const FabricConfig config = builder.build();
    // (0,0) east output must feed (0,1) west input.
    const int ch = config.outputChannel[builder.pe(0, 0)][kEast];
    ASSERT_NE(ch, kUnbound);
    EXPECT_EQ(config.inputChannel[builder.pe(0, 1)][kWest], ch);
    // And the reverse direction is a different channel.
    const int back = config.outputChannel[builder.pe(0, 1)][kWest];
    ASSERT_NE(back, kUnbound);
    EXPECT_NE(back, ch);
    EXPECT_EQ(config.inputChannel[builder.pe(0, 0)][kEast], back);
}

TEST(Mesh, EdgePortsStayUnbound)
{
    MeshBuilder builder(ArchParams{}, 2, 2);
    const FabricConfig config = builder.build();
    EXPECT_EQ(config.inputChannel[builder.pe(0, 0)][kNorth], kUnbound);
    EXPECT_EQ(config.inputChannel[builder.pe(0, 0)][kWest], kUnbound);
    EXPECT_EQ(config.outputChannel[builder.pe(1, 1)][kSouth], kUnbound);
    EXPECT_EQ(config.outputChannel[builder.pe(1, 1)][kEast], kUnbound);
}

TEST(Mesh, EdgePortValidation)
{
    MeshBuilder builder(ArchParams{}, 2, 2);
    // North port of a bottom-row PE is interior, not edge.
    EXPECT_ANY_THROW(builder.addEdgeReadPort(1, 0, kNorth));
    EXPECT_NO_THROW(builder.addEdgeReadPort(0, 0, kNorth));
}

TEST(Mesh, TokenRelayAroundTheRing)
{
    // Pass a counter clockwise around the 2x2 ring ten times, each PE
    // incrementing it: (0,0) -> (0,1) -> (1,1) -> (1,0) -> (0,0).
    // PE (0,0) seeds the token and checks for completion.
    const Program program = assemble(
        // PE 0 = (0,0): seed once, then relay east; after 40 hops the
        // token value reaches 40: stop.
        ".pe 0\n"
        "when %p == XXXXXX00: mov %o1.0, #0; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01 with %i2.0: uge %p4, %i2, #40; "
        "set %p = ZZZZZZ10;\n"
        "when %p == XXX0XX10: add %o1.0, %i2, #1; deq %i2; "
        "set %p = ZZZZZZ01;\n"
        "when %p == XXX1XX10: halt;\n"
        // PE 1 = (0,1): west in -> south out.
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i3.0: add %o2.0, %i3, #1; deq %i3;\n"
        // PE 2 = (1,0): east in -> north out.
        ".pe 2\n"
        "when %p == XXXXXXX0 with %i1.0: add %o0.0, %i1, #1; deq %i1;\n"
        // PE 3 = (1,1): north in -> west out.
        ".pe 3\n"
        "when %p == XXXXXXX0 with %i0.0: add %o3.0, %i0, #1; deq %i0;\n");

    MeshBuilder builder(ArchParams{}, 2, 2);
    const FabricConfig config = builder.build();
    CycleFabric fabric(config, program,
                       {PipelineShape{true, false, false}, true, true});
    const RunStatus status = fabric.run(100'000);
    // Only PE 0 halts; the ring then starves and the fabric goes
    // quiescent.
    EXPECT_EQ(status, RunStatus::Quiescent);
    EXPECT_TRUE(fabric.pe(0).halted());
    EXPECT_GE(fabric.pe(0).counters().retired, 10u);
}

} // namespace
} // namespace tia
