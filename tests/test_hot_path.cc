/**
 * @file
 * Equivalence tests for the hot-loop optimizations: the compiled
 * trigger-descriptor scheduler fast path, the ring-buffer TaggedQueue,
 * and the fabric's idle-PE sleep/wake machinery. Every optimization
 * must be invisible to the architecture — identical schedule outcomes,
 * identical queue semantics, bit-identical cycle counts, counters and
 * hang reports with sleep on and off.
 */

#include <algorithm>
#include <deque>
#include <random>
#include <utility>

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "sim/fault.hh"
#include "sim/queue.hh"
#include "sim/scheduler.hh"
#include "uarch/cycle_fabric.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace tia {
namespace {

// ---------------------------------------------------------------------
// Scheduler fast path vs reference, over random instructions & status.
// ---------------------------------------------------------------------

constexpr unsigned kQueues = 4;
constexpr unsigned kPreds = 8;

/** Fixed queue status backing both the view and the packed words. */
struct SyntheticStatus
{
    std::array<unsigned, kQueues> occupancy{};
    std::array<Tag, kQueues> headTag{};
    std::array<bool, kQueues> outputSpace{};
};

class SyntheticView : public QueueStatusView
{
  public:
    explicit SyntheticView(const SyntheticStatus &s) : s_(s) {}

    unsigned
    inputOccupancy(unsigned q) const override
    {
        return s_.occupancy[q];
    }

    std::optional<Tag>
    inputHeadTag(unsigned q) const override
    {
        if (s_.occupancy[q] == 0)
            return std::nullopt;
        return s_.headTag[q];
    }

    bool
    outputHasSpace(unsigned q) const override
    {
        return s_.outputSpace[q];
    }

  private:
    const SyntheticStatus &s_;
};

QueueStatusWords
packStatus(const SyntheticStatus &s)
{
    QueueStatusWords words;
    for (unsigned q = 0; q < kQueues; ++q) {
        if (s.occupancy[q] > 0) {
            words.inputReady |= std::uint32_t{1} << q;
            words.headTag[q] = s.headTag[q];
        }
        if (s.outputSpace[q])
            words.outputSpace |= std::uint32_t{1} << q;
    }
    return words;
}

Instruction
randomInstruction(std::mt19937 &rng)
{
    auto pick = [&](unsigned bound) {
        return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng);
    };

    Instruction inst;
    inst.trigger.valid = pick(10) != 0;
    for (unsigned p = 0; p < kPreds; ++p) {
        switch (pick(4)) {
          case 0:
            inst.trigger.predOn |= std::uint64_t{1} << p;
            break;
          case 1:
            inst.trigger.predOff |= std::uint64_t{1} << p;
            break;
          default:
            break;
        }
    }
    // Up to MaxCheck (2) distinct checked queues.
    const unsigned checks = pick(3);
    std::array<unsigned, kQueues> order = {0, 1, 2, 3};
    std::shuffle(order.begin(), order.end(), rng);
    for (unsigned c = 0; c < checks; ++c) {
        QueueCheck check;
        check.queue = static_cast<std::uint8_t>(order[c]);
        check.tag = static_cast<Tag>(pick(4));
        check.negate = pick(2) != 0;
        inst.trigger.queueChecks.push_back(check);
    }
    for (auto &src : inst.srcs) {
        switch (pick(4)) {
          case 0:
            src = {SrcType::InputQueue, static_cast<std::uint8_t>(pick(kQueues))};
            break;
          case 1:
            src = {SrcType::Reg, static_cast<std::uint8_t>(pick(4))};
            break;
          case 2:
            src = {SrcType::Immediate, 0};
            break;
          default:
            src = {SrcType::None, 0};
            break;
        }
    }
    switch (pick(4)) {
      case 0:
        inst.dst = {DstType::OutputQueue, static_cast<std::uint8_t>(pick(kQueues))};
        break;
      case 1:
        inst.dst = {DstType::Reg, 0};
        break;
      default:
        inst.dst = {DstType::None, 0};
        break;
    }
    std::shuffle(order.begin(), order.end(), rng);
    const unsigned deqs = pick(3);
    for (unsigned d = 0; d < deqs; ++d)
        inst.dequeues.push_back(static_cast<std::uint8_t>(order[d]));
    return inst;
}

TEST(SchedulerFastPath, MatchesReferenceOnRandomPrograms)
{
    std::mt19937 rng(0xC0FFEE);
    auto pick = [&](unsigned bound) {
        return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng);
    };

    for (unsigned trial = 0; trial < 2000; ++trial) {
        std::vector<Instruction> program;
        const unsigned size = 1 + pick(16);
        for (unsigned i = 0; i < size; ++i)
            program.push_back(randomInstruction(rng));
        const std::vector<TriggerDesc> descs = compileTriggerDescs(program);

        SyntheticStatus status;
        for (unsigned q = 0; q < kQueues; ++q) {
            status.occupancy[q] = pick(4);
            status.headTag[q] = static_cast<Tag>(pick(4));
            status.outputSpace[q] = pick(2) != 0;
        }
        const SyntheticView view(status);
        const QueueStatusWords words = packStatus(status);

        for (unsigned sample = 0; sample < 8; ++sample) {
            const std::uint64_t preds = rng() & ((1u << kPreds) - 1);
            // pendingPreds is nonzero only without prediction; bias
            // towards zero as in real runs, but cover the hazard path.
            const std::uint64_t pending =
                (sample % 3 == 0) ? (rng() & ((1u << kPreds) - 1)) : 0;

            const ScheduleResult ref =
                schedule(program, preds, pending, view);
            const ScheduleResult fast =
                schedule(descs, preds, pending, words);
            ASSERT_EQ(static_cast<int>(fast.outcome),
                      static_cast<int>(ref.outcome))
                << "trial " << trial;
            ASSERT_EQ(fast.index, ref.index) << "trial " << trial;

            // Condition evaluation agrees instruction by instruction.
            for (unsigned i = 0; i < size; ++i) {
                if (!program[i].trigger.valid)
                    continue;
                ASSERT_EQ(queueConditionsHold(descs[i], words),
                          queueConditionsHold(program[i], view))
                    << "trial " << trial << " inst " << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Ring-buffer TaggedQueue vs a deque reference model.
// ---------------------------------------------------------------------

/** The pre-ring TaggedQueue semantics, kept as an executable spec. */
struct DequeModel
{
    explicit DequeModel(unsigned capacity) : capacity(capacity) {}

    unsigned capacity;
    std::deque<Token> entries;
    std::deque<Token> pending;
    unsigned snapshot = 0;
    unsigned pops = 0;
    std::uint64_t totalPushes = 0;
    std::uint64_t totalPops = 0;

    bool canPush() const { return entries.size() + pending.size() < capacity; }

    void
    push(const Token &t)
    {
        pending.push_back(t);
        ++totalPushes;
    }

    Token
    pop()
    {
        Token t = entries.front();
        entries.pop_front();
        ++totalPops;
        ++pops;
        return t;
    }

    void
    beginCycle()
    {
        snapshot = static_cast<unsigned>(entries.size());
        pops = 0;
    }

    void
    commit()
    {
        for (const auto &t : pending)
            entries.push_back(t);
        pending.clear();
    }

    void
    pushImmediate(const Token &t)
    {
        entries.push_back(t);
        ++totalPushes;
    }
};

TEST(RingBufferQueue, MatchesDequeModelUnderRandomOps)
{
    std::mt19937 rng(0xDECADE);
    auto pick = [&](unsigned bound) {
        return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng);
    };

    for (unsigned trial = 0; trial < 200; ++trial) {
        const unsigned capacity = 1 + pick(7); // covers non-powers of 2
        TaggedQueue queue(capacity);
        DequeModel model(capacity);
        QueueEventLog log(8);
        queue.setEventLog(&log, 7);

        for (unsigned op = 0; op < 400; ++op) {
            switch (pick(6)) {
              case 0: // deferred push
                if (model.canPush()) {
                    const Token t{static_cast<Word>(rng()),
                                  static_cast<Tag>(pick(4))};
                    queue.push(t);
                    model.push(t);
                }
                break;
              case 1: // pop
                if (!model.entries.empty()) {
                    const Token expect = model.pop();
                    ASSERT_EQ(queue.pop(), expect);
                }
                break;
              case 2:
                queue.beginCycle();
                model.beginCycle();
                break;
              case 3:
                queue.commit();
                model.commit();
                break;
              case 4: // immediate push (functional mode: no pending)
                if (model.pending.empty() &&
                    model.entries.size() < capacity) {
                    const Token t{static_cast<Word>(rng()),
                                  static_cast<Tag>(pick(4))};
                    queue.pushImmediate(t);
                    model.pushImmediate(t);
                }
                break;
              default: { // deep peek
                const unsigned depth = pick(capacity + 1);
                const auto got = queue.peek(depth);
                if (depth < model.entries.size()) {
                    ASSERT_TRUE(got.has_value());
                    ASSERT_EQ(*got, model.entries[depth]);
                } else {
                    ASSERT_FALSE(got.has_value());
                }
                break;
              }
            }
            ASSERT_EQ(queue.size(), model.entries.size());
            ASSERT_EQ(queue.empty(), model.entries.empty());
            ASSERT_EQ(queue.snapshotSize(), model.snapshot);
            ASSERT_EQ(queue.popsThisCycle(), model.pops);
            ASSERT_EQ(queue.pendingPushes(), model.pending.size());
            ASSERT_EQ(queue.hasPendingPush(), !model.pending.empty());
            ASSERT_EQ(queue.totalPushes(), model.totalPushes);
            ASSERT_EQ(queue.totalPops(), model.totalPops);
        }
        EXPECT_EQ(log.progressEvents(), model.totalPushes + model.totalPops);
        if (model.totalPushes > 0) {
            ASSERT_EQ(log.pushedChannels().size(), 1u);
            EXPECT_EQ(log.pushedChannels().front(), 7u);
        }
        if (model.totalPushes + model.totalPops > 0) {
            ASSERT_EQ(log.dirtyChannels().size(), 1u);
            EXPECT_EQ(log.dirtyChannels().front(), 7u);
            EXPECT_TRUE(log.dirty(7));
        }
    }
}

TEST(RingBufferQueue, OverflowStillPanics)
{
    TaggedQueue queue(2);
    queue.push({1, 0});
    queue.push({2, 0});
    EXPECT_ANY_THROW(queue.push({3, 0}));
}

// ---------------------------------------------------------------------
// Idle-PE sleep/wake: bit-identical runs with the optimization off.
// ---------------------------------------------------------------------

/** Everything observable about one cycle-accurate execution. */
struct RunObservation
{
    RunStatus status;
    Cycle cycles;
    std::vector<PerfCounters> counters;
    std::vector<std::vector<Word>> regs;
    std::vector<std::uint64_t> preds;
    HangReport report;
    std::vector<Word> memory;

    bool operator==(const RunObservation &) const = default;
};

RunObservation
observeRun(const Workload &workload, const PeConfig &uarch, bool sleep,
           FaultInjector *injector = nullptr)
{
    CycleFabric fabric(workload.config, workload.program, uarch, injector);
    fabric.setIdleSleepEnabled(sleep);
    workload.preload(fabric.memory());

    RunObservation obs;
    obs.status = fabric.run();
    obs.cycles = fabric.now();
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
        obs.counters.push_back(fabric.pe(pe).counters());
        obs.regs.push_back(fabric.pe(pe).regs());
        obs.preds.push_back(fabric.pe(pe).preds());
    }
    obs.report = fabric.hangReport();
    obs.memory = fabric.memory().snapshot();

    // Host-side accounting must balance: every architectural PE cycle
    // was either executed or skipped-and-accounted.
    const FabricStepStats steps = fabric.stepStats();
    std::uint64_t pe_cycles = 0;
    for (const auto &c : obs.counters)
        pe_cycles += c.cycles;
    EXPECT_EQ(steps.peStepsExecuted + steps.peStepsSkipped, pe_cycles);
    if (!sleep || injector != nullptr)
        EXPECT_EQ(steps.peStepsSkipped, 0u);
    return obs;
}

TEST(IdlePeSleep, WorkloadSuiteBitIdentical)
{
    const std::vector<Workload> workloads =
        allWorkloads(WorkloadSizes::small());
    const std::vector<PeConfig> uarchs = {
        {allShapes()[0], false, false, false}, // TDX
        {allShapes()[0], false, true, false},  // TDX +Q
        {allShapes()[7], true, true, false},   // T|D|X1|X2 +P+Q
        {allShapes()[7], true, true, true},    // T|D|X1|X2 +P+N+Q
    };
    for (const Workload &workload : workloads) {
        for (const PeConfig &uarch : uarchs) {
            const RunObservation with = observeRun(workload, uarch, true);
            const RunObservation without =
                observeRun(workload, uarch, false);
            ASSERT_EQ(with, without)
                << workload.name << " / " << uarch.name();
            ASSERT_EQ(with.status, RunStatus::Halted) << workload.name;
        }
    }
}

TEST(IdlePeSleep, SkipsStepsOnSparseFabrics)
{
    // One worker plus many programless PEs: the sleep list should
    // elide nearly all of the idle PEs' steps while leaving the
    // worker's results untouched.
    const Workload workload = makeGcd(WorkloadSizes::small());
    FabricConfig config = workload.config;
    const unsigned total_pes = config.numPes + 15;
    config.inputChannel.resize(
        total_pes,
        std::vector<int>(config.params.numInputQueues, kUnbound));
    config.outputChannel.resize(
        total_pes,
        std::vector<int>(config.params.numOutputQueues, kUnbound));
    config.initialRegs.resize(total_pes);
    config.initialPreds.resize(total_pes, 0);
    config.numPes = total_pes;

    const PeConfig uarch{allShapes()[0], false, false, false};
    CycleFabric fabric(config, workload.program, uarch);
    workload.preload(fabric.memory());
    // Idle PEs never halt, so the run ends by quiescence after the
    // worker is done.
    ASSERT_EQ(fabric.run(), RunStatus::Quiescent);
    EXPECT_TRUE(fabric.pe(workload.workerPe).halted());

    const FabricStepStats steps = fabric.stepStats();
    EXPECT_GT(steps.peStepsSkipped, steps.peStepsExecuted);
    // Idle PEs still account one no-trigger cycle per fabric cycle.
    for (unsigned pe = config.numPes - 15; pe < total_pes; ++pe) {
        EXPECT_EQ(fabric.pe(pe).counters().cycles,
                  fabric.pe(pe).counters().noTrigger);
    }
}

TEST(IdlePeSleep, QuiescentStarvationIdentical)
{
    // A PE waiting forever on a never-fed input: with sleep it parks
    // immediately, yet quiescence timing, diagnosis and counters must
    // not move.
    ArchParams params;
    const Program program = assemble(
        "when %p == XXXXXXX0 with %i0.1: add %r0, %r0, %i0; deq %i0;\n",
        params);
    FabricBuilder builder(params, 2);
    builder.connect(1, 0, 0, 0); // feed PE0 from PE1, which never fires
    const FabricConfig config = builder.build();

    auto observe = [&](bool sleep) {
        CycleFabric fabric(config, program, {allShapes()[0], false, false,
                                             false});
        fabric.setIdleSleepEnabled(sleep);
        const RunStatus status = fabric.run();
        RunObservation obs;
        obs.status = status;
        obs.cycles = fabric.now();
        for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
            obs.counters.push_back(fabric.pe(pe).counters());
            obs.regs.push_back(fabric.pe(pe).regs());
            obs.preds.push_back(fabric.pe(pe).preds());
        }
        obs.report = fabric.hangReport();
        return obs;
    };
    const RunObservation with = observe(true);
    const RunObservation without = observe(false);
    ASSERT_EQ(with, without);
    EXPECT_EQ(with.status, RunStatus::Quiescent);
}

TEST(IdlePeSleep, FaultInjectionDisablesSleepAndStaysIdentical)
{
    // Stuck-status windows open and close without queue events, so a
    // fabric with an injector must not park PEs — and two runs of the
    // same plan stay deterministic regardless of the sleep knob.
    const Workload workload = makeGcd(WorkloadSizes::small());
    const PeConfig uarch{allShapes()[7], true, false, true};
    const FaultPlan plan =
        FaultPlan::parse("seed=42;mispredict:pe0@p0.05");

    FaultInjector a(plan);
    FaultInjector b(plan);
    const RunObservation with = observeRun(workload, uarch, true, &a);
    const RunObservation without = observeRun(workload, uarch, false, &b);
    ASSERT_EQ(with, without);
    EXPECT_GT(with.counters.at(workload.workerPe).faultsInjected, 0u);
}

/**
 * The counter-integrity contract (uarch/counters.hh): every PE cycle
 * lands in exactly one attribution bucket, except the cycles claimed
 * by instructions still in flight. Must hold on EVERY exit path —
 * including budget and quiescence exits where parked PEs have
 * unsettled sleep debt at the moment the run stops.
 */
void
expectBucketIntegrity(CycleFabric &fabric, const char *where)
{
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
        const PerfCounters &c = fabric.pe(pe).counters();
        const std::uint64_t buckets = c.retired + c.quashed +
                                      c.predicateHazard + c.dataHazard +
                                      c.forbidden + c.noTrigger;
        EXPECT_EQ(buckets + fabric.pe(pe).inFlight(), c.cycles)
            << where << " PE " << pe;
        // An unhalted PE's clock runs to the end of the fabric's.
        if (!fabric.pe(pe).halted()) {
            EXPECT_EQ(c.cycles, fabric.now()) << where << " PE " << pe;
        }
    }
}

TEST(IdlePeSleep, CountersSettleOnEveryExitPath)
{
    // A sparse fabric — one gcd worker plus 15 programless PEs that
    // park immediately — driven to each of the run() exit reasons.
    const Workload workload = makeGcd(WorkloadSizes::small());
    FabricConfig config = workload.config;
    const unsigned total_pes = config.numPes + 15;
    config.inputChannel.resize(
        total_pes,
        std::vector<int>(config.params.numInputQueues, kUnbound));
    config.outputChannel.resize(
        total_pes,
        std::vector<int>(config.params.numOutputQueues, kUnbound));
    config.initialRegs.resize(total_pes);
    config.initialPreds.resize(total_pes, 0);
    config.numPes = total_pes;
    const PeConfig uarch{allShapes()[7], true, true, true};

    {
        // Cycle-budget exit: the watchdog window never elapses, so the
        // run stops mid-flight with every idle PE still parked.
        CycleFabric fabric(config, workload.program, uarch);
        workload.preload(fabric.memory());
        ASSERT_EQ(fabric.run({50, 10'000}), RunStatus::StepLimit);
        expectBucketIntegrity(fabric, "step-limit");
    }
    {
        // Larger budget, same exit, after the worker made progress.
        CycleFabric fabric(config, workload.program, uarch);
        workload.preload(fabric.memory());
        ASSERT_EQ(fabric.run({200, 10'000}), RunStatus::StepLimit);
        expectBucketIntegrity(fabric, "step-limit-200");
    }
    {
        // Quiescence/watchdog exit: the worker halts, the idle PEs
        // starve, and the quiescence window trips.
        CycleFabric fabric(config, workload.program, uarch);
        workload.preload(fabric.memory());
        ASSERT_EQ(fabric.run({kDefaultMaxCycles, 100}),
                  RunStatus::Quiescent);
        EXPECT_TRUE(fabric.pe(workload.workerPe).halted());
        expectBucketIntegrity(fabric, "quiescent");
    }
    {
        // Halted exit on the unpadded fabric.
        CycleFabric fabric(workload.config, workload.program, uarch);
        workload.preload(fabric.memory());
        ASSERT_EQ(fabric.run(), RunStatus::Halted);
        expectBucketIntegrity(fabric, "halted");
    }
}

// ---------------------------------------------------------------------
// Incremental trigger resolution: the dirty-queue cache must be
// invisible next to the QueueStatusView reference scheduler.
// ---------------------------------------------------------------------

/** One run with the scheduler flavour pinned, plus its resolution
 *  accounting. Comparisons against the reference scheduler must stay
 *  field-wise on RunObservation — resolution counters legitimately
 *  differ between the flavours and are checked by identity instead. */
std::pair<RunObservation, ResolutionStats>
observeResolution(const Workload &workload, const PeConfig &uarch,
                  bool reference)
{
    CycleFabric fabric(workload.config, workload.program, uarch);
    fabric.setUseReferenceScheduler(reference);
    workload.preload(fabric.memory());

    RunObservation obs;
    obs.status = fabric.run();
    obs.cycles = fabric.now();
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
        obs.counters.push_back(fabric.pe(pe).counters());
        obs.regs.push_back(fabric.pe(pe).regs());
        obs.preds.push_back(fabric.pe(pe).preds());
    }
    obs.report = fabric.hangReport();
    obs.memory = fabric.memory().snapshot();
    return {obs, fabric.resolutionStats()};
}

TEST(ResolutionCache, WorkloadSuiteBitIdenticalToReferenceScheduler)
{
    const std::vector<Workload> workloads =
        allWorkloads(WorkloadSizes::small());
    const std::vector<PeConfig> uarchs = {
        {allShapes()[0], false, false, false}, // TDX
        {allShapes()[0], false, true, false},  // TDX +Q
        {allShapes()[7], true, true, false},   // T|D|X1|X2 +P+Q
        {allShapes()[7], true, true, true},    // T|D|X1|X2 +P+N+Q
    };
    bool any_skip = false;
    for (const Workload &workload : workloads) {
        for (const PeConfig &uarch : uarchs) {
            const auto [fast, fast_res] =
                observeResolution(workload, uarch, false);
            const auto [ref, ref_res] =
                observeResolution(workload, uarch, true);
            ASSERT_EQ(fast, ref)
                << workload.name << " / " << uarch.name();

            // The reference scheduler recomputes from scratch every
            // time; the cached path must do the same total number of
            // resolutions, split between seeds and skips.
            EXPECT_EQ(ref_res.incrementalSkips, 0u);
            EXPECT_EQ(fast_res.incrementalSkips + fast_res.fullResolves,
                      ref_res.fullResolves)
                << workload.name << " / " << uarch.name();
            any_skip = any_skip || fast_res.incrementalSkips > 0;
        }
    }
    EXPECT_TRUE(any_skip)
        << "the dirty-queue cache never skipped a re-resolution "
           "anywhere in the suite; the differential is vacuous";
}

TEST(ResolutionCache, FaultInjectionDisarmsIncrementalPath)
{
    // An injector can mutate queue contents behind the dirty
    // tracking, so its presence must force every resolution full —
    // and the run must still match an injected reference run.
    const Workload workload = makeGcd(WorkloadSizes::small());
    const PeConfig uarch{allShapes()[0], false, true, false};
    const FaultPlan plan = FaultPlan::parse(
        "seed=99;drop:ch0@p0.05;corrupt:ch0@p0.02,mask=0x4;"
        "mispredict:pe0@p0.1");

    FaultInjector a(plan);
    FaultInjector b(plan);
    const RunObservation fast = observeRun(workload, uarch, true, &a);
    const RunObservation ref = observeRun(workload, uarch, false, &b);
    EXPECT_EQ(fast, ref);

    FaultInjector c(plan);
    CycleFabric fabric(workload.config, workload.program, uarch, &c);
    workload.preload(fabric.memory());
    fabric.run();
    const ResolutionStats stats = fabric.resolutionStats();
    EXPECT_EQ(stats.incrementalSkips, 0u);
    EXPECT_GT(stats.fullResolves, 0u);
}

TEST(IdlePeSleep, MutatingAccessorWakesParkedPe)
{
    // A parked PE whose predicates are changed externally must be
    // reconsidered; pe() wakes it so the next cycle re-schedules.
    ArchParams params;
    const Program program =
        assemble("when %p == XXXXXXX1: halt;\n", params);
    FabricBuilder builder(params, 1);
    const FabricConfig config = builder.build();

    CycleFabric fabric(config, program, {allShapes()[0], false, false,
                                         false});
    for (unsigned i = 0; i < 10; ++i)
        fabric.step(); // p0 clear: no trigger; the PE parks
    EXPECT_GT(fabric.stepStats().peStepsSkipped, 0u);
    EXPECT_EQ(fabric.pe(0).counters().cycles, 10u);

    fabric.pe(0).setPreds(1); // wakes the PE as a side effect
    fabric.step();
    EXPECT_TRUE(fabric.pe(0).halted());
    EXPECT_EQ(fabric.pe(0).counters().cycles, 11u);
    EXPECT_EQ(fabric.pe(0).counters().retired, 1u);
}

} // namespace
} // namespace tia
