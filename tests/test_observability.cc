/**
 * @file
 * Observability layer tests: trace-derived counter reconstruction must
 * be bit-identical to the live PerfCounters under both scheduler paths
 * and under fault injection; the exporters must produce well-formed
 * documents; the metrics schema checker must accept what the tools
 * emit and reject corrupted documents.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/binary_ring.hh"
#include "obs/chrome_trace.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/reconstruct.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"
#include "uarch/cycle_fabric.hh"
#include "uarch/fabric_metrics.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace tia {
namespace {

/** Buffers every event for direct inspection. */
struct VectorSink : TraceSink
{
    std::vector<TraceEvent> events;

    void record(const TraceEvent &event) override
    {
        events.push_back(event);
    }
};

std::vector<PeConfig>
crossCheckUarchs()
{
    const char *names[] = {
        "TDX",               // single cycle, no speculation
        "T|DX +P+Q",         // split trigger, prediction + eff. status
        "TD|X1|X2 +P",       // split execute, prediction only
        "T|D|X1|X2 +P+N+Q",  // deepest pipe, nested speculation
    };
    std::vector<PeConfig> configs;
    for (const char *name : names) {
        const auto config = parseConfigName(name);
        EXPECT_TRUE(config.has_value()) << name;
        configs.push_back(*config);
    }
    return configs;
}

/**
 * Run @p workload under @p uarch with a CpiReconstructor attached and
 * assert every PE's trace-derived counters match the live ones bit
 * for bit.
 */
void
expectTraceMatchesCounters(const Workload &workload, const PeConfig &uarch,
                           bool referenceScheduler)
{
    const std::string where = workload.name + " / " + uarch.name() +
                              (referenceScheduler ? " (reference)"
                                                  : " (fast path)");
    CpiReconstructor recon;
    CycleFabric fabric(workload.config, workload.program, uarch);
    workload.preload(fabric.memory());
    fabric.setTraceSink(&recon, TraceLevel::Events);
    fabric.setUseReferenceScheduler(referenceScheduler);
    const RunStatus status = fabric.run();
    EXPECT_EQ(status, RunStatus::Halted) << where;

    ASSERT_EQ(recon.numPes(), fabric.numPes()) << where;
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
        const PerfCounters &live = fabric.pe(pe).counters();
        const PerfCounters rebuilt = recon.counters(pe);
        const std::string at = where + " PE " + std::to_string(pe);
        EXPECT_EQ(rebuilt.cycles, live.cycles) << at;
        EXPECT_EQ(rebuilt.retired, live.retired) << at;
        EXPECT_EQ(rebuilt.quashed, live.quashed) << at;
        EXPECT_EQ(rebuilt.predicateHazard, live.predicateHazard) << at;
        EXPECT_EQ(rebuilt.dataHazard, live.dataHazard) << at;
        EXPECT_EQ(rebuilt.forbidden, live.forbidden) << at;
        EXPECT_EQ(rebuilt.noTrigger, live.noTrigger) << at;
        EXPECT_EQ(rebuilt.predicateWrites, live.predicateWrites) << at;
        EXPECT_EQ(rebuilt.predictions, live.predictions) << at;
        EXPECT_EQ(rebuilt.mispredictions, live.mispredictions) << at;
        EXPECT_EQ(rebuilt.faultsInjected, live.faultsInjected) << at;
        EXPECT_EQ(rebuilt.faultRecoveries, live.faultRecoveries) << at;
        EXPECT_EQ(recon.inFlight(pe), fabric.pe(pe).inFlight()) << at;
        EXPECT_EQ(recon.halted(pe), fabric.pe(pe).halted()) << at;

        // The CPI stacks derived from the two counter sets are the
        // same arithmetic on the same integers — bit-identical.
        const CpiStack liveStack = cpiStack(live);
        const CpiStack traceStack = cpiStack(rebuilt);
        EXPECT_EQ(liveStack.retired, traceStack.retired) << at;
        EXPECT_EQ(liveStack.quashed, traceStack.quashed) << at;
        EXPECT_EQ(liveStack.predicateHazard, traceStack.predicateHazard)
            << at;
        EXPECT_EQ(liveStack.dataHazard, traceStack.dataHazard) << at;
        EXPECT_EQ(liveStack.forbidden, traceStack.forbidden) << at;
        EXPECT_EQ(liveStack.noTrigger, traceStack.noTrigger) << at;
    }
}

TEST(Observability, TraceCpiBitIdenticalOnTable3Suite)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    for (const PeConfig &uarch : crossCheckUarchs()) {
        for (const Workload &workload : suite) {
            expectTraceMatchesCounters(workload, uarch, false);
            expectTraceMatchesCounters(workload, uarch, true);
        }
    }
}

TEST(Observability, ReferenceSchedulerBitIdenticalToFastPath)
{
    const auto suite = allWorkloads(WorkloadSizes::small());
    for (const PeConfig &uarch : crossCheckUarchs()) {
        for (const Workload &workload : suite) {
            CycleRunOptions fast;
            CycleRunOptions reference;
            reference.referenceScheduler = true;
            const WorkloadRun a = runCycle(workload, uarch, fast);
            const WorkloadRun b = runCycle(workload, uarch, reference);
            const std::string at = workload.name + " / " + uarch.name();
            EXPECT_TRUE(a.ok()) << at << ": " << a.checkError;
            EXPECT_TRUE(b.ok()) << at << ": " << b.checkError;
            EXPECT_EQ(a.totalCycles, b.totalCycles) << at;
            EXPECT_EQ(a.worker, b.worker) << at;
        }
    }
}

TEST(Observability, FaultInjectionEventsMatchCounters)
{
    const Workload workload = makeGcd(WorkloadSizes::small());
    const auto uarch = parseConfigName("T|D|X1|X2 +P+Q");
    ASSERT_TRUE(uarch.has_value());
    const FaultPlan plan =
        FaultPlan::parse("seed=9;mispredict:pe0@p0.2");

    VectorSink events;
    CpiReconstructor recon;
    TeeSink tee;
    tee.add(&events);
    tee.add(&recon);

    CycleRunOptions options;
    options.faults = &plan;
    options.goldenCrossCheck = true;
    options.trace = &tee;
    const WorkloadRun run = runCycle(workload, *uarch, options);
    EXPECT_EQ(run.status, RunStatus::Halted);
    ASSERT_GT(run.worker.faultsInjected, 0u)
        << "plan fired nothing; the test needs a hotter fault plan";

    // Every injected flip surfaces as a Predict event with the fault
    // bit, every rollback repair as a Resolve event with the recovery
    // bit — and the totals agree with the live counters.
    std::uint64_t flipped = 0, recovered = 0, mispredicts = 0;
    for (const TraceEvent &event : events.events) {
        if (event.kind == TraceEventKind::Predict && (event.value & 2))
            ++flipped;
        if (event.kind == TraceEventKind::Resolve) {
            if (event.value & 2)
                ++mispredicts;
            if (event.value & 4)
                ++recovered;
        }
    }
    EXPECT_EQ(flipped, run.worker.faultsInjected);
    EXPECT_EQ(recovered, run.worker.faultRecoveries);
    EXPECT_EQ(mispredicts, run.worker.mispredictions);

    // And the full reconstruction still matches bit for bit.
    const PerfCounters rebuilt = recon.counters(workload.workerPe);
    EXPECT_EQ(rebuilt.cycles, run.worker.cycles);
    EXPECT_EQ(rebuilt.retired, run.worker.retired);
    EXPECT_EQ(rebuilt.quashed, run.worker.quashed);
    EXPECT_EQ(rebuilt.faultsInjected, run.worker.faultsInjected);
    EXPECT_EQ(rebuilt.faultRecoveries, run.worker.faultRecoveries);
}

TEST(Observability, ChromeTraceIsWellFormedJson)
{
    const Workload workload = makeGcd(WorkloadSizes::small());
    const auto uarch = parseConfigName("T|DX +P+Q");
    ASSERT_TRUE(uarch.has_value());

    ChromeTraceSink chrome;
    chrome.setPeMetadata(0, "PE 0", uarch->shape.segmentNames());
    CycleFabric fabric(workload.config, workload.program, *uarch);
    workload.preload(fabric.memory());
    fabric.setTraceSink(&chrome, TraceLevel::Cycles);
    EXPECT_EQ(fabric.run(), RunStatus::Halted);
    EXPECT_GT(chrome.recorded(), 0u);

    std::string error;
    const auto doc = JsonValue::parse(chrome.finish(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isArray());
    EXPECT_GT(doc->items().size(), 2u);
    for (const JsonValue &event : doc->items()) {
        ASSERT_TRUE(event.isObject());
        EXPECT_NE(event.find("ph"), nullptr);
        EXPECT_NE(event.find("pid"), nullptr);
    }
}

TEST(Observability, PipelineSegmentNames)
{
    const auto deep = parseConfigName("T|D|X1|X2 +P+N+Q");
    ASSERT_TRUE(deep.has_value());
    EXPECT_EQ(deep->shape.segmentNames(),
              (std::vector<std::string>{"T", "D", "X1", "X2"}));
    const auto shallow = parseConfigName("TDX");
    ASSERT_TRUE(shallow.has_value());
    EXPECT_EQ(shallow->shape.segmentNames(),
              (std::vector<std::string>{"TDX"}));
    const auto mixed = parseConfigName("T|DX1|X2");
    ASSERT_TRUE(mixed.has_value());
    EXPECT_EQ(mixed->shape.segmentNames(),
              (std::vector<std::string>{"T", "DX1", "X2"}));
}

TEST(Observability, BinaryRingWrapsKeepingNewest)
{
    BinaryRingSink ring(16);
    for (unsigned i = 0; i < 100; ++i) {
        ring.record({/*cycle=*/i, /*pe=*/0, TraceEventKind::Issue,
                     /*arg=*/0, /*index=*/static_cast<std::uint16_t>(i),
                     /*value=*/i});
    }
    EXPECT_EQ(ring.size(), 16u);
    EXPECT_EQ(ring.recorded(), 100u);
    EXPECT_EQ(ring.dropped(), 84u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i).cycle, 84 + i) << i;

    const std::string path = "obs_ring_test.bin";
    ASSERT_TRUE(ring.writeTo(path));
    std::vector<BinaryTraceRecord> records;
    BinaryTraceFileHeader header;
    ASSERT_TRUE(readBinaryTrace(path, records, &header));
    std::remove(path.c_str());
    EXPECT_EQ(header.totalRecorded, 100u);
    EXPECT_EQ(header.stored, 16u);
    ASSERT_EQ(records.size(), 16u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i], ring.at(i)) << i;
}

TEST(Observability, MetricsDocumentsValidate)
{
    const Workload workload = makeMean(WorkloadSizes::small());
    const auto uarch = parseConfigName("TD|X +Q");
    ASSERT_TRUE(uarch.has_value());

    // The runner-level entry (what tia-sweep emits per cell).
    const WorkloadRun run = runCycle(workload, *uarch);
    ASSERT_TRUE(run.ok()) << run.checkError;
    MetricsRegistry registry("test");
    registry.addRun(workloadRunMetrics(run, *uarch, workload.name));

    // The fabric-level entry (what tia-sim emits per uarch).
    CycleFabric fabric(workload.config, workload.program, *uarch);
    workload.preload(fabric.memory());
    const RunStatus status = fabric.run();
    registry.addRun(fabricRunMetrics(fabric, *uarch, status));

    std::string error;
    const auto doc = JsonValue::parse(registry.dump(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const auto problems = validateMetricsDocument(*doc);
    EXPECT_TRUE(problems.empty())
        << "first problem: " << problems.front();
}

TEST(Observability, ValidatorRejectsBrokenCounters)
{
    // A PE entry whose buckets cannot account for its cycles.
    PerfCounters broken;
    broken.cycles = 10;
    broken.retired = 1;
    MetricsRegistry registry("test");
    JsonValue run = JsonValue::object();
    run["uarch"] = "TDX";
    run["status"] = "halted";
    run["cycles"] = 10;
    JsonValue pes = JsonValue::array();
    pes.push(peMetricsJson(0, broken, 0));
    run["pes"] = std::move(pes);
    registry.addRun(std::move(run));

    const auto doc = JsonValue::parse(registry.dump());
    ASSERT_TRUE(doc.has_value());
    const auto problems = validateMetricsDocument(*doc);
    ASSERT_FALSE(problems.empty());
    bool integrity = false;
    for (const std::string &problem : problems)
        integrity |= problem.find("attribution buckets") !=
                     std::string::npos;
    EXPECT_TRUE(integrity) << problems.front();
}

TEST(Observability, ValidatorAcceptsBatchSweepBlock)
{
    BatchStats stats;
    stats.width = 8;
    stats.groups = 4;
    stats.lanes = 32;
    stats.hits = 12;
    stats.misses = 20;
    stats.simulated = 26; // 20 misses + 6 verify-mode re-simulations
    stats.verified = 6;
    stats.cancelled = 2;
    MetricsRegistry registry("test");
    registry.addRun(JsonValue::parse(
        R"({"uarch": "TDX", "status": "halted", "cycles": 0,
            "pes": []})")
                        .value());
    JsonValue sweep = JsonValue::object();
    sweep["batch"] = batchStatsJson(stats);
    registry.root()["sweep"] = std::move(sweep);

    const auto doc = JsonValue::parse(registry.dump());
    ASSERT_TRUE(doc.has_value());
    const auto problems = validateMetricsDocument(*doc);
    EXPECT_TRUE(problems.empty())
        << "first problem: " << problems.front();
}

TEST(Observability, ValidatorRejectsBrokenBatchSweepBlock)
{
    // Lanes that are neither hits nor misses violate the batch
    // runner's classification identity.
    BatchStats stats;
    stats.width = 8;
    stats.groups = 1;
    stats.lanes = 8;
    stats.hits = 3;
    stats.misses = 3;
    stats.simulated = 3;
    MetricsRegistry registry("test");
    registry.addRun(JsonValue::parse(
        R"({"uarch": "TDX", "status": "halted", "cycles": 0,
            "pes": []})")
                        .value());
    JsonValue sweep = JsonValue::object();
    sweep["batch"] = batchStatsJson(stats);
    registry.root()["sweep"] = std::move(sweep);

    const auto doc = JsonValue::parse(registry.dump());
    ASSERT_TRUE(doc.has_value());
    const auto problems = validateMetricsDocument(*doc);
    ASSERT_FALSE(problems.empty());
    bool identity = false;
    for (const std::string &problem : problems)
        identity |= problem.find("hits + misses") != std::string::npos;
    EXPECT_TRUE(identity) << problems.front();
}

TEST(Observability, ValidatorRejectsWrongSchema)
{
    const auto doc = JsonValue::parse(
        R"({"schema": "bogus/v0", "runs": [{"uarch": "TDX",
            "status": "halted", "cycles": 0, "pes": []}]})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(validateMetricsDocument(*doc).empty());
}

} // namespace
} // namespace tia
