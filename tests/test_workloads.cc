/**
 * @file
 * End-to-end tests for the Table 3 benchmark suite: every workload
 * validates against its golden model on the functional simulator and
 * on representative cycle-accurate microarchitectures, and the
 * functional and cycle-accurate runs agree architecturally.
 */

#include <gtest/gtest.h>

#include "workloads/runner.hh"

namespace tia {
namespace {

const WorkloadSizes kSizes = WorkloadSizes::small();

class AllWorkloads : public ::testing::TestWithParam<unsigned>
{
  protected:
    Workload workload() const { return allWorkloads(kSizes)[GetParam()]; }
};

TEST_P(AllWorkloads, FunctionalValidates)
{
    const Workload w = workload();
    const WorkloadRun run = runFunctional(w);
    EXPECT_EQ(run.status, RunStatus::Halted) << w.name;
    EXPECT_EQ(run.checkError, "") << w.name;
}

TEST_P(AllWorkloads, SingleCycleValidates)
{
    const Workload w = workload();
    const WorkloadRun run =
        runCycle(w, {PipelineShape{false, false, false}, false, false});
    EXPECT_EQ(run.status, RunStatus::Halted) << w.name;
    EXPECT_EQ(run.checkError, "") << w.name;
}

TEST_P(AllWorkloads, DeepestPipelineWithBothOptimizationsValidates)
{
    const Workload w = workload();
    const WorkloadRun run =
        runCycle(w, {PipelineShape{true, true, true}, true, true});
    EXPECT_EQ(run.status, RunStatus::Halted) << w.name;
    EXPECT_EQ(run.checkError, "") << w.name;
}

TEST_P(AllWorkloads, AllThirtyTwoMicroarchitecturesAgreeWithFunctional)
{
    const Workload w = workload();
    const WorkloadRun golden = runFunctional(w);
    ASSERT_TRUE(golden.ok()) << w.name << ": " << golden.checkError;

    for (const PeConfig &config : allConfigs()) {
        const WorkloadRun run = runCycle(w, config);
        EXPECT_EQ(run.status, RunStatus::Halted)
            << w.name << " on " << config.name();
        EXPECT_EQ(run.checkError, "")
            << w.name << " on " << config.name();
        // Architectural equivalence: identical dynamic instruction
        // counts per PE (quashed instructions do not retire).
        EXPECT_EQ(run.dynamicInstructions, golden.dynamicInstructions)
            << w.name << " on " << config.name();
    }
}

TEST_P(AllWorkloads, CycleCountersAreConsistent)
{
    const Workload w = workload();
    for (const PeConfig &config : figure5Configs()) {
        const WorkloadRun run = runCycle(w, config);
        ASSERT_TRUE(run.ok()) << w.name << " on " << config.name();
        const PerfCounters &c = run.worker;
        // Worker halted => its pipe drained: buckets account for every
        // cycle.
        EXPECT_EQ(c.cycles, c.retired + c.quashed + c.predicateHazard +
                                c.dataHazard + c.forbidden + c.noTrigger)
            << w.name << " on " << config.name();
        EXPECT_GE(c.cpi(), 1.0) << w.name << " on " << config.name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllWorkloads, ::testing::Range(0u, 10u),
    [](const auto &info) {
        return allWorkloads(WorkloadSizes::small())[info.param].name;
    });

TEST(Workloads, SuiteHasTenBenchmarksInTableOrder)
{
    const auto suite = allWorkloads(kSizes);
    ASSERT_EQ(suite.size(), 10u);
    const char *expected[] = {"bst",    "gcd",   "mean",   "arg_max",
                              "dot_product", "filter", "merge", "stream",
                              "string_search", "udiv"};
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Workloads, DotProductWorkerUsesNoPredicateControlFlow)
{
    // Figure 4 note: "the worker PE in dot product does not rely on
    // predicates for control flow, just the semantic information
    // encoded in operand tags."
    const Workload w = makeDotProduct(kSizes);
    const WorkloadRun run = runFunctional(w);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.worker.predicateWrites, 0u);
}

TEST(Workloads, DotProductWorkerDynamicCountMatchesPaperFormula)
{
    // The paper reports 20,003 dynamic instructions for dot product;
    // our worker retires 2N + 3 instructions, which reproduces that
    // exactly at the paper's N = 10,000.
    const Workload w = makeDotProduct(kSizes);
    const WorkloadRun run = runFunctional(w);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.worker.retired,
              2ull * kSizes.dotCount + 3);
}

TEST(Workloads, StaticInstructionBudgetRespected)
{
    // Every PE program fits the 16-entry instruction store (NIns).
    for (const auto &w : allWorkloads(kSizes)) {
        for (const auto &pe : w.program.pes)
            EXPECT_LE(pe.size(), 16u) << w.name;
    }
}

} // namespace
} // namespace tia
