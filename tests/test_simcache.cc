/**
 * @file
 * The content-addressed simulation result cache (src/cache/): digest
 * and serialization primitives, the single-flight SimCache, the
 * persistent TIASIMC1 tier (round-trip, truncation, corruption), the
 * WorkloadRun codec, verify-on-hit mode, and the headline contract —
 * cached runCycle results are bit-identical to uncached ones,
 * including under fault injection.
 *
 * GoldenDigest pins the cache keys of canonical (workload, uarch)
 * pairs. A pin changing means every persistent cache silently goes
 * cold: bump kCacheSchemaVersion (cache/serialize.hh) when the key
 * derivation intentionally changes, then re-pin here.
 */

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/digest.hh"
#include "cache/run_cache.hh"
#include "cache/serialize.hh"
#include "cache/simcache.hh"
#include "core/logging.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"
#include "uarch/config.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace tia;

// ---------------------------------------------------------------------
// Digest primitives.

TEST(Digest, HexRoundTripsAndOrders)
{
    const Digest128 d = digest128("hello, cache");
    EXPECT_EQ(d.hex().size(), 32u);
    Digest128 back;
    ASSERT_TRUE(Digest128::fromHex(d.hex(), back));
    EXPECT_EQ(back, d);

    Digest128 scratch;
    EXPECT_FALSE(Digest128::fromHex("", scratch));
    EXPECT_FALSE(Digest128::fromHex("xyz", scratch));
    EXPECT_FALSE(Digest128::fromHex(std::string(31, 'a'), scratch));
    EXPECT_FALSE(Digest128::fromHex(std::string(32, 'g'), scratch));
}

TEST(Digest, DistinguishesNearbyInputs)
{
    // Same length, one bit apart, and prefix/suffix variants must all
    // land on distinct digests (any collision here is a bug, not luck:
    // these are fixed inputs).
    const Digest128 a = digest128("abcdefgh");
    const Digest128 b = digest128("abcdefgi");
    const Digest128 c = digest128("abcdefg");
    const Digest128 d = digest128("abcdefghh");
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
    EXPECT_NE(digest128(""), digest128(std::string(1, '\0')));
}

TEST(Digest, StableAcrossCalls)
{
    // Every tail length 0..15 exercises a different switch arm in the
    // MurmurHash3 tail handling.
    const std::string base = "0123456789abcdef";
    for (std::size_t len = 0; len <= base.size(); ++len) {
        const std::string s = base.substr(0, len);
        EXPECT_EQ(digest128(s), digest128(s)) << "len " << len;
    }
}

// ---------------------------------------------------------------------
// ByteWriter / ByteReader.

TEST(ByteCodec, RoundTripsEveryType)
{
    ByteWriter out;
    out.u8(0xab);
    out.u32(0xdeadbeef);
    out.u64(0x0123456789abcdefull);
    out.str("hello");
    out.str("");

    ByteReader in(out.data());
    EXPECT_EQ(in.u8(), 0xab);
    EXPECT_EQ(in.u32(), 0xdeadbeefu);
    EXPECT_EQ(in.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(in.str(), "hello");
    EXPECT_EQ(in.str(), "");
    EXPECT_TRUE(in.ok());
    EXPECT_TRUE(in.done());
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(ByteCodec, ReaderLatchesOnTruncation)
{
    ByteWriter out;
    out.u32(7);
    ByteReader in(out.data());
    EXPECT_EQ(in.u32(), 7u);
    // Past the end: zero-valued reads, failure latched, never throws.
    EXPECT_EQ(in.u64(), 0u);
    EXPECT_FALSE(in.ok());
    EXPECT_FALSE(in.done());
    EXPECT_EQ(in.str(), "");
    EXPECT_FALSE(in.ok());
}

TEST(ByteCodec, DoneRequiresFullConsumption)
{
    ByteWriter out;
    out.u32(1);
    out.u32(2);
    ByteReader in(out.data());
    EXPECT_EQ(in.u32(), 1u);
    EXPECT_TRUE(in.ok());
    EXPECT_FALSE(in.done()); // trailing bytes unread
}

// ---------------------------------------------------------------------
// Golden cache keys. These pin the full canonical serialization chain
// (Program, FabricConfig, PeConfig, CycleRunOptions, FaultPlan) behind
// workloadRunKey. See the file comment for the re-pin protocol.

TEST(GoldenDigest, CanonicalWorkloadUarchPairs)
{
    const WorkloadSizes sizes = WorkloadSizes::small();
    const CycleRunOptions defaults;

    // Single-cycle TDX, default options.
    EXPECT_EQ(workloadRunKey(makeDotProduct(sizes), PeConfig{},
                             defaults)
                  .hex(),
              "e7d0fbd5aa2ba245b794dcc7284eaa88");

    // Deepest pipeline with both optimizations.
    const PeConfig deep{PipelineShape{true, true, true}, true, true};
    EXPECT_EQ(workloadRunKey(makeBst(sizes), deep, defaults).hex(),
              "13794b7ca90b4167b431a9353e772bbf");

    // A seeded fault plan folds into the key.
    const FaultPlan plan = FaultPlan::parse("seed=7;drop:ch0@p0.01");
    CycleRunOptions injected;
    injected.faults = &plan;
    injected.goldenCrossCheck = true;
    EXPECT_EQ(workloadRunKey(makeGcd(sizes), PeConfig{}, injected).hex(),
              "106e383c45472c8fdcf5a922fd232011");
}

TEST(GoldenDigest, KeySeparatesEveryInput)
{
    const WorkloadSizes sizes = WorkloadSizes::small();
    const Workload dot = makeDotProduct(sizes);
    const CycleRunOptions defaults;
    const Digest128 base = workloadRunKey(dot, PeConfig{}, defaults);

    // Microarchitecture.
    EXPECT_NE(workloadRunKey(dot, PeConfig{PipelineShape{true}, false,
                                           false},
                             defaults),
              base);
    // Workload (different program + memory preload).
    EXPECT_NE(workloadRunKey(makeMean(sizes), PeConfig{}, defaults),
              base);
    // Workload size (same program, different preload image).
    EXPECT_NE(workloadRunKey(makeDotProduct(WorkloadSizes::full()),
                             PeConfig{}, defaults),
              base);
    // Run options.
    CycleRunOptions budget;
    budget.maxCycles = 12345;
    EXPECT_NE(workloadRunKey(dot, PeConfig{}, budget), base);
    CycleRunOptions reference;
    reference.referenceScheduler = true;
    EXPECT_NE(workloadRunKey(dot, PeConfig{}, reference), base);
    // Fault plan (and its seed).
    const FaultPlan a = FaultPlan::parse("seed=1;drop:ch0@p0.5");
    const FaultPlan b = FaultPlan::parse("seed=2;drop:ch0@p0.5");
    CycleRunOptions fa, fb;
    fa.faults = &a;
    fb.faults = &b;
    EXPECT_NE(workloadRunKey(dot, PeConfig{}, fa), base);
    EXPECT_NE(workloadRunKey(dot, PeConfig{}, fa),
              workloadRunKey(dot, PeConfig{}, fb));
    // An empty plan is the same as no plan (neither injects).
    const FaultPlan none = FaultPlan::parse("seed=1");
    CycleRunOptions fn;
    fn.faults = &none;
    EXPECT_EQ(workloadRunKey(dot, PeConfig{}, fn), base);
}

// ---------------------------------------------------------------------
// SimCache in-memory tier.

TEST(SimCache, MissComputeHit)
{
    SimCache cache;
    const Digest128 key = digest128("key");
    int calls = 0;
    const auto compute = [&calls] {
        ++calls;
        return std::string("payload");
    };
    EXPECT_EQ(cache.getOrCompute(key, compute), "payload");
    EXPECT_EQ(cache.getOrCompute(key, compute), "payload");
    EXPECT_EQ(calls, 1);
    const SimCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.lookups, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.coalesced, 0u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(SimCache, SingleFlightComputesOnce)
{
    SimCache cache;
    const Digest128 key = digest128("contended");
    constexpr unsigned kThreads = 8;
    std::atomic<int> calls{0};
    std::barrier gate(kThreads);
    std::vector<std::string> results(kThreads);
    {
        std::vector<std::jthread> threads;
        for (unsigned t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                gate.arrive_and_wait();
                results[t] = cache.getOrCompute(key, [&] {
                    calls.fetch_add(1);
                    // Hold leadership long enough that the other
                    // threads arrive while the computation is pending.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
                    return std::string("winner");
                });
            });
        }
    }
    EXPECT_EQ(calls.load(), 1);
    for (const std::string &r : results)
        EXPECT_EQ(r, "winner");
    const SimCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.lookups, kThreads);
    EXPECT_EQ(stats.misses, 1u);
    // However the race resolved, every lookup is exactly one of a
    // hit, a miss, or a coalesced wait.
    EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
              stats.lookups);
}

TEST(SimCache, LeaderExceptionReachesWaitersAndUnblocksRetry)
{
    SimCache cache;
    const Digest128 key = digest128("explodes");
    EXPECT_THROW(cache.getOrCompute(
                     key,
                     []() -> std::string {
                         throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The failed flight is forgotten: a retry computes fresh.
    EXPECT_EQ(cache.getOrCompute(
                  key, [] { return std::string("recovered"); }),
              "recovered");
    const SimCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
              stats.lookups);
}

TEST(SimCache, VerifyModeRecomputesOnHit)
{
    SimCache cache;
    cache.setVerifyHits(true);
    const Digest128 key = digest128("verified");
    const auto compute = [] { return std::string("stable"); };
    EXPECT_EQ(cache.getOrCompute(key, compute), "stable");
    EXPECT_EQ(cache.getOrCompute(key, compute), "stable");
    EXPECT_EQ(cache.stats().verifiedHits, 1u);

    // A cached payload that no longer matches the recomputation is a
    // determinism violation: fatal, not a silent repair.
    SimCache poisoned;
    poisoned.setVerifyHits(true);
    poisoned.put(key, "stale");
    EXPECT_THROW(poisoned.getOrCompute(key, compute), FatalError);
}

// ---------------------------------------------------------------------
// Persistent tier.

class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(SimCachePersist, SaveLoadRoundTrip)
{
    TempFile file("simcache_roundtrip.tiasimc");
    SimCache cache;
    cache.put(digest128("a"), "alpha");
    cache.put(digest128("b"), std::string("\x00\x01\xff", 3));
    std::string error;
    ASSERT_TRUE(cache.save(file.path(), &error)) << error;

    SimCache warm;
    ASSERT_TRUE(warm.load(file.path(), &error)) << error;
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(warm.size(), 2u);
    EXPECT_EQ(warm.stats().loaded, 2u);
    ASSERT_TRUE(warm.peek(digest128("a")).has_value());
    EXPECT_EQ(*warm.peek(digest128("a")), "alpha");
    ASSERT_TRUE(warm.peek(digest128("b")).has_value());
    EXPECT_EQ(*warm.peek(digest128("b")),
              std::string("\x00\x01\xff", 3));
}

TEST(SimCachePersist, MissingFileIsAnEmptyTier)
{
    SimCache cache;
    std::string error;
    EXPECT_TRUE(cache.load(::testing::TempDir() +
                               "simcache_never_written.tiasimc",
                           &error));
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(SimCachePersist, TruncationDegradesToValidPrefix)
{
    TempFile file("simcache_truncated.tiasimc");
    SimCache cache;
    for (int i = 0; i < 8; ++i) {
        cache.put(digest128("entry " + std::to_string(i)),
                  std::string(100, static_cast<char>('a' + i)));
    }
    std::string error;
    ASSERT_TRUE(cache.save(file.path(), &error)) << error;

    // Chop the tail: some valid prefix of entries must survive and
    // the load must not crash or adopt garbage.
    std::ifstream in(file.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    in.close();
    bytes.resize(bytes.size() / 2);
    std::ofstream(file.path(), std::ios::binary)
        << bytes;

    SimCache warm;
    EXPECT_TRUE(warm.load(file.path(), &error));
    EXPECT_FALSE(error.empty()); // the dropped suffix is reported
    EXPECT_LT(warm.size(), 8u);
    // Whatever survived must be bit-exact (per-entry checksums).
    for (int i = 0; i < 8; ++i) {
        const auto entry =
            warm.peek(digest128("entry " + std::to_string(i)));
        if (entry.has_value()) {
            EXPECT_EQ(*entry,
                      std::string(100, static_cast<char>('a' + i)));
        }
    }
}

TEST(SimCachePersist, ForeignFileIsDiscardedWhole)
{
    TempFile file("simcache_foreign.tiasimc");
    std::ofstream(file.path(), std::ios::binary)
        << "this is not a cache file at all";
    SimCache cache;
    std::string error;
    EXPECT_FALSE(cache.load(file.path(), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(SimCachePersist, SavedFilesAreDeterministic)
{
    TempFile a("simcache_det_a.tiasimc");
    TempFile b("simcache_det_b.tiasimc");
    // Insert in different orders; the file is keyed-order either way.
    SimCache first, second;
    first.put(digest128("x"), "one");
    first.put(digest128("y"), "two");
    second.put(digest128("y"), "two");
    second.put(digest128("x"), "one");
    ASSERT_TRUE(first.save(a.path(), nullptr));
    ASSERT_TRUE(second.save(b.path(), nullptr));

    const auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };
    EXPECT_EQ(slurp(a.path()), slurp(b.path()));
}

// ---------------------------------------------------------------------
// WorkloadRun codec and the end-to-end bit-identity contract.

TEST(RunCodec, WorkloadRunRoundTrips)
{
    const Workload w = makeGcd(WorkloadSizes::small());
    const WorkloadRun run = runCycle(w, PeConfig{});
    ASSERT_TRUE(run.ok());
    const auto decoded = decodeWorkloadRun(encodeWorkloadRun(run));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, run);
}

TEST(RunCodec, RejectsTruncatedAndTrailingBytes)
{
    const Workload w = makeGcd(WorkloadSizes::small());
    const WorkloadRun run = runCycle(w, PeConfig{});
    const std::string payload = encodeWorkloadRun(run);
    EXPECT_FALSE(decodeWorkloadRun(payload.substr(0, payload.size() / 2))
                     .has_value());
    EXPECT_FALSE(decodeWorkloadRun(payload + "x").has_value());
    EXPECT_FALSE(decodeWorkloadRun("").has_value());
}

TEST(RunCacheEndToEnd, CachedRunsAreBitIdentical)
{
    const Workload w = makeDotProduct(WorkloadSizes::small());
    const PeConfig uarch{PipelineShape{true, false, false}, true, true};

    const WorkloadRun uncached = runCycle(w, uarch);

    SimCache cache;
    CycleRunOptions options;
    options.cache = &cache;
    const WorkloadRun cold = runCycle(w, uarch, options);
    const WorkloadRun warm = runCycle(w, uarch, options);
    EXPECT_EQ(cold, uncached);
    EXPECT_EQ(warm, uncached);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(RunCacheEndToEnd, FaultInjectedRunsAreBitIdentical)
{
    const Workload w = makeStream(WorkloadSizes::small());
    const PeConfig uarch{PipelineShape{true, true, false}, true, false};
    const FaultPlan plan =
        FaultPlan::parse("seed=11;drop:ch0@p0.02;mispredict:pe0@p0.01");

    CycleRunOptions injected;
    injected.faults = &plan;
    injected.goldenCrossCheck = true;
    const WorkloadRun uncached = runCycle(w, uarch, injected);

    SimCache cache;
    cache.setVerifyHits(true);
    CycleRunOptions cached = injected;
    cached.cache = &cache;
    const WorkloadRun cold = runCycle(w, uarch, cached);
    const WorkloadRun warm = runCycle(w, uarch, cached);
    EXPECT_EQ(cold, uncached);
    EXPECT_EQ(warm, uncached);
    // The warm hit re-simulated under --cache-verify semantics.
    EXPECT_EQ(cache.stats().verifiedHits, 1u);
}

TEST(RunCacheEndToEnd, MatrixWithCacheMatchesWithout)
{
    const std::vector<Workload> suite = {
        makeGcd(WorkloadSizes::small()),
        makeMean(WorkloadSizes::small()),
    };
    const std::vector<PeConfig> configs = {
        PeConfig{},
        PeConfig{PipelineShape{true, true, true}, true, true},
    };
    const CycleMatrix plain = runCycleMatrix(suite, configs, {}, 2);

    SimCache cache;
    CycleRunOptions options;
    options.cache = &cache;
    const CycleMatrix cold = runCycleMatrix(suite, configs, options, 2);
    const CycleMatrix warm = runCycleMatrix(suite, configs, options, 2);
    ASSERT_EQ(plain.runs.size(), cold.runs.size());
    EXPECT_EQ(plain.runs, cold.runs);
    EXPECT_EQ(plain.runs, warm.runs);
    const SimCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.lookups, 2 * plain.runs.size());
    EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
              stats.lookups);
    // The warm pass can only hit.
    EXPECT_GE(stats.hits, plain.runs.size());
}

TEST(RunCacheEndToEnd, CorruptEntryDegradesToRecompute)
{
    const Workload w = makeGcd(WorkloadSizes::small());
    const WorkloadRun expected = runCycle(w, PeConfig{});

    SimCache cache;
    // Poison the exact key with an undecodable payload.
    const Digest128 key = workloadRunKey(w, PeConfig{}, {});
    cache.put(key, "garbage that is not a WorkloadRun");

    CycleRunOptions options;
    options.cache = &cache;
    const WorkloadRun run = runCycle(w, PeConfig{}, options);
    EXPECT_EQ(run, expected);
    // The poisoned entry was replaced with a decodable one. Both
    // lookups count as cache-level hits — the decode failure and
    // recompute happen in runCycle, above getOrCompute.
    const WorkloadRun again = runCycle(w, PeConfig{}, options);
    EXPECT_EQ(again, expected);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(RunCacheEndToEnd, TracingBypassesTheCache)
{
    const Workload w = makeGcd(WorkloadSizes::small());
    SimCache cache;
    CycleRunOptions options;
    options.cache = &cache;
    TeeSink sink; // empty tee: a null sink, but tracing is "on"
    options.trace = &sink;
    (void)runCycle(w, PeConfig{}, options);
    EXPECT_EQ(cache.stats().lookups, 0u);
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
