/**
 * @file
 * FabricConfig / FabricBuilder validation tests: every channel needs
 * exactly one producer and one consumer; port bindings and initial
 * state must be in range.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "sim/fabric_config.hh"

namespace tia {
namespace {

TEST(FabricConfig, MinimalSinglePeValidates)
{
    FabricBuilder builder(ArchParams{}, 1);
    EXPECT_NO_THROW(builder.build());
}

TEST(FabricConfig, ConnectWiresProducerToConsumer)
{
    FabricBuilder builder(ArchParams{}, 2);
    const unsigned ch = builder.connect(0, 3, 1, 0);
    const FabricConfig config = builder.build();
    EXPECT_EQ(config.numChannels, 1u);
    EXPECT_EQ(config.outputChannel[0][3], static_cast<int>(ch));
    EXPECT_EQ(config.inputChannel[1][0], static_cast<int>(ch));
}

TEST(FabricConfig, ReadPortCreatesTwoChannels)
{
    FabricBuilder builder(ArchParams{}, 1);
    builder.addReadPort(0, 0, 0);
    const FabricConfig config = builder.build();
    EXPECT_EQ(config.numChannels, 2u);
    ASSERT_EQ(config.readPorts.size(), 1u);
}

TEST(FabricConfig, ChannelWithoutConsumerRejected)
{
    FabricBuilder builder(ArchParams{}, 1);
    const unsigned ch = builder.newChannel();
    builder.bindOutput(0, 0, ch);
    EXPECT_THROW(builder.build(), FatalError);
}

TEST(FabricConfig, ChannelWithoutProducerRejected)
{
    FabricBuilder builder(ArchParams{}, 1);
    const unsigned ch = builder.newChannel();
    builder.bindInput(0, 0, ch);
    EXPECT_THROW(builder.build(), FatalError);
}

TEST(FabricConfig, TwoProducersRejected)
{
    FabricBuilder builder(ArchParams{}, 2);
    const unsigned ch = builder.connect(0, 0, 1, 0);
    builder.bindOutput(1, 1, ch); // second producer
    EXPECT_THROW(builder.build(), FatalError);
}

TEST(FabricConfig, TwoConsumersRejected)
{
    FabricBuilder builder(ArchParams{}, 2);
    const unsigned ch = builder.connect(0, 0, 1, 0);
    builder.bindInput(0, 1, ch); // second consumer
    EXPECT_THROW(builder.build(), FatalError);
}

TEST(FabricConfig, OutOfRangePortRejected)
{
    FabricBuilder builder(ArchParams{}, 1);
    EXPECT_ANY_THROW(builder.bindOutput(0, 7, builder.newChannel()));
    EXPECT_ANY_THROW(builder.bindInput(0, 9, builder.newChannel()));
    EXPECT_ANY_THROW(builder.bindInput(3, 0, builder.newChannel()));
}

TEST(FabricConfig, OversizedInitialRegsRejected)
{
    FabricBuilder builder(ArchParams{}, 1);
    EXPECT_ANY_THROW(
        builder.setInitialRegs(0, std::vector<Word>(9, 0))); // NRegs = 8
}

TEST(FabricConfig, InitialPredsBeyondNPredsRejected)
{
    FabricBuilder builder(ArchParams{}, 1);
    builder.setInitialPreds(0, std::uint64_t{1} << 8); // p8 doesn't exist
    EXPECT_THROW(builder.build(), FatalError);
}

TEST(FabricConfig, SplitWritePortBindsTwoPes)
{
    FabricBuilder builder(ArchParams{}, 2);
    builder.addWritePortSplit(0, 1, 1, 2);
    const FabricConfig config = builder.build();
    ASSERT_EQ(config.writePorts.size(), 1u);
    EXPECT_EQ(config.outputChannel[0][1],
              static_cast<int>(config.writePorts[0].addrChannel));
    EXPECT_EQ(config.outputChannel[1][2],
              static_cast<int>(config.writePorts[0].dataChannel));
}

} // namespace
} // namespace tia
