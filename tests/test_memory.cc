/**
 * @file
 * Memory and read/write port tests: bounds checking, end-to-end load
 * latency, request pipelining, tag echo, response backpressure, and
 * write pairing.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"

namespace tia {
namespace {

TEST(Memory, ReadWriteAndBounds)
{
    Memory memory(16);
    memory.write(3, 99);
    EXPECT_EQ(memory.read(3), 99u);
    EXPECT_EQ(memory.read(0), 0u);
    EXPECT_ANY_THROW(memory.read(16));
    EXPECT_ANY_THROW(memory.write(16, 1));
}

/** Drive a read port cycle by cycle from raw queues. */
struct ReadHarness
{
    Memory memory{64};
    TaggedQueue addresses{4};
    TaggedQueue responses{4};
    MemoryReadPort port{memory, addresses, responses, 4};
    Cycle now = 0;

    void
    cycle()
    {
        addresses.beginCycle();
        responses.beginCycle();
        port.step(now);
        addresses.commit();
        responses.commit();
        ++now;
    }
};

TEST(MemoryPort, EndToEndLoadLatencyIsFourCycles)
{
    // Paper Section 3: on-chip memory load latency of four cycles.
    // Our contract: address token leaves the producer at cycle t
    // (committed at end of t); the response is trigger-visible at
    // t + 4.
    ReadHarness h;
    h.memory.write(7, 1234);

    // Cycle t = 0: producer pushes the address (commits at end).
    h.addresses.beginCycle();
    h.responses.beginCycle();
    h.addresses.push({7, 0});
    h.port.step(h.now);
    h.addresses.commit();
    h.responses.commit();
    ++h.now;

    Cycle visible_at = 0;
    for (Cycle t = 1; t < 12 && visible_at == 0; ++t) {
        h.cycle();
        if (!h.responses.empty())
            visible_at = h.now; // start of the cycle it can trigger
    }
    EXPECT_EQ(visible_at, 4u);
    EXPECT_EQ(h.responses.pop().data, 1234u);
}

TEST(MemoryPort, EchoesRequestTag)
{
    ReadHarness h;
    h.memory.write(1, 11);
    h.memory.write(2, 22);
    h.addresses.pushImmediate({1, 2});
    h.addresses.pushImmediate({2, 1});
    for (int i = 0; i < 12; ++i)
        h.cycle();
    ASSERT_EQ(h.responses.size(), 2u);
    EXPECT_EQ(h.responses.pop(), (Token{11, 2}));
    EXPECT_EQ(h.responses.pop(), (Token{22, 1}));
}

TEST(MemoryPort, PipelinesOneRequestPerCycle)
{
    // Four back-to-back requests complete in latency + 3 extra
    // cycles, not 4x latency.
    ReadHarness h;
    for (Word a = 0; a < 4; ++a) {
        h.memory.write(a, a + 100);
        h.addresses.pushImmediate({a, 0});
    }
    unsigned cycles_until_all = 0;
    while (h.responses.size() < 4 && cycles_until_all < 20) {
        // Drain nothing; capacity 4 holds all responses.
        h.cycle();
        ++cycles_until_all;
    }
    EXPECT_LE(cycles_until_all, 8u);
    for (Word a = 0; a < 4; ++a)
        EXPECT_EQ(h.responses.pop().data, a + 100);
}

TEST(MemoryPort, RespectsResponseBackpressure)
{
    // A full response queue must stall deliveries, not drop them.
    Memory memory(16);
    TaggedQueue addresses(8);
    TaggedQueue responses(1); // tiny
    MemoryReadPort port(memory, addresses, responses, 4);
    memory.write(0, 7);
    memory.write(1, 8);
    addresses.pushImmediate({0, 0});
    addresses.pushImmediate({1, 0});
    Cycle now = 0;
    auto cycle = [&] {
        addresses.beginCycle();
        responses.beginCycle();
        port.step(now++);
        addresses.commit();
        responses.commit();
    };
    for (int i = 0; i < 10; ++i)
        cycle();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.pop().data, 7u);
    for (int i = 0; i < 10; ++i)
        cycle();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.pop().data, 8u);
    EXPECT_FALSE(port.busy());
}

TEST(MemoryPort, WritePortPairsAddressAndData)
{
    Memory memory(16);
    TaggedQueue addresses(4);
    TaggedQueue data(4);
    MemoryWritePort port(memory, addresses, data);
    Cycle now = 0;
    auto cycle = [&] {
        addresses.beginCycle();
        data.beginCycle();
        port.step(now++);
        addresses.commit();
        data.commit();
    };

    // Address arrives first; nothing happens until data shows up.
    addresses.pushImmediate({5, 0});
    cycle();
    EXPECT_EQ(port.writesPerformed(), 0u);
    data.pushImmediate({77, 0});
    cycle();
    EXPECT_EQ(port.writesPerformed(), 1u);
    EXPECT_EQ(memory.read(5), 77u);

    // One pair per cycle, in order.
    addresses.pushImmediate({6, 0});
    addresses.pushImmediate({7, 0});
    data.pushImmediate({1, 0});
    data.pushImmediate({2, 0});
    cycle();
    EXPECT_EQ(port.writesPerformed(), 2u);
    cycle();
    EXPECT_EQ(port.writesPerformed(), 3u);
    EXPECT_EQ(memory.read(6), 1u);
    EXPECT_EQ(memory.read(7), 2u);
}

TEST(MemoryPort, FunctionalServiceIsImmediate)
{
    Memory memory(16);
    TaggedQueue addresses(4);
    TaggedQueue responses(4);
    MemoryReadPort port(memory, addresses, responses, 4);
    memory.write(9, 900);
    addresses.pushImmediate({9, 3});
    EXPECT_TRUE(port.serviceOne());
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.pop(), (Token{900, 3}));
    EXPECT_FALSE(port.serviceOne()); // nothing left
}

} // namespace
} // namespace tia
