/**
 * @file
 * Encode/decode round-trip tests for the Table 2 binary layout,
 * including a randomized property sweep.
 */

#include <random>

#include <gtest/gtest.h>

#include "core/assembler.hh"
#include "core/encoding.hh"
#include "core/logging.hh"

namespace tia {
namespace {

Instruction
sampleInstruction()
{
    Instruction inst;
    inst.trigger.valid = true;
    inst.trigger.predOn = 0b0000'0001;
    inst.trigger.predOff = 0b1111'0000;
    inst.trigger.queueChecks = {{0, 0, false}, {3, 2, true}};
    inst.op = Op::Ult;
    inst.srcs[0] = {SrcType::InputQueue, 3};
    inst.srcs[1] = {SrcType::InputQueue, 0};
    inst.dst = {DstType::Predicate, 7};
    inst.dequeues = {0, 3};
    inst.predSet = 0b0000'0001;
    inst.predClear = 0b0000'0010;
    inst.imm = 0xdeadbeef;
    return inst;
}

TEST(Encoding, RoundTripSample)
{
    const ArchParams params;
    const Instruction inst = sampleInstruction();
    const MachineCode code = encode(params, inst);
    EXPECT_EQ(code.size(), 4u); // 128 bits.
    const Instruction decoded = decode(params, code);
    EXPECT_EQ(decoded, inst);
}

TEST(Encoding, InvalidInstructionEncodesToZero)
{
    const ArchParams params;
    Instruction invalid;
    invalid.trigger.valid = false;
    const MachineCode code = encode(params, invalid);
    for (auto word : code)
        EXPECT_EQ(word, 0u);
    EXPECT_FALSE(decode(params, code).trigger.valid);
}

TEST(Encoding, PaddingBitsStayClear)
{
    // The 22 pad bits above bit 105 must never be set.
    const ArchParams params;
    Instruction inst = sampleInstruction();
    inst.imm = 0xffffffff;
    inst.trigger.predOn = 0xff;
    inst.trigger.predOff = 0;
    const MachineCode code = encode(params, inst);
    // Bits 106..127 live in word 3 bits 10..31.
    EXPECT_EQ(code[3] >> 10, 0u);
}

TEST(Encoding, RejectsWrongLength)
{
    const ArchParams params;
    EXPECT_THROW(decode(params, MachineCode(3, 0)), FatalError);
    EXPECT_THROW(decode(params, MachineCode(5, 0)), FatalError);
}

TEST(Encoding, StoreRoundTripPadsWithInvalid)
{
    const ArchParams params;
    std::vector<Instruction> insts = {sampleInstruction()};
    const MachineCode store = encodeStore(params, insts);
    EXPECT_EQ(store.size(), 4u * params.numInstructions);
    const auto decoded = decodeStore(params, store);
    ASSERT_EQ(decoded.size(), params.numInstructions);
    EXPECT_EQ(decoded[0], insts[0]);
    for (unsigned i = 1; i < params.numInstructions; ++i)
        EXPECT_FALSE(decoded[i].trigger.valid);
}

TEST(Encoding, StoreRejectsOversizedProgram)
{
    const ArchParams params;
    std::vector<Instruction> insts(params.numInstructions + 1,
                                   sampleInstruction());
    EXPECT_THROW(encodeStore(params, insts), FatalError);
}

/** Generate a random valid instruction under @p params. */
Instruction
randomInstruction(std::mt19937 &rng, const ArchParams &params)
{
    auto pick = [&](unsigned bound) {
        return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng);
    };

    Instruction inst;
    inst.trigger.valid = true;
    const std::uint64_t mask = (std::uint64_t{1} << params.numPreds) - 1;
    inst.trigger.predOn = rng() & mask;
    inst.trigger.predOff = rng() & mask & ~inst.trigger.predOn;

    const unsigned num_checks = pick(params.maxCheck + 1);
    std::vector<unsigned> queues;
    for (unsigned q = 0; q < params.numInputQueues; ++q)
        queues.push_back(q);
    std::shuffle(queues.begin(), queues.end(), rng);
    for (unsigned c = 0; c < num_checks; ++c) {
        inst.trigger.queueChecks.push_back(
            {static_cast<std::uint8_t>(queues[c]),
             static_cast<Tag>(pick(params.maxTag() + 1)), rng() % 2 == 0});
    }

    // Pick an op with a plain register/immediate-friendly signature.
    for (;;) {
        const Op op = static_cast<Op>(pick(params.numOps));
        const OpInfo &info = opInfo(op);
        inst.op = op;
        bool used_imm = false;
        for (unsigned s = 0; s < 2; ++s) {
            if (s >= info.numSrcs) {
                inst.srcs[s] = {SrcType::None, 0};
                continue;
            }
            switch (pick(used_imm ? 2 : 3)) {
              case 0:
                inst.srcs[s] = {SrcType::Reg,
                                static_cast<std::uint8_t>(
                                    pick(params.numRegs))};
                break;
              case 1:
                inst.srcs[s] = {SrcType::InputQueue,
                                static_cast<std::uint8_t>(
                                    pick(params.numInputQueues))};
                break;
              default:
                inst.srcs[s] = {SrcType::Immediate, 0};
                used_imm = true;
                break;
            }
        }
        if (info.hasResult) {
            switch (pick(3)) {
              case 0:
                inst.dst = {DstType::Reg, static_cast<std::uint8_t>(
                                              pick(params.numRegs))};
                break;
              case 1:
                inst.dst = {DstType::OutputQueue,
                            static_cast<std::uint8_t>(
                                pick(params.numOutputQueues))};
                inst.outTag = static_cast<Tag>(pick(params.maxTag() + 1));
                break;
              default:
                inst.dst = {DstType::Predicate,
                            static_cast<std::uint8_t>(pick(params.numPreds))};
                break;
            }
        } else {
            inst.dst = {DstType::None, 0};
        }
        break;
    }

    const unsigned num_deq = pick(params.maxDeq + 1);
    std::shuffle(queues.begin(), queues.end(), rng);
    for (unsigned d = 0; d < num_deq; ++d)
        inst.dequeues.push_back(static_cast<std::uint8_t>(queues[d]));

    inst.predSet = rng() & mask;
    inst.predClear = rng() & mask & ~inst.predSet;
    if (inst.dst.type == DstType::Predicate) {
        const std::uint64_t dst_bit = std::uint64_t{1} << inst.dst.index;
        inst.predSet &= ~dst_bit;
        inst.predClear &= ~dst_bit;
    }
    inst.imm = rng();
    return inst;
}

class EncodingProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodingProperty, RandomRoundTrip)
{
    ArchParams params;
    std::mt19937 rng(GetParam());
    // Vary the architecture too: a few parameter points per seed.
    switch (GetParam() % 4) {
      case 1:
        params.numRegs = 16;
        params.tagWidth = 3;
        break;
      case 2:
        params.numPreds = 4;
        params.numInputQueues = 2;
        params.numOutputQueues = 2;
        params.maxCheck = 2;
        params.maxDeq = 2;
        break;
      case 3:
        params.maxCheck = 4;
        params.maxDeq = 4;
        break;
      default:
        break;
    }
    params.validate();
    for (unsigned trial = 0; trial < 200; ++trial) {
        const Instruction inst = randomInstruction(rng, params);
        ASSERT_NO_THROW(inst.validate(params));
        const MachineCode code = encode(params, inst);
        const Instruction decoded = decode(params, code);
        EXPECT_EQ(decoded, inst) << inst.toString(params);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingProperty,
                         ::testing::Range(0u, 8u));

TEST(Encoding, DisassembleReassembleRoundTrip)
{
    // toString must produce assembly that reassembles to the same
    // instruction.
    const ArchParams params;
    std::mt19937 rng(1234);
    for (unsigned trial = 0; trial < 100; ++trial) {
        Instruction inst = randomInstruction(rng, params);
        // The immediate is only rendered when a source references it.
        if (inst.srcs[0].type != SrcType::Immediate &&
            inst.srcs[1].type != SrcType::Immediate) {
            inst.imm = 0;
        }
        const std::string text = inst.toString(params);
        Program program;
        ASSERT_NO_THROW(program = assemble(text, params)) << text;
        ASSERT_EQ(program.pes.size(), 1u);
        ASSERT_EQ(program.pes[0].size(), 1u);
        EXPECT_EQ(program.pes[0][0], inst) << text;
    }
}

} // namespace
} // namespace tia
