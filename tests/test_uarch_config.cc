/**
 * @file
 * Pipeline-shape and configuration enumeration tests.
 */

#include <set>

#include <gtest/gtest.h>

#include "uarch/config.hh"

namespace tia {
namespace {

TEST(UarchConfig, EightShapesWithCanonicalNames)
{
    const auto &shapes = allShapes();
    ASSERT_EQ(shapes.size(), 8u);
    std::set<std::string> names;
    for (const auto &shape : shapes)
        names.insert(shape.name());
    const std::set<std::string> expected = {
        "TDX",      "TDX1|X2",   "TD|X",      "T|DX",
        "TD|X1|X2", "T|DX1|X2",  "T|D|X",     "T|D|X1|X2"};
    EXPECT_EQ(names, expected);
}

TEST(UarchConfig, DepthsMatchStagePartitions)
{
    for (const auto &shape : allShapes()) {
        const unsigned depth = shape.depth();
        EXPECT_GE(depth, 1u);
        EXPECT_LE(depth, 4u);
        EXPECT_EQ(depth, 1u + shape.splitTD + shape.splitDX +
                             shape.splitX);
        // Phase positions are ordered.
        EXPECT_LE(shape.segT(), shape.segD());
        EXPECT_LE(shape.segD(), shape.segX1());
        EXPECT_LE(shape.segX1(), shape.segX2());
        EXPECT_EQ(shape.segX2(), depth - 1);
    }
}

TEST(UarchConfig, SingleCycleIsDepthOne)
{
    const PipelineShape tdx{false, false, false};
    EXPECT_EQ(tdx.depth(), 1u);
    EXPECT_EQ(tdx.name(), "TDX");
}

TEST(UarchConfig, ThirtyTwoMicroarchitectures)
{
    const auto configs = allConfigs();
    EXPECT_EQ(configs.size(), 32u);
    std::set<std::string> names;
    for (const auto &config : configs)
        names.insert(config.name());
    EXPECT_EQ(names.size(), 32u); // all distinct
}

TEST(UarchConfig, Figure5SubsetIsBasePPQ)
{
    const auto configs = figure5Configs();
    EXPECT_EQ(configs.size(), 24u);
    for (std::size_t i = 0; i < configs.size(); i += 3) {
        EXPECT_FALSE(configs[i].predictPredicates);
        EXPECT_FALSE(configs[i].effectiveQueueStatus);
        EXPECT_TRUE(configs[i + 1].predictPredicates);
        EXPECT_FALSE(configs[i + 1].effectiveQueueStatus);
        EXPECT_TRUE(configs[i + 2].predictPredicates);
        EXPECT_TRUE(configs[i + 2].effectiveQueueStatus);
        EXPECT_EQ(configs[i].shape, configs[i + 1].shape);
        EXPECT_EQ(configs[i].shape, configs[i + 2].shape);
    }
}

TEST(UarchConfig, OptimizationSuffixesInNames)
{
    const PipelineShape shape{true, false, true};
    EXPECT_EQ((PeConfig{shape, false, false}).name(), "T|DX1|X2");
    EXPECT_EQ((PeConfig{shape, true, false}).name(), "T|DX1|X2 +P");
    EXPECT_EQ((PeConfig{shape, false, true}).name(), "T|DX1|X2 +Q");
    EXPECT_EQ((PeConfig{shape, true, true}).name(), "T|DX1|X2 +P+Q");
}

} // namespace
} // namespace tia
