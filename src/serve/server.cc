#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/assembler.hh"
#include "core/encoding.hh"
#include "core/logging.hh"
#include "exec/stop_token.hh"
#include "exec/thread_pool.hh"
#include "serve/frame.hh"
#include "uarch/config.hh"
#include "workloads/runner.hh"

namespace tia {

namespace {

using Clock = std::chrono::steady_clock;

/** Poll slice for loops that must observe drain/stop flags. */
constexpr int kSliceMs = 200;
/** Completion-wait slice while watching the client socket. */
constexpr auto kJobWaitSlice = std::chrono::milliseconds(100);
/** Latency reservoir bound (ring once full). */
constexpr std::size_t kLatencyReservoir = 65'536;

double
elapsedMs(Clock::time_point since, Clock::time_point now)
{
    return std::chrono::duration<double, std::milli>(now - since).count();
}

// ---- request parameter helpers (misuse throws FatalError, which the
// ---- worker maps onto a typed bad_request response) ------------------

std::string
paramString(const JsonValue &params, const char *key,
            const std::string &fallback)
{
    const JsonValue *value = params.find(key);
    if (value == nullptr)
        return fallback;
    fatalIf(!value->isString(), "\"", key, "\" must be a string");
    return value->str();
}

std::string
requireString(const JsonValue &params, const char *key)
{
    const JsonValue *value = params.find(key);
    fatalIf(value == nullptr || !value->isString() || value->str().empty(),
            "\"", key, "\" (non-empty string) is required");
    return value->str();
}

std::uint64_t
paramU64(const JsonValue &params, const char *key, std::uint64_t fallback)
{
    const JsonValue *value = params.find(key);
    if (value == nullptr)
        return fallback;
    fatalIf(!value->isNumber() || value->number() < 0,
            "\"", key, "\" must be a non-negative integer");
    return static_cast<std::uint64_t>(value->number());
}

bool
paramBool(const JsonValue &params, const char *key, bool fallback)
{
    const JsonValue *value = params.find(key);
    if (value == nullptr)
        return fallback;
    fatalIf(value->kind() != JsonValue::Kind::Bool,
            "\"", key, "\" must be a boolean");
    return value->boolean();
}

WorkloadSizes
paramSizes(const JsonValue &params, std::string *name = nullptr)
{
    const std::string sizes = paramString(params, "sizes", "small");
    if (name != nullptr)
        *name = sizes;
    if (sizes == "small")
        return WorkloadSizes::small();
    if (sizes == "full")
        return WorkloadSizes::full();
    fatal("unknown \"sizes\" \"", sizes, "\" (expected small or full)");
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

JsonValue
stringArray(const std::vector<std::string> &values)
{
    JsonValue out = JsonValue::array();
    for (const std::string &value : values)
        out.push(value);
    return out;
}

bool
isHang(RunStatus status)
{
    return status == RunStatus::Deadlock || status == RunStatus::Livelock ||
           status == RunStatus::StepLimit;
}

JsonValue
hangDetail(const WorkloadRun &run)
{
    JsonValue detail = JsonValue::object();
    detail["classification"] = runStatusName(run.hang.classification);
    detail["summary"] = run.hang.summary;
    detail["cycles"] = run.totalCycles;
    detail["wait_chain"] = stringArray(run.hang.waitChain);
    detail["blocked"] = stringArray(run.hang.blockedAgents);
    return detail;
}

/** True when the peer of @p fd is gone (closed or errored). */
bool
peerDisconnected(int fd)
{
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 0);
    if (rc <= 0)
        return false;
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0)
        return true;
    if ((pfd.revents & POLLIN) != 0) {
        // Data pending is a pipelined request, not a hangup; only a
        // zero-byte read means the peer closed its end.
        char byte;
        const ssize_t n =
            ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
        return n == 0;
    }
    return false;
}

int
listenUnix(const std::string &path, bool *bound, std::string *error)
{
    struct sockaddr_un addr = {};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "unix socket path too long (" +
                     std::to_string(path.size()) + " bytes): " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(AF_UNIX): ") + strerror(errno);
        return -1;
    }
    ::unlink(path.c_str()); // stale socket from a previous run
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        if (error)
            *error = "bind/listen(" + path + "): " + strerror(errno);
        ::close(fd);
        return -1;
    }
    *bound = true;
    return fd;
}

int
listenTcp(int port, int *boundPort, std::string *error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(AF_INET): ") + strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        if (error)
            *error = "bind/listen(127.0.0.1:" + std::to_string(port) +
                     "): " + strerror(errno);
        ::close(fd);
        return -1;
    }
    struct sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&bound),
                      &len) == 0)
        *boundPort = ntohs(bound.sin_port);
    return fd;
}

} // namespace

/**
 * One admitted request in flight. The connection thread creates it,
 * waits on `cv`/`done` and owns the socket write; a worker fills
 * `response`/`outcome`. The stop source carries both the request
 * deadline and disconnect/shutdown cancellation into the simulator.
 */
struct Server::Job
{
    ServeRequest request;
    Clock::time_point receivedAt;
    StopSource stop;
    std::atomic<bool> disconnected{false};
    bool hang = false; ///< Simulation ended in a diagnosed hang class.

    enum class Outcome
    {
        Completed,
        CancelledDeadline,
        CancelledDisconnect,
        Failed,
    };
    Outcome outcome = Outcome::Completed;

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    JsonValue response;
};

Server::Server(ServerOptions options, ServeRegistry registry)
    : opt_(std::move(options)), registry_(std::move(registry))
{
}

Server::~Server()
{
    if (started_)
        hardStop();
    closeListeners();
    for (int &fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

bool
Server::start(std::string *error)
{
    fatalIf(started_, "Server::start called twice");
    if (!opt_.cachePath.empty())
        cache_.load(opt_.cachePath, nullptr); // cold start is fine
    cache_.setVerifyHits(opt_.cacheVerify);

    if (::pipe2(wakePipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
        if (error)
            *error = std::string("pipe2: ") + strerror(errno);
        return false;
    }
    if (!opt_.unixPath.empty()) {
        unixFd_ = listenUnix(opt_.unixPath, &boundUnix_, error);
        if (unixFd_ < 0)
            return false;
    }
    if (opt_.tcpPort >= 0) {
        tcpFd_ = listenTcp(opt_.tcpPort, &boundTcpPort_, error);
        if (tcpFd_ < 0) {
            closeListeners();
            return false;
        }
    }
    if (unixFd_ < 0 && tcpFd_ < 0) {
        if (error)
            *error = "no listener configured (need a unix path or a "
                     "tcp port)";
        return false;
    }

    startTime_ = Clock::now();
    workerCount_ =
        opt_.workers != 0 ? opt_.workers : ThreadPool::defaultConcurrency();
    workers_.reserve(workerCount_);
    for (unsigned i = 0; i < workerCount_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    started_ = true;
    return true;
}

bool
Server::draining() const
{
    std::lock_guard lk(mu_);
    return draining_;
}

void
Server::wake()
{
    if (wakePipe_[1] >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &byte, 1);
    }
}

void
Server::requestDrain()
{
    {
        std::lock_guard lk(mu_);
        if (draining_)
            return;
        draining_ = true;
    }
    queueCv_.notify_all();
    stateCv_.notify_all();
    wake();
}

void
Server::waitDrained()
{
    {
        std::unique_lock lk(mu_);
        stateCv_.wait(lk, [this] {
            return draining_ && queue_.empty() && active_.empty() &&
                   counters_.liveConnections == 0;
        });
    }
    joinAll();
}

void
Server::hardStop()
{
    std::vector<JobPtr> orphaned;
    {
        std::lock_guard lk(mu_);
        stopping_ = true;
        draining_ = true;
        for (Job *job : active_)
            job->stop.requestStop();
        while (!queue_.empty()) {
            orphaned.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        // Queued jobs never ran; they terminate as failed (the
        // admitted == completed + cancelled + failed + active + queued
        // identity needs every admitted request in a terminal bucket).
        counters_.failed += orphaned.size();
    }
    for (const JobPtr &job : orphaned) {
        job->response =
            makeError(job->request.id, ServeError::ShuttingDown,
                      "server stopped before the request ran");
        job->outcome = Job::Outcome::Failed;
        finishJob(job);
    }
    queueCv_.notify_all();
    stateCv_.notify_all();
    wake();
    joinAll();
}

void
Server::joinAll()
{
    {
        std::lock_guard lk(mu_);
        if (joined_)
            return;
        joined_ = true;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &worker : workers_)
        if (worker.joinable())
            worker.join();
    for (std::thread &conn : connections_)
        if (conn.joinable())
            conn.join();
    connections_.clear();
    finished_.clear();
}

void
Server::closeListeners()
{
    for (int *fd : {&unixFd_, &tcpFd_}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
    if (boundUnix_) {
        ::unlink(opt_.unixPath.c_str());
        boundUnix_ = false;
    }
}

bool
Server::flushCache(std::string *error)
{
    if (opt_.cachePath.empty())
        return true;
    return cache_.save(opt_.cachePath, error);
}

// ---- accept / connection plumbing -----------------------------------

void
Server::reapConnections()
{
    for (const auto &it : finished_) {
        if (it->joinable())
            it->join();
        connections_.erase(it);
    }
    finished_.clear();
}

void
Server::acceptLoop()
{
    for (;;) {
        {
            std::lock_guard lk(mu_);
            reapConnections();
            if (draining_ || stopping_)
                break;
        }
        struct pollfd fds[3];
        int nfds = 0;
        int unixIdx = -1, tcpIdx = -1;
        if (unixFd_ >= 0) {
            unixIdx = nfds;
            fds[nfds++] = {unixFd_, POLLIN, 0};
        }
        if (tcpFd_ >= 0) {
            tcpIdx = nfds;
            fds[nfds++] = {tcpFd_, POLLIN, 0};
        }
        fds[nfds++] = {wakePipe_[0], POLLIN, 0};

        const int rc = ::poll(fds, static_cast<nfds_t>(nfds), 1000);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[nfds - 1].revents & POLLIN) {
            char sink[64];
            while (::read(wakePipe_[0], sink, sizeof(sink)) > 0) {
            }
        }
        for (int idx : {unixIdx, tcpIdx}) {
            if (idx < 0 || (fds[idx].revents & POLLIN) == 0)
                continue;
            const int client =
                ::accept4(fds[idx].fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (client < 0)
                continue;
            std::lock_guard lk(mu_);
            if (draining_ || stopping_) {
                ::close(client);
                continue;
            }
            counters_.connectionsTotal++;
            counters_.liveConnections++;
            const std::uint64_t connId = counters_.connectionsTotal;
            connections_.emplace_back();
            const auto it = std::prev(connections_.end());
            *it = std::thread([this, client, connId, it] {
                connectionLoop(client, connId);
                {
                    std::lock_guard inner(mu_);
                    counters_.liveConnections--;
                    finished_.push_back(it);
                }
                stateCv_.notify_all();
                wake(); // let the accept loop reap promptly
            });
        }
    }
    // Stop accepting the moment a drain begins: new connects are
    // refused instead of being accepted and immediately shed.
    closeListeners();
}

void
Server::connectionLoop(int fd, std::uint64_t connId)
{
    int idleMs = 0;
    for (;;) {
        {
            std::lock_guard lk(mu_);
            if (stopping_)
                break;
        }
        FrameResult frame =
            readFrame(fd, opt_.maxFrameBytes, kSliceMs, opt_.frameTimeoutMs);
        if (frame.status == FrameStatus::Idle) {
            idleMs += kSliceMs;
            bool leave;
            {
                std::lock_guard lk(mu_);
                leave = draining_ || stopping_;
            }
            if (leave)
                break; // drain: close idle connections at frame boundaries
            if (opt_.idleTimeoutMs >= 0 && idleMs >= opt_.idleTimeoutMs)
                break;
            continue;
        }
        idleMs = 0;
        if (frame.status == FrameStatus::Timeout) {
            {
                std::lock_guard lk(mu_);
                counters_.frameTimeouts++;
            }
            sendResponse(
                fd, makeError(0, ServeError::BadRequest,
                              "frame stalled mid-read (slow-loris "
                              "cutoff); closing connection"));
            break;
        }
        if (frame.status == FrameStatus::TooLarge) {
            {
                std::lock_guard lk(mu_);
                counters_.frameErrors++;
            }
            sendResponse(fd,
                         makeError(0, ServeError::BadRequest,
                                   "frame exceeds the " +
                                       std::to_string(opt_.maxFrameBytes) +
                                       "-byte limit; closing connection"));
            break;
        }
        if (frame.status != FrameStatus::Ok)
            break; // Eof / Truncated / Error
        if (!handleFrame(fd, frame.payload, connId))
            break;
    }
    ::close(fd);
}

bool
Server::sendResponse(int fd, const JsonValue &response)
{
    std::string error;
    if (writeFrame(fd, response.dump(), &error))
        return true;
    std::lock_guard lk(mu_);
    counters_.writeFailures++;
    return false;
}

bool
Server::handleFrame(int fd, const std::string &payload, std::uint64_t connId)
{
    std::string parseError;
    const auto doc = JsonValue::parse(payload, &parseError);
    if (!doc.has_value()) {
        {
            std::lock_guard lk(mu_);
            counters_.received++;
            counters_.rejected++;
        }
        // A malformed payload poisons one frame, not the connection:
        // length-prefixed framing stays synchronized.
        return sendResponse(fd, makeError(0, ServeError::BadRequest,
                                          "malformed JSON: " + parseError));
    }

    std::string requestError;
    auto request = parseRequest(*doc, &requestError);
    if (!request.has_value()) {
        std::uint64_t id = 0;
        if (const JsonValue *v = doc->find("id");
            v != nullptr && v->isNumber() && v->number() >= 0)
            id = static_cast<std::uint64_t>(v->number());
        {
            std::lock_guard lk(mu_);
            counters_.received++;
            counters_.rejected++;
        }
        return sendResponse(
            fd, makeError(id, ServeError::BadRequest, requestError));
    }

    // Control plane: answered inline by the connection thread, exempt
    // from quotas and the queue so observability and shutdown keep
    // working on a saturated server. `stats`/`drain` count as received
    // + admitted + completed in one step to keep the counter identity
    // exact in any snapshot.
    if (request->method == "stats" || request->method == "drain" ||
        request->method == "methods") {
        JsonValue result;
        {
            std::lock_guard lk(mu_);
            counters_.received++;
            counters_.admitted++;
            counters_.completed++;
            if (request->method == "stats")
                result = serverStatsJsonLocked();
        }
        if (request->method == "methods")
            result = methodsResult();
        if (request->method == "drain") {
            result = JsonValue::object();
            result["draining"] = JsonValue(true);
        }
        const bool ok = sendResponse(fd, makeResult(request->id, result));
        if (request->method == "drain")
            requestDrain();
        return ok;
    }

    const bool knownMethod = request->method == "assemble" ||
                             request->method == "simulate" ||
                             request->method == "sweep";

    // Admission. Order matters: drain and validity first (no quota
    // charge for garbage), then queue capacity (no token spent on a
    // request that would be shed anyway), then the per-client bucket.
    const auto now = Clock::now();
    JobPtr job;
    JsonValue rejection;
    {
        std::lock_guard lk(mu_);
        counters_.received++;
        if (draining_ || stopping_) {
            counters_.shedDraining++;
            rejection = makeError(request->id, ServeError::ShuttingDown,
                                  "server is draining; no new work");
        } else if (!knownMethod) {
            counters_.rejected++;
            rejection =
                makeError(request->id, ServeError::BadRequest,
                          "unknown method \"" + request->method +
                              "\" (assemble, simulate, sweep, stats, "
                              "methods, drain)");
        } else if (queue_.size() >= opt_.queueCapacity) {
            counters_.shedQueueFull++;
            rejection =
                makeError(request->id, ServeError::RetryAfter,
                          "job queue is full", retryAfterHintMs());
        } else {
            const std::string key =
                request->client.empty()
                    ? "conn#" + std::to_string(connId)
                    : "client:" + request->client;
            auto [bucket, inserted] = buckets_.try_emplace(
                key, opt_.quotaRate, opt_.quotaBurst, now);
            std::uint64_t hint = 0;
            if (!bucket->second.tryAcquire(now, &hint)) {
                counters_.shedQuota++;
                rejection = makeError(request->id, ServeError::RetryAfter,
                                      "quota exhausted for " + key, hint);
            } else {
                counters_.admitted++;
                job = std::make_shared<Job>();
                job->request = std::move(*request);
                job->receivedAt = now;
                std::uint64_t deadlineMs = job->request.deadlineMs != 0
                                               ? job->request.deadlineMs
                                               : opt_.defaultDeadlineMs;
                if (opt_.maxDeadlineMs != 0)
                    deadlineMs = deadlineMs == 0
                                     ? opt_.maxDeadlineMs
                                     : std::min(deadlineMs,
                                                opt_.maxDeadlineMs);
                if (deadlineMs != 0)
                    job->stop.setDeadlineAfterMs(deadlineMs);
                queue_.push_back(job);
                counters_.queueHighWater = std::max(
                    counters_.queueHighWater,
                    static_cast<std::uint64_t>(queue_.size()));
            }
        }
    }
    if (job == nullptr)
        return sendResponse(fd, rejection);
    queueCv_.notify_one();
    return waitAndRespond(fd, job);
}

bool
Server::waitAndRespond(int fd, const JobPtr &job)
{
    {
        std::unique_lock jl(job->m);
        while (!job->done) {
            job->cv.wait_for(jl, kJobWaitSlice);
            if (job->done)
                break;
            // Watch the socket while the job runs: a client that
            // vanished should cancel its work and free the worker, not
            // leave a response to write into a dead pipe.
            if (!job->disconnected.load(std::memory_order_relaxed) &&
                peerDisconnected(fd)) {
                job->disconnected.store(true, std::memory_order_relaxed);
                job->stop.requestStop();
            }
        }
    }
    if (job->disconnected.load(std::memory_order_relaxed))
        return false; // nothing to write; worker recorded the cancel
    return sendResponse(fd, job->response);
}

// ---- worker side -----------------------------------------------------

void
Server::workerLoop()
{
    for (;;) {
        JobPtr job;
        {
            std::unique_lock lk(mu_);
            queueCv_.wait(lk, [this] {
                return !queue_.empty() || draining_ || stopping_;
            });
            if (queue_.empty()) {
                if (draining_ || stopping_)
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            active_.insert(job.get());
        }

        executeJob(job);

        {
            std::lock_guard lk(mu_);
            active_.erase(job.get());
            switch (job->outcome) {
              case Job::Outcome::Completed:
                counters_.completed++;
                if (job->hang)
                    counters_.hangs++;
                recordLatency(elapsedMs(job->receivedAt, Clock::now()));
                break;
              case Job::Outcome::CancelledDeadline:
                counters_.cancelledDeadline++;
                break;
              case Job::Outcome::CancelledDisconnect:
                counters_.cancelledDisconnect++;
                break;
              case Job::Outcome::Failed:
                counters_.failed++;
                break;
            }
        }
        finishJob(job);
        stateCv_.notify_all();
    }
}

void
Server::finishJob(const JobPtr &job)
{
    {
        std::lock_guard jl(job->m);
        job->done = true;
    }
    job->cv.notify_all();
}

void
Server::executeJob(const JobPtr &job)
{
    Job &j = *job;
    if (j.stop.stopRequested()) {
        // Expired or disconnected while still queued: answer without
        // simulating at all.
        if (j.disconnected.load(std::memory_order_relaxed)) {
            j.outcome = Job::Outcome::CancelledDisconnect;
            j.response =
                makeError(j.request.id, ServeError::Deadline,
                          "client disconnected before execution");
        } else {
            JsonValue detail = JsonValue::object();
            detail["queued_ms"] = elapsedMs(j.receivedAt, Clock::now());
            j.outcome = Job::Outcome::CancelledDeadline;
            j.response = makeError(j.request.id, ServeError::Deadline,
                                   "deadline expired while queued", 0,
                                   std::move(detail));
        }
        return;
    }
    try {
        j.response = dispatch(j);
    } catch (const FatalError &e) {
        // Post-admission parameter misuse: a served (typed) error, not
        // a server failure.
        j.outcome = Job::Outcome::Completed;
        j.response =
            makeError(j.request.id, ServeError::BadRequest, e.what());
    } catch (const std::exception &e) {
        j.outcome = Job::Outcome::Failed;
        j.response =
            makeError(j.request.id, ServeError::Internal, e.what());
    }
}

JsonValue
Server::dispatch(Job &job)
{
    job.outcome = Job::Outcome::Completed;
    const JsonValue &params = job.request.params;
    if (job.request.method == "assemble")
        return handleAssemble(params, job);
    if (job.request.method == "simulate")
        return handleSimulate(params, job);
    if (job.request.method == "sweep")
        return handleSweep(params, job);
    // Unreachable: admission validated the method.
    return makeError(job.request.id, ServeError::BadRequest,
                     "unknown method \"" + job.request.method + "\"");
}

JsonValue
Server::handleAssemble(const JsonValue &params, Job &job)
{
    const std::string source = requireString(params, "source");
    const Program program = assemble(source); // FatalError -> bad_request

    JsonValue result = JsonValue::object();
    result["num_pes"] = program.pes.size();
    JsonValue instructions = JsonValue::array();
    JsonValue machineCode = JsonValue::array();
    for (const std::vector<Instruction> &pe : program.pes) {
        instructions.push(pe.size());
        JsonValue words = JsonValue::array();
        for (std::uint32_t word : encodeStore(program.params, pe))
            words.push(word);
        machineCode.push(std::move(words));
    }
    result["static_instructions"] = std::move(instructions);
    result["machine_code"] = std::move(machineCode);
    return makeResult(job.request.id, std::move(result));
}

JsonValue
Server::handleSimulate(const JsonValue &params, Job &job)
{
    const std::string name = requireString(params, "workload");
    const ServeRegistry::WorkloadFactory *factory =
        registry_.workload(name);
    fatalIf(factory == nullptr, "unknown workload \"", name,
            "\" (known: ", joinNames(registry_.workloadNames()), ")");

    std::string sizesName;
    const WorkloadSizes sizes = paramSizes(params, &sizesName);
    const std::string uarchName = paramString(params, "uarch", "TDX");
    const auto uarch = parseConfigName(uarchName);
    fatalIf(!uarch.has_value(), "unknown uarch \"", uarchName, "\"");

    CycleRunOptions options;
    options.maxCycles = paramU64(params, "max_cycles", options.maxCycles);
    options.stop = job.stop.token();
    options.cache = paramBool(params, "cache", true) ? &cache_ : nullptr;

    std::vector<std::string> analysisNames = {"cpi", "verdict"};
    if (const JsonValue *requested = params.find("analyses")) {
        fatalIf(!requested->isArray(),
                "\"analyses\" must be an array of names");
        analysisNames.clear();
        for (const JsonValue &entry : requested->items()) {
            fatalIf(!entry.isString(), "analysis names must be strings");
            fatalIf(registry_.analysis(entry.str()) == nullptr,
                    "unknown analysis \"", entry.str(), "\" (known: ",
                    joinNames(registry_.analysisNames()), ")");
            analysisNames.push_back(entry.str());
        }
    }

    const Workload workload = (*factory)(sizes);
    const WorkloadRun run = runCycle(workload, *uarch, options);

    if (run.status == RunStatus::Cancelled) {
        JsonValue detail = JsonValue::object();
        detail["cycles"] = run.totalCycles;
        detail["summary"] = run.hang.summary;
        bool serverStopping;
        {
            std::lock_guard lk(mu_);
            serverStopping = stopping_;
        }
        if (serverStopping) {
            job.outcome = Job::Outcome::Failed;
            return makeError(job.request.id, ServeError::ShuttingDown,
                             "cancelled by server shutdown", 0,
                             std::move(detail));
        }
        const bool gone =
            job.disconnected.load(std::memory_order_relaxed);
        job.outcome = gone ? Job::Outcome::CancelledDisconnect
                           : Job::Outcome::CancelledDeadline;
        return makeError(job.request.id, ServeError::Deadline,
                         gone ? "cancelled: client disconnected"
                              : "deadline expired after " +
                                    std::to_string(run.totalCycles) +
                                    " cycles",
                         0, std::move(detail));
    }
    if (isHang(run.status)) {
        // A diagnosed hang is a *served* result about the workload —
        // the request completed; the simulation did not.
        job.hang = true;
        return makeError(job.request.id, ServeError::Hang,
                         run.hang.summary, 0, hangDetail(run));
    }

    JsonValue result = JsonValue::object();
    result["workload"] = name;
    result["uarch"] = uarch->name();
    result["sizes"] = sizesName;
    result["status"] = runStatusName(run.status);
    result["cycles"] = run.totalCycles;
    result["check"] = run.checkError.empty() ? JsonValue("ok")
                                             : JsonValue(run.checkError);
    JsonValue analyses = JsonValue::object();
    for (const std::string &analysisName : analysisNames)
        analyses[analysisName] =
            (*registry_.analysis(analysisName))(run);
    result["analyses"] = std::move(analyses);
    return makeResult(job.request.id, std::move(result));
}

JsonValue
Server::handleSweep(const JsonValue &params, Job &job)
{
    std::string sizesName;
    const WorkloadSizes sizes = paramSizes(params, &sizesName);

    std::vector<std::string> names;
    const JsonValue *requested = params.find("workloads");
    if (requested == nullptr ||
        (requested->isString() && requested->str() == "all")) {
        // "all" means the halting suite; `spin` must be asked for by
        // name (it cannot finish and would poison every sweep).
        for (const std::string &name : registry_.workloadNames())
            if (name != "spin")
                names.push_back(name);
    } else {
        fatalIf(!requested->isArray(),
                "\"workloads\" must be \"all\" or an array of names");
        for (const JsonValue &entry : requested->items()) {
            fatalIf(!entry.isString(), "workload names must be strings");
            names.push_back(entry.str());
        }
        fatalIf(names.empty(), "\"workloads\" must not be empty");
    }
    std::vector<Workload> workloads;
    workloads.reserve(names.size());
    for (const std::string &name : names) {
        const ServeRegistry::WorkloadFactory *factory =
            registry_.workload(name);
        fatalIf(factory == nullptr, "unknown workload \"", name,
                "\" (known: ", joinNames(registry_.workloadNames()), ")");
        workloads.push_back((*factory)(sizes));
    }

    std::vector<PeConfig> configs;
    const JsonValue *configParam = params.find("configs");
    if (configParam == nullptr ||
        (configParam->isString() && configParam->str() == "fig5")) {
        configs = figure5Configs();
    } else if (configParam->isString() && configParam->str() == "all") {
        configs = allConfigs();
    } else {
        fatalIf(!configParam->isArray(),
                "\"configs\" must be \"fig5\", \"all\" or an array");
        for (const JsonValue &entry : configParam->items()) {
            fatalIf(!entry.isString(), "config names must be strings");
            const auto config = parseConfigName(entry.str());
            fatalIf(!config.has_value(), "unknown uarch \"", entry.str(),
                    "\"");
            configs.push_back(*config);
        }
        fatalIf(configs.empty(), "\"configs\" must not be empty");
    }

    CycleRunOptions options;
    options.maxCycles = paramU64(params, "max_cycles", options.maxCycles);
    options.stop = job.stop.token();
    options.cache = paramBool(params, "cache", true) ? &cache_ : nullptr;

    // Serial within this worker: the request already owns one worker
    // slot; fanning out would let one sweep starve other clients. The
    // streamed runner's in-order sink builds the response rows while
    // the matrix runs (at jobs == 1 this is the serial reference loop,
    // with the JSON assembly interleaved between cells instead of
    // trailing the whole matrix).
    std::size_t cancelledCells = 0;
    JsonValue cells = JsonValue::array();
    JsonValue row = JsonValue::array();
    const CycleMatrix matrix = runCycleMatrixStreamed(
        workloads, configs, options, 1,
        [&](std::size_t, std::size_t w, const WorkloadRun &run) {
            if (run.status == RunStatus::Cancelled)
                cancelledCells++;
            JsonValue cell = JsonValue::object();
            cell["status"] = runStatusName(run.status);
            cell["cycles"] = run.totalCycles;
            cell["cpi"] = run.worker.cpi();
            cell["check"] = run.checkError.empty()
                                ? JsonValue("ok")
                                : JsonValue(run.checkError);
            row.push(std::move(cell));
            if (w + 1 == workloads.size()) {
                cells.push(std::move(row));
                row = JsonValue::array();
            }
        });

    if (cancelledCells > 0) {
        JsonValue detail = JsonValue::object();
        detail["cells"] = matrix.runs.size();
        detail["cancelled_cells"] = cancelledCells;
        const bool gone =
            job.disconnected.load(std::memory_order_relaxed);
        job.outcome = gone ? Job::Outcome::CancelledDisconnect
                           : Job::Outcome::CancelledDeadline;
        return makeError(job.request.id, ServeError::Deadline,
                         "sweep cancelled before completion", 0,
                         std::move(detail));
    }

    JsonValue result = JsonValue::object();
    result["sizes"] = sizesName;
    result["workloads"] = stringArray(names);
    JsonValue configNames = JsonValue::array();
    for (const PeConfig &config : configs)
        configNames.push(config.name());
    result["configs"] = std::move(configNames);
    result["wall_ms"] = matrix.wallMs;
    result["cells"] = std::move(cells);
    return makeResult(job.request.id, std::move(result));
}

// ---- stats -----------------------------------------------------------

std::uint64_t
Server::retryAfterHintMs() const
{
    // Rough time for one queue slot to free up: recent per-request
    // latency times queue occupancy, spread over the worker pool.
    const double perRequest = latencyEmaMs_ > 0.0 ? latencyEmaMs_ : 25.0;
    const double workers = workerCount_ > 0 ? workerCount_ : 1;
    const double hint =
        perRequest * (static_cast<double>(queue_.size()) + 1.0) / workers;
    return static_cast<std::uint64_t>(std::clamp(hint, 5.0, 2000.0));
}

void
Server::recordLatency(double ms)
{
    latencyEmaMs_ =
        latencyEmaMs_ == 0.0 ? ms : 0.9 * latencyEmaMs_ + 0.1 * ms;
    if (latenciesMs_.size() < kLatencyReservoir) {
        latenciesMs_.push_back(ms);
    } else {
        latenciesMs_[latencyNext_] = ms;
        latencyNext_ = (latencyNext_ + 1) % kLatencyReservoir;
    }
}

Server::Counters
Server::counters() const
{
    std::lock_guard lk(mu_);
    Counters out = counters_;
    out.active = active_.size();
    out.queueDepth = queue_.size();
    return out;
}

JsonValue
Server::serverStatsJsonLocked() const
{
    const double uptimeMs = elapsedMs(startTime_, Clock::now());
    const Counters &c = counters_;

    JsonValue s = JsonValue::object();
    s["uptime_ms"] = uptimeMs;
    s["received"] = c.received;
    s["admitted"] = c.admitted;
    s["rejected"] = c.rejected;
    s["shed"] = c.shedQueueFull + c.shedQuota + c.shedDraining;
    s["shed_queue_full"] = c.shedQueueFull;
    s["shed_quota"] = c.shedQuota;
    s["shed_draining"] = c.shedDraining;
    s["completed"] = c.completed;
    s["cancelled"] = c.cancelledDeadline + c.cancelledDisconnect;
    s["cancelled_deadline"] = c.cancelledDeadline;
    s["cancelled_disconnect"] = c.cancelledDisconnect;
    s["failed"] = c.failed;
    s["hangs"] = c.hangs;
    s["frame_timeouts"] = c.frameTimeouts;
    s["frame_errors"] = c.frameErrors;
    s["write_failures"] = c.writeFailures;
    s["active"] = active_.size();
    s["queue_depth"] = queue_.size();
    s["queue_capacity"] = opt_.queueCapacity;
    s["queue_high_water"] = c.queueHighWater;
    s["workers"] = workerCount_;
    s["connections"] = c.liveConnections;
    s["connections_total"] = c.connectionsTotal;
    s["req_per_sec"] = uptimeMs > 0.0
                           ? static_cast<double>(c.completed) /
                                 (uptimeMs / 1000.0)
                           : 0.0;

    JsonValue latency = JsonValue::object();
    latency["count"] = latenciesMs_.size();
    double p50 = 0.0, p99 = 0.0, maxMs = 0.0;
    if (!latenciesMs_.empty()) {
        std::vector<double> sorted = latenciesMs_;
        const auto nth = [&sorted](double q) {
            const std::size_t idx = std::min(
                sorted.size() - 1,
                static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5));
            std::nth_element(sorted.begin(), sorted.begin() + idx,
                             sorted.end());
            return sorted[idx];
        };
        p50 = nth(0.50);
        p99 = nth(0.99);
        maxMs = *std::max_element(sorted.begin(), sorted.end());
    }
    latency["p50"] = p50;
    latency["p99"] = p99;
    latency["max"] = maxMs;
    s["latency_ms"] = std::move(latency);
    return s;
}

JsonValue
Server::serverStatsJson() const
{
    std::lock_guard lk(mu_);
    return serverStatsJsonLocked();
}

JsonValue
Server::methodsResult() const
{
    JsonValue result = JsonValue::object();
    result["protocol"] = kServeProtocol;
    result["methods"] = stringArray({"assemble", "simulate", "sweep",
                                     "stats", "methods", "drain"});
    result["workloads"] = stringArray(registry_.workloadNames());
    result["analyses"] = stringArray(registry_.analysisNames());
    JsonValue uarchs = JsonValue::array();
    for (const PeConfig &config : allConfigs())
        uarchs.push(config.name());
    result["uarchs"] = std::move(uarchs);
    return result;
}

JsonValue
Server::metricsDocument() const
{
    JsonValue doc = JsonValue::object();
    doc["schema"] = "tia-metrics/v1";
    doc["tool"] = "tia-serve";
    doc["runs"] = JsonValue::array();
    doc["server"] = serverStatsJson();
    doc["cache"] = cache_.statsJson();
    return doc;
}

} // namespace tia
