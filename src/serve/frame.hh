/**
 * @file
 * Length-prefixed frame codec for the tia-serve wire protocol.
 *
 * A frame is a 4-byte little-endian payload length followed by that
 * many bytes of UTF-8 JSON (docs/serve.md). Length-prefixing keeps the
 * stream self-synchronizing: a malformed JSON payload poisons one
 * frame, never the connection.
 *
 * The reader is written for a hostile network: it enforces a maximum
 * frame size (an absurd length prefix is rejected before any
 * allocation), distinguishes "no frame started" from "truncated
 * mid-frame", and applies two timeouts — a patient one while waiting
 * for the first byte (an idle keep-alive connection is fine) and an
 * impatient one for completing a frame once started (a slow-loris
 * client trickling one byte a second gets cut off instead of pinning
 * a connection thread forever).
 */

#ifndef TIA_SERVE_FRAME_HH
#define TIA_SERVE_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tia {

/** How a readFrame attempt ended. */
enum class FrameStatus
{
    Ok,        ///< A complete frame was read.
    Eof,       ///< Clean close at a frame boundary (no bytes read).
    Idle,      ///< First-byte timeout elapsed at a frame boundary.
    Timeout,   ///< Frame started but stalled (slow-loris cutoff).
    TooLarge,  ///< Length prefix exceeds the frame-size limit.
    Truncated, ///< Connection closed mid-frame.
    Error,     ///< Socket error (payload in @ref FrameResult::error).
};

/** Human-readable name for a FrameStatus. */
const char *frameStatusName(FrameStatus status);

struct FrameResult
{
    FrameStatus status = FrameStatus::Error;
    std::string payload; ///< Valid when status == Ok.
    std::string error;   ///< Errno text when status == Error.
};

/**
 * Read one frame from @p fd.
 *
 * @param maxBytes        reject frames longer than this (TooLarge).
 * @param firstByteMs     poll budget for the frame's first byte; -1
 *                        waits forever, 0 returns Idle immediately
 *                        when no byte is pending.
 * @param progressMs      budget for each subsequent chunk once the
 *                        frame has started; an expiry is a Timeout.
 */
FrameResult readFrame(int fd, std::size_t maxBytes, int firstByteMs,
                      int progressMs);

/**
 * Write one frame (length prefix + payload) to @p fd, retrying short
 * writes. Uses MSG_NOSIGNAL so a peer that vanished yields false (with
 * @p error set) rather than SIGPIPE.
 */
bool writeFrame(int fd, std::string_view payload,
                std::string *error = nullptr);

} // namespace tia

#endif // TIA_SERVE_FRAME_HH
