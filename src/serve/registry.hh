/**
 * @file
 * Server-side workload and analysis registration.
 *
 * Follows the stinger-workflow registry shape (named streams +
 * registered algorithms + batch hooks): clients name what they want
 * run ("bst", "gcd", ...) and which registered analyses to apply to
 * the finished run ("cpi", "verdict", ...), and the server owns the
 * factories. That keeps the request surface to strings + sizes — no
 * client ever ships a program over the wire for the batch paths — and
 * it leaves room for later registrants (mapped multi-PE applications
 * from a Cascade-style mapper can be registered under their own names
 * without touching the protocol).
 *
 * The builtin registry carries the Table 3 suite plus `spin`, a
 * deliberately non-halting single-PE loop: it exists so operators and
 * the torture tests can exercise the deadline / livelock / cancel
 * paths of a live server on demand (a watchdog canary), and it is the
 * reason `simulate` accepts a `max_cycles` override.
 */

#ifndef TIA_SERVE_REGISTRY_HH
#define TIA_SERVE_REGISTRY_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace tia {

class ServeRegistry
{
  public:
    /** Builds a workload instance at the requested sizes. */
    using WorkloadFactory =
        std::function<Workload(const WorkloadSizes &)>;
    /** Renders one registered analysis of a finished run. */
    using Analysis = std::function<JsonValue(const WorkloadRun &)>;

    /** Register a named workload; re-registration is a FatalError. */
    void registerWorkload(const std::string &name, WorkloadFactory make);

    /** Register a named analysis; re-registration is a FatalError. */
    void registerAnalysis(const std::string &name, Analysis analyze);

    /** Lookup (nullptr when unknown). */
    const WorkloadFactory *workload(const std::string &name) const;
    const Analysis *analysis(const std::string &name) const;

    std::vector<std::string> workloadNames() const;
    std::vector<std::string> analysisNames() const;

    /** Table 3 suite + `spin` canary + the standard analyses. */
    static ServeRegistry builtin();

  private:
    std::map<std::string, WorkloadFactory> workloads_;
    std::map<std::string, Analysis> analyses_;
};

} // namespace tia

#endif // TIA_SERVE_REGISTRY_HH
