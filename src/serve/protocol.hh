/**
 * @file
 * The tia-serve request/response protocol ("tia-serve/v1").
 *
 * Every frame carries one JSON object. Requests:
 *
 *   {"id": N, "method": "simulate", "client": "alice",
 *    "deadline_ms": 500, "params": {...}}
 *
 * Responses echo the id and are either a result or a *typed* error —
 * the headline robustness contract is that every admitted request
 * produces exactly one of the two, never silence:
 *
 *   {"id": N, "ok": true,  "result": {...}}
 *   {"id": N, "ok": false, "error": {"code": "retry_after",
 *        "message": "...", "retry_after_ms": 12, "detail": {...}}}
 *
 * The error taxonomy (docs/serve.md has the full semantics):
 *
 *   bad_request    malformed frame / unknown method / bad params;
 *                  retrying the same request cannot succeed.
 *   retry_after    admission shed the request (queue full or quota);
 *                  retry after the hinted delay with jittered backoff
 *                  (tia-loadgen and ServeClient::callWithRetry do).
 *   deadline       the request's deadline expired, queued or mid-run;
 *                  the simulation was cooperatively cancelled.
 *   hang           the simulation itself was diagnosed as hung; the
 *                  detail block carries the per-class HangReport
 *                  (deadlock / livelock / step limit + wait chain).
 *   shutting_down  the server is draining; this instance will not
 *                  accept the request, ever.
 *   internal       an unexpected exception; a server-side bug.
 */

#ifndef TIA_SERVE_PROTOCOL_HH
#define TIA_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>

#include "obs/json.hh"

namespace tia {

/** Protocol identifier, echoed by the stats method. */
inline constexpr const char *kServeProtocol = "tia-serve/v1";

/** Typed error classes a response can carry. */
enum class ServeError
{
    None,
    BadRequest,
    RetryAfter,
    Deadline,
    Hang,
    ShuttingDown,
    Internal,
};

/** Wire code for a ServeError ("bad_request", "retry_after", ...). */
const char *serveErrorCode(ServeError error);

/** Parse a wire code back to a ServeError (None when unknown). */
ServeError parseServeErrorCode(const std::string &code);

/** A parsed request envelope. */
struct ServeRequest
{
    std::uint64_t id = 0;
    std::string method;
    /** Quota identity; empty falls back to a per-connection key. */
    std::string client;
    /** Relative deadline in ms; 0 = server default (possibly none). */
    std::uint64_t deadlineMs = 0;
    JsonValue params; ///< Method parameters (object or null).
};

/**
 * Parse a request envelope. Returns nullopt with @p error set on a
 * malformed envelope; unknown methods are left to the dispatcher so
 * the response can still echo the request id.
 */
std::optional<ServeRequest> parseRequest(const JsonValue &doc,
                                         std::string *error);

/** Build a success response. */
JsonValue makeResult(std::uint64_t id, JsonValue result);

/**
 * Build a typed error response. @p retryAfterMs adds the backoff hint
 * (only meaningful for RetryAfter); @p detail attaches a structured
 * payload such as a hang report.
 */
JsonValue makeError(std::uint64_t id, ServeError error,
                    const std::string &message,
                    std::uint64_t retryAfterMs = 0,
                    JsonValue detail = JsonValue());

/** A decoded response, as seen by clients. */
struct ServeResponse
{
    std::uint64_t id = 0;
    bool ok = false;
    JsonValue result;          ///< Valid when ok.
    ServeError error = ServeError::None;
    std::string errorMessage;
    std::uint64_t retryAfterMs = 0;
    JsonValue errorDetail;

    /** True for errors that jittered backoff can overcome. */
    bool retryable() const { return error == ServeError::RetryAfter; }
};

/** Decode a response frame (nullopt + @p error on malformed JSON). */
std::optional<ServeResponse> parseResponse(const JsonValue &doc,
                                           std::string *error);

} // namespace tia

#endif // TIA_SERVE_PROTOCOL_HH
