/**
 * @file
 * The tia-serve daemon core: a fault-tolerant multi-client simulation
 * service over Unix / TCP sockets.
 *
 * Architecture (docs/serve.md):
 *
 *   accept thread ── one connection thread per client ── worker pool
 *
 * Connection threads own all socket I/O: they read length-prefixed
 * JSON frames (serve/frame.hh, with slow-loris cutoffs), run
 * *admission* — per-client token-bucket quotas, then a bounded job
 * queue whose overflow is a typed `retry_after` rejection, never a
 * blocked reader — and wait for their job's completion, watching the
 * socket so a client that disconnects mid-request cancels its job and
 * frees the worker. Workers execute jobs with the request deadline
 * armed as a cooperative StopSource threaded through runCycle /
 * CycleFabric, so a deadline-expired or watchdog-flagged simulation
 * returns a typed error instead of wedging the pool. Identical
 * simulate requests coalesce onto the shared single-flight SimCache:
 * concurrent duplicates block on one computation, repeats are warm
 * hits served in microseconds.
 *
 * The robustness contract, which the torture tests enforce:
 *
 *  - every admitted request produces exactly one response (result or
 *    typed error); nothing is ever silently dropped;
 *  - requestDrain() (SIGTERM in the daemon) stops admission, finishes
 *    in-flight work, delivers every pending response, then lets
 *    waitDrained() return so the cache can be flushed and the process
 *    exit 0;
 *  - a hostile or dead client can cost at most its own connection —
 *    never a worker, never another client's request.
 */

#ifndef TIA_SERVE_SERVER_HH
#define TIA_SERVE_SERVER_HH

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/simcache.hh"
#include "obs/json.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/token_bucket.hh"

namespace tia {

struct ServerOptions
{
    /** Unix socket path ("" disables the Unix listener). */
    std::string unixPath;
    /** TCP port on 127.0.0.1 (-1 disables; 0 binds an ephemeral port). */
    int tcpPort = -1;
    /** Worker threads (0 = ThreadPool::defaultConcurrency()). */
    unsigned workers = 0;
    /** Bounded job-queue capacity; overflow sheds with retry_after. */
    std::size_t queueCapacity = 64;
    /** Per-client sustained requests/second (0 = unlimited). */
    double quotaRate = 0.0;
    /** Per-client burst size (tokens). */
    double quotaBurst = 8.0;
    /** Default per-request deadline when the client sends none (0 = none). */
    std::uint64_t defaultDeadlineMs = 0;
    /** Hard cap on client-supplied deadlines (0 = uncapped). */
    std::uint64_t maxDeadlineMs = 0;
    /** Reject frames larger than this. */
    std::size_t maxFrameBytes = 4u << 20;
    /** Close a connection idle at a frame boundary for this long. */
    int idleTimeoutMs = 60'000;
    /** Slow-loris cutoff: max stall inside a started frame. */
    int frameTimeoutMs = 5'000;
    /** Persistent TIASIMC1 warm tier ("" = in-memory only). */
    std::string cachePath;
    /** Re-simulate every cache hit and compare (--cache-verify). */
    bool cacheVerify = false;
};

class Server
{
  public:
    explicit Server(ServerOptions options,
                    ServeRegistry registry = ServeRegistry::builtin());

    /** Hard-stops if still running (cancels in-flight work). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind listeners, load the warm cache tier, start threads.
     * Returns false with @p error on bind/listen failure.
     */
    bool start(std::string *error);

    /** Actual TCP port (useful with tcpPort = 0); -1 when disabled. */
    int tcpPort() const { return boundTcpPort_; }

    /**
     * Graceful shutdown: stop accepting connections and admitting
     * requests, let in-flight work finish and every pending response
     * flush. Idempotent, non-blocking; pair with waitDrained().
     */
    void requestDrain();

    /** Block until a requested drain has fully completed. */
    void waitDrained();

    /**
     * Immediate shutdown: drain admission, cancel in-flight jobs via
     * their stop tokens, fail queued jobs with shutting_down, join
     * everything. Used by the destructor and tests.
     */
    void hardStop();

    /** Persist the cache tier (crash-safe tmp+fsync+rename+flock). */
    bool flushCache(std::string *error);

    /** True once a drain has been requested (SIGTERM or `drain` RPC). */
    bool draining() const;

    SimCache &cache() { return cache_; }

    /** Monotonic counters; the source of the "server" metrics block. */
    struct Counters
    {
        std::uint64_t received = 0;
        std::uint64_t admitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t shedQueueFull = 0;
        std::uint64_t shedQuota = 0;
        std::uint64_t shedDraining = 0;
        std::uint64_t completed = 0;
        std::uint64_t cancelledDeadline = 0;
        std::uint64_t cancelledDisconnect = 0;
        std::uint64_t failed = 0;
        std::uint64_t hangs = 0;
        std::uint64_t frameTimeouts = 0;
        std::uint64_t frameErrors = 0;
        std::uint64_t writeFailures = 0;
        std::uint64_t connectionsTotal = 0;
        std::uint64_t active = 0;
        std::uint64_t queueDepth = 0;
        std::uint64_t queueHighWater = 0;
        std::uint64_t liveConnections = 0;
    };

    Counters counters() const;

    /** The tia-metrics/v1 "server" block (validated by tia-metrics-check). */
    JsonValue serverStatsJson() const;

    /** Full tia-metrics/v1 document: server block + cache block. */
    JsonValue metricsDocument() const;

  private:
    struct Job;
    using JobPtr = std::shared_ptr<Job>;

    void acceptLoop();
    void connectionLoop(int fd, std::uint64_t connId);
    void workerLoop();
    /** Handle one complete frame; false closes the connection. */
    bool handleFrame(int fd, const std::string &payload,
                     std::uint64_t connId);
    bool waitAndRespond(int fd, const JobPtr &job);
    void executeJob(const JobPtr &job);
    JsonValue dispatch(Job &job);
    JsonValue handleAssemble(const JsonValue &params, Job &job);
    JsonValue handleSimulate(const JsonValue &params, Job &job);
    JsonValue handleSweep(const JsonValue &params, Job &job);
    JsonValue methodsResult() const;
    JsonValue serverStatsJsonLocked() const; ///< callers hold mu_
    std::uint64_t retryAfterHintMs() const;  ///< callers hold mu_
    void recordLatency(double ms);           ///< callers hold mu_
    void finishJob(const JobPtr &job);
    bool sendResponse(int fd, const JsonValue &response);
    void reapConnections(); ///< callers hold mu_
    void joinAll();
    void closeListeners();
    void wake();

    ServerOptions opt_;
    ServeRegistry registry_;
    SimCache cache_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = -1;
    int wakePipe_[2] = {-1, -1};
    bool boundUnix_ = false;
    bool started_ = false;
    bool joined_ = false;
    unsigned workerCount_ = 0;
    std::chrono::steady_clock::time_point startTime_;

    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    mutable std::mutex mu_;
    std::condition_variable queueCv_; ///< workers: work or shutdown
    std::condition_variable stateCv_; ///< drain watchers
    std::deque<JobPtr> queue_;
    std::set<Job *> active_;
    std::map<std::string, TokenBucket> buckets_;
    Counters counters_;
    bool draining_ = false;
    bool stopping_ = false;
    double latencyEmaMs_ = 0.0;
    std::vector<double> latenciesMs_; ///< bounded reservoir
    std::size_t latencyNext_ = 0;     ///< ring index once full

    std::list<std::thread> connections_;
    std::vector<std::list<std::thread>::iterator> finished_;
};

} // namespace tia

#endif // TIA_SERVE_SERVER_HH
