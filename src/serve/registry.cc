#include "serve/registry.hh"

#include "core/assembler.hh"
#include "core/logging.hh"
#include "obs/metrics.hh"
#include "sim/fabric_config.hh"
#include "uarch/counters.hh"

namespace tia {

namespace {

/**
 * `spin`: a single-PE register loop that never halts and never moves a
 * token, so the watchdog classifies a budget-exhausted run as a
 * livelock. Sizes are ignored. Used by operators and torture tests to
 * provoke the deadline / hang / cancellation paths on demand.
 */
Workload
makeSpin(const WorkloadSizes &)
{
    Workload w;
    w.name = "spin";
    w.description = "Non-halting canary loop (provokes livelock / "
                    "deadline handling; never completes)";
    w.program = assemble(
        "when %p == XXXXXXX0: add %r0, %r0, #1; set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: add %r1, %r1, #1; set %p = ZZZZZZZ0;\n");
    FabricBuilder builder(w.program.params, 1);
    w.config = builder.build();
    w.workerPe = 0;
    w.preload = [](Memory &) {};
    w.check = [](const Memory &) { return std::string(); };
    return w;
}

} // namespace

void
ServeRegistry::registerWorkload(const std::string &name,
                                WorkloadFactory make)
{
    fatalIf(workloads_.count(name) != 0, "workload \"", name,
            "\" is already registered");
    workloads_.emplace(name, std::move(make));
}

void
ServeRegistry::registerAnalysis(const std::string &name, Analysis analyze)
{
    fatalIf(analyses_.count(name) != 0, "analysis \"", name,
            "\" is already registered");
    analyses_.emplace(name, std::move(analyze));
}

const ServeRegistry::WorkloadFactory *
ServeRegistry::workload(const std::string &name) const
{
    const auto it = workloads_.find(name);
    return it == workloads_.end() ? nullptr : &it->second;
}

const ServeRegistry::Analysis *
ServeRegistry::analysis(const std::string &name) const
{
    const auto it = analyses_.find(name);
    return it == analyses_.end() ? nullptr : &it->second;
}

std::vector<std::string>
ServeRegistry::workloadNames() const
{
    std::vector<std::string> names;
    names.reserve(workloads_.size());
    for (const auto &[name, make] : workloads_)
        names.push_back(name);
    return names;
}

std::vector<std::string>
ServeRegistry::analysisNames() const
{
    std::vector<std::string> names;
    names.reserve(analyses_.size());
    for (const auto &[name, analyze] : analyses_)
        names.push_back(name);
    return names;
}

ServeRegistry
ServeRegistry::builtin()
{
    ServeRegistry registry;
    registry.registerWorkload("bst", makeBst);
    registry.registerWorkload("gcd", makeGcd);
    registry.registerWorkload("mean", makeMean);
    registry.registerWorkload("arg_max", makeArgMax);
    registry.registerWorkload("dot_product", makeDotProduct);
    registry.registerWorkload("filter", makeFilter);
    registry.registerWorkload("merge", makeMerge);
    registry.registerWorkload("stream", makeStream);
    registry.registerWorkload("string_search", makeStringSearch);
    registry.registerWorkload("udiv", makeUdiv);
    registry.registerWorkload("spin", makeSpin);

    registry.registerAnalysis("cpi", [](const WorkloadRun &run) {
        JsonValue out = JsonValue::object();
        out["cpi"] = run.worker.cpi(); // null when nothing retired
        out["cycles"] = run.totalCycles;
        out["retired"] = run.worker.retired;
        return out;
    });
    registry.registerAnalysis("counters", [](const WorkloadRun &run) {
        return countersJson(run.worker);
    });
    registry.registerAnalysis("cpi_stack", [](const WorkloadRun &run) {
        return cpiStackJson(cpiStack(run.worker));
    });
    registry.registerAnalysis("verdict", [](const WorkloadRun &run) {
        JsonValue out = JsonValue::object();
        out["classification"] = runStatusName(run.hang.classification);
        out["summary"] = run.hang.summary;
        return out;
    });
    registry.registerAnalysis("sleep", [](const WorkloadRun &run) {
        return sleepMetricsJson(run.peStepsExecuted, run.peStepsSkipped);
    });
    return registry;
}

} // namespace tia
