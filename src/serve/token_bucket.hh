/**
 * @file
 * Token-bucket rate limiter for per-client admission quotas.
 *
 * The classic continuous-refill bucket: capacity `burst` tokens,
 * refilled at `rate` tokens/second; each admitted request spends one
 * token. A client that bursts past its quota gets a `retry_after`
 * rejection whose hint is exactly the time until the bucket holds a
 * whole token again — so a well-behaved client that honors the hint
 * converges on its sustained rate without ever being shed twice in a
 * row.
 *
 * Deliberately clock-agnostic: callers pass `now`, which keeps the
 * admission path on one steady_clock read and makes the unit tests
 * time-travel instead of sleep.
 */

#ifndef TIA_SERVE_TOKEN_BUCKET_HH
#define TIA_SERVE_TOKEN_BUCKET_HH

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace tia {

class TokenBucket
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @param ratePerSec sustained tokens per second; <= 0 disables the
     *                   limiter (tryAcquire always succeeds).
     * @param burst      bucket capacity; clamped to at least 1 token.
     */
    TokenBucket(double ratePerSec, double burst,
                Clock::time_point now = Clock::now())
        : rate_(ratePerSec), burst_(std::max(burst, 1.0)),
          tokens_(burst_), refilled_(now)
    {
    }

    /**
     * Spend one token if available. On refusal returns false and sets
     * @p retryAfterMs to the delay after which a retry will succeed
     * (assuming no competing spenders).
     */
    bool
    tryAcquire(Clock::time_point now, std::uint64_t *retryAfterMs)
    {
        if (rate_ <= 0.0)
            return true;
        refill(now);
        if (tokens_ >= 1.0) {
            tokens_ -= 1.0;
            return true;
        }
        if (retryAfterMs != nullptr) {
            const double deficit = 1.0 - tokens_;
            const double ms = deficit / rate_ * 1000.0;
            *retryAfterMs =
                static_cast<std::uint64_t>(ms) + 1; // round up
        }
        return false;
    }

    double
    tokens(Clock::time_point now)
    {
        refill(now);
        return tokens_;
    }

  private:
    void
    refill(Clock::time_point now)
    {
        if (now <= refilled_)
            return;
        const double elapsed =
            std::chrono::duration<double>(now - refilled_).count();
        tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
        refilled_ = now;
    }

    double rate_;
    double burst_;
    double tokens_;
    Clock::time_point refilled_;
};

} // namespace tia

#endif // TIA_SERVE_TOKEN_BUCKET_HH
