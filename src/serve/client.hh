/**
 * @file
 * Blocking client for the tia-serve wire protocol.
 *
 * One ServeClient owns one connection and issues one request at a
 * time (the server serializes per-connection work anyway; concurrency
 * comes from opening more clients, as tia-loadgen does). The piece
 * with actual policy in it is callWithRetry(): a `retry_after`
 * rejection is honored with *jittered* exponential backoff seeded from
 * the server's hint — the jitter is what keeps a fleet of shed clients
 * from re-arriving in lockstep and being shed again (docs/serve.md).
 */

#ifndef TIA_SERVE_CLIENT_HH
#define TIA_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hh"

namespace tia {

/** Jittered exponential backoff for retryable rejections. */
struct BackoffPolicy
{
    std::uint64_t baseMs = 25;   ///< First-retry delay floor.
    std::uint64_t maxMs = 2000;  ///< Per-delay ceiling.
    double multiplier = 2.0;     ///< Exponential growth per attempt.
    unsigned maxRetries = 8;     ///< Give up after this many retries.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull; ///< Jitter PRNG seed.

    /**
     * Delay before retry number @p attempt (0-based), honoring the
     * server's retry_after hint as a floor and jittering the result
     * uniformly over [d/2, d]. Advances @p rng.
     */
    std::uint64_t delayMs(unsigned attempt, std::uint64_t serverHintMs,
                          std::uint64_t &rng) const;
};

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    static std::optional<ServeClient>
    connectUnix(const std::string &path, std::string *error = nullptr);
    static std::optional<ServeClient>
    connectTcp(const std::string &host, int port,
               std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; } ///< Raw socket (torture tests).
    void close();

    /** Client name sent with every request (the server's quota key). */
    void setClient(std::string name) { client_ = std::move(name); }
    /** Per-request deadline_ms field (0 = server default). */
    void setDeadlineMs(std::uint64_t ms) { deadlineMs_ = ms; }
    /** How long to wait for a response (-1 = forever). */
    void setResponseTimeoutMs(int ms) { responseTimeoutMs_ = ms; }

    /**
     * Send one request and wait for its response. nullopt + @p error
     * on transport failure (including a malformed response); a typed
     * server error is a *successful* call with ok() == false.
     */
    std::optional<ServeResponse> call(const std::string &method,
                                      JsonValue params,
                                      std::string *error = nullptr);

    /**
     * call(), resending after `retry_after` rejections per @p policy.
     * Any other response (success or non-retryable error) is returned
     * as-is. @p retries reports how many resends happened.
     */
    std::optional<ServeResponse>
    callWithRetry(const std::string &method, JsonValue params,
                  const BackoffPolicy &policy = {},
                  std::string *error = nullptr,
                  unsigned *retries = nullptr);

  private:
    explicit ServeClient(int fd) : fd_(fd), rng_(0x2545f4914f6cdd1dull) {}

    int fd_ = -1;
    std::string client_;
    std::uint64_t deadlineMs_ = 0;
    int responseTimeoutMs_ = -1;
    std::uint64_t nextId_ = 1;
    std::uint64_t rng_ = 0;
};

} // namespace tia

#endif // TIA_SERVE_CLIENT_HH
