#include "serve/frame.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tia {

namespace {

using Clock = std::chrono::steady_clock;

/** Milliseconds left until @p deadline, clamped at zero; -1 = forever. */
int
remainingMs(bool hasDeadline, Clock::time_point deadline)
{
    if (!hasDeadline)
        return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return left.count() <= 0 ? 0
                             : static_cast<int>(left.count());
}

/**
 * Wait for @p fd to become readable. Returns 1 when readable, 0 on
 * timeout, -1 on error. POLLHUP/POLLERR report as readable so the
 * subsequent recv observes the close/error directly.
 */
int
waitReadable(int fd, int timeoutMs)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeoutMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        return rc;
    }
}

} // namespace

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::Idle:
        return "idle";
      case FrameStatus::Timeout:
        return "timeout";
      case FrameStatus::TooLarge:
        return "too large";
      case FrameStatus::Truncated:
        return "truncated";
      case FrameStatus::Error:
        return "error";
    }
    return "?";
}

FrameResult
readFrame(int fd, std::size_t maxBytes, int firstByteMs, int progressMs)
{
    FrameResult result;

    unsigned char header[4];
    std::size_t headerRead = 0;
    std::string payload;
    std::size_t payloadRead = 0;
    std::size_t payloadSize = 0;
    bool started = false;

    // The first byte runs on the patient budget; every later chunk
    // must arrive within progressMs of the previous one.
    bool hasDeadline = firstByteMs >= 0;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(firstByteMs > 0
                                                     ? firstByteMs
                                                     : 0);

    for (;;) {
        const int wait = remainingMs(hasDeadline, deadline);
        const int ready = waitReadable(fd, wait);
        if (ready < 0) {
            result.status = FrameStatus::Error;
            result.error = std::strerror(errno);
            return result;
        }
        if (ready == 0) {
            result.status =
                started ? FrameStatus::Timeout : FrameStatus::Idle;
            return result;
        }

        char buf[65536];
        std::size_t want;
        char *dst;
        if (headerRead < sizeof(header)) {
            want = sizeof(header) - headerRead;
            dst = reinterpret_cast<char *>(header) + headerRead;
        } else {
            want = payloadSize - payloadRead;
            if (want > sizeof(buf))
                want = sizeof(buf);
            dst = buf;
        }

        const ssize_t n = ::recv(fd, dst, want, 0);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            result.status = FrameStatus::Error;
            result.error = std::strerror(errno);
            return result;
        }
        if (n == 0) {
            result.status =
                started ? FrameStatus::Truncated : FrameStatus::Eof;
            return result;
        }

        started = true;
        hasDeadline = progressMs >= 0;
        deadline = Clock::now() + std::chrono::milliseconds(
                                      progressMs > 0 ? progressMs : 0);

        if (headerRead < sizeof(header)) {
            headerRead += static_cast<std::size_t>(n);
            if (headerRead == sizeof(header)) {
                payloadSize = static_cast<std::size_t>(header[0]) |
                              (static_cast<std::size_t>(header[1]) << 8) |
                              (static_cast<std::size_t>(header[2]) << 16) |
                              (static_cast<std::size_t>(header[3]) << 24);
                if (payloadSize > maxBytes) {
                    result.status = FrameStatus::TooLarge;
                    return result;
                }
                if (payloadSize == 0) {
                    result.status = FrameStatus::Ok;
                    return result;
                }
                payload.resize(payloadSize);
            }
        } else {
            std::memcpy(payload.data() + payloadRead, buf,
                        static_cast<std::size_t>(n));
            payloadRead += static_cast<std::size_t>(n);
            if (payloadRead == payloadSize) {
                result.status = FrameStatus::Ok;
                result.payload = std::move(payload);
                return result;
            }
        }
    }
}

bool
writeFrame(int fd, std::string_view payload, std::string *error)
{
    const auto fail = [error](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    if (payload.size() > 0xffffffffu)
        return fail("frame too large for a 32-bit length prefix");

    const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    unsigned char header[4] = {
        static_cast<unsigned char>(size & 0xff),
        static_cast<unsigned char>((size >> 8) & 0xff),
        static_cast<unsigned char>((size >> 16) & 0xff),
        static_cast<unsigned char>((size >> 24) & 0xff),
    };

    const auto sendAll = [&](const char *data, std::size_t bytes) {
        std::size_t sent = 0;
        while (sent < bytes) {
            const ssize_t n =
                ::send(fd, data + sent, bytes - sent, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            sent += static_cast<std::size_t>(n);
        }
        return true;
    };

    if (!sendAll(reinterpret_cast<const char *>(header), sizeof(header)))
        return fail(std::strerror(errno));
    if (!sendAll(payload.data(), payload.size()))
        return fail(std::strerror(errno));
    return true;
}

} // namespace tia
