#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "serve/frame.hh"

namespace tia {

namespace {

/** Response frames can be big (full sweep matrices). */
constexpr std::size_t kMaxResponseBytes = 64u << 20;
/** Mid-frame stall budget while reading a response. */
constexpr int kResponseProgressMs = 10'000;

std::uint64_t
xorshift64(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

} // namespace

std::uint64_t
BackoffPolicy::delayMs(unsigned attempt, std::uint64_t serverHintMs,
                       std::uint64_t &rng) const
{
    double delay = static_cast<double>(baseMs) *
                   std::pow(multiplier, static_cast<double>(attempt));
    delay = std::max(delay, static_cast<double>(serverHintMs));
    delay = std::min(delay, static_cast<double>(maxMs));
    // Uniform jitter over [delay/2, delay]: shed clients spread out
    // instead of re-arriving in lockstep.
    const double unit =
        static_cast<double>(xorshift64(rng) >> 11) / 9007199254740992.0;
    const double jittered = delay * (0.5 + 0.5 * unit);
    return static_cast<std::uint64_t>(jittered) + 1;
}

ServeClient::~ServeClient()
{
    close();
}

ServeClient::ServeClient(ServeClient &&other) noexcept
{
    *this = std::move(other);
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
        client_ = std::move(other.client_);
        deadlineMs_ = other.deadlineMs_;
        responseTimeoutMs_ = other.responseTimeoutMs_;
        nextId_ = other.nextId_;
        rng_ = other.rng_;
    }
    return *this;
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::optional<ServeClient>
ServeClient::connectUnix(const std::string &path, std::string *error)
{
    struct sockaddr_un addr = {};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "unix socket path too long: " + path;
        return std::nullopt;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(AF_UNIX): ") + strerror(errno);
        return std::nullopt;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "connect(" + path + "): " + strerror(errno);
        ::close(fd);
        return std::nullopt;
    }
    return ServeClient(fd);
}

std::optional<ServeClient>
ServeClient::connectTcp(const std::string &host, int port,
                        std::string *error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(AF_INET): ") + strerror(errno);
        return std::nullopt;
    }
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error)
            *error = "bad IPv4 address: " + host;
        ::close(fd);
        return std::nullopt;
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "connect(" + host + ":" + std::to_string(port) +
                     "): " + strerror(errno);
        ::close(fd);
        return std::nullopt;
    }
    return ServeClient(fd);
}

std::optional<ServeResponse>
ServeClient::call(const std::string &method, JsonValue params,
                  std::string *error)
{
    const auto fail = [this, error](const std::string &why) {
        if (error)
            *error = why;
        close(); // transport state is unknown; force a reconnect
        return std::nullopt;
    };
    if (fd_ < 0)
        return fail("not connected");

    JsonValue request = JsonValue::object();
    request["id"] = nextId_++;
    request["method"] = method;
    if (!client_.empty())
        request["client"] = client_;
    if (deadlineMs_ != 0)
        request["deadline_ms"] = deadlineMs_;
    if (!params.isNull())
        request["params"] = std::move(params);

    std::string ioError;
    if (!writeFrame(fd_, request.dump(), &ioError))
        return fail("write: " + ioError);

    const FrameResult frame = readFrame(
        fd_, kMaxResponseBytes, responseTimeoutMs_, kResponseProgressMs);
    if (frame.status != FrameStatus::Ok)
        return fail(std::string("read: ") +
                    frameStatusName(frame.status) +
                    (frame.error.empty() ? "" : " (" + frame.error + ")"));

    std::string parseError;
    const auto doc = JsonValue::parse(frame.payload, &parseError);
    if (!doc.has_value())
        return fail("malformed response JSON: " + parseError);
    auto response = parseResponse(*doc, &parseError);
    if (!response.has_value())
        return fail("malformed response: " + parseError);
    return response;
}

std::optional<ServeResponse>
ServeClient::callWithRetry(const std::string &method, JsonValue params,
                           const BackoffPolicy &policy, std::string *error,
                           unsigned *retries)
{
    if (rng_ == 0)
        rng_ = policy.seed;
    unsigned attempts = 0;
    for (;;) {
        auto response = call(method, params, error);
        if (retries)
            *retries = attempts;
        if (!response.has_value() || response->ok ||
            !response->retryable() || attempts >= policy.maxRetries)
            return response;
        const std::uint64_t delay =
            policy.delayMs(attempts, response->retryAfterMs, rng_);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        ++attempts;
    }
}

} // namespace tia
