#include "serve/protocol.hh"

#include <cmath>

namespace tia {

const char *
serveErrorCode(ServeError error)
{
    switch (error) {
      case ServeError::None:
        return "none";
      case ServeError::BadRequest:
        return "bad_request";
      case ServeError::RetryAfter:
        return "retry_after";
      case ServeError::Deadline:
        return "deadline";
      case ServeError::Hang:
        return "hang";
      case ServeError::ShuttingDown:
        return "shutting_down";
      case ServeError::Internal:
        return "internal";
    }
    return "?";
}

ServeError
parseServeErrorCode(const std::string &code)
{
    for (ServeError e : {ServeError::BadRequest, ServeError::RetryAfter,
                         ServeError::Deadline, ServeError::Hang,
                         ServeError::ShuttingDown, ServeError::Internal}) {
        if (code == serveErrorCode(e))
            return e;
    }
    return ServeError::None;
}

namespace {

/** Fetch a non-negative integral member; false + @p error on misuse. */
bool
optionalU64(const JsonValue &doc, const std::string &key,
            std::uint64_t &out, std::string *error)
{
    const JsonValue *value = doc.find(key);
    if (value == nullptr)
        return true;
    if (!value->isNumber() || value->number() < 0 ||
        value->number() != std::floor(value->number())) {
        if (error)
            *error = "\"" + key + "\" must be a non-negative integer";
        return false;
    }
    out = static_cast<std::uint64_t>(value->number());
    return true;
}

} // namespace

std::optional<ServeRequest>
parseRequest(const JsonValue &doc, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };
    if (!doc.isObject())
        return fail("request must be a JSON object");

    ServeRequest request;
    if (!optionalU64(doc, "id", request.id, error))
        return std::nullopt;

    const JsonValue *method = doc.find("method");
    if (method == nullptr || !method->isString() || method->str().empty())
        return fail("request needs a non-empty string \"method\"");
    request.method = method->str();

    if (const JsonValue *client = doc.find("client")) {
        if (!client->isString())
            return fail("\"client\" must be a string");
        request.client = client->str();
    }
    if (!optionalU64(doc, "deadline_ms", request.deadlineMs, error))
        return std::nullopt;

    if (const JsonValue *params = doc.find("params")) {
        if (!params->isObject() && !params->isNull())
            return fail("\"params\" must be an object");
        request.params = *params;
    }
    return request;
}

JsonValue
makeResult(std::uint64_t id, JsonValue result)
{
    JsonValue doc = JsonValue::object();
    doc["id"] = id;
    doc["ok"] = JsonValue(true);
    doc["result"] = std::move(result);
    return doc;
}

JsonValue
makeError(std::uint64_t id, ServeError error, const std::string &message,
          std::uint64_t retryAfterMs, JsonValue detail)
{
    JsonValue doc = JsonValue::object();
    doc["id"] = id;
    doc["ok"] = JsonValue(false);
    JsonValue body = JsonValue::object();
    body["code"] = serveErrorCode(error);
    body["message"] = message;
    if (retryAfterMs > 0)
        body["retry_after_ms"] = retryAfterMs;
    if (!detail.isNull())
        body["detail"] = std::move(detail);
    doc["error"] = std::move(body);
    return doc;
}

std::optional<ServeResponse>
parseResponse(const JsonValue &doc, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };
    if (!doc.isObject())
        return fail("response must be a JSON object");

    ServeResponse response;
    if (!optionalU64(doc, "id", response.id, error))
        return std::nullopt;
    const JsonValue *ok = doc.find("ok");
    if (ok == nullptr || ok->kind() != JsonValue::Kind::Bool)
        return fail("response needs a boolean \"ok\"");
    response.ok = ok->boolean();

    if (response.ok) {
        const JsonValue *result = doc.find("result");
        if (result == nullptr)
            return fail("ok response needs a \"result\"");
        response.result = *result;
        return response;
    }

    const JsonValue *body = doc.find("error");
    if (body == nullptr || !body->isObject())
        return fail("error response needs an \"error\" object");
    const JsonValue *code = body->find("code");
    if (code == nullptr || !code->isString())
        return fail("error needs a string \"code\"");
    response.error = parseServeErrorCode(code->str());
    if (response.error == ServeError::None)
        return fail("unknown error code \"" + code->str() + "\"");
    if (const JsonValue *message = body->find("message");
        message != nullptr && message->isString())
        response.errorMessage = message->str();
    if (!optionalU64(*body, "retry_after_ms", response.retryAfterMs,
                     error))
        return std::nullopt;
    if (const JsonValue *detail = body->find("detail"))
        response.errorDetail = *detail;
    return response;
}

} // namespace tia
