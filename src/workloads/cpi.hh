/**
 * @file
 * CPI measurement feeding the VLSI design-space exploration.
 *
 * The paper extracts gate-level activity (and the resulting per-design
 * performance) from runs of the bst program, "the most balanced
 * combination of I/O channel use, computation and memory access delay"
 * among the single-PE workloads (Section 3). measureCpiTable()
 * likewise runs bst on each microarchitecture; suiteAverageCpiTable()
 * averages the whole Table 3 suite for sensitivity studies.
 */

#ifndef TIA_WORKLOADS_CPI_HH
#define TIA_WORKLOADS_CPI_HH

#include "vlsi/dse.hh"
#include "workloads/runner.hh"
#include "workloads/workload.hh"

namespace tia {

/**
 * Worker-PE CPI of bst on each of @p configs.
 * @param jobs sweep worker threads (0 = hardware concurrency,
 *             1 = serial); any value yields identical tables.
 * @param options run options forwarded to every cell — in particular
 *                CycleRunOptions::cache, so DSE seeding and the bench
 *                drivers can reuse memoized runs.
 */
CpiTable measureCpiTable(const WorkloadSizes &sizes,
                         const std::vector<PeConfig> &configs =
                             allConfigs(),
                         unsigned jobs = 1,
                         const CycleRunOptions &options = {});

/** Worker-PE CPI averaged over the full suite (ablation support). */
CpiTable suiteAverageCpiTable(const WorkloadSizes &sizes,
                              const std::vector<PeConfig> &configs =
                                  allConfigs(),
                              unsigned jobs = 1,
                              const CycleRunOptions &options = {});

} // namespace tia

#endif // TIA_WORKLOADS_CPI_HH
