#include "workloads/workload.hh"

#include <algorithm>
#include <sstream>

#include "core/assembler.hh"
#include "core/logging.hh"

namespace tia {

namespace {

/** Render a `.def NAME value` line. */
std::string
def(const std::string &name, Word value)
{
    std::ostringstream os;
    os << ".def " << name << " " << value << "\n";
    return os.str();
}

/**
 * The shared "streamer" PE used by several multi-PE workloads: reads
 * `count` words starting at `base` through its read port (%o0 request,
 * %i0 response) and forwards them on %o3 with tag 0, then emits an
 * end-of-stream token with tag 1 and halts.
 *
 * Decoupled request/respond structure: a high-priority responder
 * forwards each arriving word in a single instruction while a
 * lower-priority requester races ahead issuing addresses, hiding the
 * memory latency — the "efficient processing chain" idiom triggered
 * control is built for (Section 2.1). The final address is requested
 * with tag 1; the read port echoes it, letting the responder detect
 * the last element without a counter.
 *
 * Register protocol: r0 = next index (preload 0), r1 = count - 1.
 */
std::string
streamerPe(const std::string &base_def)
{
    return
        base_def +
        // Responder.
        "when %p == XXXXXXXX with %i0.0: mov %o3.0, %i0; deq %i0;\n"
        "when %p == XX0XXXX0 with %i0.1: mov %o3.0, %i0; deq %i0; "
        "set %p = ZZ1ZZZZZ;\n"
        "when %p == XX1XXXXX: mov %o3.1, #0; set %p = ZZ0ZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n"
        // Requester (states on p2 p1; dead-ends at 11 after the
        // tag-1 request for the final element).
        "when %p == XXXXX00X: ult %p4, %r0, %r1; set %p = ZZZZZ01Z;\n"
        "when %p == XXX1X01X: add %o0.0, %r0, SBASE; set %p = ZZZZZ10Z;\n"
        "when %p == XXXXX10X: add %r0, %r0, #1; set %p = ZZZZZ00Z;\n"
        "when %p == XXX0X01X: add %o0.1, %r0, SBASE; set %p = ZZZZZ11Z;\n";
}

/** Register preload for streamerPe covering @p count elements. */
std::vector<Word>
streamerRegs(unsigned count)
{
    fatalIf(count == 0, "streamer needs at least one element");
    return {0, count - 1};
}

std::string
checkWord(const Memory &memory, Word address, Word expected,
          const std::string &what)
{
    const Word actual = memory.read(address);
    if (actual != expected) {
        std::ostringstream os;
        os << what << ": memory[" << address << "] = " << actual
           << ", expected " << expected;
        return os.str();
    }
    return "";
}

} // namespace

// ---------------------------------------------------------------------------
// bst — memory-access-intensive tree search (single PE).
// ---------------------------------------------------------------------------

namespace {

constexpr Word kBstQueryBase = 1024;
constexpr Word kBstResultBase = 2048;
constexpr Word kBstNodeBase = 4096; // node = [key, left, right]

struct BstData
{
    std::vector<Word> keys;        // inserted keys
    std::vector<Word> queries;     // searched keys
    std::vector<Word> nodes;       // packed node records
    Word root = 0;                 // address of the root node
};

BstData
buildBst(const WorkloadSizes &sizes)
{
    BstData data;
    Xorshift rng(0xb57);

    // Distinct random keys (avoid 0 so keys never collide with null).
    while (data.keys.size() < sizes.bstNodes) {
        const Word key = rng.next() | 1u;
        data.keys.push_back(key);
    }
    std::sort(data.keys.begin(), data.keys.end());
    data.keys.erase(std::unique(data.keys.begin(), data.keys.end()),
                    data.keys.end());
    // Shuffle to randomize tree shape (insertion order).
    for (std::size_t i = data.keys.size(); i > 1; --i)
        std::swap(data.keys[i - 1], data.keys[rng.below(
                                        static_cast<std::uint32_t>(i))]);

    // Insert into an explicit pointer-based tree in the memory image.
    auto node_addr = [&](std::size_t index) {
        return static_cast<Word>(kBstNodeBase + 3 * index);
    };
    for (std::size_t i = 0; i < data.keys.size(); ++i) {
        data.nodes.push_back(data.keys[i]); // key
        data.nodes.push_back(0);            // left
        data.nodes.push_back(0);            // right
    }
    data.root = node_addr(0);
    for (std::size_t i = 1; i < data.keys.size(); ++i) {
        Word cursor = data.root;
        for (;;) {
            const std::size_t ci = (cursor - kBstNodeBase) / 3;
            const unsigned link = data.keys[i] < data.nodes[3 * ci] ? 1 : 2;
            if (data.nodes[3 * ci + link] == 0) {
                data.nodes[3 * ci + link] = node_addr(i);
                break;
            }
            cursor = data.nodes[3 * ci + link];
        }
    }

    // Half the queries hit, half miss.
    for (unsigned q = 0; q < sizes.bstQueries; ++q) {
        if (q % 2 == 0) {
            data.queries.push_back(
                data.keys[rng.below(
                    static_cast<std::uint32_t>(data.keys.size()))]);
        } else {
            data.queries.push_back(rng.next() & ~1u); // even: never a key
        }
    }
    return data;
}

} // namespace

Workload
makeBst(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "bst";
    w.description = "Binary search tree lookups over random keys "
                    "(memory-access intensive, branch-entropy heavy)";

    const BstData data = buildBst(sizes);

    std::string source =
        def("QBASE", kBstQueryBase) + def("RBASE", kBstResultBase) +
        // p3..p0 = control state; p4 = all-queries-done; p5 = null
        // node; p6 = key found; p7 = descend-left.
        "when %p == XXXX0000: uge %p4, %r2, %r3; set %p = ZZZZ0001;\n"
        "when %p == XXX10001: halt;\n"
        "when %p == XXX00001: add %o0.0, %r2, QBASE; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010 with %i0.0: mov %r1, %i0; deq %i0; "
        "set %p = ZZZZ0011;\n"
        "when %p == XXXX0011: add %o1.0, %r2, RBASE; set %p = ZZZZ0100;\n"
        "when %p == XXXX0100: mov %r0, %r5; set %p = ZZZZ0101;\n"
        "when %p == XXXX0101: eq %p5, %r0, #0; set %p = ZZZZ0110;\n"
        "when %p == XX1X0110: mov %o2.0, #0; set %p = ZZZZ1111;\n"
        "when %p == XX0X0110: mov %o0.0, %r0; set %p = ZZZZ0111;\n"
        "when %p == XXXX0111 with %i0.0: eq %p6, %i0, %r1; "
        "set %p = ZZZZ1000;\n"
        "when %p == X1XX1000: mov %o2.0, #1; deq %i0; set %p = ZZZZ1111;\n"
        "when %p == X0XX1000: ult %p7, %r1, %i0; set %p = ZZZZ1001;\n"
        "when %p == 1XXX1001: add %o0.0, %r0, #1; deq %i0; "
        "set %p = ZZZZ1010;\n"
        "when %p == 0XXX1001: add %o0.0, %r0, #2; deq %i0; "
        "set %p = ZZZZ1010;\n"
        "when %p == XXXX1010 with %i0.0: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZ0101;\n"
        "when %p == XXXX1111: add %r2, %r2, #1; set %p = ZZZZ0000;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 1);
    builder.addReadPort(0, 0, 0);
    builder.addWritePort(0, 1, 2);
    builder.setInitialRegs(
        0, {0, 0, 0, static_cast<Word>(data.queries.size()), 0, data.root});
    w.config = builder.build();
    w.workerPe = 0;

    w.preload = [data](Memory &memory) {
        for (std::size_t i = 0; i < data.queries.size(); ++i)
            memory.write(kBstQueryBase + static_cast<Word>(i),
                         data.queries[i]);
        for (std::size_t i = 0; i < data.nodes.size(); ++i)
            memory.write(kBstNodeBase + static_cast<Word>(i),
                         data.nodes[i]);
    };
    std::vector<Word> sorted_keys = data.keys;
    std::sort(sorted_keys.begin(), sorted_keys.end());
    w.check = [data, sorted_keys](const Memory &memory) -> std::string {
        for (std::size_t i = 0; i < data.queries.size(); ++i) {
            const bool found =
                std::binary_search(sorted_keys.begin(), sorted_keys.end(),
                                   data.queries[i]);
            auto err = checkWord(memory,
                                 kBstResultBase + static_cast<Word>(i),
                                 found ? 1 : 0, "bst query result");
            if (!err.empty())
                return err;
        }
        return "";
    };
    return w;
}

// ---------------------------------------------------------------------------
// gcd — long-running register-register loop (single PE).
// ---------------------------------------------------------------------------

Workload
makeGcd(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "gcd";
    w.description = "Subtractive GCD of two memory operands "
                    "(long-running, predictable loop)";

    std::string source =
        // p3..p0 = control state; p4 = operands equal. The inner loop
        // uses umax/umin (branch-free) so each iteration makes a
        // single datapath predicate write, keeping the dynamic
        // predicate-write rate near the paper's ~20%.
        "when %p == XXXX0000: mov %o0.0, #0; set %p = ZZZZ0001;\n"
        "when %p == XXXX0001 with %i0.0: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: mov %o0.0, #1; set %p = ZZZZ0011;\n"
        "when %p == XXXX0011 with %i0.0: mov %r1, %i0; deq %i0; "
        "set %p = ZZZZ0100;\n"
        "when %p == XXXX0100: eq %p4, %r0, %r1; set %p = ZZZZ0101;\n"
        "when %p == XXX10101: mov %o1.0, #2; set %p = ZZZZ1000;\n"
        "when %p == XXX00101: umax %r2, %r0, %r1; set %p = ZZZZ0110;\n"
        "when %p == XXXX0110: umin %r3, %r0, %r1; set %p = ZZZZ0111;\n"
        "when %p == XXXX0111: sub %r0, %r2, %r3; set %p = ZZZZ1001;\n"
        "when %p == XXXX1001: mov %r1, %r3; set %p = ZZZZ0100;\n"
        "when %p == XXXX1000: mov %o2.0, %r0; set %p = ZZZZ1010;\n"
        "when %p == XXXX1010: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 1);
    builder.addReadPort(0, 0, 0);
    builder.addWritePort(0, 1, 2);
    w.config = builder.build();
    w.workerPe = 0;

    const Word a = sizes.gcdA;
    const Word b = sizes.gcdB;
    fatalIf(a == 0 || b == 0, "gcd operands must be positive");

    w.preload = [a, b](Memory &memory) {
        memory.write(0, a);
        memory.write(1, b);
    };
    w.check = [a, b](const Memory &memory) {
        Word x = a;
        Word y = b;
        while (y != 0) {
            const Word t = x % y;
            x = y;
            y = t;
        }
        return checkWord(memory, 2, x, "gcd");
    };
    return w;
}

// ---------------------------------------------------------------------------
// mean — accumulate an array and average it (single PE).
// ---------------------------------------------------------------------------

namespace {
constexpr Word kArrayBase = 16;
constexpr Word kScalarResultAddr = 4;
} // namespace

Workload
makeMean(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "mean";
    w.description = "Array accumulation and average "
                    "(compute + memory, predictable loop)";

    fatalIf((sizes.meanCount & (sizes.meanCount - 1)) != 0,
            "meanCount must be a power of two (the ISA has no division)");
    const unsigned log_n = clog2(sizes.meanCount);

    std::string source =
        def("SBASE", kArrayBase) + def("LOGN", log_n) +
        // Decoupled accumulate (responder) / address generation
        // (requester). The final element is requested with tag 1, so
        // its arrival (p7) starts the finish sequence on p3 p2.
        "when %p == XXXXXXXX with %i0.0: add %r1, %r1, %i0; deq %i0;\n"
        "when %p == 0XXXXXXX with %i0.1: add %r1, %r1, %i0; deq %i0; "
        "set %p = 1ZZZZZZZ;\n"
        "when %p == 1XXX00XX: srl %r1, %r1, LOGN; set %p = ZZZZ01ZZ;\n"
        "when %p == 1XXX01XX: mov %o1.0, #4; set %p = ZZZZ10ZZ;\n"
        "when %p == 1XXX10XX: mov %o2.0, %r1; set %p = ZZZZ11ZZ;\n"
        "when %p == 1XXX11XX: halt;\n"
        // Requester on p1 p0 (r2 = count - 1).
        "when %p == XXXXXX00: ult %p4, %r0, %r2; set %p = ZZZZZZ01;\n"
        "when %p == XXX1XX01: add %o0.0, %r0, SBASE; set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: add %r0, %r0, #1; set %p = ZZZZZZ00;\n"
        "when %p == XXX0XX01: add %o0.1, %r0, SBASE; set %p = ZZZZZZ11;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 1);
    builder.addReadPort(0, 0, 0);
    builder.addWritePort(0, 1, 2);
    builder.setInitialRegs(0, {0, 0, sizes.meanCount - 1});
    w.config = builder.build();
    w.workerPe = 0;

    std::vector<Word> values;
    Xorshift rng(0x3ea);
    for (unsigned i = 0; i < sizes.meanCount; ++i)
        values.push_back(rng.next() & 0xfffff); // bounded: no overflow

    w.preload = [values](Memory &memory) {
        for (std::size_t i = 0; i < values.size(); ++i)
            memory.write(kArrayBase + static_cast<Word>(i), values[i]);
    };
    w.check = [values, log_n](const Memory &memory) {
        Word sum = 0;
        for (Word v : values)
            sum += v;
        return checkWord(memory, kScalarResultAddr, sum >> log_n, "mean");
    };
    return w;
}

// ---------------------------------------------------------------------------
// arg_max — streamer + max-tracking worker (2 PEs).
// ---------------------------------------------------------------------------

Workload
makeArgMax(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "arg_max";
    w.description = "Index of the maximum of a streamed array "
                    "(2 PEs: streamer -> worker)";

    std::string source =
        ".pe 0\n" + streamerPe(def("SBASE", kArrayBase)) +
        ".pe 1\n"
        // p3..p0 = state; p4 = new maximum seen.
        "when %p == XXXX0000 with %i0.0: ugt %p4, %i0, %r0; "
        "set %p = ZZZZ0001;\n"
        "when %p == XXX10001: mov %r0, %i0; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: mov %r1, %r2; set %p = ZZZZ0011;\n"
        "when %p == XXXX0011: add %r2, %r2, #1; deq %i0; "
        "set %p = ZZZZ0000;\n"
        "when %p == XXX00001: add %r2, %r2, #1; deq %i0; "
        "set %p = ZZZZ0000;\n"
        "when %p == XXXX0000 with %i0.1: mov %o1.0, #4; deq %i0; "
        "set %p = ZZZZ0100;\n"
        "when %p == XXXX0100: mov %o2.0, %r1; set %p = ZZZZ0101;\n"
        "when %p == XXXX0101: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 2);
    builder.addReadPort(0, 0, 0);
    builder.connect(0, 3, 1, 0);
    builder.addWritePort(1, 1, 2);
    builder.setInitialRegs(0, streamerRegs(sizes.argMaxCount));
    w.config = builder.build();
    w.workerPe = 1;

    std::vector<Word> values;
    Xorshift rng(0xa93);
    for (unsigned i = 0; i < sizes.argMaxCount; ++i)
        values.push_back(rng.next());

    w.preload = [values](Memory &memory) {
        for (std::size_t i = 0; i < values.size(); ++i)
            memory.write(kArrayBase + static_cast<Word>(i), values[i]);
    };
    w.check = [values](const Memory &memory) {
        const auto it = std::max_element(values.begin(), values.end());
        const Word index =
            static_cast<Word>(std::distance(values.begin(), it));
        return checkWord(memory, kScalarResultAddr, index, "arg_max");
    };
    return w;
}

// ---------------------------------------------------------------------------
// dot_product — two streamers + multiply-accumulate worker (3 PEs).
// ---------------------------------------------------------------------------

namespace {
constexpr Word kVecABase = 16;
constexpr Word kVecBBase = 16384;
} // namespace

Workload
makeDotProduct(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "dot_product";
    w.description = "Streaming integer dot product "
                    "(3 PEs; the worker uses only tag semantics, "
                    "no predicate control flow)";

    std::string source =
        ".pe 0\n" + streamerPe(def("SBASE", kVecABase)) +
        ".pe 1\n" + streamerPe(def("SBASE", kVecBBase)) +
        ".pe 2\n"
        "when %p == XXXX0000 with %i0.0, %i1.0: mul %r1, %i0, %i1; "
        "deq %i0, %i1; set %p = ZZZZ0001;\n"
        "when %p == XXXX0001: add %r0, %r0, %r1; set %p = ZZZZ0000;\n"
        "when %p == XXXX0000 with %i0.1, %i1.1: mov %o1.0, #4; "
        "deq %i0, %i1; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: mov %o2.0, %r0; set %p = ZZZZ0011;\n"
        "when %p == XXXX0011: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 3);
    builder.addReadPort(0, 0, 0);
    builder.addReadPort(1, 0, 0);
    builder.connect(0, 3, 2, 0);
    builder.connect(1, 3, 2, 1);
    builder.addWritePort(2, 1, 2);
    builder.setInitialRegs(0, streamerRegs(sizes.dotCount));
    builder.setInitialRegs(1, streamerRegs(sizes.dotCount));
    w.config = builder.build();
    w.workerPe = 2;

    std::vector<Word> a, b;
    Xorshift rng(0xd07);
    for (unsigned i = 0; i < sizes.dotCount; ++i) {
        a.push_back(rng.next());
        b.push_back(rng.next());
    }

    w.preload = [a, b](Memory &memory) {
        for (std::size_t i = 0; i < a.size(); ++i) {
            memory.write(kVecABase + static_cast<Word>(i), a[i]);
            memory.write(kVecBBase + static_cast<Word>(i), b[i]);
        }
    };
    w.check = [a, b](const Memory &memory) {
        Word acc = 0;
        for (std::size_t i = 0; i < a.size(); ++i)
            acc += a[i] * b[i]; // modulo 2^32, as the PE computes
        return checkWord(memory, kScalarResultAddr, acc, "dot_product");
    };
    return w;
}

// ---------------------------------------------------------------------------
// filter — threshold filter with a boolean control stream (3 PEs).
// ---------------------------------------------------------------------------

namespace {
constexpr Word kFilterOutBase = 8192;
constexpr Word kFilterThreshold = 0x80000000u;
} // namespace

Workload
makeFilter(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "filter";
    w.description = "Threshold filter: a boolean stream steers which "
                    "values the worker stores (3 PEs, ~50% branch "
                    "entropy)";

    std::string source =
        ".pe 0\n" + def("SBASE", kArrayBase) +
        // Decoupled dual-forward streamer: each arriving value goes to
        // the comparator (o2) and the worker (o3) in two back-to-back
        // responder instructions (p5 sequences the pair); p6 marks the
        // tag-1 final element, p7 the EOF emission phase.
        "when %p == X00XXXXX with %i0.0: mov %o2.0, %i0; "
        "set %p = ZZ1ZZZZZ;\n"
        "when %p == X01XXXXX: mov %o3.0, %i0; deq %i0; "
        "set %p = ZZ0ZZZZZ;\n"
        "when %p == X00XXXXX with %i0.1: mov %o2.0, %i0; "
        "set %p = Z11ZZZZZ;\n"
        "when %p == X11XXXXX: mov %o3.0, %i0; deq %i0; "
        "set %p = 1Z0ZZZZZ;\n"
        "when %p == 110XXXXX: mov %o2.1, #0; set %p = ZZ1ZZZZZ;\n"
        "when %p == 111XXXXX: mov %o3.1, #0; set %p = 0Z0ZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n"
        // Requester on p2 p1 (r1 = count - 1).
        "when %p == XXXXX00X: ult %p4, %r0, %r1; set %p = ZZZZZ01Z;\n"
        "when %p == XXX1X01X: add %o0.0, %r0, SBASE; set %p = ZZZZZ10Z;\n"
        "when %p == XXXXX10X: add %r0, %r0, #1; set %p = ZZZZZ00Z;\n"
        "when %p == XXX0X01X: add %o0.1, %r0, SBASE; set %p = ZZZZZ11Z;\n"
        ".pe 1\n" + def("THRESH", kFilterThreshold) +
        "when %p == XXXXXXX0 with %i0.0: ugt %o0.0, %i0, THRESH; "
        "deq %i0;\n"
        "when %p == XXXXXXX0 with %i0.1: mov %o0.1, #0; deq %i0; "
        "set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n"
        ".pe 2\n" + def("OBASE", kFilterOutBase) +
        // p4 = keep this value?
        "when %p == XXXX0000 with %i0.0: ne %p4, %i0, #0; deq %i0; "
        "set %p = ZZZZ0001;\n"
        "when %p == XXX10001: add %o1.0, %r1, OBASE; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: mov %o2.0, %i1; deq %i1; set %p = ZZZZ0011;\n"
        "when %p == XXXX0011: add %r1, %r1, #1; set %p = ZZZZ0000;\n"
        "when %p == XXX00001: nop; deq %i1; set %p = ZZZZ0000;\n"
        "when %p == XXXX0000 with %i0.1: mov %o1.0, #4; deq %i0, %i1; "
        "set %p = ZZZZ0100;\n"
        "when %p == XXXX0100: mov %o2.0, %r1; set %p = ZZZZ0101;\n"
        "when %p == XXXX0101: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 3);
    builder.addReadPort(0, 0, 0);
    builder.connect(0, 2, 1, 0); // values -> comparator
    builder.connect(0, 3, 2, 1); // values -> worker
    builder.connect(1, 0, 2, 0); // booleans -> worker
    builder.addWritePort(2, 1, 2);
    builder.setInitialRegs(0, {0, sizes.filterCount - 1});
    w.config = builder.build();
    w.workerPe = 2;

    std::vector<Word> values;
    Xorshift rng(0xf17);
    for (unsigned i = 0; i < sizes.filterCount; ++i)
        values.push_back(rng.next());

    w.preload = [values](Memory &memory) {
        for (std::size_t i = 0; i < values.size(); ++i)
            memory.write(kArrayBase + static_cast<Word>(i), values[i]);
    };
    w.check = [values](const Memory &memory) -> std::string {
        Word count = 0;
        for (Word v : values) {
            if (v > kFilterThreshold) {
                auto err = checkWord(memory, kFilterOutBase + count, v,
                                     "filter kept value");
                if (!err.empty())
                    return err;
                ++count;
            }
        }
        return checkWord(memory, kScalarResultAddr, count, "filter count");
    };
    return w;
}

// ---------------------------------------------------------------------------
// merge — two sorted streams merged by a worker (3 PEs, "2x2 array").
// ---------------------------------------------------------------------------

namespace {
constexpr Word kMergeABase = 16;
constexpr Word kMergeBBase = 8192;
constexpr Word kMergeOutBase = 16384;
} // namespace

Workload
makeMerge(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "merge";
    w.description = "High-radix spatial merge sort worker: merges two "
                    "sorted token streams (3 PEs, data-dependent "
                    "control flow)";

    std::string source =
        ".pe 0\n" + streamerPe(def("SBASE", kMergeABase)) +
        ".pe 1\n" + streamerPe(def("SBASE", kMergeBBase)) +
        ".pe 2\n" + def("OBASE", kMergeOutBase) +
        // p4 = take from the left stream.
        "when %p == XXXX0000 with %i0.0, %i1.0: ule %p4, %i0, %i1; "
        "set %p = ZZZZ0001;\n"
        "when %p == XXX10001: mov %r0, %i0; deq %i0; set %p = ZZZZ0010;\n"
        "when %p == XXX00001: mov %r0, %i1; deq %i1; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: add %o1.0, %r1, OBASE; set %p = ZZZZ0011;\n"
        "when %p == XXXX0011: mov %o2.0, %r0; set %p = ZZZZ0100;\n"
        "when %p == XXXX0100: add %r1, %r1, #1; set %p = ZZZZ0000;\n"
        "when %p == XXXX0000 with %i0.1, %i1.0: mov %r0, %i1; deq %i1; "
        "set %p = ZZZZ0010;\n"
        "when %p == XXXX0000 with %i0.0, %i1.1: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZ0010;\n"
        "when %p == XXXX0000 with %i0.1, %i1.1: nop; deq %i0, %i1; "
        "set %p = ZZZZ0101;\n"
        "when %p == XXXX0101: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 3);
    builder.addReadPort(0, 0, 0);
    builder.addReadPort(1, 0, 0);
    builder.connect(0, 3, 2, 0);
    builder.connect(1, 3, 2, 1);
    builder.addWritePort(2, 1, 2);
    builder.setInitialRegs(0, streamerRegs(sizes.mergeCount));
    builder.setInitialRegs(1, streamerRegs(sizes.mergeCount));
    w.config = builder.build();
    w.workerPe = 2;

    std::vector<Word> a, b;
    Xorshift rng(0x3e6);
    for (unsigned i = 0; i < sizes.mergeCount; ++i) {
        a.push_back(rng.next());
        b.push_back(rng.next());
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    w.preload = [a, b](Memory &memory) {
        for (std::size_t i = 0; i < a.size(); ++i) {
            memory.write(kMergeABase + static_cast<Word>(i), a[i]);
            memory.write(kMergeBBase + static_cast<Word>(i), b[i]);
        }
    };
    w.check = [a, b](const Memory &memory) -> std::string {
        std::vector<Word> merged;
        std::merge(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(merged));
        for (std::size_t i = 0; i < merged.size(); ++i) {
            auto err = checkWord(memory,
                                 kMergeOutBase + static_cast<Word>(i),
                                 merged[i], "merge output");
            if (!err.empty())
                return err;
        }
        return "";
    };
    return w;
}

// ---------------------------------------------------------------------------
// stream — maximum-throughput sequential store loop (2 PEs).
// ---------------------------------------------------------------------------

namespace {
constexpr Word kStreamOutBase = 1024;
} // namespace

Workload
makeStream(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "stream";
    w.description = "Sequential store loop at maximum throughput: one "
                    "PE generates data, the other store indices "
                    "(2 PEs)";

    std::string source =
        ".pe 0\n"
        "when %p == XXXX0000: uge %p4, %r0, %r1; set %p = ZZZZ0001;\n"
        "when %p == XXX00001: mov %o2.0, %r0; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: add %r0, %r0, #1; set %p = ZZZZ0000;\n"
        "when %p == XXX10001: halt;\n"
        ".pe 1\n" + def("OBASE", kStreamOutBase) +
        "when %p == XXXX0000: uge %p4, %r0, %r1; set %p = ZZZZ0001;\n"
        "when %p == XXX00001: add %o1.0, %r0, OBASE; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: add %r0, %r0, #1; set %p = ZZZZ0000;\n"
        "when %p == XXX10001: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 2);
    builder.addWritePortSplit(1, 1, 0, 2); // addr from PE 1, data from PE 0
    builder.setInitialRegs(0, {0, sizes.streamCount});
    builder.setInitialRegs(1, {0, sizes.streamCount});
    w.config = builder.build();
    w.workerPe = 0;

    const unsigned count = sizes.streamCount;
    w.preload = [](Memory &) {};
    w.check = [count](const Memory &memory) -> std::string {
        for (unsigned i = 0; i < count; ++i) {
            auto err = checkWord(memory, kStreamOutBase + i, i,
                                 "stream output");
            if (!err.empty())
                return err;
        }
        return "";
    };
    return w;
}

// ---------------------------------------------------------------------------
// string_search — DFA scan for "MICRO" (3 PEs).
// ---------------------------------------------------------------------------

namespace {
constexpr Word kTextBase = 16;
constexpr Word kMatchOutBase = 4096;

std::vector<char>
buildText(const WorkloadSizes &sizes)
{
    // Random text over a small alphabet including the target letters,
    // with "MICRO" planted every so often.
    static const char alphabet[] = "MICROABCDEFGH ..";
    std::vector<char> text;
    Xorshift rng(0x5ea);
    while (text.size() < sizes.searchChars) {
        if (rng.below(64) == 0 && text.size() + 5 <= sizes.searchChars) {
            for (char c : {'M', 'I', 'C', 'R', 'O'})
                text.push_back(c);
        } else {
            text.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
        }
    }
    // Pad to a whole number of words.
    while (text.size() % 4 != 0)
        text.push_back(' ');
    return text;
}

} // namespace

Workload
makeStringSearch(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "string_search";
    w.description = "DFA scan for the string \"MICRO\" over a byte "
                    "stream (3 PEs: word fetch -> byte split -> DFA)";

    const std::vector<char> text = buildText(sizes);
    const unsigned num_words = static_cast<unsigned>(text.size() / 4);

    std::string source =
        ".pe 0\n" + streamerPe(def("SBASE", kTextBase)) +
        ".pe 1\n"
        // Unpacks each word into 4 bytes, LSB first.
        "when %p == XXXX0000 with %i0.0: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZ0001;\n"
        "when %p == XXXX0001: and %o0.0, %r0, #255; set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: srl %r0, %r0, #8; set %p = ZZZZ0011;\n"
        "when %p == XXXX0011: and %o0.0, %r0, #255; set %p = ZZZZ0100;\n"
        "when %p == XXXX0100: srl %r0, %r0, #8; set %p = ZZZZ0101;\n"
        "when %p == XXXX0101: and %o0.0, %r0, #255; set %p = ZZZZ0110;\n"
        "when %p == XXXX0110: srl %r0, %r0, #8; set %p = ZZZZ0111;\n"
        "when %p == XXXX0111: and %o0.0, %r0, #255; set %p = ZZZZ0000;\n"
        "when %p == XXXX0000 with %i0.1: mov %o0.1, #0; deq %i0; "
        "set %p = ZZZZ1000;\n"
        "when %p == XXXX1000: halt;\n"
        ".pe 2\n" + def("OBASE", kMatchOutBase) +
        // DFA over predicate state: p2..p0 = DFA state (0-5 used),
        // p4p3 = phase (A=00 compute p6, B=01 compute p7, C=10
        // transition+emit, D=11 store-address + advance), p5 =
        // sub-phase of D, p6 = char == 'M', p7 = char == expected.
        "when %p == XX000XXX with %i0.0: eq %p6, %i0, 'M'; "
        "set %p = ZZZZ1ZZZ;\n"
        "when %p == XXX01000: eq %p7, %i0, 'M'; set %p = ZZZ10ZZZ;\n"
        "when %p == XXX01001: eq %p7, %i0, 'I'; set %p = ZZZ10ZZZ;\n"
        "when %p == XXX01010: eq %p7, %i0, 'C'; set %p = ZZZ10ZZZ;\n"
        "when %p == XXX01011: eq %p7, %i0, 'R'; set %p = ZZZ10ZZZ;\n"
        "when %p == XXX01100: eq %p7, %i0, 'O'; set %p = ZZZ10ZZZ;\n"
        "when %p == 1XX10000: mov %o2.0, #0; set %p = ZZZ11001;\n"
        "when %p == 1XX10001: mov %o2.0, #0; set %p = ZZZ11010;\n"
        "when %p == 1XX10010: mov %o2.0, #0; set %p = ZZZ11011;\n"
        "when %p == 1XX10011: mov %o2.0, #0; set %p = ZZZ11100;\n"
        "when %p == 1XX10100: mov %o2.0, #1; set %p = ZZZ11000;\n"
        "when %p == 01X10XXX: mov %o2.0, #0; set %p = ZZZ11001;\n"
        "when %p == 00X10XXX: mov %o2.0, #0; set %p = ZZZ11000;\n"
        "when %p == XX011XXX: add %o1.0, %r4, OBASE; set %p = ZZ1ZZZZZ;\n"
        "when %p == XX111XXX: add %r4, %r4, #1; deq %i0; "
        "set %p = ZZ000ZZZ;\n"
        "when %p == XX000XXX with %i0.1: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 3);
    builder.addReadPort(0, 0, 0);
    builder.connect(0, 3, 1, 0);
    builder.connect(1, 0, 2, 0);
    builder.addWritePort(2, 1, 2);
    builder.setInitialRegs(0, streamerRegs(num_words));
    w.config = builder.build();
    w.workerPe = 2;

    w.preload = [text](Memory &memory) {
        for (std::size_t word = 0; word * 4 < text.size(); ++word) {
            Word packed = 0;
            for (unsigned byte = 0; byte < 4; ++byte) {
                packed |= static_cast<Word>(
                              static_cast<unsigned char>(
                                  text[word * 4 + byte]))
                          << (8 * byte);
            }
            memory.write(kTextBase + static_cast<Word>(word), packed);
        }
    };
    w.check = [text](const Memory &memory) -> std::string {
        const std::string target = "MICRO";
        unsigned state = 0;
        for (std::size_t i = 0; i < text.size(); ++i) {
            Word expected;
            if (text[i] == target[state]) {
                ++state;
                expected = state == 5 ? 1 : 0;
                if (state == 5)
                    state = 0;
            } else {
                state = text[i] == 'M' ? 1 : 0;
                expected = 0;
            }
            auto err = checkWord(memory,
                                 kMatchOutBase + static_cast<Word>(i),
                                 expected, "string_search match bit");
            if (!err.empty())
                return err;
        }
        return "";
    };
    return w;
}

// ---------------------------------------------------------------------------
// udiv — software shift-subtract division (2 PEs).
// ---------------------------------------------------------------------------

namespace {
constexpr Word kUdivNumBase = 16;
constexpr Word kUdivDenBase = 4096;
constexpr Word kUdivOutBase = 8192;
} // namespace

Workload
makeUdiv(const WorkloadSizes &sizes)
{
    Workload w;
    w.name = "udiv";
    w.description = "Unsigned division macro using clz-normalized "
                    "shift-subtract (2 PEs; the ISA omits a divide "
                    "instruction, Section 2.2)";

    std::string source =
        ".pe 0\n" + def("NBASE", kUdivNumBase) + def("DBASE", kUdivDenBase) +
        def("OBASE", kUdivOutBase) +
        // Decoupled streamer: the responder forwards (numerator,
        // denominator) tokens as they return from memory; the
        // requester interleaves N/D address generation with the
        // quotient store-address stream (o1), tagging the final
        // denominator request so the responder can emit EOF and halt.
        "when %p == X0XXXXXX with %i0.0: mov %o3.0, %i0; deq %i0;\n"
        "when %p == X0XXXXXX with %i0.1: mov %o3.0, %i0; deq %i0; "
        "set %p = Z1ZZZZZZ;\n"
        "when %p == X1XXXXXX: mov %o3.1, #0; set %p = 10ZZZZZZ;\n"
        // Halt only once the requester has parked in its dead state
        // (110) — it still owes the final quotient's store address
        // when the last response overtakes it.
        "when %p == 1XXXX110: halt;\n"
        // Requester on p2 p1 p0 (r2 = pairs - 1).
        "when %p == XXXXX000: ult %p4, %r0, %r2; set %p = ZZZZZ001;\n"
        "when %p == XXXXX001: add %o0.0, %r0, NBASE; set %p = ZZZZZ010;\n"
        "when %p == XXX1X010: add %o0.0, %r0, DBASE; set %p = ZZZZZ011;\n"
        "when %p == XXX0X010: add %o0.1, %r0, DBASE; set %p = ZZZZZ101;\n"
        "when %p == XXXXX011: add %o1.0, %r0, OBASE; set %p = ZZZZZ100;\n"
        "when %p == XXXXX100: add %r0, %r0, #1; set %p = ZZZZZ000;\n"
        "when %p == XXXXX101: add %o1.0, %r0, OBASE; set %p = ZZZZZ110;\n"
        ".pe 1\n"
        // r0 = remainder, r1 = divisor, r2 = quotient, r3 = bit index,
        // p4 = loop done (k < 0), p5 = subtract this bit.
        "when %p == XXXX0000 with %i0.0: mov %r0, %i0; deq %i0; "
        "set %p = ZZZZ0001;\n"
        "when %p == XXXX0001 with %i0.0: mov %r1, %i0; deq %i0; "
        "set %p = ZZZZ0010;\n"
        "when %p == XXXX0010: clz %r6, %r0; set %p = ZZZZ0011;\n"
        "when %p == XXXX0011: clz %r7, %r1; set %p = ZZZZ0100;\n"
        "when %p == XXXX0100: sub %r3, %r7, %r6; set %p = ZZZZ0101;\n"
        "when %p == XXXX0101: mov %r2, #0; set %p = ZZZZ0110;\n"
        "when %p == XXXX0110: slt %p4, %r3, #0; set %p = ZZZZ0111;\n"
        "when %p == XXX10111: mov %o2.0, %r2; set %p = ZZZZ0000;\n"
        "when %p == XXX00111: sll %r6, %r1, %r3; set %p = ZZZZ1000;\n"
        "when %p == XXXX1000: uge %p5, %r0, %r6; set %p = ZZZZ1001;\n"
        "when %p == XXXX1001: sll %r2, %r2, #1; set %p = ZZZZ1010;\n"
        "when %p == XX1X1010: sub %r0, %r0, %r6; set %p = ZZZZ1011;\n"
        "when %p == XXXX1011: or %r2, %r2, #1; set %p = ZZZZ1100;\n"
        "when %p == XX0X1010: nop; set %p = ZZZZ1100;\n"
        "when %p == XXXX1100: sub %r3, %r3, #1; set %p = ZZZZ0110;\n"
        "when %p == XXXX0000 with %i0.1: halt;\n";
    w.program = assemble(source);

    FabricBuilder builder(w.program.params, 2);
    builder.addReadPort(0, 0, 0);
    builder.connect(0, 3, 1, 0);
    builder.addWritePortSplit(0, 1, 1, 2); // addr from PE 0, data from PE 1
    builder.setInitialRegs(0, {0, 0, sizes.udivPairs - 1});
    w.config = builder.build();
    w.workerPe = 1;

    std::vector<Word> nums, dens;
    Xorshift rng(0xd1f);
    for (unsigned i = 0; i < sizes.udivPairs; ++i) {
        nums.push_back(rng.next());
        dens.push_back((rng.next() & 0xffff) + 1); // never zero
    }

    w.preload = [nums, dens](Memory &memory) {
        for (std::size_t i = 0; i < nums.size(); ++i) {
            memory.write(kUdivNumBase + static_cast<Word>(i), nums[i]);
            memory.write(kUdivDenBase + static_cast<Word>(i), dens[i]);
        }
    };
    w.check = [nums, dens](const Memory &memory) -> std::string {
        for (std::size_t i = 0; i < nums.size(); ++i) {
            auto err = checkWord(memory,
                                 kUdivOutBase + static_cast<Word>(i),
                                 nums[i] / dens[i], "udiv quotient");
            if (!err.empty())
                return err;
        }
        return "";
    };
    return w;
}

std::vector<Workload>
allWorkloads(const WorkloadSizes &sizes)
{
    return {
        makeBst(sizes),       makeGcd(sizes),        makeMean(sizes),
        makeArgMax(sizes),    makeDotProduct(sizes), makeFilter(sizes),
        makeMerge(sizes),     makeStream(sizes),     makeStringSearch(sizes),
        makeUdiv(sizes),
    };
}

} // namespace tia
