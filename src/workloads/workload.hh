/**
 * @file
 * The Table 3 microbenchmark suite.
 *
 * Ten hand-written triggered-instruction programs exhibiting the range
 * of intra-PE behaviors the paper studies: memory-access intensive
 * (bst), compute heavy (dot_product), data-dependent branchy (merge,
 * filter, string_search), long predictable loops (gcd, mean, stream),
 * and mixed (udiv, arg_max). Each workload carries its fabric wiring,
 * an input generator (deterministic), and a C++ golden model used to
 * validate the memory image a run produces.
 */

#ifndef TIA_WORKLOADS_WORKLOAD_HH
#define TIA_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "core/program.hh"
#include "sim/fabric_config.hh"
#include "sim/memory.hh"

namespace tia {

/** Size knobs for the suite. */
struct WorkloadSizes
{
    unsigned bstNodes = 1023;      ///< Nodes in the search tree.
    unsigned bstQueries = 512;     ///< Keys searched.
    Word gcdA = 246'913;           ///< First GCD operand.
    Word gcdB = 3;                 ///< Second GCD operand.
    unsigned meanCount = 4096;     ///< Elements averaged (power of two).
    unsigned argMaxCount = 8192;   ///< Elements scanned.
    unsigned dotCount = 10'000;    ///< Vector length (20,003 worker ins).
    unsigned filterCount = 4096;   ///< Elements filtered.
    unsigned mergeCount = 2048;    ///< Elements per sorted input list.
    unsigned streamCount = 16'384; ///< Elements stored.
    unsigned searchChars = 8192;   ///< Text length in characters.
    unsigned udivPairs = 96;       ///< Numerator/denominator pairs.

    /** Paper-scale sizes (default constructor). */
    static WorkloadSizes full() { return {}; }

    /** Reduced sizes for fast unit testing. */
    static WorkloadSizes
    small()
    {
        WorkloadSizes sizes;
        sizes.bstNodes = 63;
        sizes.bstQueries = 12;
        sizes.gcdA = 541;
        sizes.gcdB = 3;
        sizes.meanCount = 64;
        sizes.argMaxCount = 80;
        sizes.dotCount = 50;
        sizes.filterCount = 64;
        sizes.mergeCount = 48;
        sizes.streamCount = 96;
        sizes.searchChars = 256;
        sizes.udivPairs = 6;
        return sizes;
    }
};

/** A fully described benchmark instance. */
struct Workload
{
    std::string name;
    std::string description;
    Program program;
    FabricConfig config;
    /** The PE whose performance counters the paper reports (Table 3). */
    unsigned workerPe = 0;
    /** Fill the input region of memory before the run. */
    std::function<void(Memory &)> preload;
    /**
     * Check the output region against the golden model.
     * @return an empty string on success, else a failure description.
     */
    std::function<std::string(const Memory &)> check;
};

/** Individual factories. */
Workload makeBst(const WorkloadSizes &sizes);
Workload makeGcd(const WorkloadSizes &sizes);
Workload makeMean(const WorkloadSizes &sizes);
Workload makeArgMax(const WorkloadSizes &sizes);
Workload makeDotProduct(const WorkloadSizes &sizes);
Workload makeFilter(const WorkloadSizes &sizes);
Workload makeMerge(const WorkloadSizes &sizes);
Workload makeStream(const WorkloadSizes &sizes);
Workload makeStringSearch(const WorkloadSizes &sizes);
Workload makeUdiv(const WorkloadSizes &sizes);

/** The whole suite in the paper's Table 3 order. */
std::vector<Workload> allWorkloads(const WorkloadSizes &sizes);

/** Deterministic xorshift PRNG used by all input generators. */
class Xorshift
{
  public:
    explicit Xorshift(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b9)
    {
    }

    std::uint32_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return static_cast<std::uint32_t>(state_ >> 16);
    }

    /** Uniform value in [0, bound). */
    std::uint32_t
    below(std::uint32_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }

  private:
    std::uint64_t state_;
};

} // namespace tia

#endif // TIA_WORKLOADS_WORKLOAD_HH
