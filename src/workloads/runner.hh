/**
 * @file
 * Convenience runners: execute a Workload on the functional or
 * cycle-accurate fabric, validate the memory image, and collect the
 * worker PE's counters (the figures the paper reports come from "the
 * designated worker PE", Table 3).
 *
 * runCycle optionally runs under a FaultPlan with a golden-model
 * cross-check: the injected cycle-accurate run is validated against
 * the workload's golden model and the result is characterized as
 * masked / recovered / corrupted / trapped / hung, so pipeline
 * variants can prove how they behave when hazards are provoked.
 */

#ifndef TIA_WORKLOADS_RUNNER_HH
#define TIA_WORKLOADS_RUNNER_HH

#include <cstddef>
#include <functional>

#include "exec/stop_token.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"
#include "sim/functional.hh"
#include "sim/hang_diagnosis.hh"
#include "uarch/config.hh"
#include "uarch/counters.hh"
#include "workloads/workload.hh"

namespace tia {

class SimCache; // cache/simcache.hh

/** How an injected run fared against the golden model. */
enum class FaultOutcome
{
    None,      ///< No faults requested (or none fired).
    Masked,    ///< Faults fired; the architecture absorbed them silently.
    Recovered, ///< Faults fired and were repaired by recovery machinery.
    Corrupted, ///< The run completed but the memory image is wrong.
    Trapped,   ///< A fault escalated to an architectural trap (fatal).
    Hung,      ///< The run deadlocked, livelocked, or timed out.
};

/** Human-readable name for a FaultOutcome. */
const char *faultOutcomeName(FaultOutcome outcome);

/** Options for runCycle (previously hard-coded). */
struct CycleRunOptions
{
    /**
     * Simulation budget; kDefaultMaxCycles (core/types.hh) is shared
     * with FabricRunOptions so hang classification does not depend on
     * the entry point.
     */
    Cycle maxCycles = kDefaultMaxCycles;
    Cycle quiescenceWindow = kDefaultQuiescenceWindow;
    /** Fault plan to inject (non-owning; nullptr = clean run). */
    const FaultPlan *faults = nullptr;
    /**
     * After an injected run, re-validate against the golden model and
     * fill WorkloadRun::faultOutcome. (The memory check itself always
     * runs; this additionally classifies the failure mode and tolerates
     * architectural traps raised by corrupted state.)
     */
    bool goldenCrossCheck = false;
    /** Trace sink installed on the fabric (non-owning; nullptr = off). */
    TraceSink *trace = nullptr;
    /** Trace granularity when @ref trace is set (see obs/trace.hh). */
    TraceLevel traceLevel = TraceLevel::Events;
    /**
     * Resolve triggers through the virtual QueueStatusView reference
     * scheduler instead of the mask fast path (bit-identical results;
     * exists so tests and tools can cross-check the two).
     */
    bool referenceScheduler = false;
    /**
     * Content-addressed result cache (non-owning; nullptr = off). When
     * set, runCycle memoizes its WorkloadRun under a digest of every
     * input (cache/run_cache.hh) with single-flight dedup across
     * concurrent sweep jobs. Ignored when @ref trace is set — tracing
     * is a side effect a cached result cannot replay.
     */
    SimCache *cache = nullptr;
    /**
     * Cooperative cancellation (exec/stop_token.hh), polled inside the
     * cycle loop every @ref stopCheckInterval cycles. A run cut short
     * returns status RunStatus::Cancelled and is never cached — and a
     * caller coalesced onto a leader whose run was cancelled retries
     * the computation itself unless its own token has also fired, so
     * one client's deadline cannot fail another client's request.
     * Neither field is part of the cache key.
     */
    StopToken stop;
    /** Cycles between stop-token polls when @ref stop is attached. */
    Cycle stopCheckInterval = 4096;
    /**
     * Batched lockstep width for the matrix runners (0 or 1 = scalar).
     * runCycleMatrixStreamed groups the config axis into batches of
     * this many lanes and advances each batch in lockstep through one
     * BatchedFabric per (group, workload) task (docs/batched_sim.md).
     * Results, cache digests and emitted JSON stay bit-identical to
     * scalar; like the stop fields, not part of the cache key.
     * Ignored when @ref trace is set — tracing is per-fabric.
     */
    std::size_t batch = 0;
};

/**
 * Host-side accounting for the batched lockstep path (the
 * tia-metrics/v1 "sweep"."batch" block; see batchStatsJson). Lane
 * classification is the batch runner's own: hits + misses == lanes
 * always (without a cache every lane counts as a miss), misses <=
 * simulated (verify-mode hit lanes re-simulate too), verified <= hits,
 * cancelled <= simulated.
 */
struct BatchStats
{
    std::size_t width = 0;     ///< Configured lockstep width (0 = scalar).
    std::size_t groups = 0;    ///< BatchedFabric executions.
    std::size_t lanes = 0;     ///< Total lanes across all groups.
    std::size_t hits = 0;      ///< Lanes satisfied from the SimCache.
    std::size_t misses = 0;    ///< Lanes that had to simulate.
    std::size_t simulated = 0; ///< Lanes actually run in a fabric.
    std::size_t verified = 0;  ///< Hit lanes verified byte-for-byte.
    std::size_t cancelled = 0; ///< Simulated lanes cut short (uncached).
    /** 64-bit plane ops performed by the SoA resolution kernel. */
    std::uint64_t bitplaneOps = 0;
    /**
     * True when batching was requested but auto-disabled because the
     * sweep runs on one worker thread (`--jobs 1`): lockstep lanes
     * only pay off when groups overlap across workers.
     */
    bool autoDisabled = false;
};

/** The tia-metrics/v1 "sweep"."batch" object for @p stats. */
JsonValue batchStatsJson(const BatchStats &stats);

/** Hard ceiling parseBatchWidth clamps absurd widths to. */
std::size_t maxReasonableBatchWidth();

/**
 * Parse a `--batch` command-line value the way ThreadPool::parseJobs
 * parses `--jobs`: anything but a plain non-negative integer is a
 * fatal error (FatalError — tools exit 1), 0 and 1 mean scalar, and a
 * width beyond maxReasonableBatchWidth() (including values too large
 * for the integer type) clamps with a stderr warning instead of
 * silently allocating absurd lane counts. @p what names the flag in
 * diagnostics.
 */
std::size_t parseBatchWidth(const std::string &text,
                            const char *what = "--batch");

/** Result of one workload execution. */
struct WorkloadRun
{
    RunStatus status = RunStatus::StepLimit;
    /** Empty when the golden model validated the memory image. */
    std::string checkError;
    /** Worker PE counters (cycle runs; functional fills a subset). */
    PerfCounters worker;
    /** Worker PE in-flight instructions at run end (cycle runs). */
    std::uint64_t workerInFlight = 0;
    /** Index of the worker PE the counters above belong to. */
    unsigned workerPe = 0;
    /** Dynamic instructions per PE. */
    std::vector<std::uint64_t> dynamicInstructions;
    /** Total cycles simulated (cycle runs). */
    Cycle totalCycles = 0;
    /** Hang diagnosis for cycle runs (how the run ended). */
    HangReport hang;
    /** Outcome classification for injected runs. */
    FaultOutcome faultOutcome = FaultOutcome::None;
    /** Per-event injection counts for injected runs. */
    FaultStats faultStats;
    /** Host-side: PE steps actually executed (cycle runs). */
    std::uint64_t peStepsExecuted = 0;
    /** Host-side: PE steps elided by the idle sleep list (cycle runs). */
    std::uint64_t peStepsSkipped = 0;
    /**
     * Host-side: trigger resolutions satisfied by a still-valid
     * memoized verdict (dirty-queue incremental re-resolution) vs.
     * recomputed in full. Skips + fulls covers every resolution the
     * run performed; a run under the reference scheduler recomputes
     * everything (skips == 0). Kernel-seeded verdicts count as full
     * resolves when consumed, so batched lanes match scalar runs
     * bit-for-bit (tests/test_batched_fabric.cc).
     */
    std::uint64_t resolutionSkips = 0;
    std::uint64_t resolutionFulls = 0;

    bool ok() const { return status == RunStatus::Halted &&
                             checkError.empty(); }

    /** Field-wise equality (cache round-trip and verify tests). */
    bool operator==(const WorkloadRun &) const = default;
};

/** Run on the functional (golden) simulator. */
WorkloadRun runFunctional(const Workload &workload,
                          std::uint64_t max_steps = 50'000'000);

/** Run cycle-accurately under microarchitecture @p uarch. */
WorkloadRun runCycle(const Workload &workload, const PeConfig &uarch,
                     Cycle max_cycles = kDefaultMaxCycles);

/** Run cycle-accurately with full control (fault injection, watchdog). */
WorkloadRun runCycle(const Workload &workload, const PeConfig &uarch,
                     const CycleRunOptions &options);

/** One batched lockstep execution: per-lane runs plus accounting. */
struct BatchRunResult
{
    /** One run per uarch, in the order passed to runCycleBatch. */
    std::vector<WorkloadRun> runs;
    /** Accounting for this one group (groups == 1). */
    BatchStats stats;
};

/**
 * Run @p workload against every uarch in @p uarchs in lockstep on a
 * BatchedFabric, each lane bit-identical to runCycle of that lane
 * alone (asserted by tests/test_batched_fabric.cc). Cache interaction
 * matches the scalar path per lane: hit lanes decode without
 * simulating (in verify-hits mode they re-simulate in the batch and
 * byte-compare), miss lanes simulate and are stored, cancelled lanes
 * return Cancelled and leave no cache entry, and undecodable persisted
 * payloads degrade to a recompute-and-overwrite miss. Tracing is
 * unsupported here (FatalError); callers keep traced runs scalar.
 */
BatchRunResult runCycleBatch(const Workload &workload,
                             const std::vector<PeConfig> &uarchs,
                             const CycleRunOptions &options);

/**
 * The uarch x workload batch product behind the Figure 5 CPI stacks,
 * run on a SweepEngine. Cell (c, w) is runCycle(workloads[w],
 * configs[c], options); every task owns its fabric, fault-injector RNG
 * and counters, so the matrix is element-wise bit-identical for any
 * jobs count (asserted by tests/test_sweep_engine.cc).
 */
struct CycleMatrix
{
    /** Row-major cells: run(c, w) = runs[c * numWorkloads + w]. */
    std::vector<WorkloadRun> runs;
    std::size_t numConfigs = 0;
    std::size_t numWorkloads = 0;
    unsigned jobs = 1;   ///< Worker threads used.
    double wallMs = 0.0; ///< Wall-clock time of the whole matrix.
    /** Batched-path accounting (width == 0 when the run was scalar). */
    BatchStats batch;

    const WorkloadRun &
    run(std::size_t config, std::size_t workload) const
    {
        return runs.at(config * numWorkloads + workload);
    }
};

/**
 * Run every workload under every microarchitecture.
 *
 * Implemented on the streaming pipeline (exec/pipeline.hh) with a
 * null sink — bit-identical to runCycleMatrixFlat for any jobs count
 * (asserted by tests/test_sweep_pipeline.cc), but a task exception
 * cancels in-flight siblings instead of waiting out the matrix.
 *
 * @param jobs worker threads; 0 = hardware concurrency, 1 = serial
 *             reference loop.
 */
CycleMatrix runCycleMatrix(const std::vector<Workload> &workloads,
                           const std::vector<PeConfig> &configs,
                           const CycleRunOptions &options = {},
                           unsigned jobs = 1);

/**
 * Streaming consumer for runCycleMatrixStreamed: called strictly in
 * row-major cell order — (0,0), (0,1), … — on the calling thread, as
 * soon as each cell's run is available, while later cells are still
 * simulating. The run reference points at the cell just appended to
 * the matrix being built.
 */
using CycleMatrixSink = std::function<void(
    std::size_t config, std::size_t workload, const WorkloadRun &run)>;

/**
 * runCycleMatrix through the SweepPipeline: cells stream to @p sink in
 * row-major order while the worker pool simulates ahead, so JSON
 * assembly / metrics / cache-save work overlaps simulation instead of
 * trailing the full-matrix barrier. The returned matrix is complete
 * and bit-identical to runCycleMatrixFlat. A sink exception fails the
 * sweep fast (sibling tasks are cancelled) and is rethrown.
 */
CycleMatrix runCycleMatrixStreamed(const std::vector<Workload> &workloads,
                                   const std::vector<PeConfig> &configs,
                                   const CycleRunOptions &options,
                                   unsigned jobs,
                                   const CycleMatrixSink &sink);

/**
 * Reference implementation on the flat SweepEngine::map barrier (no
 * streaming); kept for equivalence tests and `tia-sweep --flat`.
 */
CycleMatrix runCycleMatrixFlat(const std::vector<Workload> &workloads,
                               const std::vector<PeConfig> &configs,
                               const CycleRunOptions &options = {},
                               unsigned jobs = 1);

/**
 * Build the tia-metrics/v1 run entry for a finished cycle run: status,
 * cycle count, hang verdict, sleep statistics, the worker PE's
 * counters/CPI stack and (for injected runs) the fault outcome. The
 * single-element "pes" array carries the worker PE only — matching
 * what WorkloadRun retains — while "num_pes" reports the true fabric
 * size, so validators apply whole-fabric identities only when the two
 * agree.
 */
JsonValue workloadRunMetrics(const WorkloadRun &run, const PeConfig &uarch,
                             const std::string &workload);

} // namespace tia

#endif // TIA_WORKLOADS_RUNNER_HH
