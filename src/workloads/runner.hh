/**
 * @file
 * Convenience runners: execute a Workload on the functional or
 * cycle-accurate fabric, validate the memory image, and collect the
 * worker PE's counters (the figures the paper reports come from "the
 * designated worker PE", Table 3).
 */

#ifndef TIA_WORKLOADS_RUNNER_HH
#define TIA_WORKLOADS_RUNNER_HH

#include "sim/functional.hh"
#include "uarch/config.hh"
#include "uarch/counters.hh"
#include "workloads/workload.hh"

namespace tia {

/** Result of one workload execution. */
struct WorkloadRun
{
    RunStatus status = RunStatus::StepLimit;
    /** Empty when the golden model validated the memory image. */
    std::string checkError;
    /** Worker PE counters (cycle runs; functional fills a subset). */
    PerfCounters worker;
    /** Dynamic instructions per PE. */
    std::vector<std::uint64_t> dynamicInstructions;
    /** Total cycles simulated (cycle runs). */
    Cycle totalCycles = 0;

    bool ok() const { return status == RunStatus::Halted &&
                             checkError.empty(); }
};

/** Run on the functional (golden) simulator. */
WorkloadRun runFunctional(const Workload &workload,
                          std::uint64_t max_steps = 50'000'000);

/** Run cycle-accurately under microarchitecture @p uarch. */
WorkloadRun runCycle(const Workload &workload, const PeConfig &uarch,
                     Cycle max_cycles = 100'000'000);

} // namespace tia

#endif // TIA_WORKLOADS_RUNNER_HH
