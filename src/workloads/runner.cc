#include "workloads/runner.hh"

#include <optional>

#include "cache/run_cache.hh"
#include "cache/simcache.hh"
#include "exec/pipeline.hh"
#include "exec/sweep.hh"
#include "obs/metrics.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {

namespace {

/** The always-simulate core of runCycle; cached dispatch wraps this. */
WorkloadRun runCycleUncached(const Workload &workload, const PeConfig &uarch,
                             const CycleRunOptions &options);

/**
 * Internal signal used by the cached dispatch path: a computation cut
 * short by a stop token must not be cached, so the compute closure
 * throws the cancelled run out of SimCache::getOrCompute (which caches
 * nothing on a throwing computation) and runCycle catches it.
 */
struct CancelledRun
{
    WorkloadRun run;
};

} // namespace

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::None:
        return "none";
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Recovered:
        return "recovered";
      case FaultOutcome::Corrupted:
        return "corrupted";
      case FaultOutcome::Trapped:
        return "trapped";
      case FaultOutcome::Hung:
        return "hung";
    }
    return "?";
}

WorkloadRun
runFunctional(const Workload &workload, std::uint64_t max_steps)
{
    FunctionalFabric fabric(workload.config, workload.program);
    workload.preload(fabric.memory());

    WorkloadRun run;
    run.status = fabric.run(max_steps);
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe)
        run.dynamicInstructions.push_back(
            fabric.pe(pe).dynamicInstructions());
    run.worker.retired =
        fabric.pe(workload.workerPe).dynamicInstructions();
    run.worker.predicateWrites =
        fabric.pe(workload.workerPe).predicateWrites();
    if (run.status == RunStatus::Halted)
        run.checkError = workload.check(fabric.memory());
    else
        run.checkError = "run did not complete";
    return run;
}

WorkloadRun
runCycle(const Workload &workload, const PeConfig &uarch, Cycle max_cycles)
{
    CycleRunOptions options;
    options.maxCycles = max_cycles;
    return runCycle(workload, uarch, options);
}

WorkloadRun
runCycle(const Workload &workload, const PeConfig &uarch,
         const CycleRunOptions &options)
{
    // Tracing is a side effect a cached result cannot replay, so a
    // run with a sink installed always simulates.
    if (options.cache == nullptr || options.trace != nullptr)
        return runCycleUncached(workload, uarch, options);

    const Digest128 key = workloadRunKey(workload, uarch, options);
    std::string payload;
    for (;;) {
        try {
            payload = options.cache->getOrCompute(
                key, [&workload, &uarch, &options] {
                    WorkloadRun fresh =
                        runCycleUncached(workload, uarch, options);
                    if (fresh.status == RunStatus::Cancelled)
                        throw CancelledRun{std::move(fresh)};
                    return encodeWorkloadRun(fresh);
                });
            break;
        } catch (const CancelledRun &cancelled) {
            // Our own cancellation (we were the leader, or our token
            // fired while we waited) is a final answer. A waiter
            // coalesced onto someone else's cancelled leader still has
            // budget: retry, becoming the new leader.
            if (options.stop.stopRequested())
                return cancelled.run;
        }
    }
    if (std::optional<WorkloadRun> run = decodeWorkloadRun(payload))
        return *run;

    // A persisted payload that fails to decode (written by a newer
    // build within the same schema version, or damaged in a way the
    // checksum missed) degrades to a miss: recompute and overwrite.
    options.cache->erase(key);
    WorkloadRun fresh = runCycleUncached(workload, uarch, options);
    options.cache->put(key, encodeWorkloadRun(fresh));
    return fresh;
}

namespace {

WorkloadRun
runCycleUncached(const Workload &workload, const PeConfig &uarch,
                 const CycleRunOptions &options)
{
    std::optional<FaultInjector> injector;
    if (options.faults != nullptr && !options.faults->empty())
        injector.emplace(*options.faults);

    WorkloadRun run;
    CycleFabric fabric(workload.config, workload.program, uarch,
                       injector ? &*injector : nullptr);
    workload.preload(fabric.memory());
    if (options.trace != nullptr)
        fabric.setTraceSink(options.trace, options.traceLevel);
    if (options.referenceScheduler)
        fabric.setUseReferenceScheduler(true);

    const FabricRunOptions fabric_options{options.maxCycles,
                                          options.quiescenceWindow,
                                          options.stop,
                                          options.stopCheckInterval};
    bool trapped = false;
    if (injector) {
        // Corrupted tokens can escalate to architectural traps
        // (out-of-bounds addresses and the like); for injected runs
        // that is a reportable outcome, not a harness failure.
        try {
            run.status = fabric.run(fabric_options);
        } catch (const FatalError &error) {
            trapped = true;
            run.status = RunStatus::StepLimit;
            run.checkError = std::string("trapped: ") + error.what();
        }
    } else {
        run.status = fabric.run(fabric_options);
    }

    run.hang = fabric.hangReport();
    run.totalCycles = fabric.now();
    const FabricStepStats steps = fabric.stepStats();
    run.peStepsExecuted = steps.peStepsExecuted;
    run.peStepsSkipped = steps.peStepsSkipped;
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe)
        run.dynamicInstructions.push_back(
            fabric.pe(pe).counters().retired);
    run.worker = fabric.pe(workload.workerPe).counters();
    run.workerInFlight = fabric.pe(workload.workerPe).inFlight();
    run.workerPe = workload.workerPe;
    if (trapped) {
        // checkError already explains the trap.
    } else if (run.status == RunStatus::Halted) {
        run.checkError = workload.check(fabric.memory());
    } else {
        run.checkError = "run did not complete";
    }

    if (injector) {
        run.faultStats = injector->stats();
        std::uint64_t pe_faults = 0;
        std::uint64_t pe_recoveries = 0;
        for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
            pe_faults += fabric.pe(pe).counters().faultsInjected;
            pe_recoveries += fabric.pe(pe).counters().faultRecoveries;
        }
        if (options.goldenCrossCheck) {
            if (trapped) {
                run.faultOutcome = FaultOutcome::Trapped;
            } else if (run.status != RunStatus::Halted) {
                run.faultOutcome = FaultOutcome::Hung;
            } else if (!run.checkError.empty()) {
                run.faultOutcome = FaultOutcome::Corrupted;
            } else if (run.faultStats.totalFired() == 0) {
                run.faultOutcome = FaultOutcome::None;
            } else if (pe_recoveries > 0) {
                run.faultOutcome = FaultOutcome::Recovered;
            } else {
                run.faultOutcome = FaultOutcome::Masked;
            }
        }
    }
    return run;
}

} // namespace

JsonValue
workloadRunMetrics(const WorkloadRun &run, const PeConfig &uarch,
                   const std::string &workload)
{
    JsonValue entry = JsonValue::object();
    entry["workload"] = workload;
    entry["uarch"] = uarch.name();
    entry["status"] = run.ok() ? "ok" : runStatusName(run.status);
    if (!run.checkError.empty())
        entry["check_error"] = run.checkError;
    entry["cycles"] = run.totalCycles;
    entry["num_pes"] =
        static_cast<std::uint64_t>(run.dynamicInstructions.size());

    JsonValue verdict = JsonValue::object();
    verdict["classification"] = runStatusName(run.hang.classification);
    verdict["summary"] = run.hang.summary;
    entry["verdict"] = std::move(verdict);

    entry["sleep"] =
        sleepMetricsJson(run.peStepsExecuted, run.peStepsSkipped);

    JsonValue pes = JsonValue::array();
    pes.push(peMetricsJson(run.workerPe, run.worker, run.workerInFlight));
    entry["pes"] = std::move(pes);

    if (run.faultOutcome != FaultOutcome::None ||
        run.faultStats.totalFired() != 0) {
        JsonValue faults = JsonValue::object();
        faults["outcome"] = faultOutcomeName(run.faultOutcome);
        faults["total_fired"] = run.faultStats.totalFired();
        JsonValue lines = JsonValue::array();
        for (const auto &line : run.faultStats.lines) {
            JsonValue item = JsonValue::object();
            item["name"] = line.name;
            item["fired"] = line.fired;
            item["declined"] = line.declined;
            lines.push(std::move(item));
        }
        faults["lines"] = std::move(lines);
        entry["faults"] = std::move(faults);
    }
    return entry;
}

namespace {

/**
 * The shared cell task: cell i = (c, w) in row-major order, run with
 * the caller's options plus the engine's fail-fast cancel token merged
 * into the stop token, so one cell's exception cancels its siblings
 * within a few thousand simulated cycles.
 */
auto
matrixCellTask(const std::vector<Workload> &workloads,
               const std::vector<PeConfig> &configs,
               const CycleRunOptions &options)
{
    return [&workloads, &configs, &options](std::size_t i,
                                            const StopToken &cancel) {
        const std::size_t c = i / workloads.size();
        const std::size_t w = i % workloads.size();
        CycleRunOptions task = options;
        task.stop = StopToken::anyOf(options.stop, cancel);
        return runCycle(workloads[w], configs[c], task);
    };
}

} // namespace

CycleMatrix
runCycleMatrixStreamed(const std::vector<Workload> &workloads,
                       const std::vector<PeConfig> &configs,
                       const CycleRunOptions &options, unsigned jobs,
                       const CycleMatrixSink &sink)
{
    CycleMatrix matrix;
    matrix.numConfigs = configs.size();
    matrix.numWorkloads = workloads.size();
    matrix.runs.reserve(configs.size() * workloads.size());

    const SweepPipeline pipeline(jobs);
    const PipelineResult result = pipeline.run(
        configs.size() * workloads.size(),
        matrixCellTask(workloads, configs, options),
        [&](std::size_t i, WorkloadRun &&run) {
            matrix.runs.push_back(std::move(run));
            if (sink) {
                sink(i / workloads.size(), i % workloads.size(),
                     matrix.runs.back());
            }
        });
    matrix.jobs = result.jobs;
    matrix.wallMs = result.wallMs;
    return matrix;
}

CycleMatrix
runCycleMatrix(const std::vector<Workload> &workloads,
               const std::vector<PeConfig> &configs,
               const CycleRunOptions &options, unsigned jobs)
{
    return runCycleMatrixStreamed(workloads, configs, options, jobs,
                                  CycleMatrixSink{});
}

CycleMatrix
runCycleMatrixFlat(const std::vector<Workload> &workloads,
                   const std::vector<PeConfig> &configs,
                   const CycleRunOptions &options, unsigned jobs)
{
    CycleMatrix matrix;
    matrix.numConfigs = configs.size();
    matrix.numWorkloads = workloads.size();

    const SweepEngine engine(jobs);
    auto sweep = engine.map(configs.size() * workloads.size(),
                            matrixCellTask(workloads, configs, options));
    matrix.runs = std::move(sweep.values);
    matrix.jobs = sweep.jobs;
    matrix.wallMs = sweep.wallMs;
    return matrix;
}

} // namespace tia
