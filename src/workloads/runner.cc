#include "workloads/runner.hh"

#include "uarch/cycle_fabric.hh"

namespace tia {

WorkloadRun
runFunctional(const Workload &workload, std::uint64_t max_steps)
{
    FunctionalFabric fabric(workload.config, workload.program);
    workload.preload(fabric.memory());

    WorkloadRun run;
    run.status = fabric.run(max_steps);
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe)
        run.dynamicInstructions.push_back(
            fabric.pe(pe).dynamicInstructions());
    run.worker.retired =
        fabric.pe(workload.workerPe).dynamicInstructions();
    run.worker.predicateWrites =
        fabric.pe(workload.workerPe).predicateWrites();
    if (run.status == RunStatus::Halted)
        run.checkError = workload.check(fabric.memory());
    else
        run.checkError = "run did not complete";
    return run;
}

WorkloadRun
runCycle(const Workload &workload, const PeConfig &uarch, Cycle max_cycles)
{
    CycleFabric fabric(workload.config, workload.program, uarch);
    workload.preload(fabric.memory());

    WorkloadRun run;
    run.status = fabric.run(max_cycles);
    run.totalCycles = fabric.now();
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe)
        run.dynamicInstructions.push_back(
            fabric.pe(pe).counters().retired);
    run.worker = fabric.pe(workload.workerPe).counters();
    if (run.status == RunStatus::Halted)
        run.checkError = workload.check(fabric.memory());
    else
        run.checkError = "run did not complete";
    return run;
}

} // namespace tia
