#include "workloads/runner.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <memory>
#include <optional>

#include "cache/run_cache.hh"
#include "cache/simcache.hh"
#include "core/logging.hh"
#include "exec/pipeline.hh"
#include "exec/sweep.hh"
#include "obs/metrics.hh"
#include "uarch/batched_fabric.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {

namespace {

/** The always-simulate core of runCycle; cached dispatch wraps this. */
WorkloadRun runCycleUncached(const Workload &workload, const PeConfig &uarch,
                             const CycleRunOptions &options);

/**
 * Internal signal used by the cached dispatch path: a computation cut
 * short by a stop token must not be cached, so the compute closure
 * throws the cancelled run out of SimCache::getOrCompute (which caches
 * nothing on a throwing computation) and runCycle catches it.
 */
struct CancelledRun
{
    WorkloadRun run;
};

} // namespace

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::None:
        return "none";
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Recovered:
        return "recovered";
      case FaultOutcome::Corrupted:
        return "corrupted";
      case FaultOutcome::Trapped:
        return "trapped";
      case FaultOutcome::Hung:
        return "hung";
    }
    return "?";
}

WorkloadRun
runFunctional(const Workload &workload, std::uint64_t max_steps)
{
    FunctionalFabric fabric(workload.config, workload.program);
    workload.preload(fabric.memory());

    WorkloadRun run;
    run.status = fabric.run(max_steps);
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe)
        run.dynamicInstructions.push_back(
            fabric.pe(pe).dynamicInstructions());
    run.worker.retired =
        fabric.pe(workload.workerPe).dynamicInstructions();
    run.worker.predicateWrites =
        fabric.pe(workload.workerPe).predicateWrites();
    if (run.status == RunStatus::Halted)
        run.checkError = workload.check(fabric.memory());
    else
        run.checkError = "run did not complete";
    return run;
}

WorkloadRun
runCycle(const Workload &workload, const PeConfig &uarch, Cycle max_cycles)
{
    CycleRunOptions options;
    options.maxCycles = max_cycles;
    return runCycle(workload, uarch, options);
}

WorkloadRun
runCycle(const Workload &workload, const PeConfig &uarch,
         const CycleRunOptions &options)
{
    // Tracing is a side effect a cached result cannot replay, so a
    // run with a sink installed always simulates.
    if (options.cache == nullptr || options.trace != nullptr)
        return runCycleUncached(workload, uarch, options);

    const Digest128 key = workloadRunKey(workload, uarch, options);
    std::string payload;
    for (;;) {
        try {
            payload = options.cache->getOrCompute(
                key, [&workload, &uarch, &options] {
                    WorkloadRun fresh =
                        runCycleUncached(workload, uarch, options);
                    if (fresh.status == RunStatus::Cancelled)
                        throw CancelledRun{std::move(fresh)};
                    return encodeWorkloadRun(fresh);
                });
            break;
        } catch (const CancelledRun &cancelled) {
            // Our own cancellation (we were the leader, or our token
            // fired while we waited) is a final answer. A waiter
            // coalesced onto someone else's cancelled leader still has
            // budget: retry, becoming the new leader.
            if (options.stop.stopRequested())
                return cancelled.run;
        }
    }
    if (std::optional<WorkloadRun> run = decodeWorkloadRun(payload))
        return *run;

    // A persisted payload that fails to decode (written by a newer
    // build within the same schema version, or damaged in a way the
    // checksum missed) degrades to a miss: recompute and overwrite.
    options.cache->erase(key);
    WorkloadRun fresh = runCycleUncached(workload, uarch, options);
    options.cache->put(key, encodeWorkloadRun(fresh));
    return fresh;
}

namespace {

/**
 * Post-run extraction shared by the scalar and batched paths: collect
 * the hang diagnosis, counters, memory validation and (for injected
 * runs) the fault-outcome classification from a finished fabric.
 * @p trap_message is the FatalError text when an injected run
 * escalated to an architectural trap (@p trapped).
 */
WorkloadRun
collectRun(CycleFabric &fabric, const Workload &workload,
           const CycleRunOptions &options, FaultInjector *injector,
           RunStatus status, bool trapped,
           const std::string &trap_message)
{
    WorkloadRun run;
    run.status = status;
    if (trapped)
        run.checkError = std::string("trapped: ") + trap_message;

    run.hang = fabric.hangReport();
    run.totalCycles = fabric.now();
    const FabricStepStats steps = fabric.stepStats();
    run.peStepsExecuted = steps.peStepsExecuted;
    run.peStepsSkipped = steps.peStepsSkipped;
    const ResolutionStats resolution = fabric.resolutionStats();
    run.resolutionSkips = resolution.incrementalSkips;
    run.resolutionFulls = resolution.fullResolves;
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe)
        run.dynamicInstructions.push_back(
            fabric.pe(pe).counters().retired);
    run.worker = fabric.pe(workload.workerPe).counters();
    run.workerInFlight = fabric.pe(workload.workerPe).inFlight();
    run.workerPe = workload.workerPe;
    if (trapped) {
        // checkError already explains the trap.
    } else if (run.status == RunStatus::Halted) {
        run.checkError = workload.check(fabric.memory());
    } else {
        run.checkError = "run did not complete";
    }

    if (injector) {
        run.faultStats = injector->stats();
        std::uint64_t pe_faults = 0;
        std::uint64_t pe_recoveries = 0;
        for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
            pe_faults += fabric.pe(pe).counters().faultsInjected;
            pe_recoveries += fabric.pe(pe).counters().faultRecoveries;
        }
        if (options.goldenCrossCheck) {
            if (trapped) {
                run.faultOutcome = FaultOutcome::Trapped;
            } else if (run.status != RunStatus::Halted) {
                run.faultOutcome = FaultOutcome::Hung;
            } else if (!run.checkError.empty()) {
                run.faultOutcome = FaultOutcome::Corrupted;
            } else if (run.faultStats.totalFired() == 0) {
                run.faultOutcome = FaultOutcome::None;
            } else if (pe_recoveries > 0) {
                run.faultOutcome = FaultOutcome::Recovered;
            } else {
                run.faultOutcome = FaultOutcome::Masked;
            }
        }
    }
    return run;
}

WorkloadRun
runCycleUncached(const Workload &workload, const PeConfig &uarch,
                 const CycleRunOptions &options)
{
    std::optional<FaultInjector> injector;
    if (options.faults != nullptr && !options.faults->empty())
        injector.emplace(*options.faults);

    CycleFabric fabric(workload.config, workload.program, uarch,
                       injector ? &*injector : nullptr);
    workload.preload(fabric.memory());
    if (options.trace != nullptr)
        fabric.setTraceSink(options.trace, options.traceLevel);
    if (options.referenceScheduler)
        fabric.setUseReferenceScheduler(true);

    const FabricRunOptions fabric_options{options.maxCycles,
                                          options.quiescenceWindow,
                                          options.stop,
                                          options.stopCheckInterval};
    RunStatus status = RunStatus::StepLimit;
    bool trapped = false;
    std::string trap_message;
    if (injector) {
        // Corrupted tokens can escalate to architectural traps
        // (out-of-bounds addresses and the like); for injected runs
        // that is a reportable outcome, not a harness failure.
        try {
            status = fabric.run(fabric_options);
        } catch (const FatalError &error) {
            trapped = true;
            trap_message = error.what();
        }
    } else {
        status = fabric.run(fabric_options);
    }
    return collectRun(fabric, workload, options,
                      injector ? &*injector : nullptr, status, trapped,
                      trap_message);
}

} // namespace

BatchRunResult
runCycleBatch(const Workload &workload,
              const std::vector<PeConfig> &uarchs,
              const CycleRunOptions &options)
{
    fatalIf(options.trace != nullptr,
            "runCycleBatch cannot trace: one sink cannot replay "
            "interleaved lanes — keep traced runs scalar");

    BatchRunResult result;
    BatchStats &stats = result.stats;
    stats.width = uarchs.size();
    stats.groups = 1;
    stats.lanes = uarchs.size();
    result.runs.resize(uarchs.size());

    // Per-lane cache probe, mirroring the scalar runCycle dispatch:
    // hit lanes decode without simulating (verify mode re-simulates
    // them in the batch and byte-compares afterwards), undecodable
    // persisted payloads degrade to a recompute-and-overwrite miss.
    // No single-flight leg: a matrix never issues the same key twice.
    SimCache *cache = options.cache;
    std::vector<Digest128> keys(uarchs.size());
    std::vector<std::string> cached(uarchs.size());
    std::vector<std::uint8_t> verify(uarchs.size(), 0);
    std::vector<std::size_t> sim_lanes;
    sim_lanes.reserve(uarchs.size());
    for (std::size_t l = 0; l < uarchs.size(); ++l) {
        if (cache == nullptr) {
            ++stats.misses;
            sim_lanes.push_back(l);
            continue;
        }
        keys[l] = workloadRunKey(workload, uarchs[l], options);
        std::optional<std::string> payload = cache->lookup(keys[l]);
        if (!payload) {
            ++stats.misses;
            sim_lanes.push_back(l);
            continue;
        }
        if (std::optional<WorkloadRun> run = decodeWorkloadRun(*payload)) {
            ++stats.hits;
            result.runs[l] = std::move(*run);
            if (cache->verifyHits()) {
                cached[l] = std::move(*payload);
                verify[l] = 1;
                sim_lanes.push_back(l);
            }
            continue;
        }
        cache->erase(keys[l]);
        ++stats.misses;
        sim_lanes.push_back(l);
    }
    if (sim_lanes.empty())
        return result;
    stats.simulated = sim_lanes.size();

    std::vector<std::unique_ptr<FaultInjector>> injectors;
    std::vector<FaultInjector *> injector_ptrs;
    std::vector<PeConfig> lanes;
    lanes.reserve(sim_lanes.size());
    const bool inject =
        options.faults != nullptr && !options.faults->empty();
    for (const std::size_t l : sim_lanes) {
        lanes.push_back(uarchs[l]);
        if (inject) {
            injectors.push_back(
                std::make_unique<FaultInjector>(*options.faults));
            injector_ptrs.push_back(injectors.back().get());
        } else {
            injector_ptrs.push_back(nullptr);
        }
    }

    BatchedFabric batch(workload.config, workload.program, lanes,
                        injector_ptrs);
    for (unsigned b = 0; b < batch.numLanes(); ++b) {
        workload.preload(batch.lane(b).memory());
        if (options.referenceScheduler)
            batch.lane(b).setUseReferenceScheduler(true);
    }
    const FabricRunOptions fabric_options{options.maxCycles,
                                          options.quiescenceWindow,
                                          options.stop,
                                          options.stopCheckInterval};
    const std::vector<BatchedLaneOutcome> outcomes =
        batch.run(fabric_options);
    stats.bitplaneOps = batch.bitplaneOps();

    for (std::size_t b = 0; b < sim_lanes.size(); ++b) {
        const std::size_t l = sim_lanes[b];
        WorkloadRun fresh =
            collectRun(batch.lane(static_cast<unsigned>(b)), workload,
                       options, injector_ptrs[b], outcomes[b].status,
                       outcomes[b].trapped, outcomes[b].trapMessage);
        if (fresh.status == RunStatus::Cancelled) {
            // A cancelled lane is never cached, and a cancelled
            // verification returns the fresh cancelled run — exactly
            // the scalar CancelledRun semantics.
            ++stats.cancelled;
            result.runs[l] = std::move(fresh);
            continue;
        }
        if (cache == nullptr) {
            result.runs[l] = std::move(fresh);
            continue;
        }
        if (verify[l]) {
            cache->verifyHit(keys[l], cached[l],
                             encodeWorkloadRun(fresh));
            ++stats.verified;
            // result.runs[l] keeps the decoded hit; verifyHit just
            // proved the bytes identical.
            continue;
        }
        cache->put(keys[l], encodeWorkloadRun(fresh));
        result.runs[l] = std::move(fresh);
    }
    return result;
}

std::size_t
maxReasonableBatchWidth()
{
    // Lanes are whole fabrics: beyond a few hundred the working set
    // stops fitting anywhere useful and the SoA planes stop paying for
    // themselves. 1024 lanes = 16 words per plane, far past any sweep
    // this repo runs (the full config list is 32).
    return 1024;
}

std::size_t
parseBatchWidth(const std::string &text, const char *what)
{
    fatalIf(text.empty(), what, " wants a non-negative integer");
    for (char c : text) {
        fatalIf(!std::isdigit(static_cast<unsigned char>(c)), what,
                " wants a non-negative integer, got \"", text, "\"");
    }
    const std::size_t limit = maxReasonableBatchWidth();
    std::size_t width = 0;
    try {
        width = static_cast<std::size_t>(std::stoull(text));
    } catch (const std::out_of_range &) {
        width = limit + 1; // clamp below
    }
    if (width > limit) {
        std::fprintf(stderr,
                     "warning: %s %s exceeds the sane lockstep width; "
                     "clamping to %zu\n",
                     what, text.c_str(), limit);
        return limit;
    }
    return width;
}

JsonValue
batchStatsJson(const BatchStats &stats)
{
    JsonValue batch = JsonValue::object();
    batch["width"] = static_cast<std::uint64_t>(stats.width);
    batch["groups"] = static_cast<std::uint64_t>(stats.groups);
    batch["lanes"] = static_cast<std::uint64_t>(stats.lanes);
    batch["hits"] = static_cast<std::uint64_t>(stats.hits);
    batch["misses"] = static_cast<std::uint64_t>(stats.misses);
    batch["simulated"] = static_cast<std::uint64_t>(stats.simulated);
    batch["verified"] = static_cast<std::uint64_t>(stats.verified);
    batch["cancelled"] = static_cast<std::uint64_t>(stats.cancelled);
    batch["bitplane_ops"] = stats.bitplaneOps;
    batch["auto_disabled"] = stats.autoDisabled;
    return batch;
}

JsonValue
workloadRunMetrics(const WorkloadRun &run, const PeConfig &uarch,
                   const std::string &workload)
{
    JsonValue entry = JsonValue::object();
    entry["workload"] = workload;
    entry["uarch"] = uarch.name();
    entry["status"] = run.ok() ? "ok" : runStatusName(run.status);
    if (!run.checkError.empty())
        entry["check_error"] = run.checkError;
    entry["cycles"] = run.totalCycles;
    entry["num_pes"] =
        static_cast<std::uint64_t>(run.dynamicInstructions.size());

    JsonValue verdict = JsonValue::object();
    verdict["classification"] = runStatusName(run.hang.classification);
    verdict["summary"] = run.hang.summary;
    entry["verdict"] = std::move(verdict);

    entry["sleep"] =
        sleepMetricsJson(run.peStepsExecuted, run.peStepsSkipped);

    entry["resolution"] = resolutionMetricsJson(run.resolutionSkips,
                                                run.resolutionFulls);

    JsonValue pes = JsonValue::array();
    pes.push(peMetricsJson(run.workerPe, run.worker, run.workerInFlight));
    entry["pes"] = std::move(pes);

    if (run.faultOutcome != FaultOutcome::None ||
        run.faultStats.totalFired() != 0) {
        JsonValue faults = JsonValue::object();
        faults["outcome"] = faultOutcomeName(run.faultOutcome);
        faults["total_fired"] = run.faultStats.totalFired();
        JsonValue lines = JsonValue::array();
        for (const auto &line : run.faultStats.lines) {
            JsonValue item = JsonValue::object();
            item["name"] = line.name;
            item["fired"] = line.fired;
            item["declined"] = line.declined;
            lines.push(std::move(item));
        }
        faults["lines"] = std::move(lines);
        entry["faults"] = std::move(faults);
    }
    return entry;
}

namespace {

/**
 * The shared cell task: cell i = (c, w) in row-major order, run with
 * the caller's options plus the engine's fail-fast cancel token merged
 * into the stop token, so one cell's exception cancels its siblings
 * within a few thousand simulated cycles.
 */
auto
matrixCellTask(const std::vector<Workload> &workloads,
               const std::vector<PeConfig> &configs,
               const CycleRunOptions &options)
{
    return [&workloads, &configs, &options](std::size_t i,
                                            const StopToken &cancel) {
        const std::size_t c = i / workloads.size();
        const std::size_t w = i % workloads.size();
        CycleRunOptions task = options;
        task.stop = StopToken::anyOf(options.stop, cancel);
        return runCycle(workloads[w], configs[c], task);
    };
}

/**
 * The batched lockstep variant of runCycleMatrixStreamed: the config
 * axis is cut into groups of options.batch lanes, each (group,
 * workload) pair becomes one runCycleBatch pipeline task, and the
 * serial sink re-emits cells in row-major order — a whole group of
 * config rows must land before its first row can sink, so finished
 * workload columns park in a per-group buffer until the group's last
 * column arrives. Everything downstream (sink order, matrix layout,
 * JSON) is bit-identical to the scalar path.
 */
CycleMatrix
runCycleMatrixBatched(const std::vector<Workload> &workloads,
                      const std::vector<PeConfig> &configs,
                      const CycleRunOptions &options, unsigned jobs,
                      const CycleMatrixSink &sink)
{
    CycleMatrix matrix;
    matrix.numConfigs = configs.size();
    matrix.numWorkloads = workloads.size();
    matrix.runs.reserve(configs.size() * workloads.size());

    const std::size_t width = std::min(options.batch, configs.size());
    const std::size_t num_workloads = workloads.size();
    const std::size_t groups = (configs.size() + width - 1) / width;
    matrix.batch.width = width;

    std::vector<std::vector<WorkloadRun>> pending(num_workloads);

    const SweepPipeline pipeline(jobs);
    const PipelineResult result = pipeline.run(
        groups * num_workloads,
        [&](std::size_t i, const StopToken &cancel) {
            const std::size_t g = i / num_workloads;
            const std::size_t w = i % num_workloads;
            const std::size_t lo = g * width;
            const std::size_t hi =
                std::min(lo + width, configs.size());
            const std::vector<PeConfig> lanes(configs.begin() + lo,
                                              configs.begin() + hi);
            CycleRunOptions task = options;
            task.stop = StopToken::anyOf(options.stop, cancel);
            return runCycleBatch(workloads[w], lanes, task);
        },
        [&](std::size_t i, BatchRunResult &&batch) {
            const std::size_t g = i / num_workloads;
            const std::size_t w = i % num_workloads;
            matrix.batch.groups += batch.stats.groups;
            matrix.batch.lanes += batch.stats.lanes;
            matrix.batch.hits += batch.stats.hits;
            matrix.batch.misses += batch.stats.misses;
            matrix.batch.simulated += batch.stats.simulated;
            matrix.batch.verified += batch.stats.verified;
            matrix.batch.cancelled += batch.stats.cancelled;
            matrix.batch.bitplaneOps += batch.stats.bitplaneOps;
            pending[w] = std::move(batch.runs);
            if (w + 1 < num_workloads)
                return;
            for (std::size_t b = 0; b < pending[w].size(); ++b) {
                for (std::size_t w2 = 0; w2 < num_workloads; ++w2) {
                    matrix.runs.push_back(std::move(pending[w2][b]));
                    if (sink)
                        sink(g * width + b, w2, matrix.runs.back());
                }
            }
        });
    matrix.jobs = result.jobs;
    matrix.wallMs = result.wallMs;
    return matrix;
}

} // namespace

CycleMatrix
runCycleMatrixStreamed(const std::vector<Workload> &workloads,
                       const std::vector<PeConfig> &configs,
                       const CycleRunOptions &options, unsigned jobs,
                       const CycleMatrixSink &sink)
{
    // Batching engages only where it can matter (several configs to
    // lockstep) and never under a trace sink (per-fabric side effect;
    // also the cached-dispatch trace bypass must stay scalar).
    if (options.batch > 1 && options.trace == nullptr &&
        configs.size() > 1 && !workloads.empty()) {
        return runCycleMatrixBatched(workloads, configs, options, jobs,
                                     sink);
    }

    CycleMatrix matrix;
    matrix.numConfigs = configs.size();
    matrix.numWorkloads = workloads.size();
    matrix.runs.reserve(configs.size() * workloads.size());

    const SweepPipeline pipeline(jobs);
    const PipelineResult result = pipeline.run(
        configs.size() * workloads.size(),
        matrixCellTask(workloads, configs, options),
        [&](std::size_t i, WorkloadRun &&run) {
            matrix.runs.push_back(std::move(run));
            if (sink) {
                sink(i / workloads.size(), i % workloads.size(),
                     matrix.runs.back());
            }
        });
    matrix.jobs = result.jobs;
    matrix.wallMs = result.wallMs;
    return matrix;
}

CycleMatrix
runCycleMatrix(const std::vector<Workload> &workloads,
               const std::vector<PeConfig> &configs,
               const CycleRunOptions &options, unsigned jobs)
{
    return runCycleMatrixStreamed(workloads, configs, options, jobs,
                                  CycleMatrixSink{});
}

CycleMatrix
runCycleMatrixFlat(const std::vector<Workload> &workloads,
                   const std::vector<PeConfig> &configs,
                   const CycleRunOptions &options, unsigned jobs)
{
    CycleMatrix matrix;
    matrix.numConfigs = configs.size();
    matrix.numWorkloads = workloads.size();

    const SweepEngine engine(jobs);
    auto sweep = engine.map(configs.size() * workloads.size(),
                            matrixCellTask(workloads, configs, options));
    matrix.runs = std::move(sweep.values);
    matrix.jobs = sweep.jobs;
    matrix.wallMs = sweep.wallMs;
    return matrix;
}

} // namespace tia
