#include "workloads/cpi.hh"

#include "core/logging.hh"
#include "workloads/runner.hh"

namespace tia {

CpiTable
measureCpiTable(const WorkloadSizes &sizes,
                const std::vector<PeConfig> &configs, unsigned jobs,
                const CycleRunOptions &options)
{
    const std::vector<Workload> bst = {makeBst(sizes)};
    const CycleMatrix matrix = runCycleMatrix(bst, configs, options, jobs);
    CpiTable table;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const WorkloadRun &run = matrix.run(c, 0);
        fatalIf(!run.ok(), "bst failed on ", configs[c].name(), ": ",
                run.checkError);
        table[configs[c].name()] = run.worker.cpi();
    }
    return table;
}

CpiTable
suiteAverageCpiTable(const WorkloadSizes &sizes,
                     const std::vector<PeConfig> &configs, unsigned jobs,
                     const CycleRunOptions &options)
{
    const auto suite = allWorkloads(sizes);
    const CycleMatrix matrix = runCycleMatrix(suite, configs, options, jobs);
    CpiTable table;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double sum = 0.0;
        for (std::size_t w = 0; w < suite.size(); ++w) {
            const WorkloadRun &run = matrix.run(c, w);
            fatalIf(!run.ok(), suite[w].name, " failed on ",
                    configs[c].name(), ": ", run.checkError);
            sum += run.worker.cpi();
        }
        table[configs[c].name()] = sum / static_cast<double>(suite.size());
    }
    return table;
}

} // namespace tia
