#include "workloads/cpi.hh"

#include "core/logging.hh"
#include "workloads/runner.hh"

namespace tia {

CpiTable
measureCpiTable(const WorkloadSizes &sizes,
                const std::vector<PeConfig> &configs)
{
    const Workload bst = makeBst(sizes);
    CpiTable table;
    for (const PeConfig &config : configs) {
        const WorkloadRun run = runCycle(bst, config);
        fatalIf(!run.ok(), "bst failed on ", config.name(), ": ",
                run.checkError);
        table[config.name()] = run.worker.cpi();
    }
    return table;
}

CpiTable
suiteAverageCpiTable(const WorkloadSizes &sizes,
                     const std::vector<PeConfig> &configs)
{
    const auto suite = allWorkloads(sizes);
    CpiTable table;
    for (const PeConfig &config : configs) {
        double sum = 0.0;
        for (const Workload &workload : suite) {
            const WorkloadRun run = runCycle(workload, config);
            fatalIf(!run.ok(), workload.name, " failed on ",
                    config.name(), ": ", run.checkError);
            sum += run.worker.cpi();
        }
        table[config.name()] = sum / static_cast<double>(suite.size());
    }
    return table;
}

} // namespace tia
