/**
 * @file
 * Technology model: a 65 nm general-purpose CMOS stand-in for the
 * paper's characterized TSMC standard-cell libraries.
 *
 * The paper characterizes low/standard/high-VT libraries from 0.4 V to
 * 1.0 V and drives Design Compiler / PrimeTime with them; we replace
 * that flow with standard scaling laws anchored to every absolute
 * number the paper reports (see DESIGN.md, substitution table):
 *
 *  - Gate delay follows an EKV-style unified current model that
 *    reduces to the alpha-power law in strong inversion and to
 *    exponential delay growth in the near/sub-threshold regime the
 *    paper explicitly explores.
 *  - Subthreshold leakage scales exponentially with -VT/(n*phi_t) and
 *    with VDD through a DIBL term, giving the canonical ~10x per VT
 *    class separation at 65 nm.
 */

#ifndef TIA_VLSI_TECH_HH
#define TIA_VLSI_TECH_HH

#include <string>

namespace tia {

/** Threshold-voltage flavor of the standard-cell library. */
enum class VtClass
{
    Low,      ///< Fast, leaky (dominates the high-performance end).
    Standard, ///< The nominal library.
    High,     ///< Slow, low leakage (dominates low power).
};

/** Printable library name. */
const char *vtName(VtClass vt);

/** 65 nm technology constants and derived quantities. */
class TechModel
{
  public:
    /** The nominal 65 nm GP-flavored corner. */
    TechModel() = default;

    /**
     * A process-skewed corner: per-class threshold voltages in volts.
     * Delay and leakage stay normalized to the *nominal* standard-VT
     * library (the calibration anchors are properties of the flow, not
     * of the corner), so skewing VT moves the near/sub-threshold
     * boundaries — which is what the DSE frequency grids refine
     * around.
     */
    TechModel(double vth_low, double vth_std, double vth_high)
        : vthLow_(vth_low), vthStd_(vth_std), vthHigh_(vth_high)
    {
    }

    /**
     * FO4 inverter delay in picoseconds at @p vdd for @p vt.
     *
     * Calibrated so that a standard-VT trigger stage of 56.6 FO4
     * closes at the paper's 1184 MHz at nominal 1.0 V (Section 5.4
     * timing overhead discussion).
     */
    double fo4Ps(double vdd, VtClass vt) const;

    /**
     * Leakage current multiplier, normalized to the standard-VT
     * library at 1.0 V (= 1.0).
     */
    double leakageFactor(double vdd, VtClass vt) const;

    /** Threshold voltage of @p vt in volts. */
    double thresholdV(VtClass vt) const;

    /** Nominal supply voltage (1.0 V). */
    static constexpr double kNominalVdd = 1.0;

  private:
    double effectiveCurrent(double vdd, VtClass vt) const;

    // Nominal threshold voltages per class (65 nm GP-flavored).
    static constexpr double kVthLow = 0.22;
    static constexpr double kVthStd = 0.33;
    static constexpr double kVthHigh = 0.45;

    double vthLow_ = kVthLow;
    double vthStd_ = kVthStd;
    double vthHigh_ = kVthHigh;

    static constexpr double kThermalV = 0.026; ///< phi_t at ~300 K.
    static constexpr double kSubthresholdSlope = 1.45; ///< n.
    static constexpr double kAlpha = 1.35; ///< Velocity-saturation exp.
    static constexpr double kDibl = 0.08;  ///< DIBL V/V for leakage.
};

} // namespace tia

#endif // TIA_VLSI_TECH_HH
