/**
 * @file
 * Design-space exploration over microarchitecture x VT library x
 * supply voltage x target frequency (paper Section 3 methodology,
 * Figures 6-8).
 *
 * The paper's grids: standard-VT cells characterized at 0.6-1.0 V in
 * 0.1 V steps with target frequencies 100 MHz-1.5 GHz at 100 MHz
 * granularity, refined to 50 MHz up through 500 MHz near threshold;
 * low-/high-VT cells at 0.4/0.6/0.8/1.0 V, with the subthreshold
 * high-VT sweeps additionally refined in 10 MHz increments through
 * 100 MHz. Eight pipelines x four optimization settings = 32
 * microarchitectures; the resulting space exceeds 4,000 design points.
 */

#ifndef TIA_VLSI_DSE_HH
#define TIA_VLSI_DSE_HH

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "uarch/config.hh"
#include "vlsi/area_power.hh"
#include "vlsi/tech.hh"

namespace tia {

/** CPI per microarchitecture (keyed by PeConfig::name()). */
using CpiTable = std::map<std::string, double>;

/** One evaluated design point. */
struct DesignPoint
{
    PeConfig config;
    VtClass vt = VtClass::Standard;
    double vdd = 1.0;
    double freqMhz = 0.0;
    double maxFreqMhz = 0.0;

    double cpi = 0.0;
    double nsPerInstruction = 0.0;
    double pjPerInstruction = 0.0;
    double areaUm2 = 0.0;
    double powerMw = 0.0;

    /** Power density in mW/mm^2 (paper Section 5.4, Power Density). */
    double
    powerDensity() const
    {
        return powerMw / (areaUm2 * 1.0e-6);
    }

    /** Energy-delay product (pJ x ns). */
    double edp() const { return nsPerInstruction * pjPerInstruction; }
};

/** Options for DesignSpace::enumerateStreamed. */
struct DseStreamOptions
{
    /**
     * Early exit: stop generating new shards once this many
     * consecutive design points have been sunk without changing the
     * Pareto frontier. 0 disables early exit (the full grid runs).
     */
    std::size_t stableWindow = 0;
    /**
     * Streaming frontier observer, called on the enumerating thread
     * at most once per completed shard whose points changed the
     * frontier: (points seen so far, current frontier).
     */
    std::function<void(std::size_t pointsSeen,
                       const std::vector<DesignPoint> &frontier)>
        onFrontierUpdate;
};

/** Result of DesignSpace::enumerateStreamed. */
struct DseStreamResult
{
    /** Every evaluated point, in the serial enumerate() order. */
    std::vector<DesignPoint> points;
    /** Energy-delay Pareto frontier of @ref points, by ascending ns. */
    std::vector<DesignPoint> frontier;
    std::size_t frontierUpdates = 0; ///< Points that changed the frontier.
    std::size_t shardsTotal = 0;     ///< (config, vt, vdd) shards in grid.
    std::size_t shardsCompleted = 0; ///< Shards evaluated (== total unless
                                     ///< earlyExit).
    bool earlyExit = false; ///< Stopped via stableWindow before the end.
    unsigned jobs = 1;      ///< Worker threads used.
    double wallMs = 0.0;    ///< Wall-clock time of the enumeration.
};

class DesignSpace
{
  public:
    /**
     * @param cpi  per-microarchitecture CPI measurements.
     * @param tech technology corner used for timing closure *and* for
     *             placing the near/sub-threshold grid refinements.
     */
    explicit DesignSpace(CpiTable cpi, TechModel tech = TechModel{})
        : cpi_(std::move(cpi)), tech_(tech)
    {
    }

    /** Evaluate one operating point (frequency must be <= max). */
    DesignPoint evaluate(const PeConfig &config, VtClass vt, double vdd,
                         double freq_mhz) const;

    /**
     * Enumerate the full methodology grid over @p configs (all 32 by
     * default), skipping points above timing closure.
     */
    std::vector<DesignPoint>
    enumerate(const std::vector<PeConfig> &configs = allConfigs()) const;

    /**
     * enumerate() fanned out over a SweepEngine, sharded by
     * (config, vt, vdd); point order and values are element-wise
     * identical to the serial enumerate().
     * @param jobs worker threads (0 = hardware concurrency).
     */
    std::vector<DesignPoint>
    enumerateParallel(unsigned jobs,
                      const std::vector<PeConfig> &configs =
                          allConfigs()) const;

    /**
     * enumerateParallel on the streaming SweepPipeline
     * (exec/pipeline.hh) with an incremental Pareto frontier
     * (vlsi/pareto.hh) maintained in the in-order sink. Point order
     * and values are element-wise identical to enumerate() when the
     * full grid runs; with DseStreamOptions::stableWindow set, the
     * enumeration may stop early and @ref DseStreamResult::points
     * holds a contiguous shard prefix of the serial order (the
     * frontier is exact for the points evaluated).
     */
    DseStreamResult
    enumerateStreamed(unsigned jobs,
                      const std::vector<PeConfig> &configs = allConfigs(),
                      const DseStreamOptions &options = {}) const;

    /**
     * Frequency grid for one (vt, vdd) per the methodology. The
     * near-threshold and subthreshold refinements are placed relative
     * to *this sweep's* tech model, not the nominal one.
     */
    std::vector<double> frequencyGridMhz(VtClass vt, double vdd) const;

    /**
     * Number of (config, vt, vdd, f) grid points attempted, i.e. the
     * size of the characterization sweep before timing-closure
     * pruning (the paper's "over 4,000 design points").
     */
    std::size_t
    gridSize(const std::vector<PeConfig> &configs = allConfigs()) const;

    /** Supply grid per VT library per the methodology. */
    static std::vector<double> supplyGrid(VtClass vt);

    /**
     * The energy-delay Pareto frontier of @p points, sorted by
     * ascending delay.
     */
    static std::vector<DesignPoint>
    paretoFrontier(std::vector<DesignPoint> points);

    double cpiFor(const PeConfig &config) const;

    const AreaPowerModel &areaPower() const { return model_; }

    const TechModel &tech() const { return tech_; }

  private:
    CpiTable cpi_;
    AreaPowerModel model_;
    TechModel tech_;
};

} // namespace tia

#endif // TIA_VLSI_DSE_HH
