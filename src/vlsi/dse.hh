/**
 * @file
 * Design-space exploration over microarchitecture x VT library x
 * supply voltage x target frequency (paper Section 3 methodology,
 * Figures 6-8).
 *
 * The paper's grids: standard-VT cells characterized at 0.6-1.0 V in
 * 0.1 V steps with target frequencies 100 MHz-1.5 GHz at 100 MHz
 * granularity, refined to 50 MHz up through 500 MHz near threshold;
 * low-/high-VT cells at 0.4/0.6/0.8/1.0 V, with the subthreshold
 * high-VT sweeps additionally refined in 10 MHz increments through
 * 100 MHz. Eight pipelines x four optimization settings = 32
 * microarchitectures; the resulting space exceeds 4,000 design points.
 */

#ifndef TIA_VLSI_DSE_HH
#define TIA_VLSI_DSE_HH

#include <map>
#include <string>
#include <vector>

#include "uarch/config.hh"
#include "vlsi/area_power.hh"
#include "vlsi/tech.hh"

namespace tia {

/** CPI per microarchitecture (keyed by PeConfig::name()). */
using CpiTable = std::map<std::string, double>;

/** One evaluated design point. */
struct DesignPoint
{
    PeConfig config;
    VtClass vt = VtClass::Standard;
    double vdd = 1.0;
    double freqMhz = 0.0;
    double maxFreqMhz = 0.0;

    double cpi = 0.0;
    double nsPerInstruction = 0.0;
    double pjPerInstruction = 0.0;
    double areaUm2 = 0.0;
    double powerMw = 0.0;

    /** Power density in mW/mm^2 (paper Section 5.4, Power Density). */
    double
    powerDensity() const
    {
        return powerMw / (areaUm2 * 1.0e-6);
    }

    /** Energy-delay product (pJ x ns). */
    double edp() const { return nsPerInstruction * pjPerInstruction; }
};

class DesignSpace
{
  public:
    /**
     * @param cpi  per-microarchitecture CPI measurements.
     * @param tech technology corner used for timing closure *and* for
     *             placing the near/sub-threshold grid refinements.
     */
    explicit DesignSpace(CpiTable cpi, TechModel tech = TechModel{})
        : cpi_(std::move(cpi)), tech_(tech)
    {
    }

    /** Evaluate one operating point (frequency must be <= max). */
    DesignPoint evaluate(const PeConfig &config, VtClass vt, double vdd,
                         double freq_mhz) const;

    /**
     * Enumerate the full methodology grid over @p configs (all 32 by
     * default), skipping points above timing closure.
     */
    std::vector<DesignPoint>
    enumerate(const std::vector<PeConfig> &configs = allConfigs()) const;

    /**
     * enumerate() fanned out over a SweepEngine, sharded by
     * (config, vt, vdd); point order and values are element-wise
     * identical to the serial enumerate().
     * @param jobs worker threads (0 = hardware concurrency).
     */
    std::vector<DesignPoint>
    enumerateParallel(unsigned jobs,
                      const std::vector<PeConfig> &configs =
                          allConfigs()) const;

    /**
     * Frequency grid for one (vt, vdd) per the methodology. The
     * near-threshold and subthreshold refinements are placed relative
     * to *this sweep's* tech model, not the nominal one.
     */
    std::vector<double> frequencyGridMhz(VtClass vt, double vdd) const;

    /**
     * Number of (config, vt, vdd, f) grid points attempted, i.e. the
     * size of the characterization sweep before timing-closure
     * pruning (the paper's "over 4,000 design points").
     */
    std::size_t
    gridSize(const std::vector<PeConfig> &configs = allConfigs()) const;

    /** Supply grid per VT library per the methodology. */
    static std::vector<double> supplyGrid(VtClass vt);

    /**
     * The energy-delay Pareto frontier of @p points, sorted by
     * ascending delay.
     */
    static std::vector<DesignPoint>
    paretoFrontier(std::vector<DesignPoint> points);

    double cpiFor(const PeConfig &config) const;

    const AreaPowerModel &areaPower() const { return model_; }

    const TechModel &tech() const { return tech_; }

  private:
    CpiTable cpi_;
    AreaPowerModel model_;
    TechModel tech_;
};

} // namespace tia

#endif // TIA_VLSI_DSE_HH
