#include "vlsi/timing.hh"

#include <algorithm>

namespace tia {

double
criticalPathFo4(const PeConfig &config, const StageDelays &delays)
{
    const PipelineShape &shape = config.shape;
    const double t_logic =
        config.predictPredicates ? delays.triggerSpec : delays.trigger;
    const double d_logic = delays.decode;
    const double x_logic = delays.execute;

    // Build the segment logic depths. The X1|X2 cut retimes freely
    // within the ALU: the execute logic in the segment adjoining
    // earlier phases shrinks to zero if that segment is already the
    // long pole, else the ALU splits evenly.
    double longest = 0.0;
    if (!shape.splitTD && !shape.splitDX) {
        // T, D (and possibly X1) share the first segment.
        if (!shape.splitX) {
            longest = t_logic + d_logic + x_logic; // TDX
        } else {
            // TDX1|X2: retiming pushes ALU logic into X2 until
            // balanced.
            const double front = t_logic + d_logic;
            longest = std::max(front, (front + x_logic) / 2.0);
            longest = std::max(longest, x_logic - (longest - front));
        }
    } else if (!shape.splitTD && shape.splitDX) {
        // TD | X...
        const double front = t_logic + d_logic;
        if (!shape.splitX) {
            longest = std::max(front, x_logic); // TD|X
        } else {
            longest = std::max(front, x_logic / 2.0); // TD|X1|X2
        }
    } else if (shape.splitTD && !shape.splitDX) {
        // T | DX...
        if (!shape.splitX) {
            longest = std::max(t_logic, d_logic + x_logic); // T|DX
        } else {
            // T|DX1|X2: ALU retimes against D.
            const double front = d_logic;
            double split = std::max(front, (front + x_logic) / 2.0);
            split = std::max(split, x_logic - (split - front));
            longest = std::max(t_logic, split);
        }
    } else {
        // T | D | X...
        if (!shape.splitX) {
            longest = std::max({t_logic, d_logic, x_logic}); // T|D|X
        } else {
            longest = std::max({t_logic, d_logic, x_logic / 2.0});
        }
    }
    return longest + delays.sequencing;
}

double
maxFrequencyMhz(const PeConfig &config, double vdd, VtClass vt,
                const TechModel &tech)
{
    const double fo4_ps = tech.fo4Ps(vdd, vt);
    const double period_ps = fo4_ps * criticalPathFo4(config);
    return 1.0e6 / period_ps;
}

} // namespace tia
