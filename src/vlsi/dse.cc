#include "vlsi/dse.hh"

#include <algorithm>
#include <limits>

#include "core/logging.hh"
#include "exec/pipeline.hh"
#include "exec/sweep.hh"
#include "vlsi/pareto.hh"
#include "vlsi/timing.hh"

namespace tia {

double
DesignSpace::cpiFor(const PeConfig &config) const
{
    const auto it = cpi_.find(config.name());
    fatalIf(it == cpi_.end(), "no CPI measurement for ", config.name());
    return it->second;
}

DesignPoint
DesignSpace::evaluate(const PeConfig &config, VtClass vt, double vdd,
                      double freq_mhz) const
{
    DesignPoint point;
    point.config = config;
    point.vt = vt;
    point.vdd = vdd;
    point.freqMhz = freq_mhz;
    point.maxFreqMhz = maxFrequencyMhz(config, vdd, vt, tech_);
    fatalIf(freq_mhz > point.maxFreqMhz,
            "target frequency above timing closure for ", config.name());

    point.cpi = cpiFor(config);
    point.areaUm2 = model_.areaUm2(config);

    const double dyn_pj = model_.dynamicEnergyPerCyclePj(
        config, vdd, freq_mhz, point.maxFreqMhz);
    const double leak_mw = model_.leakagePowerMw(config, vdd, vt);
    const double leak_pj_per_cycle = leak_mw * 1.0e3 / freq_mhz;

    point.nsPerInstruction = point.cpi * 1.0e3 / freq_mhz;
    point.pjPerInstruction = point.cpi * (dyn_pj + leak_pj_per_cycle);
    point.powerMw = dyn_pj * freq_mhz * 1.0e-3 + leak_mw;
    return point;
}

std::vector<double>
DesignSpace::supplyGrid(VtClass vt)
{
    if (vt == VtClass::Standard)
        return {0.6, 0.7, 0.8, 0.9, 1.0};
    return {0.4, 0.6, 0.8, 1.0};
}

namespace {

/** The methodology frequency grid, refined around @p tech's thresholds. */
std::vector<double>
gridFor(VtClass vt, double vdd, const TechModel &tech)
{
    std::vector<double> grid;
    // Base grid: 100 MHz to 1.5 GHz at 100 MHz granularity.
    for (double f = 100.0; f <= 1500.0; f += 100.0)
        grid.push_back(f);
    // Near-threshold refinement: the midpoints 150/250/350/450 MHz,
    // which together with the base grid's 100..500 MHz points give
    // 50 MHz granularity below 500 MHz.
    const bool near_threshold = vdd <= tech.thresholdV(vt) + 0.35;
    if (near_threshold) {
        for (double f = 150.0; f <= 450.0; f += 100.0)
            grid.push_back(f);
    }
    // Subthreshold high-VT refinement: 10 MHz increments through
    // 100 MHz.
    if (vt == VtClass::High && vdd <= tech.thresholdV(vt)) {
        for (double f = 10.0; f <= 90.0; f += 10.0)
            grid.push_back(f);
    }
    std::sort(grid.begin(), grid.end());
    return grid;
}

} // namespace

std::vector<double>
DesignSpace::frequencyGridMhz(VtClass vt, double vdd) const
{
    return gridFor(vt, vdd, tech_);
}

std::size_t
DesignSpace::gridSize(const std::vector<PeConfig> &configs) const
{
    std::size_t count = 0;
    for (VtClass vt : {VtClass::Low, VtClass::Standard, VtClass::High}) {
        for (double vdd : supplyGrid(vt))
            count += frequencyGridMhz(vt, vdd).size();
    }
    return count * configs.size();
}

std::vector<DesignPoint>
DesignSpace::enumerate(const std::vector<PeConfig> &configs) const
{
    return enumerateParallel(1, configs);
}

namespace {

/**
 * One DSE shard per (config, vt, vdd): big enough to amortize task
 * dispatch, and the concatenation order equals the serial loop nest's
 * point order.
 */
struct DseShard
{
    const PeConfig *config;
    VtClass vt;
    double vdd;
};

std::vector<DseShard>
dseShards(const std::vector<PeConfig> &configs)
{
    std::vector<DseShard> shards;
    for (const PeConfig &config : configs) {
        for (VtClass vt :
             {VtClass::Low, VtClass::Standard, VtClass::High}) {
            for (double vdd : DesignSpace::supplyGrid(vt))
                shards.push_back({&config, vt, vdd});
        }
    }
    return shards;
}

} // namespace

std::vector<DesignPoint>
DesignSpace::enumerateParallel(unsigned jobs,
                               const std::vector<PeConfig> &configs) const
{
    const std::vector<DseShard> shards = dseShards(configs);

    const SweepEngine engine(jobs);
    auto sweep = engine.map(shards.size(), [&](std::size_t i) {
        const DseShard &shard = shards[i];
        std::vector<DesignPoint> points;
        const double fmax =
            maxFrequencyMhz(*shard.config, shard.vdd, shard.vt, tech_);
        for (double f : frequencyGridMhz(shard.vt, shard.vdd)) {
            if (f > fmax)
                break;
            points.push_back(
                evaluate(*shard.config, shard.vt, shard.vdd, f));
        }
        return points;
    });

    std::vector<DesignPoint> points;
    for (std::vector<DesignPoint> &shard_points : sweep.values) {
        points.insert(points.end(),
                      std::make_move_iterator(shard_points.begin()),
                      std::make_move_iterator(shard_points.end()));
    }
    return points;
}

DseStreamResult
DesignSpace::enumerateStreamed(unsigned jobs,
                               const std::vector<PeConfig> &configs,
                               const DseStreamOptions &options) const
{
    const std::vector<DseShard> shards = dseShards(configs);

    DseStreamResult result;
    result.shardsTotal = shards.size();

    IncrementalPareto pareto;
    std::size_t sinceChange = 0; // points sunk since last frontier change
    StopSource earlyStop;

    const SweepPipeline pipeline(jobs);
    const PipelineResult run = pipeline.run(
        shards.size(),
        [&](std::size_t i) {
            const DseShard &shard = shards[i];
            std::vector<DesignPoint> points;
            const double fmax = maxFrequencyMhz(*shard.config, shard.vdd,
                                                shard.vt, tech_);
            for (double f : frequencyGridMhz(shard.vt, shard.vdd)) {
                if (f > fmax)
                    break;
                points.push_back(
                    evaluate(*shard.config, shard.vt, shard.vdd, f));
            }
            return points;
        },
        [&](std::size_t, std::vector<DesignPoint> &&shardPoints) {
            bool changed = false;
            for (DesignPoint &point : shardPoints) {
                if (pareto.add(point)) {
                    changed = true;
                    sinceChange = 0;
                } else {
                    ++sinceChange;
                }
                result.points.push_back(std::move(point));
            }
            ++result.shardsCompleted;
            if (changed && options.onFrontierUpdate)
                options.onFrontierUpdate(pareto.pointsSeen(),
                                         pareto.frontier());
            if (options.stableWindow != 0 &&
                sinceChange >= options.stableWindow)
                earlyStop.requestStop();
        },
        earlyStop.token());

    result.frontier = pareto.frontier();
    result.frontierUpdates = pareto.updates();
    result.earlyExit = run.stoppedEarly;
    result.jobs = run.jobs;
    result.wallMs = run.wallMs;
    return result;
}

std::vector<DesignPoint>
DesignSpace::paretoFrontier(std::vector<DesignPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  if (a.nsPerInstruction != b.nsPerInstruction)
                      return a.nsPerInstruction < b.nsPerInstruction;
                  return a.pjPerInstruction < b.pjPerInstruction;
              });
    std::vector<DesignPoint> frontier;
    double best_energy = std::numeric_limits<double>::infinity();
    for (const DesignPoint &point : points) {
        if (point.pjPerInstruction < best_energy) {
            frontier.push_back(point);
            best_energy = point.pjPerInstruction;
        }
    }
    return frontier;
}

} // namespace tia
