#include "vlsi/pareto.hh"

#include <algorithm>

namespace tia {

bool
IncrementalPareto::add(const DesignPoint &point)
{
    ++seen_;

    // Invariant: frontier_ is sorted by strictly ascending ns and
    // strictly descending pj, so a single binary search on ns finds
    // both the potential dominator (the predecessor) and the start of
    // the contiguous run of points the new point dominates.
    const auto after = std::upper_bound(
        frontier_.begin(), frontier_.end(), point.nsPerInstruction,
        [](double ns, const DesignPoint &p) {
            return ns < p.nsPerInstruction;
        });

    // Weak dominance: a predecessor no worse in both coordinates
    // rejects the new point (first arrival wins on exact ties).
    if (after != frontier_.begin()) {
        const DesignPoint &pred = *(after - 1);
        if (pred.pjPerInstruction <= point.pjPerInstruction)
            return false;
    }

    // The new point survives. Evict everything it weakly dominates:
    // an equal-ns predecessor with worse pj, plus the contiguous run
    // of successors whose pj is >= ours (their ns is >= ours by sort).
    auto evictBegin = after;
    if (after != frontier_.begin() &&
        (after - 1)->nsPerInstruction == point.nsPerInstruction) {
        evictBegin = after - 1; // equal ns, worse pj (checked above)
    }
    auto evictEnd = evictBegin;
    while (evictEnd != frontier_.end() &&
           evictEnd->pjPerInstruction >= point.pjPerInstruction)
        ++evictEnd;

    evictions_ += static_cast<std::size_t>(evictEnd - evictBegin);
    const auto insertAt = frontier_.erase(evictBegin, evictEnd);
    frontier_.insert(insertAt, point);
    ++updates_;
    return true;
}

} // namespace tia
