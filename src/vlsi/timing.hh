/**
 * @file
 * Per-microarchitecture critical paths in FO4 inverter delays.
 *
 * Section 5.4 anchors: the trigger stage is the long pole at 53.6 FO4
 * of logic (64.3 with predicate speculation enabled), the balanced
 * pipeline delay lands in the 50-60 FO4 range, and the unspeculated
 * four-stage design closes at 1184 MHz at nominal voltage. Effective
 * queue status has "no impact on timing closure". Retiming is allowed
 * only within the multi-stage ALU, so the X1|X2 boundary floats to
 * balance the execute logic while T and D logic stay put.
 */

#ifndef TIA_VLSI_TIMING_HH
#define TIA_VLSI_TIMING_HH

#include "uarch/config.hh"
#include "vlsi/tech.hh"

namespace tia {

/** Phase logic depths and sequencing overhead, in FO4. */
struct StageDelays
{
    double trigger = 53.6;     ///< T logic (Section 5.4).
    double triggerSpec = 64.3; ///< T logic with +P (Section 5.4).
    double decode = 16.0;      ///< Operand fetch + forwarding network.
    double execute = 28.0;     ///< Full ALU incl. two-word multiply.
    double sequencing = 3.0;   ///< Register clk-to-q + setup per stage.
};

/** Critical path of @p config in FO4 (max over its stage segments). */
double criticalPathFo4(const PeConfig &config,
                       const StageDelays &delays = StageDelays{});

/**
 * Maximum clock frequency in MHz of @p config at (@p vdd, @p vt).
 */
double maxFrequencyMhz(const PeConfig &config, double vdd, VtClass vt,
                       const TechModel &tech = TechModel{});

} // namespace tia

#endif // TIA_VLSI_TIMING_HH
