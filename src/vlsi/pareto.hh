/**
 * @file
 * Incremental energy-delay Pareto frontier.
 *
 * DesignSpace::paretoFrontier is a batch algorithm: sort all points by
 * delay, then sweep keeping strict energy improvements. That forces
 * the full >4,000-point DSE to finish before the first frontier point
 * exists. IncrementalPareto maintains the same frontier online, one
 * point per add(), so the pipeline's in-order sink can stream frontier
 * updates while later design points are still being evaluated — and
 * stop the generator early once the frontier has been stable for a
 * configurable window (tia-sweep --incremental).
 *
 * Equivalence with the batch algorithm (pinned by
 * tests/test_sweep_pipeline.cc): after add()ing every point, in any
 * order, frontier() holds the same (ns, pj) set as
 * paretoFrontier(points). Dominance is weak — a new point is rejected
 * when an existing frontier point is no worse in both coordinates, so
 * among exact (ns, pj) duplicates the first arrival wins; the batch
 * sweep keeps the same single representative modulo which duplicate it
 * saw first.
 */

#ifndef TIA_VLSI_PARETO_HH
#define TIA_VLSI_PARETO_HH

#include <cstddef>
#include <vector>

#include "vlsi/dse.hh"

namespace tia {

class IncrementalPareto
{
  public:
    /**
     * Offer one design point. Returns true when the frontier changed
     * (the point was non-dominated and is now on the frontier; any
     * points it dominates were evicted).
     */
    bool add(const DesignPoint &point);

    /**
     * Current frontier, sorted by strictly ascending delay (and hence
     * strictly descending energy) — the same order the batch
     * paretoFrontier returns.
     */
    const std::vector<DesignPoint> &frontier() const { return frontier_; }

    std::size_t size() const { return frontier_.size(); }

    /** Points offered via add() so far. */
    std::size_t pointsSeen() const { return seen_; }

    /** add() calls that changed the frontier. */
    std::size_t updates() const { return updates_; }

    /** Frontier points evicted by later dominating points. */
    std::size_t evictions() const { return evictions_; }

  private:
    std::vector<DesignPoint> frontier_;
    std::size_t seen_ = 0;
    std::size_t updates_ = 0;
    std::size_t evictions_ = 0;
};

} // namespace tia

#endif // TIA_VLSI_PARETO_HH
