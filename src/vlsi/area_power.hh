/**
 * @file
 * Area and power model calibrated to the paper's absolute numbers.
 *
 * Anchors (all at 1.0 V, standard VT, 500 MHz unless noted):
 *  - Single-cycle PE: 64,435 um^2, 1.95 mW, with the Figure 3
 *    component breakdown (instruction store 25% area / 41% power,
 *    queues 18% / 22%, scheduler 6% / 5%, front end 32% / 48%, back
 *    end 46% / 23%).
 *  - T|D|X1|X2 baseline: 63,991.4 um^2, 2.852 mW.
 *  - +P: 64,278.4 um^2, 3.048 mW (+7% power). +Q: 64,131.8 um^2, no
 *    measurable power change. Both: 64,895.4 um^2, 3.077 mW.
 *  - Output-queue padding alternative: 72,439.4 um^2, 3.194 mW.
 *  - Each pipeline register adds 0.301 mW at 500 MHz.
 *
 * Dynamic energy scales as VDD^2 times a synthesis "timing pressure"
 * factor gamma(f_target/f_max) that models cell upsizing near timing
 * closure ("the push for timing will inflate the resulting design",
 * Section 5.4) and downsizing under relaxed targets. Leakage uses
 * TechModel::leakageFactor.
 */

#ifndef TIA_VLSI_AREA_POWER_HH
#define TIA_VLSI_AREA_POWER_HH

#include <string>
#include <vector>

#include "uarch/config.hh"
#include "vlsi/tech.hh"
#include "vlsi/timing.hh"

namespace tia {

/** One component row of the Figure 3 breakdown. */
struct ComponentShare
{
    std::string name;
    double areaFraction;  ///< Of single-cycle PE area.
    double powerFraction; ///< Of single-cycle PE power.
};

/** The Figure 3 breakdown (fractions sum to 1). */
const std::vector<ComponentShare> &singleCycleBreakdown();

/**
 * Instruction-storage medium for the trigger-parallel instruction
 * memory (Section 4). Triggered control requires all trigger fields
 * combinationally exposed to the scheduler, so the store defaults to
 * clock-gated registers. Latches shrink it but lengthen the trigger
 * critical path (the paper abandoned them); a mixed register /
 * latch-SRAM organization keeps trigger fields in registers and moves
 * datapath-only fields (e.g. the immediate) into SRAM, which is legal
 * only when the trigger stage is pipelined apart from decode.
 */
enum class InstructionStorage
{
    ClockGatedRegister, ///< The paper's chosen design point.
    Latch,              ///< -30% area / -75% power on the store; slower.
    MixedRegisterSram,  ///< -16% area / -24% power on the store (CACTI).
};

/** Options beyond the PeConfig knobs that affect area/power. */
struct ImplementationOptions
{
    /**
     * Use the WaveScalar-style padded output queues ("reject buffer")
     * instead of effective queue status — for the Section 5.4 cost
     * comparison only.
     */
    bool paddedOutputQueues = false;

    /** Instruction-store medium (Section 4 alternatives study). */
    InstructionStorage instructionStorage =
        InstructionStorage::ClockGatedRegister;
};

class AreaPowerModel
{
  public:
    /** PE area in um^2 for @p config. */
    double areaUm2(const PeConfig &config,
                   const ImplementationOptions &opts = {}) const;

    /**
     * Dynamic energy per cycle in pJ under the bst activity profile
     * (the paper's gate-level activity input), at supply @p vdd,
     * synthesized for @p freq_mhz given the config's maximum
     * frequency at that operating point.
     */
    double dynamicEnergyPerCyclePj(const PeConfig &config, double vdd,
                                   double freq_mhz, double max_freq_mhz,
                                   const ImplementationOptions &opts =
                                       {}) const;

    /** Leakage power in mW at (@p vdd, @p vt). */
    double leakagePowerMw(const PeConfig &config, double vdd, VtClass vt,
                          const ImplementationOptions &opts = {}) const;

    /** Total power in mW when clocked at @p freq_mhz. */
    double totalPowerMw(const PeConfig &config, double vdd, VtClass vt,
                        double freq_mhz, double max_freq_mhz,
                        const ImplementationOptions &opts = {}) const;

    /**
     * Power at the paper's calibration operating point: 1.0 V,
     * standard VT, a relaxed 500 MHz synthesis target (unit sizing
     * pressure). This reproduces the Figure 3 and Section 5.4
     * absolute milliwatt numbers.
     */
    double calibrationPowerMw(const PeConfig &config,
                              const ImplementationOptions &opts =
                                  {}) const;

    // --- Calibration constants (paper anchors) -------------------------

    /** Single-cycle PE area (Figure 3). */
    static constexpr double kSingleCycleAreaUm2 = 64'435.0;
    /** Pipelined PE base area (Section 5.4, T|D|X1|X2 baseline). */
    static constexpr double kPipelinedAreaUm2 = 63'991.4;
    /** Area deltas for the optional units (Section 5.4). */
    static constexpr double kSpecAreaUm2 = 287.0;       // 64,278.4 - base
    static constexpr double kQueueStatusAreaUm2 = 140.4; // 64,131.8 - base
    static constexpr double kBothAreaUm2 = 904.0;        // 64,895.4 - base
    static constexpr double kPaddingAreaUm2 = 8'448.0;   // 72,439.4 - base

    /** Dynamic energy per cycle at 1.0 V, gamma = 1 (bst activity). */
    static constexpr double kLogicEnergyPj = 3.698;   // core logic+queues
    static constexpr double kRegisterEnergyPj = 0.602; // per pipe boundary
    static constexpr double kSpecEnergyPj = 0.399;    // +P (+7% power)
    static constexpr double kPaddingEnergyPj = 0.684; // padded queues (+12%)

    /** Leakage of the std-VT pipelined baseline at 1.0 V, in mW. */
    static constexpr double kBaseLeakageMw = 0.100;

    /** Instruction store share of PE area / power (Fig. 3 anchors). */
    static constexpr double kInsMemAreaFraction = 0.25;
    static constexpr double kInsMemPowerFraction = 0.41;

  private:
    double gamma(double freq_mhz, double max_freq_mhz) const;
    /** Area multiplier on the instruction store for a medium. */
    static double storageAreaScale(InstructionStorage storage);
    /** Power multiplier on the instruction store for a medium. */
    static double storagePowerScale(InstructionStorage storage);
    /** Validate storage/shape compatibility (Section 4 constraint). */
    static void checkStorage(const PeConfig &config,
                             const ImplementationOptions &opts);

    TechModel tech_;
};

} // namespace tia

#endif // TIA_VLSI_AREA_POWER_HH
