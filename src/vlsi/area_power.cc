#include "vlsi/area_power.hh"

#include <algorithm>

#include "core/logging.hh"

namespace tia {

const std::vector<ComponentShare> &
singleCycleBreakdown()
{
    // Figure 3 with the Section 4 textual anchors: instruction store
    // 25%/41%, queues 18%/22%, scheduler 6%/5%; front end (predicate
    // unit + instruction memory + scheduler) 32%/48%; back end
    // (register file + ALU) 46%/23%; area led by the ALU, power led by
    // the instruction memory.
    static const std::vector<ComponentShare> breakdown = {
        {"ALU", 0.30, 0.15},
        {"RegFile", 0.16, 0.08},
        {"Queues", 0.18, 0.22},
        {"Scheduler", 0.06, 0.05},
        {"Ins. Mem.", 0.25, 0.41},
        {"Pred. Unit", 0.01, 0.02},
        {"Other", 0.04, 0.07},
    };
    return breakdown;
}

double
AreaPowerModel::storageAreaScale(InstructionStorage storage)
{
    switch (storage) {
      case InstructionStorage::ClockGatedRegister:
        return 1.0;
      case InstructionStorage::Latch:
        // "Latches reduce the area by just over 30%" (Section 4).
        return 1.0 - 0.305;
      case InstructionStorage::MixedRegisterSram:
        // CACTI-based: 16% area reduction over register-only.
        return 1.0 - 0.16;
    }
    panic("bad instruction storage");
}

double
AreaPowerModel::storagePowerScale(InstructionStorage storage)
{
    switch (storage) {
      case InstructionStorage::ClockGatedRegister:
        return 1.0;
      case InstructionStorage::Latch:
        // "power by 75% thanks to the removal of clock tree
        // capacitance and smaller cells" (Section 4).
        return 1.0 - 0.75;
      case InstructionStorage::MixedRegisterSram:
        // CACTI-based: 24% power reduction over register-only.
        return 1.0 - 0.24;
    }
    panic("bad instruction storage");
}

void
AreaPowerModel::checkStorage(const PeConfig &config,
                             const ImplementationOptions &opts)
{
    // The mixed organization indexes SRAM with the selected
    // instruction, which "is possible ... so long as the design is
    // pipelined such that the stage in which instructions are
    // triggered is separate from the stage in which those fields are
    // decoded" (Section 4).
    fatalIf(opts.instructionStorage ==
                    InstructionStorage::MixedRegisterSram &&
                !config.shape.splitTD,
            "mixed register/SRAM instruction storage requires a T|D "
            "pipeline split");
}

double
AreaPowerModel::areaUm2(const PeConfig &config,
                        const ImplementationOptions &opts) const
{
    checkStorage(config, opts);
    double area = config.shape.depth() == 1 ? kSingleCycleAreaUm2
                                            : kPipelinedAreaUm2;
    area += area * kInsMemAreaFraction *
            (storageAreaScale(opts.instructionStorage) - 1.0);
    if (config.predictPredicates && config.effectiveQueueStatus)
        area += kBothAreaUm2;
    else if (config.predictPredicates)
        area += kSpecAreaUm2;
    else if (config.effectiveQueueStatus)
        area += kQueueStatusAreaUm2;
    if (opts.paddedOutputQueues) {
        fatalIf(config.effectiveQueueStatus,
                "padding and effective queue status are alternatives");
        area += kPaddingAreaUm2;
    }
    return area;
}

double
AreaPowerModel::gamma(double freq_mhz, double max_freq_mhz) const
{
    // Synthesis sizing pressure: gamma(0.42) = 1 reproduces the
    // 500 MHz calibration anchors (500 / 1184 = 0.42 of the four-stage
    // design's reach); near-fmax designs inflate ~3x, relaxed designs
    // shrink toward minimum-size cells.
    const double r =
        std::clamp(max_freq_mhz > 0 ? freq_mhz / max_freq_mhz : 1.0, 0.0,
                   1.0);
    return 0.55 + 2.55 * r * r;
}

double
AreaPowerModel::dynamicEnergyPerCyclePj(const PeConfig &config, double vdd,
                                        double freq_mhz,
                                        double max_freq_mhz,
                                        const ImplementationOptions &opts)
    const
{
    checkStorage(config, opts);
    const unsigned boundaries = config.shape.depth() - 1;
    double energy = kLogicEnergyPj + boundaries * kRegisterEnergyPj;
    energy += kLogicEnergyPj * kInsMemPowerFraction *
              (storagePowerScale(opts.instructionStorage) - 1.0);
    if (config.predictPredicates)
        energy += kSpecEnergyPj;
    if (opts.paddedOutputQueues)
        energy += kPaddingEnergyPj;
    const double v_scale = (vdd / TechModel::kNominalVdd) *
                           (vdd / TechModel::kNominalVdd);
    return energy * v_scale * gamma(freq_mhz, max_freq_mhz);
}

double
AreaPowerModel::leakagePowerMw(const PeConfig &config, double vdd,
                               VtClass vt,
                               const ImplementationOptions &opts) const
{
    const double area_scale = areaUm2(config, opts) / kPipelinedAreaUm2;
    return kBaseLeakageMw * area_scale * tech_.leakageFactor(vdd, vt);
}

double
AreaPowerModel::calibrationPowerMw(const PeConfig &config,
                                   const ImplementationOptions &opts) const
{
    checkStorage(config, opts);
    const unsigned boundaries = config.shape.depth() - 1;
    double energy_pj = kLogicEnergyPj + boundaries * kRegisterEnergyPj;
    energy_pj += kLogicEnergyPj * kInsMemPowerFraction *
                 (storagePowerScale(opts.instructionStorage) - 1.0);
    if (config.predictPredicates)
        energy_pj += kSpecEnergyPj;
    if (opts.paddedOutputQueues)
        energy_pj += kPaddingEnergyPj;
    const double calibration_freq_mhz = 500.0;
    return energy_pj * calibration_freq_mhz * 1.0e-3 +
           leakagePowerMw(config, TechModel::kNominalVdd,
                          VtClass::Standard, opts);
}

double
AreaPowerModel::totalPowerMw(const PeConfig &config, double vdd,
                             VtClass vt, double freq_mhz,
                             double max_freq_mhz,
                             const ImplementationOptions &opts) const
{
    const double dynamic_mw =
        dynamicEnergyPerCyclePj(config, vdd, freq_mhz, max_freq_mhz, opts) *
        freq_mhz * 1.0e-3; // pJ * MHz = uW; /1000 = mW
    return dynamic_mw + leakagePowerMw(config, vdd, vt, opts);
}

} // namespace tia
