#include "vlsi/tech.hh"

#include <cmath>

#include "core/logging.hh"

namespace tia {

const char *
vtName(VtClass vt)
{
    switch (vt) {
      case VtClass::Low:
        return "low-VT";
      case VtClass::Standard:
        return "std-VT";
      case VtClass::High:
        return "high-VT";
    }
    return "?";
}

double
TechModel::thresholdV(VtClass vt) const
{
    switch (vt) {
      case VtClass::Low:
        return vthLow_;
      case VtClass::Standard:
        return vthStd_;
      case VtClass::High:
        return vthHigh_;
    }
    panic("bad VT class");
}

double
TechModel::effectiveCurrent(double vdd, VtClass vt) const
{
    // EKV-style unified drive current: smoothly interpolates between
    // exponential subthreshold conduction and the alpha-power law in
    // strong inversion.
    const double n_phi = kSubthresholdSlope * kThermalV;
    const double overdrive = (vdd - thresholdV(vt)) / (2.0 * n_phi);
    const double v_eff = 2.0 * n_phi * std::log1p(std::exp(overdrive));
    return std::pow(v_eff, kAlpha);
}

double
TechModel::fo4Ps(double vdd, VtClass vt) const
{
    fatalIf(vdd <= 0.0 || vdd > 1.2, "VDD out of the modeled range: ",
            vdd);
    // delay = K * VDD / Ieff(VDD, VT); K fixed so that FO4(1.0 V,
    // std-VT) = 14.93 ps, which closes the paper's unspeculated
    // T|D|X1|X2 trigger stage (53.6 logic + sequencing overhead FO4)
    // at exactly 1184 MHz.
    static const double k_delay = [] {
        TechModel tech;
        const double raw =
            kNominalVdd / tech.effectiveCurrent(kNominalVdd,
                                                VtClass::Standard);
        return 14.93 / raw;
    }();
    return k_delay * vdd / effectiveCurrent(vdd, vt);
}

double
TechModel::leakageFactor(double vdd, VtClass vt) const
{
    const double n_phi = kSubthresholdSlope * kThermalV;
    const double reference =
        std::exp(-kVthStd / n_phi) * std::exp(kDibl * kNominalVdd / n_phi);
    const double current = std::exp(-thresholdV(vt) / n_phi) *
                           std::exp(kDibl * vdd / n_phi);
    // Leakage *power* additionally scales with VDD.
    return (current / reference) * (vdd / kNominalVdd);
}

} // namespace tia
