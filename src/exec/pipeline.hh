/**
 * @file
 * SweepPipeline: serial generate → parallel simulate → serial in-order
 * sink, after TBB's parallel_pipeline (SNIPPETS.md Snippet 1).
 *
 * SweepEngine::map is a flat job pool with a full-matrix barrier: no
 * consumer sees a result until the last task finishes. The pipeline
 * removes that barrier. The calling thread plays the two serial
 * stages — it submits task indices in order (bounded by an in-flight
 * window, like TBB's token cap) and, between submissions, waits for
 * the *next-in-order* result and hands it to the sink. Aggregation,
 * JSON assembly, Pareto-frontier maintenance and cache-save I/O in
 * the sink therefore overlap simulation instead of trailing it.
 *
 * Guarantees, pinned by tests/test_sweep_pipeline.cc:
 *
 *  - **Order**: sink(i, value) is invoked for i = 0, 1, 2, … with no
 *    gaps and no reordering, regardless of completion order. A full
 *    run therefore aggregates exactly like the flat map() — results
 *    are bit-identical for every jobs count.
 *  - **Serial reference**: jobs == 1 degenerates to the plain loop
 *    `for i: sink(i, fn(i))` on the calling thread.
 *  - **Fail-fast**: tasks get a StopToken from an internal fail-fast
 *    source (same convention as SweepEngine::map — fn may be
 *    fn(i) or fn(i, cancel)). The first exception — from a task or
 *    from the sink — stops generation, cancels in-flight siblings,
 *    drains, and is rethrown (the lowest-index one, matching serial
 *    order among tasks that ran). After a failure no further results
 *    are sunk.
 *  - **Early exit**: a caller-supplied generatorStop token stops the
 *    *generator* stage only. Indices already submitted still simulate
 *    and are sunk in order, so the sink always observes a contiguous
 *    prefix [0, generated). This is how the incremental Pareto
 *    frontier stops a DSE once the frontier has stabilized. Note this
 *    is distinct from a caller's CycleRunOptions::stop deadline token,
 *    which cancels the *tasks themselves*: a deadline-cancelled sweep
 *    still fills every slot (with RunStatus::Cancelled values).
 */

#ifndef TIA_EXEC_PIPELINE_HH
#define TIA_EXEC_PIPELINE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/stop_token.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"

namespace tia {

/** Outcome of one SweepPipeline::run (no values — the sink saw them). */
struct PipelineResult
{
    unsigned jobs = 1;        ///< Worker threads actually used.
    double wallMs = 0.0;      ///< Wall-clock time of the whole run().
    std::size_t generated = 0; ///< Task indices submitted (prefix size).
    std::size_t sunk = 0;      ///< Results delivered to the sink.
    bool stoppedEarly = false; ///< generatorStop fired before count.
};

class SweepPipeline
{
  public:
    /** @param jobs simulate-stage workers; 0 = defaultConcurrency. */
    explicit SweepPipeline(unsigned jobs = 0)
        : jobs_(jobs == 0 ? ThreadPool::defaultConcurrency() : jobs)
    {
    }

    unsigned jobs() const { return jobs_; }

    /**
     * Run the pipeline over [0, count): evaluate @p fn on the worker
     * pool and deliver each result to @p sink (called as
     * sink(i, T&&)) strictly in index order, overlapped with later
     * tasks. @p fn follows the SweepEngine task conventions (pure
     * function of i, optional StopToken parameter). @p sink runs on
     * the calling thread only.
     *
     * @param generatorStop optional token observed between
     *        submissions: once fired, no further indices are
     *        generated; everything already submitted is still
     *        simulated and sunk in order.
     */
    template <typename Fn, typename Sink>
    PipelineResult
    run(std::size_t count, Fn &&fn, Sink &&sink,
        StopToken generatorStop = {}) const
    {
        using T = detail::SweepTaskResult<Fn>;
        const auto start = std::chrono::steady_clock::now();

        PipelineResult result;
        result.jobs = count < jobs_ ? static_cast<unsigned>(
                                          count == 0 ? 1 : count)
                                    : jobs_;

        if (result.jobs <= 1) {
            // Serial reference: generate, simulate and sink one index
            // at a time; the first exception propagates unwrapped.
            for (std::size_t i = 0; i < count; ++i) {
                if (generatorStop.possible() &&
                    generatorStop.stopRequested()) {
                    result.stoppedEarly = true;
                    break;
                }
                T value = detail::invokeSweepTask(fn, i, StopToken{});
                sink(i, std::move(value));
                ++result.generated;
                ++result.sunk;
            }
            result.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return result;
        }

        // In-flight window: enough tokens to keep every worker busy
        // while the caller sinks, small enough to bound live results.
        const std::size_t window =
            std::max<std::size_t>(2 * result.jobs, 4);

        struct Slot
        {
            std::optional<T> value;
            std::exception_ptr error;
            bool done = false;
        };
        std::vector<Slot> slots(window);
        std::mutex mutex;
        std::condition_variable slotDone;
        StopSource failFast;
        const StopToken cancel = failFast.token();
        std::atomic<bool> failed{false};
        // (index, error) in discovery order; rethrow the lowest index.
        std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

        {
            ThreadPool pool(result.jobs);
            std::size_t submitted = 0;
            std::size_t next = 0; // next index owed to the sink

            while (next < count) {
                // Serial generator stage: top up the window in order.
                while (submitted < count &&
                       submitted - next < window &&
                       !failed.load(std::memory_order_relaxed) &&
                       !(generatorStop.possible() &&
                         generatorStop.stopRequested())) {
                    const std::size_t i = submitted++;
                    pool.submit([&, i] {
                        Slot &slot = slots[i % window];
                        try {
                            if constexpr (std::is_invocable_v<
                                              Fn &, std::size_t,
                                              StopToken>) {
                                slot.value.emplace(fn(i, cancel));
                            } else if (!failed.load(
                                           std::memory_order_relaxed)) {
                                slot.value.emplace(fn(i));
                            }
                        } catch (...) {
                            slot.error = std::current_exception();
                            failed.store(true,
                                         std::memory_order_relaxed);
                            failFast.requestStop();
                        }
                        {
                            std::lock_guard<std::mutex> lock(mutex);
                            slot.done = true;
                        }
                        slotDone.notify_one();
                    });
                }
                if (submitted == next)
                    break; // generator stopped with nothing in flight

                // Serial in-order sink stage: wait for slot `next`.
                Slot &slot = slots[next % window];
                {
                    std::unique_lock<std::mutex> lock(mutex);
                    slotDone.wait(lock, [&] { return slot.done; });
                }
                if (slot.error) {
                    errors.emplace_back(next, slot.error);
                } else if (errors.empty() && slot.value.has_value()) {
                    try {
                        sink(next, std::move(*slot.value));
                        ++result.sunk;
                    } catch (...) {
                        errors.emplace_back(next,
                                            std::current_exception());
                        failed.store(true, std::memory_order_relaxed);
                        failFast.requestStop();
                    }
                }
                // Safe to reset without the lock: the worker is done
                // with this slot, and its next writer is submitted by
                // this thread (ordering via the pool's queue mutex).
                slot = Slot{};
                ++next;
            }
            result.generated = submitted;
        } // pool drains and joins here

        if (!errors.empty()) {
            std::size_t lowest = 0;
            for (std::size_t e = 1; e < errors.size(); ++e) {
                if (errors[e].first < errors[lowest].first)
                    lowest = e;
            }
            std::rethrow_exception(errors[lowest].second);
        }
        result.stoppedEarly = result.generated < count;
        result.wallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        return result;
    }

  private:
    unsigned jobs_;
};

} // namespace tia

#endif // TIA_EXEC_PIPELINE_HH
