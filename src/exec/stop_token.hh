/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A StopSource owns a cancellation flag plus an optional wall-clock
 * deadline; StopTokens are cheap copyable views of it. The hot loops
 * that honor cancellation (CycleFabric::run, and through it every
 * runCycle / runCycleMatrix job on the SweepEngine pool) poll
 * stopRequested() at cycle-batch granularity, so a deadline-expired or
 * client-abandoned simulation frees its worker thread within a few
 * thousand simulated cycles instead of running out its full budget —
 * the property tia-serve relies on to never wedge a worker.
 *
 * The deadline is set once, before the token is shared with other
 * threads (setDeadline is not synchronized); the stop flag itself is
 * an atomic and may be raised from any thread at any time. A fired
 * token never un-fires: the flag is sticky and the deadline clock is
 * monotonic.
 */

#ifndef TIA_EXEC_STOP_TOKEN_HH
#define TIA_EXEC_STOP_TOKEN_HH

#include <atomic>
#include <chrono>
#include <memory>

namespace tia {

class StopSource;

/** Read-only view of a StopSource; default-constructed = "never stop". */
class StopToken
{
  public:
    StopToken() = default;

    /** True when attached to a source (a stop could ever be requested). */
    bool possible() const { return state_ != nullptr; }

    /** True once the source fired or its deadline passed. */
    bool
    stopRequested() const
    {
        return why() != nullptr;
    }

    /**
     * Why the token fired: "stop requested", "deadline expired", or
     * nullptr when it has not fired (or is detached).
     */
    const char *
    why() const
    {
        return state_ == nullptr ? nullptr : whyOf(*state_);
    }

    /**
     * A token that fires as soon as either input fires. The sweep
     * pipeline uses this to merge a caller's deadline token with its
     * internal fail-fast source, so one sibling's exception cancels
     * the rest without disturbing the caller's own cancellation. When
     * one input is detached the other is returned as-is (no overhead);
     * merging two detached tokens yields a detached token.
     */
    static StopToken
    anyOf(StopToken a, StopToken b)
    {
        if (!a.possible())
            return b;
        if (!b.possible())
            return a;
        auto state = std::make_shared<State>();
        state->parentA = a.state_;
        state->parentB = b.state_;
        return StopToken(std::move(state));
    }

  private:
    friend class StopSource;

    struct State
    {
        std::atomic<bool> stop{false};
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline{};
        /** anyOf links (set once, before sharing; never mutated). */
        std::shared_ptr<const State> parentA;
        std::shared_ptr<const State> parentB;
    };

    static const char *
    whyOf(const State &state)
    {
        if (state.stop.load(std::memory_order_relaxed))
            return "stop requested";
        if (state.hasDeadline &&
            std::chrono::steady_clock::now() >= state.deadline)
            return "deadline expired";
        if (state.parentA != nullptr) {
            if (const char *why = whyOf(*state.parentA))
                return why;
        }
        if (state.parentB != nullptr) {
            if (const char *why = whyOf(*state.parentB))
                return why;
        }
        return nullptr;
    }

    explicit StopToken(std::shared_ptr<const State> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<const State> state_;
};

/** Owner side: request a stop and/or arm a deadline. */
class StopSource
{
  public:
    StopSource() : state_(std::make_shared<StopToken::State>()) {}

    /** Raise the sticky stop flag (thread-safe, idempotent). */
    void
    requestStop()
    {
        state_->stop.store(true, std::memory_order_relaxed);
    }

    /**
     * Arm an absolute deadline. Must be called before token() results
     * are handed to other threads — the deadline fields are plain.
     */
    void
    setDeadline(std::chrono::steady_clock::time_point deadline)
    {
        state_->hasDeadline = true;
        state_->deadline = deadline;
    }

    /** Convenience: deadline @p ms milliseconds from now. */
    void
    setDeadlineAfterMs(std::uint64_t ms)
    {
        setDeadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ms));
    }

    bool stopRequested() const { return token().stopRequested(); }

    StopToken token() const { return StopToken(state_); }

  private:
    std::shared_ptr<StopToken::State> state_;
};

} // namespace tia

#endif // TIA_EXEC_STOP_TOKEN_HH
