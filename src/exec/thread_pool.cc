#include "exec/thread_pool.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "core/logging.hh"

namespace tia {

unsigned
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
ThreadPool::maxReasonableJobs()
{
    const unsigned hw = defaultConcurrency();
    const unsigned headroom = hw > 8 ? 8 * hw : 64;
    return headroom < 64 ? 64 : headroom;
}

unsigned
ThreadPool::parseJobs(const std::string &text, const char *what)
{
    fatalIf(text.empty(), what, " wants a non-negative integer");
    for (char c : text) {
        fatalIf(!std::isdigit(static_cast<unsigned char>(c)), what,
                " wants a non-negative integer, got \"", text, "\"");
    }
    unsigned long value = 0;
    try {
        value = std::stoul(text);
    } catch (const std::out_of_range &) {
        value = maxReasonableJobs() + 1ul; // clamp below
    }
    if (value == 0)
        return defaultConcurrency();
    const unsigned limit = maxReasonableJobs();
    if (value > limit) {
        std::fprintf(stderr,
                     "warning: %s %s exceeds the sane limit for this "
                     "machine; clamping to %u\n",
                     what, text.c_str(), limit);
        return limit;
    }
    return static_cast<unsigned>(value);
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultConcurrency();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) // stopping_ and drained
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0)
                allIdle_.notify_all();
        }
    }
}

} // namespace tia
