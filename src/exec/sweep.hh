/**
 * @file
 * Deterministic parallel sweeps over an index space.
 *
 * SweepEngine::map(count, fn) evaluates fn(0) .. fn(count - 1) on a
 * thread pool and returns the results in submission order, so a
 * parallel sweep is element-wise identical to the serial loop it
 * replaces as long as fn(i) itself is a pure function of i — which
 * every batch entry point in this repo guarantees by constructing its
 * own CycleFabric, FaultInjector and counters per task. With jobs == 1
 * the engine degenerates to the plain serial loop on the calling
 * thread (no pool, no synchronization), which the determinism tests
 * use as the reference.
 *
 * Exceptions thrown by a task are captured and rethrown from map() —
 * the one with the lowest index, matching what the serial loop would
 * have thrown first.
 *
 * Sweeps are cancellable cooperatively, not by aborting tasks: batch
 * entry points thread a StopToken (exec/stop_token.hh) through
 * CycleRunOptions into each task's cycle loop, so a fired token makes
 * the remaining tasks return RunStatus::Cancelled quickly and map()
 * still completes with every slot filled. That is how tia-serve bounds
 * a `sweep` request by its deadline without leaking pool workers.
 */

#ifndef TIA_EXEC_SWEEP_HH
#define TIA_EXEC_SWEEP_HH

#include <chrono>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"

namespace tia {

/** A completed sweep: values in submission order plus run metadata. */
template <typename T>
struct SweepResult
{
    std::vector<T> values;
    unsigned jobs = 1;   ///< Worker threads actually used.
    double wallMs = 0.0; ///< Wall-clock time of the whole map().
};

class SweepEngine
{
  public:
    /** @param jobs worker threads; 0 means ThreadPool::defaultConcurrency. */
    explicit SweepEngine(unsigned jobs = 0)
        : jobs_(jobs == 0 ? ThreadPool::defaultConcurrency() : jobs)
    {
    }

    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate @p fn over [0, count) and return the results in index
     * order. @p fn must be safe to call concurrently from multiple
     * threads for distinct indices.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn) const
        -> SweepResult<decltype(fn(std::size_t{}))>
    {
        using T = decltype(fn(std::size_t{}));
        const auto start = std::chrono::steady_clock::now();

        SweepResult<T> result;
        result.jobs = count < jobs_ ? static_cast<unsigned>(
                                          count == 0 ? 1 : count)
                                    : jobs_;
        std::vector<std::optional<T>> slots(count);
        std::vector<std::exception_ptr> errors(count);

        if (result.jobs <= 1) {
            for (std::size_t i = 0; i < count; ++i)
                slots[i].emplace(fn(i));
        } else {
            ThreadPool pool(result.jobs);
            for (std::size_t i = 0; i < count; ++i) {
                pool.submit([&, i] {
                    try {
                        slots[i].emplace(fn(i));
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                });
            }
            pool.wait();
            for (std::size_t i = 0; i < count; ++i) {
                if (errors[i])
                    std::rethrow_exception(errors[i]);
            }
        }

        result.values.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            result.values.push_back(std::move(*slots[i]));
        result.wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        return result;
    }

  private:
    unsigned jobs_;
};

} // namespace tia

#endif // TIA_EXEC_SWEEP_HH
