/**
 * @file
 * Deterministic parallel sweeps over an index space.
 *
 * SweepEngine::map(count, fn) evaluates fn(0) .. fn(count - 1) on a
 * thread pool and returns the results in submission order, so a
 * parallel sweep is element-wise identical to the serial loop it
 * replaces as long as fn(i) itself is a pure function of i — which
 * every batch entry point in this repo guarantees by constructing its
 * own CycleFabric, FaultInjector and counters per task. With jobs == 1
 * the engine degenerates to the plain serial loop on the calling
 * thread (no pool, no synchronization), which the determinism tests
 * use as the reference. map() is the flat reference implementation;
 * exec/pipeline.hh layers the streaming generate → simulate → sink
 * pipeline on the same pool and task conventions.
 *
 * Tasks may take a second StopToken parameter — fn(i, cancel) — to
 * opt into engine-driven cancellation: the engine hands every task a
 * token from its internal fail-fast StopSource, and fires it the
 * moment any sibling throws. A cancellation-aware simulation task
 * merges that token with the caller's own (StopToken::anyOf) and
 * returns RunStatus::Cancelled within a few thousand simulated
 * cycles, so one failing cell no longer costs a full matrix of wasted
 * work. Tasks without the token parameter are simply skipped once a
 * sibling has failed (their slots stay empty, which is fine — map()
 * rethrows before results are assembled).
 *
 * Exceptions thrown by tasks are captured and the lowest-index one is
 * rethrown from map(), matching what the serial loop would have
 * thrown first among the tasks that actually ran. (Fail-fast adds one
 * caveat: a lower-index task that would *eventually* have thrown can
 * instead observe the cancel token and return a Cancelled value, in
 * which case the first sibling that did throw is reported.)
 *
 * Sweeps are cancellable cooperatively, not by aborting tasks: batch
 * entry points thread a StopToken (exec/stop_token.hh) through
 * CycleRunOptions into each task's cycle loop, so a fired token makes
 * the remaining tasks return RunStatus::Cancelled quickly and map()
 * still completes with every slot filled. That is how tia-serve bounds
 * a `sweep` request by its deadline without leaking pool workers.
 */

#ifndef TIA_EXEC_SWEEP_HH
#define TIA_EXEC_SWEEP_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/stop_token.hh"
#include "exec/thread_pool.hh"

namespace tia {

namespace detail {

/** Invoke a sweep task, passing the cancel token when fn accepts it. */
template <typename Fn>
auto
invokeSweepTask(Fn &fn, std::size_t i, const StopToken &cancel)
{
    if constexpr (std::is_invocable_v<Fn &, std::size_t, StopToken>)
        return fn(i, cancel);
    else
        return fn(i);
}

/** Result type of a sweep task (with or without the token parameter). */
template <typename Fn>
using SweepTaskResult =
    decltype(invokeSweepTask(std::declval<Fn &>(), std::size_t{},
                             std::declval<const StopToken &>()));

} // namespace detail

/** A completed sweep: values in submission order plus run metadata. */
template <typename T>
struct SweepResult
{
    std::vector<T> values;
    unsigned jobs = 1;   ///< Worker threads actually used.
    double wallMs = 0.0; ///< Wall-clock time of the whole map().
};

class SweepEngine
{
  public:
    /** @param jobs worker threads; 0 means ThreadPool::defaultConcurrency. */
    explicit SweepEngine(unsigned jobs = 0)
        : jobs_(jobs == 0 ? ThreadPool::defaultConcurrency() : jobs)
    {
    }

    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate @p fn over [0, count) and return the results in index
     * order. @p fn must be safe to call concurrently from multiple
     * threads for distinct indices; it may optionally accept a second
     * StopToken parameter (see the file comment) for fail-fast
     * cancellation when a sibling task throws.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn) const
        -> SweepResult<detail::SweepTaskResult<Fn>>
    {
        using T = detail::SweepTaskResult<Fn>;
        const auto start = std::chrono::steady_clock::now();

        SweepResult<T> result;
        result.jobs = count < jobs_ ? static_cast<unsigned>(
                                          count == 0 ? 1 : count)
                                    : jobs_;
        std::vector<std::optional<T>> slots(count);

        if (result.jobs <= 1) {
            // Serial reference loop: the first exception propagates
            // immediately, exactly like the loop it replaces.
            for (std::size_t i = 0; i < count; ++i)
                slots[i].emplace(
                    detail::invokeSweepTask(fn, i, StopToken{}));
        } else {
            std::vector<std::exception_ptr> errors(count);
            StopSource failFast;
            const StopToken cancel = failFast.token();
            std::atomic<bool> failed{false};
            {
                ThreadPool pool(result.jobs);
                for (std::size_t i = 0; i < count; ++i) {
                    pool.submit([&, i] {
                        try {
                            if constexpr (std::is_invocable_v<
                                              Fn &, std::size_t,
                                              StopToken>) {
                                // Cancellation-aware task: run it even
                                // after a failure — the fired token
                                // makes it return Cancelled quickly.
                                slots[i].emplace(fn(i, cancel));
                            } else if (!failed.load(
                                           std::memory_order_relaxed)) {
                                slots[i].emplace(fn(i));
                            }
                            // else: queued sibling of a failed task —
                            // skip; map() rethrows before slots are read.
                        } catch (...) {
                            errors[i] = std::current_exception();
                            failed.store(true,
                                         std::memory_order_relaxed);
                            failFast.requestStop();
                        }
                    });
                }
                pool.wait();
            }
            for (std::size_t i = 0; i < count; ++i) {
                if (errors[i])
                    std::rethrow_exception(errors[i]);
            }
        }

        result.values.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            result.values.push_back(std::move(*slots[i]));
        result.wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        return result;
    }

  private:
    unsigned jobs_;
};

} // namespace tia

#endif // TIA_EXEC_SWEEP_HH
