/**
 * @file
 * A minimal fixed-size thread pool for the sweep engine.
 *
 * The paper's batch artifacts (the Figure 5 CPI matrix, the >4,000
 * point design-space exploration) are embarrassingly parallel: every
 * cell constructs its own fabric and injector, so tasks share no
 * mutable state and the pool needs no more than a work queue. The
 * pool is deliberately small and boring — submission order is the
 * only ordering guarantee callers get, and SweepEngine layers
 * deterministic result placement on top.
 */

#ifndef TIA_EXEC_THREAD_POOL_HH
#define TIA_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tia {

class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means defaultConcurrency().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p task. Tasks must not throw — wrap fallible work and
     * capture the exception (SweepEngine does this per slot).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * std::thread::hardware_concurrency(), or 1 when the runtime
     * cannot tell (the standard allows it to return 0).
     */
    static unsigned defaultConcurrency();

    /**
     * Largest --jobs value the CLI tools accept without clamping:
     * generous oversubscription headroom (8x the hardware threads,
     * floor 64), but far below values that would exhaust memory or
     * thread handles on a typo like --jobs 999999.
     */
    static unsigned maxReasonableJobs();

    /**
     * Parse a --jobs CLI argument. Accepts non-negative decimal
     * integers only; 0 means "auto" (defaultConcurrency). Values above
     * maxReasonableJobs() are clamped with a warning on stderr;
     * malformed text exits with a diagnostic naming @p what.
     */
    static unsigned parseJobs(const std::string &text,
                              const char *what = "--jobs");

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allIdle_;
    unsigned running_ = 0; ///< Tasks currently executing.
    bool stopping_ = false;
};

} // namespace tia

#endif // TIA_EXEC_THREAD_POOL_HH
