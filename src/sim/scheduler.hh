/**
 * @file
 * Trigger resolution: the scheduler / priority-encoder pair at the
 * front end of every triggered PE (paper Figure 2).
 *
 * The scheduler compares each valid instruction's trigger against the
 * predicate state and a *view* of queue status, and selects the
 * highest-priority eligible instruction. The queue-status view is
 * abstract so the same resolution logic serves the functional
 * simulator (live occupancy) and the pipelined microarchitectures
 * (conservative or effective accounting, Section 5.3).
 *
 * Priority correctness under unresolved predicates: when an in-flight
 * datapath predicate write leaves a trigger's outcome unknown, no
 * lower-priority instruction may issue — the cycle is a predicate
 * hazard (Section 5.1).
 */

#ifndef TIA_SIM_SCHEDULER_HH
#define TIA_SIM_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/instruction.hh"
#include "core/types.hh"

namespace tia {

/** Abstract view of queue status as seen by a scheduler. */
class QueueStatusView
{
  public:
    virtual ~QueueStatusView() = default;

    /** Effective occupancy of input queue @p q (0 if conservatively empty). */
    virtual unsigned inputOccupancy(unsigned q) const = 0;

    /** Tag of the effective head of input queue @p q, if available. */
    virtual std::optional<Tag> inputHeadTag(unsigned q) const = 0;

    /** True if output queue @p q can accept one more token. */
    virtual bool outputHasSpace(unsigned q) const = 0;
};

/** Outcome of one trigger-resolution attempt. */
enum class ScheduleOutcome
{
    Fire,               ///< An instruction is eligible; index reported.
    BlockedOnPredicate, ///< Outcome depends on an unresolved predicate.
    None,               ///< Nothing is eligible this cycle.
};

struct ScheduleResult
{
    ScheduleOutcome outcome = ScheduleOutcome::None;
    unsigned index = 0; ///< Selected instruction (valid when Fire).
};

/**
 * Resolve triggers in priority order.
 *
 * @param instructions the PE's instruction store (priority order).
 * @param preds        current (possibly speculative) predicate state.
 * @param pendingPreds bitmask of predicates with in-flight, unresolved
 *                     datapath writes (always 0 with prediction on or
 *                     in the functional simulator).
 * @param view         queue status view.
 */
ScheduleResult schedule(const std::vector<Instruction> &instructions,
                        std::uint64_t preds, std::uint64_t pendingPreds,
                        const QueueStatusView &view);

/**
 * Evaluate all non-predicate trigger conditions (queue occupancy, tag
 * matches, source availability, destination space) for one instruction.
 */
bool queueConditionsHold(const Instruction &inst,
                         const QueueStatusView &view);

/**
 * Per-cycle queue status packed into words for the mask-based fast
 * path. A PE computes this once per cycle (each bound queue inspected
 * once) instead of re-deriving queue status per instruction condition
 * through virtual QueueStatusView calls.
 *
 * headTag[q] is meaningful only where bit q of inputReady is set (an
 * effectively non-empty queue always has a peekable head); consumers
 * must test inputReady first, which the requirement-mask compare does
 * implicitly. For that reason headTag is deliberately left without an
 * initializer: a default-initialized QueueStatusWords (built fresh
 * every cycle) skips zero-filling tags no consumer may read — every
 * compiled tag check adds its queue to the descriptor's inputNeed
 * mask, so an unready queue's tag slot is never inspected.
 */
struct QueueStatusWords
{
    std::uint32_t inputReady = 0;  ///< Bit q: input q effectively non-empty.
    std::uint32_t outputSpace = 0; ///< Bit q: output q has space.
    std::array<Tag, 32> headTag;   ///< Effective head tags (see above).
};

/**
 * Mask-based equivalent of queueConditionsHold for a compiled trigger:
 * two AND/compare operations plus at most MaxCheck tag compares.
 * Exactly equivalent to the reference given consistent status
 * (asserted by tests/test_hot_path.cc). Defined inline — this runs
 * once per instruction per cycle in the issue stage.
 */
inline bool
queueConditionsHold(const TriggerDesc &desc, const QueueStatusWords &status)
{
    // Occupancy, source availability, dequeue availability and
    // destination space collapse to two requirement-mask compares.
    if ((desc.inputNeed & ~status.inputReady) != 0)
        return false;
    if ((desc.outputNeed & ~status.outputSpace) != 0)
        return false;
    // Tag conditions: the queues involved passed the inputReady test
    // above, so their effective head tags are meaningful.
    for (unsigned c = 0; c < desc.numChecks; ++c) {
        const QueueCheck &check = desc.checks[c];
        const bool match = status.headTag[check.queue] == check.tag;
        if (match == check.negate)
            return false;
    }
    return true;
}

/**
 * Mask-based trigger resolution over compiled descriptors: the fast
 * path used by the cycle-accurate PE's issue stage. Bit-identical to
 * schedule() on the corresponding instructions and a consistent view.
 */
inline ScheduleResult
schedule(const std::vector<TriggerDesc> &descs, std::uint64_t preds,
         std::uint64_t pendingPreds, const QueueStatusWords &status)
{
    // Same resolution order and outcomes as the reference loop, over
    // compiled descriptors.
    for (unsigned i = 0; i < descs.size(); ++i) {
        const TriggerDesc &desc = descs[i];
        if (!desc.valid)
            continue;

        if (!queueConditionsHold(desc, status))
            continue;

        const std::uint64_t cares = desc.predOn | desc.predOff;
        const std::uint64_t resolved = ~pendingPreds;

        const std::uint64_t on_fail = desc.predOn & ~preds;
        const std::uint64_t off_fail = desc.predOff & preds;
        if (((on_fail | off_fail) & resolved) != 0)
            continue;

        if ((cares & pendingPreds) != 0)
            return {ScheduleOutcome::BlockedOnPredicate, i};

        return {ScheduleOutcome::Fire, i};
    }
    return {ScheduleOutcome::None, 0};
}

} // namespace tia

#endif // TIA_SIM_SCHEDULER_HH
