/**
 * @file
 * Trigger resolution: the scheduler / priority-encoder pair at the
 * front end of every triggered PE (paper Figure 2).
 *
 * The scheduler compares each valid instruction's trigger against the
 * predicate state and a *view* of queue status, and selects the
 * highest-priority eligible instruction. The queue-status view is
 * abstract so the same resolution logic serves the functional
 * simulator (live occupancy) and the pipelined microarchitectures
 * (conservative or effective accounting, Section 5.3).
 *
 * Priority correctness under unresolved predicates: when an in-flight
 * datapath predicate write leaves a trigger's outcome unknown, no
 * lower-priority instruction may issue — the cycle is a predicate
 * hazard (Section 5.1).
 */

#ifndef TIA_SIM_SCHEDULER_HH
#define TIA_SIM_SCHEDULER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/instruction.hh"
#include "core/types.hh"

namespace tia {

/** Abstract view of queue status as seen by a scheduler. */
class QueueStatusView
{
  public:
    virtual ~QueueStatusView() = default;

    /** Effective occupancy of input queue @p q (0 if conservatively empty). */
    virtual unsigned inputOccupancy(unsigned q) const = 0;

    /** Tag of the effective head of input queue @p q, if available. */
    virtual std::optional<Tag> inputHeadTag(unsigned q) const = 0;

    /** True if output queue @p q can accept one more token. */
    virtual bool outputHasSpace(unsigned q) const = 0;
};

/** Outcome of one trigger-resolution attempt. */
enum class ScheduleOutcome
{
    Fire,               ///< An instruction is eligible; index reported.
    BlockedOnPredicate, ///< Outcome depends on an unresolved predicate.
    None,               ///< Nothing is eligible this cycle.
};

struct ScheduleResult
{
    ScheduleOutcome outcome = ScheduleOutcome::None;
    unsigned index = 0; ///< Selected instruction (valid when Fire).
};

/**
 * Resolve triggers in priority order.
 *
 * @param instructions the PE's instruction store (priority order).
 * @param preds        current (possibly speculative) predicate state.
 * @param pendingPreds bitmask of predicates with in-flight, unresolved
 *                     datapath writes (always 0 with prediction on or
 *                     in the functional simulator).
 * @param view         queue status view.
 */
ScheduleResult schedule(const std::vector<Instruction> &instructions,
                        std::uint64_t preds, std::uint64_t pendingPreds,
                        const QueueStatusView &view);

/**
 * Evaluate all non-predicate trigger conditions (queue occupancy, tag
 * matches, source availability, destination space) for one instruction.
 */
bool queueConditionsHold(const Instruction &inst,
                         const QueueStatusView &view);

} // namespace tia

#endif // TIA_SIM_SCHEDULER_HH
