#include "sim/functional.hh"

#include "core/logging.hh"
#include "core/opcode.hh"

namespace tia {

namespace {

/** Live-occupancy queue view for the functional PE. */
class FunctionalQueueView : public QueueStatusView
{
  public:
    FunctionalQueueView(const std::vector<TaggedQueue *> &inputs,
                        const std::vector<TaggedQueue *> &outputs)
        : inputs_(inputs), outputs_(outputs)
    {
    }

    unsigned
    inputOccupancy(unsigned q) const override
    {
        const TaggedQueue *queue = inputs_.at(q);
        return queue ? queue->size() : 0;
    }

    std::optional<Tag>
    inputHeadTag(unsigned q) const override
    {
        const TaggedQueue *queue = inputs_.at(q);
        if (!queue)
            return std::nullopt;
        const auto token = queue->peek(0);
        if (!token)
            return std::nullopt;
        return token->tag;
    }

    bool
    outputHasSpace(unsigned q) const override
    {
        const TaggedQueue *queue = outputs_.at(q);
        return queue && queue->size() < queue->capacity();
    }

  private:
    const std::vector<TaggedQueue *> &inputs_;
    const std::vector<TaggedQueue *> &outputs_;
};

} // namespace

FunctionalPe::FunctionalPe(const ArchParams &params,
                           std::vector<Instruction> program)
    : params_(params), program_(std::move(program)),
      regs_(params.numRegs, 0), scratchpad_(params.scratchpadWords, 0),
      inputs_(params.numInputQueues, nullptr),
      outputs_(params.numOutputQueues, nullptr)
{
    fatalIf(program_.size() > params_.numInstructions,
            "program exceeds the PE instruction store");
}

void
FunctionalPe::bindInput(unsigned port, TaggedQueue *queue)
{
    inputs_.at(port) = queue;
}

void
FunctionalPe::bindOutput(unsigned port, TaggedQueue *queue)
{
    outputs_.at(port) = queue;
}

void
FunctionalPe::setRegs(const std::vector<Word> &values)
{
    fatalIf(values.size() > regs_.size(),
            "initial register set larger than the register file");
    for (std::size_t i = 0; i < values.size(); ++i)
        regs_[i] = values[i];
}

Word
FunctionalPe::readSource(const Source &src, Word imm) const
{
    switch (src.type) {
      case SrcType::None:
        return 0;
      case SrcType::Reg:
        return regs_.at(src.index);
      case SrcType::InputQueue: {
        const TaggedQueue *queue = inputs_.at(src.index);
        panicIf(queue == nullptr, "read of unbound input queue");
        const auto token = queue->peek(0);
        panicIf(!token.has_value(), "read of empty input queue");
        return token->data;
      }
      case SrcType::Immediate:
        return imm;
    }
    panic("readSource: bad source type");
}

void
FunctionalPe::executeDatapath(const Instruction &inst)
{
    const Word a = readSource(inst.srcs[0], inst.imm);
    const Word b = readSource(inst.srcs[1], inst.imm);

    // Dequeues take effect after operand capture.
    for (auto q : inst.dequeues) {
        TaggedQueue *queue = inputs_.at(q);
        panicIf(queue == nullptr, "dequeue of unbound input queue");
        queue->pop();
    }

    Word result = 0;
    const OpInfo &info = opInfo(inst.op);
    if (info.isHalt) {
        halted_ = true;
    } else if (info.readsScratchpad) {
        const Word address = a + b;
        fatalIf(address >= scratchpad_.size(), "scratchpad load at ",
                address, " out of bounds");
        result = scratchpad_[address];
    } else if (info.writesScratchpad) {
        fatalIf(a >= scratchpad_.size(), "scratchpad store at ", a,
                " out of bounds");
        scratchpad_[a] = b;
    } else {
        result = evalAlu(inst.op, a, b);
    }

    switch (inst.dst.type) {
      case DstType::None:
        break;
      case DstType::Reg:
        regs_.at(inst.dst.index) = result;
        break;
      case DstType::OutputQueue: {
        TaggedQueue *queue = outputs_.at(inst.dst.index);
        panicIf(queue == nullptr, "enqueue to unbound output queue");
        queue->pushImmediate({result, inst.outTag});
        break;
      }
      case DstType::Predicate: {
        const std::uint64_t bit = std::uint64_t{1} << inst.dst.index;
        preds_ = (preds_ & ~bit) | ((result & 1u) ? bit : 0);
        ++predWrites_;
        break;
      }
    }
}

bool
FunctionalPe::step()
{
    if (halted_)
        return false;

    FunctionalQueueView view(inputs_, outputs_);
    const ScheduleResult result = schedule(program_, preds_, 0, view);
    if (result.outcome != ScheduleOutcome::Fire)
        return false;

    const Instruction &inst = program_[result.index];

    // Trigger-time predicate update (applies "within a cycle of the
    // instruction trigger", Section 2.2).
    preds_ = (preds_ | inst.predSet) & ~inst.predClear;

    executeDatapath(inst);
    ++retired_;
    return true;
}

FunctionalFabric::FunctionalFabric(const FabricConfig &config,
                                   const Program &program)
    : config_(config), memory_(config.memoryWords)
{
    config_.validate();
    fatalIf(program.numPes() > config_.numPes,
            "program targets ", program.numPes(),
            " PEs but the fabric has ", config_.numPes);

    for (unsigned ch = 0; ch < config_.numChannels; ++ch) {
        channels_.push_back(
            std::make_unique<TaggedQueue>(config_.params.queueCapacity));
    }

    for (unsigned pe = 0; pe < config_.numPes; ++pe) {
        std::vector<Instruction> insts;
        if (pe < program.numPes())
            insts = program.pes[pe];
        auto functional =
            std::make_unique<FunctionalPe>(config_.params, std::move(insts));
        for (unsigned port = 0; port < config_.params.numInputQueues;
             ++port) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound)
                functional->bindInput(port, channels_[ch].get());
        }
        for (unsigned port = 0; port < config_.params.numOutputQueues;
             ++port) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound)
                functional->bindOutput(port, channels_[ch].get());
        }
        if (pe < config_.initialRegs.size())
            functional->setRegs(config_.initialRegs[pe]);
        if (pe < config_.initialPreds.size())
            functional->setPreds(config_.initialPreds[pe]);
        pes_.push_back(std::move(functional));
    }

    for (const auto &spec : config_.readPorts) {
        readPorts_.push_back(std::make_unique<MemoryReadPort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel], config_.memLatency));
    }
    for (const auto &spec : config_.writePorts) {
        writePorts_.push_back(std::make_unique<MemoryWritePort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel]));
    }
}

RunStatus
FunctionalFabric::run(std::uint64_t max_steps)
{
    for (std::uint64_t pass = 0; pass < max_steps; ++pass) {
        bool progress = false;
        bool all_halted = true;
        for (auto &pe : pes_) {
            progress |= pe->step();
            all_halted &= pe->halted();
        }
        for (auto &port : readPorts_)
            progress |= port->serviceOne();
        for (auto &port : writePorts_)
            progress |= port->serviceOne();
        if (all_halted && !progress)
            return RunStatus::Halted;
        if (!progress)
            return RunStatus::Quiescent;
    }
    return RunStatus::StepLimit;
}

} // namespace tia
