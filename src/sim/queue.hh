/**
 * @file
 * Tagged data queues: the communication channels between PEs.
 *
 * Each entry carries a data word plus a small programmable tag
 * (Section 2.1). Queues support deep peeking ("head and neck") to serve
 * the effective-queue-status optimization of Section 5.3, and a
 * cycle-start snapshot discipline so that all agents in a cycle observe
 * a consistent, RTL-like view of occupancy: pushes performed during a
 * cycle become visible only at the next cycle boundary.
 *
 * Storage is a fixed ring buffer sized once at construction — the
 * committed entries followed by this cycle's deferred pushes occupy one
 * contiguous (mod capacity) window, so steady-state operation performs
 * no allocation. An optional QueueEventLog lets the owning fabric
 * observe pushes and pops for its idle-PE wake list and incremental
 * progress accounting (see uarch/cycle_fabric.hh); the log is a
 * concrete inline structure, not a virtual observer — every push and
 * pop pays for the recording.
 */

#ifndef TIA_SIM_QUEUE_HH
#define TIA_SIM_QUEUE_HH

#include <optional>
#include <vector>

#include "core/logging.hh"
#include "core/types.hh"

namespace tia {

/** One tagged token. */
struct Token
{
    Word data = 0;
    Tag tag = 0;

    bool operator==(const Token &) const = default;
};

/**
 * Injection point for channel-level fault models (see sim/fault.hh).
 *
 * A queue with a hook installed consults it on every committed-path
 * push (which may corrupt the token in place, drop it, or duplicate
 * it) and exposes the hook's stuck-status verdicts through
 * faultStuckEmpty()/faultStuckFull(). Status faults deliberately warp
 * only what schedulers and ports *observe* — the queue contents stay
 * intact, so execution resumes unharmed when the fault window closes.
 */
class ChannelFaultHook
{
  public:
    enum class PushAction
    {
        Keep,      ///< Deliver the (possibly corrupted) token normally.
        Drop,      ///< Silently lose the token.
        Duplicate, ///< Deliver the token twice (capacity permitting).
    };

    virtual ~ChannelFaultHook() = default;

    /** Called once per push; may mutate @p token (corruption). */
    virtual PushAction onPush(unsigned channel, Token &token) = 0;

    /** True while channel @p channel must report itself empty. */
    virtual bool stuckEmpty(unsigned channel) const = 0;

    /** True while channel @p channel must report itself full. */
    virtual bool stuckFull(unsigned channel) const = 0;
};

/**
 * Log of queue activity (see file comment). recordPush fires once per
 * token accepted into the deferred-push window; recordPop once per
 * token popped. Dropped (faulted) tokens fire neither.
 *
 * The owner drains the dirty and pushed channel lists between cycles
 * (clearDirty/clearPushed); each channel appears at most once per list
 * per cycle. progressEvents() accumulates over the whole run.
 */
class QueueEventLog
{
  public:
    explicit QueueEventLog(unsigned channels)
        : dirtyFlag_(channels, 0), pushedFlag_(channels, 0)
    {
        dirty_.reserve(channels);
        pushed_.reserve(channels);
    }

    /** A token was accepted by channel @p channel this cycle. */
    void
    recordPush(unsigned channel)
    {
        ++progressEvents_;
        if (!dirtyFlag_[channel]) {
            dirtyFlag_[channel] = 1;
            dirty_.push_back(channel);
        }
        if (!pushedFlag_[channel]) {
            pushedFlag_[channel] = 1;
            pushed_.push_back(channel);
        }
    }

    /** A token was popped from channel @p channel this cycle. */
    void
    recordPop(unsigned channel)
    {
        ++progressEvents_;
        if (!dirtyFlag_[channel]) {
            dirtyFlag_[channel] = 1;
            dirty_.push_back(channel);
        }
    }

    /** Channels with any activity since the last clearDirty(). */
    const std::vector<unsigned> &dirtyChannels() const { return dirty_; }

    /** Channels with pushes since the last clearPushed(). */
    const std::vector<unsigned> &pushedChannels() const { return pushed_; }

    /** True if channel @p channel is in the dirty list. */
    bool dirty(unsigned channel) const { return dirtyFlag_[channel] != 0; }

    /** Pushes + pops ever recorded. */
    std::uint64_t progressEvents() const { return progressEvents_; }

    void
    clearDirty()
    {
        for (unsigned ch : dirty_)
            dirtyFlag_[ch] = 0;
        dirty_.clear();
    }

    void
    clearPushed()
    {
        for (unsigned ch : pushed_)
            pushedFlag_[ch] = 0;
        pushed_.clear();
    }

  private:
    std::vector<std::uint8_t> dirtyFlag_;  ///< In dirty_, by channel.
    std::vector<std::uint8_t> pushedFlag_; ///< In pushed_, by channel.
    std::vector<unsigned> dirty_;
    std::vector<unsigned> pushed_;
    std::uint64_t progressEvents_ = 0;
};

/**
 * A bounded FIFO of tagged tokens with single producer and single
 * consumer, deferred-push semantics and cycle-start occupancy
 * snapshots.
 */
class TaggedQueue
{
  public:
    explicit TaggedQueue(unsigned capacity)
        : capacity_(capacity), ring_(capacity)
    {
        fatalIf(capacity == 0, "queue capacity must be positive");
    }

    /** Queue capacity in entries. */
    unsigned capacity() const { return capacity_; }

    /** Live occupancy (committed entries only). */
    unsigned size() const { return committed_; }

    /** Occupancy at the start of the current cycle. */
    unsigned snapshotSize() const { return snapshotSize_; }

    /** Live emptiness. */
    bool empty() const { return committed_ == 0; }

    /**
     * Peek at depth @p depth (0 = head, 1 = neck, ...), using live
     * contents; returns nullopt beyond the live occupancy.
     */
    std::optional<Token>
    peek(unsigned depth = 0) const
    {
        if (depth >= committed_)
            return std::nullopt;
        return ring_[wrap(head_ + depth)];
    }

    /**
     * Pointer form of peek() for the per-cycle scheduler path; the
     * token stays valid until the next pop or commit.
     */
    const Token *
    peekPtr(unsigned depth = 0) const
    {
        return depth < committed_ ? &ring_[wrap(head_ + depth)] : nullptr;
    }

    /** Pop the head. Takes effect immediately (within-cycle). */
    Token
    pop()
    {
        panicIf(committed_ == 0, "pop from empty queue");
        Token token = ring_[head_];
        head_ = wrap(head_ + 1);
        --committed_;
        ++totalPops_;
        ++popsThisCycle_;
        if (log_)
            log_->recordPop(channelId_);
        return token;
    }

    /** Pops performed since the last beginCycle(). */
    unsigned popsThisCycle() const { return popsThisCycle_; }

    /**
     * Push a token; deferred until the next commit() so other agents
     * evaluated later in the same cycle do not observe it early.
     */
    void
    push(const Token &token)
    {
        Token delivered = token;
        if (faultHook_) {
            const auto action = faultHook_->onPush(channelId_, delivered);
            if (action == ChannelFaultHook::PushAction::Drop)
                return;
            if (action == ChannelFaultHook::PushAction::Duplicate &&
                committed_ + pending_ + 1 < capacity_) {
                append(delivered);
            }
        }
        panicIf(committed_ + pending_ >= capacity_,
                "push to full queue (capacity ", capacity_,
                ") — a hazard check failed");
        append(delivered);
    }

    /** Begin a cycle: record the occupancy snapshot. */
    void
    beginCycle()
    {
        snapshotSize_ = size();
        popsThisCycle_ = 0;
    }

    /** End a cycle: make this cycle's pushes visible. */
    void
    commit()
    {
        committed_ += pending_;
        pending_ = 0;
    }

    /** Immediate push for the functional simulator (no deferral). */
    void
    pushImmediate(const Token &token)
    {
        panicIf(committed_ >= capacity_, "push to full queue");
        panicIf(pending_ != 0,
                "pushImmediate with deferred pushes pending");
        ring_[wrap(head_ + committed_)] = token;
        ++committed_;
        ++totalPushes_;
        if (committed_ > highWater_)
            highWater_ = committed_;
        if (log_)
            log_->recordPush(channelId_);
    }

    /** Total tokens ever pushed (pending included). */
    std::uint64_t totalPushes() const { return totalPushes_; }
    /** Total tokens ever popped. */
    std::uint64_t totalPops() const { return totalPops_; }

    /**
     * Highest occupancy ever reached (committed + deferred pushes) —
     * the channel-sizing signal the observability layer reports.
     */
    unsigned highWater() const { return highWater_; }

    /** True if a push from this cycle is awaiting commit(). */
    bool hasPendingPush() const { return pending_ != 0; }

    /** Number of pushes from this cycle awaiting commit(). */
    unsigned pendingPushes() const { return pending_; }

    /** Install (or clear) a fault hook; @p id names this channel. */
    void
    setFaultHook(ChannelFaultHook *hook, unsigned id)
    {
        faultHook_ = hook;
        channelId_ = id;
    }

    /** Install (or clear) an event log; @p id names this channel. */
    void
    setEventLog(QueueEventLog *log, unsigned id)
    {
        log_ = log;
        channelId_ = id;
    }

    /** True while a fault forces this queue to report itself empty. */
    bool
    faultStuckEmpty() const
    {
        return faultHook_ && faultHook_->stuckEmpty(channelId_);
    }

    /** True while a fault forces this queue to report itself full. */
    bool
    faultStuckFull() const
    {
        return faultHook_ && faultHook_->stuckFull(channelId_);
    }

  private:
    /** Reduce an offset below 2*capacity into [0, capacity). */
    unsigned
    wrap(unsigned offset) const
    {
        return offset >= capacity_ ? offset - capacity_ : offset;
    }

    /** Place a token in the deferred-push window and count it. */
    void
    append(const Token &token)
    {
        ring_[wrap(head_ + committed_ + pending_)] = token;
        ++pending_;
        ++totalPushes_;
        if (committed_ + pending_ > highWater_)
            highWater_ = committed_ + pending_;
        if (log_)
            log_->recordPush(channelId_);
    }

    unsigned capacity_;
    std::vector<Token> ring_;
    unsigned head_ = 0;      ///< Ring index of the committed head.
    unsigned committed_ = 0; ///< Committed (visible) occupancy.
    unsigned pending_ = 0;   ///< Deferred pushes awaiting commit().
    unsigned snapshotSize_ = 0;
    unsigned popsThisCycle_ = 0;
    unsigned highWater_ = 0; ///< Max committed_ + pending_ ever seen.
    std::uint64_t totalPushes_ = 0;
    std::uint64_t totalPops_ = 0;
    ChannelFaultHook *faultHook_ = nullptr;
    QueueEventLog *log_ = nullptr;
    unsigned channelId_ = 0;
};

} // namespace tia

#endif // TIA_SIM_QUEUE_HH
