/**
 * @file
 * Tagged data queues: the communication channels between PEs.
 *
 * Each entry carries a data word plus a small programmable tag
 * (Section 2.1). Queues support deep peeking ("head and neck") to serve
 * the effective-queue-status optimization of Section 5.3, and a
 * cycle-start snapshot discipline so that all agents in a cycle observe
 * a consistent, RTL-like view of occupancy: pushes performed during a
 * cycle become visible only at the next cycle boundary.
 */

#ifndef TIA_SIM_QUEUE_HH
#define TIA_SIM_QUEUE_HH

#include <deque>
#include <optional>

#include "core/logging.hh"
#include "core/types.hh"

namespace tia {

/** One tagged token. */
struct Token
{
    Word data = 0;
    Tag tag = 0;

    bool operator==(const Token &) const = default;
};

/**
 * Injection point for channel-level fault models (see sim/fault.hh).
 *
 * A queue with a hook installed consults it on every committed-path
 * push (which may corrupt the token in place, drop it, or duplicate
 * it) and exposes the hook's stuck-status verdicts through
 * faultStuckEmpty()/faultStuckFull(). Status faults deliberately warp
 * only what schedulers and ports *observe* — the queue contents stay
 * intact, so execution resumes unharmed when the fault window closes.
 */
class ChannelFaultHook
{
  public:
    enum class PushAction
    {
        Keep,      ///< Deliver the (possibly corrupted) token normally.
        Drop,      ///< Silently lose the token.
        Duplicate, ///< Deliver the token twice (capacity permitting).
    };

    virtual ~ChannelFaultHook() = default;

    /** Called once per push; may mutate @p token (corruption). */
    virtual PushAction onPush(unsigned channel, Token &token) = 0;

    /** True while channel @p channel must report itself empty. */
    virtual bool stuckEmpty(unsigned channel) const = 0;

    /** True while channel @p channel must report itself full. */
    virtual bool stuckFull(unsigned channel) const = 0;
};

/**
 * A bounded FIFO of tagged tokens with single producer and single
 * consumer, deferred-push semantics and cycle-start occupancy
 * snapshots.
 */
class TaggedQueue
{
  public:
    explicit TaggedQueue(unsigned capacity) : capacity_(capacity)
    {
        fatalIf(capacity == 0, "queue capacity must be positive");
    }

    /** Queue capacity in entries. */
    unsigned capacity() const { return capacity_; }

    /** Live occupancy (committed entries only). */
    unsigned size() const { return static_cast<unsigned>(entries_.size()); }

    /** Occupancy at the start of the current cycle. */
    unsigned snapshotSize() const { return snapshotSize_; }

    /** Live emptiness. */
    bool empty() const { return entries_.empty(); }

    /**
     * Peek at depth @p depth (0 = head, 1 = neck, ...), using live
     * contents; returns nullopt beyond the live occupancy.
     */
    std::optional<Token>
    peek(unsigned depth = 0) const
    {
        if (depth >= entries_.size())
            return std::nullopt;
        return entries_[depth];
    }

    /** Pop the head. Takes effect immediately (within-cycle). */
    Token
    pop()
    {
        panicIf(entries_.empty(), "pop from empty queue");
        Token token = entries_.front();
        entries_.pop_front();
        ++totalPops_;
        ++popsThisCycle_;
        return token;
    }

    /** Pops performed since the last beginCycle(). */
    unsigned popsThisCycle() const { return popsThisCycle_; }

    /**
     * Push a token; deferred until the next commit() so other agents
     * evaluated later in the same cycle do not observe it early.
     */
    void
    push(const Token &token)
    {
        Token delivered = token;
        if (faultHook_) {
            const auto action = faultHook_->onPush(channelId_, delivered);
            if (action == ChannelFaultHook::PushAction::Drop)
                return;
            if (action == ChannelFaultHook::PushAction::Duplicate &&
                entries_.size() + pending_.size() + 1 < capacity_) {
                pending_.push_back(delivered);
                ++totalPushes_;
            }
        }
        panicIf(entries_.size() + pending_.size() >= capacity_,
                "push to full queue (capacity ", capacity_,
                ") — a hazard check failed");
        pending_.push_back(delivered);
        ++totalPushes_;
    }

    /** Begin a cycle: record the occupancy snapshot. */
    void
    beginCycle()
    {
        snapshotSize_ = size();
        popsThisCycle_ = 0;
    }

    /** End a cycle: make this cycle's pushes visible. */
    void
    commit()
    {
        for (const auto &token : pending_)
            entries_.push_back(token);
        pending_.clear();
    }

    /** Immediate push for the functional simulator (no deferral). */
    void
    pushImmediate(const Token &token)
    {
        panicIf(entries_.size() >= capacity_, "push to full queue");
        entries_.push_back(token);
        ++totalPushes_;
    }

    /** Total tokens ever pushed (pending included). */
    std::uint64_t totalPushes() const { return totalPushes_; }
    /** Total tokens ever popped. */
    std::uint64_t totalPops() const { return totalPops_; }

    /** True if a push from this cycle is awaiting commit(). */
    bool hasPendingPush() const { return !pending_.empty(); }

    /** Number of pushes from this cycle awaiting commit(). */
    unsigned
    pendingPushes() const
    {
        return static_cast<unsigned>(pending_.size());
    }

    /** Install (or clear) a fault hook; @p id names this channel. */
    void
    setFaultHook(ChannelFaultHook *hook, unsigned id)
    {
        faultHook_ = hook;
        channelId_ = id;
    }

    /** True while a fault forces this queue to report itself empty. */
    bool
    faultStuckEmpty() const
    {
        return faultHook_ && faultHook_->stuckEmpty(channelId_);
    }

    /** True while a fault forces this queue to report itself full. */
    bool
    faultStuckFull() const
    {
        return faultHook_ && faultHook_->stuckFull(channelId_);
    }

  private:
    unsigned capacity_;
    std::deque<Token> entries_;
    std::deque<Token> pending_;
    unsigned snapshotSize_ = 0;
    unsigned popsThisCycle_ = 0;
    std::uint64_t totalPushes_ = 0;
    std::uint64_t totalPops_ = 0;
    ChannelFaultHook *faultHook_ = nullptr;
    unsigned channelId_ = 0;
};

} // namespace tia

#endif // TIA_SIM_QUEUE_HH
