#include "sim/hang_diagnosis.hh"

#include <sstream>

#include "core/logging.hh"

namespace tia {

std::size_t
WaitForGraph::addNode(AgentKind kind, unsigned index, std::string name,
                      bool blocked)
{
    nodes_.push_back({kind, index, std::move(name), blocked});
    return nodes_.size() - 1;
}

void
WaitForGraph::markBlocked(std::size_t node)
{
    nodes_.at(node).blocked = true;
}

void
WaitForGraph::addEdge(std::size_t from, std::size_t to, std::string reason)
{
    panicIf(from >= nodes_.size() || to >= nodes_.size(),
            "wait-for edge references a nonexistent node");
    edges_.push_back({from, to, std::move(reason)});
}

std::vector<std::size_t>
WaitForGraph::findCycle() const
{
    // Iterative DFS with the classic white/grey/black coloring; a grey
    // hit closes a cycle, which we then read off the DFS stack.
    std::vector<std::vector<std::size_t>> successors(nodes_.size());
    for (std::size_t e = 0; e < edges_.size(); ++e)
        successors[edges_[e].from].push_back(e);

    enum Color : std::uint8_t { White, Grey, Black };
    std::vector<Color> color(nodes_.size(), White);

    struct Frame
    {
        std::size_t node;
        std::size_t next = 0; ///< Next successor edge to explore.
    };

    for (std::size_t root = 0; root < nodes_.size(); ++root) {
        if (color[root] != White)
            continue;
        std::vector<Frame> stack{{root}};
        color[root] = Grey;
        while (!stack.empty()) {
            Frame &frame = stack.back();
            if (frame.next >= successors[frame.node].size()) {
                color[frame.node] = Black;
                stack.pop_back();
                continue;
            }
            const Edge &edge = edges_[successors[frame.node][frame.next++]];
            if (color[edge.to] == Grey) {
                // Found a cycle: read it off the stack.
                std::vector<std::size_t> cycle;
                std::size_t begin = 0;
                for (std::size_t i = 0; i < stack.size(); ++i) {
                    if (stack[i].node == edge.to)
                        begin = i;
                }
                bool blocked = false;
                for (std::size_t i = begin; i < stack.size(); ++i) {
                    cycle.push_back(stack[i].node);
                    blocked |= nodes_[stack[i].node].blocked;
                }
                if (blocked)
                    return cycle;
                // A cycle with no blocked agent (e.g. a live ring) is
                // not a deadlock; keep searching.
            } else if (color[edge.to] == White) {
                color[edge.to] = Grey;
                stack.push_back({edge.to});
            }
        }
    }
    return {};
}

std::vector<std::string>
WaitForGraph::renderChain(const std::vector<std::size_t> &cycle) const
{
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const std::size_t from = cycle[i];
        const std::size_t to = cycle[(i + 1) % cycle.size()];
        const Edge *found = nullptr;
        for (const auto &edge : edges_) {
            if (edge.from == from && edge.to == to) {
                found = &edge;
                break;
            }
        }
        std::ostringstream os;
        os << nodes_[from].name << " --["
           << (found ? found->reason : "waits on") << "]--> "
           << nodes_[to].name;
        lines.push_back(os.str());
    }
    return lines;
}

HangReport
classifyQuiescence(const WaitForGraph &graph)
{
    HangReport report;
    for (const auto &node : graph.nodes()) {
        if (node.blocked)
            report.blockedAgents.push_back(node.name);
    }

    const auto cycle = graph.findCycle();
    if (!cycle.empty()) {
        report.classification = RunStatus::Deadlock;
        report.waitChain = graph.renderChain(cycle);
        std::ostringstream os;
        os << "deadlock: " << cycle.size()
           << "-agent wait cycle through " << graph.nodes()[cycle[0]].name;
        report.summary = os.str();
        return report;
    }

    report.classification = RunStatus::Quiescent;
    if (report.blockedAgents.empty()) {
        report.summary = "quiescent: no agent is waiting (work complete)";
    } else {
        std::ostringstream os;
        os << "quiescent: " << report.blockedAgents.size()
           << " agent(s) starved with no wait cycle (producer halted or"
              " idle)";
        report.summary = os.str();
    }
    return report;
}

HangReport
classifyStepLimit(Cycle silentCycles, Cycle window)
{
    HangReport report;
    if (window > 0 && silentCycles >= window) {
        report.classification = RunStatus::Livelock;
        std::ostringstream os;
        os << "livelock: active for the final " << silentCycles
           << " cycles without observable progress (no token moved, no"
              " memory written)";
        report.summary = os.str();
    } else {
        report.classification = RunStatus::StepLimit;
        report.summary = "step limit: cycle budget exhausted while still"
                         " making progress";
    }
    return report;
}

} // namespace tia
