/**
 * @file
 * Hang diagnosis: wait-for graphs and run-outcome classification.
 *
 * A quiescent fabric is ambiguous — it may have finished (every token
 * consumed, nothing left to trigger) or deadlocked (a ring of agents
 * each waiting for another to move first). The cycle-accurate fabric
 * resolves the ambiguity by building a wait-for graph at quiescence:
 * nodes are PEs, channels and memory ports; a blocked PE points at the
 * channel it waits on, an empty channel points at its producer, a full
 * channel points at its consumers. A cycle through a blocked agent is
 * a deadlock and the cycle itself is the diagnosis — the report
 * renders it as a chain naming each PE and queue. Runs that stay busy
 * to the step limit without moving a single token are classified as
 * livelock (spinning without observable progress).
 *
 * The graph and classifier are microarchitecture-agnostic; the fabric
 * that owns the wiring is responsible for adding the right edges.
 */

#ifndef TIA_SIM_HANG_DIAGNOSIS_HH
#define TIA_SIM_HANG_DIAGNOSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"
#include "sim/functional.hh" // RunStatus

namespace tia {

/** What a wait-for-graph node models. */
enum class AgentKind
{
    Pe,
    Channel,
    ReadPort,
    WritePort,
};

/** Directed wait-for graph over fabric agents. */
class WaitForGraph
{
  public:
    struct Node
    {
        AgentKind kind;
        unsigned index;   ///< PE / channel / port number.
        std::string name; ///< Display name, e.g. "PE 1", "channel 3".
        bool blocked;     ///< True if the agent is stuck waiting.
    };

    struct Edge
    {
        std::size_t from;
        std::size_t to;
        std::string reason; ///< e.g. "input %i0 empty", "fed by".
    };

    /** Add a node; returns its id. */
    std::size_t addNode(AgentKind kind, unsigned index, std::string name,
                        bool blocked = false);

    /** Mark an existing node blocked. */
    void markBlocked(std::size_t node);

    /** Add a wait edge (@p from waits on @p to). */
    void addEdge(std::size_t from, std::size_t to, std::string reason);

    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<Edge> &edges() const { return edges_; }

    /**
     * Find a directed cycle containing at least one blocked node.
     * @return node ids along the cycle (first == entry point), empty
     *         when the graph is acyclic.
     */
    std::vector<std::size_t> findCycle() const;

    /**
     * Render the wait chain for @p cycle as human-readable lines, e.g.
     * "PE 0 --[input %i0 empty]--> channel 1".
     */
    std::vector<std::string> renderChain(
        const std::vector<std::size_t> &cycle) const;

  private:
    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
};

/** The watchdog's verdict on how a run ended. */
struct HangReport
{
    /** Refined status (Halted / Quiescent / Deadlock / Livelock / StepLimit). */
    RunStatus classification = RunStatus::StepLimit;
    /** One-line human summary of the outcome. */
    std::string summary;
    /**
     * For deadlocks: the blocking chain, one edge per line, naming the
     * blocked PEs and the queues they wait on. Empty otherwise.
     */
    std::vector<std::string> waitChain;
    /** Names of agents blocked at the end of the run (diagnostics). */
    std::vector<std::string> blockedAgents;

    bool operator==(const HangReport &) const = default;
};

/**
 * Classify a quiescent fabric from its wait-for graph: Deadlock when a
 * wait cycle through a blocked agent exists, Quiescent otherwise (the
 * report still lists starved agents, if any).
 */
HangReport classifyQuiescence(const WaitForGraph &graph);

/**
 * Classify a run that exhausted its cycle budget. @p silentCycles is
 * how long the fabric has been active without any token movement or
 * retirement progress; at or beyond @p window that is a livelock.
 */
HangReport classifyStepLimit(Cycle silentCycles, Cycle window);

} // namespace tia

#endif // TIA_SIM_HANG_DIAGNOSIS_HH
