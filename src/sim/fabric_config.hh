/**
 * @file
 * Declarative wiring of a spatial fabric: PEs, channels, memory ports.
 *
 * A FabricConfig is the C++ analogue of the paper toolchain's array
 * configuration: it says how many PEs exist, which channels connect
 * which PE ports, which channels terminate at memory read/write ports,
 * and what initial register state each PE starts with. Both the
 * functional and the cycle-accurate fabrics consume the same config,
 * which is what makes the functional-vs-cycle equivalence tests
 * meaningful.
 */

#ifndef TIA_SIM_FABRIC_CONFIG_HH
#define TIA_SIM_FABRIC_CONFIG_HH

#include <cstdint>
#include <vector>

#include "core/logging.hh"
#include "core/params.hh"
#include "core/types.hh"

namespace tia {

/** Sentinel for an unconnected PE port. */
inline constexpr int kUnbound = -1;

/** A memory read port: addresses arrive on one channel, data leaves on another. */
struct ReadPortSpec
{
    unsigned addrChannel;
    unsigned dataChannel;
};

/** A memory write port: paired address and data channels. */
struct WritePortSpec
{
    unsigned addrChannel;
    unsigned dataChannel;
};

/** Complete wiring description of a fabric. */
struct FabricConfig
{
    ArchParams params;
    unsigned numPes = 1;
    unsigned numChannels = 0;
    /** Memory response latency in cycles (4 on the paper's test system). */
    unsigned memLatency = 4;
    /** Data memory size in words. */
    std::size_t memoryWords = 65536;

    /** inputChannel[pe][port] = channel index or kUnbound. */
    std::vector<std::vector<int>> inputChannel;
    /** outputChannel[pe][port] = channel index or kUnbound. */
    std::vector<std::vector<int>> outputChannel;

    std::vector<ReadPortSpec> readPorts;
    std::vector<WritePortSpec> writePorts;

    /** Initial register file contents per PE (missing entries are 0). */
    std::vector<std::vector<Word>> initialRegs;
    /** Initial predicate state per PE (default all clear). */
    std::vector<std::uint64_t> initialPreds;

    /** Validate wiring: ranges, single producer / single consumer. */
    void validate() const;
};

/** Convenience builder for fabric configurations. */
class FabricBuilder
{
  public:
    explicit FabricBuilder(const ArchParams &params, unsigned num_pes)
    {
        config_.params = params;
        config_.numPes = num_pes;
        config_.inputChannel.assign(
            num_pes, std::vector<int>(params.numInputQueues, kUnbound));
        config_.outputChannel.assign(
            num_pes, std::vector<int>(params.numOutputQueues, kUnbound));
        config_.initialRegs.assign(num_pes, {});
        config_.initialPreds.assign(num_pes, 0);
    }

    /** Allocate a fresh channel and return its index. */
    unsigned
    newChannel()
    {
        return config_.numChannels++;
    }

    /** Connect PE @p producer output port to PE @p consumer input port. */
    unsigned
    connect(unsigned producer, unsigned out_port, unsigned consumer,
            unsigned in_port)
    {
        const unsigned ch = newChannel();
        bindOutput(producer, out_port, ch);
        bindInput(consumer, in_port, ch);
        return ch;
    }

    void
    bindInput(unsigned pe, unsigned port, unsigned channel)
    {
        config_.inputChannel.at(pe).at(port) = static_cast<int>(channel);
    }

    void
    bindOutput(unsigned pe, unsigned port, unsigned channel)
    {
        config_.outputChannel.at(pe).at(port) = static_cast<int>(channel);
    }

    /**
     * Attach a memory read port: PE @p pe sends addresses from output
     * port @p addr_out and receives data on input port @p data_in.
     */
    void
    addReadPort(unsigned pe, unsigned addr_out, unsigned data_in)
    {
        const unsigned addr_ch = newChannel();
        const unsigned data_ch = newChannel();
        bindOutput(pe, addr_out, addr_ch);
        bindInput(pe, data_in, data_ch);
        config_.readPorts.push_back({addr_ch, data_ch});
    }

    /**
     * Attach a memory write port: PE @p pe sends addresses from
     * @p addr_out and data words from @p data_out.
     */
    void
    addWritePort(unsigned pe, unsigned addr_out, unsigned data_out)
    {
        addWritePortSplit(pe, addr_out, pe, data_out);
    }

    /**
     * Attach a memory write port whose address and data streams come
     * from different PEs (e.g. the paper's `stream` benchmark, where
     * one PE produces store indices and another store values).
     */
    void
    addWritePortSplit(unsigned addr_pe, unsigned addr_out,
                      unsigned data_pe, unsigned data_out)
    {
        const unsigned addr_ch = newChannel();
        const unsigned data_ch = newChannel();
        bindOutput(addr_pe, addr_out, addr_ch);
        bindOutput(data_pe, data_out, data_ch);
        config_.writePorts.push_back({addr_ch, data_ch});
    }

    void
    setInitialRegs(unsigned pe, std::vector<Word> regs)
    {
        fatalIf(regs.size() > config_.params.numRegs,
                "initial register set larger than the register file");
        config_.initialRegs.at(pe) = std::move(regs);
    }

    void
    setInitialPreds(unsigned pe, std::uint64_t preds)
    {
        config_.initialPreds.at(pe) = preds;
    }

    void setMemLatency(unsigned latency) { config_.memLatency = latency; }
    void setMemoryWords(std::size_t words) { config_.memoryWords = words; }

    /** Finalize and validate. */
    FabricConfig
    build() const
    {
        config_.validate();
        return config_;
    }

  private:
    FabricConfig config_;
};

} // namespace tia

#endif // TIA_SIM_FABRIC_CONFIG_HH
