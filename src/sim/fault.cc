#include "sim/fault.hh"

#include <cmath>
#include <sstream>

#include "core/logging.hh"

namespace tia {

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::Drop:
        return "drop";
      case FaultClass::Duplicate:
        return "dup";
      case FaultClass::Corrupt:
        return "corrupt";
      case FaultClass::StuckFull:
        return "stuckfull";
      case FaultClass::StuckEmpty:
        return "stuckempty";
      case FaultClass::Mispredict:
        return "mispredict";
      case FaultClass::MemLatency:
        return "memspike";
    }
    return "?";
}

namespace {

const char *
sitePrefix(FaultSite site)
{
    switch (site) {
      case FaultSite::Channel:
        return "ch";
      case FaultSite::Pe:
        return "pe";
      case FaultSite::ReadPort:
        return "rp";
    }
    return "?";
}

FaultSite
requiredSite(FaultClass cls)
{
    switch (cls) {
      case FaultClass::Mispredict:
        return FaultSite::Pe;
      case FaultClass::MemLatency:
        return FaultSite::ReadPort;
      default:
        return FaultSite::Channel;
    }
}

/** Trim ASCII whitespace from both ends. */
std::string
trimmed(const std::string &text)
{
    std::size_t begin = text.find_first_not_of(" \t\n\r");
    if (begin == std::string::npos)
        return "";
    std::size_t end = text.find_last_not_of(" \t\n\r");
    return text.substr(begin, end - begin + 1);
}

} // namespace

std::string
FaultEvent::name() const
{
    std::ostringstream os;
    os << faultClassName(cls) << ':' << sitePrefix(site) << index << '@';
    if (probability >= 0.0) {
        os << 'p' << probability;
    } else {
        os << 'c' << start;
        if (length > 0)
            os << '+' << length;
    }
    if (cls == FaultClass::Corrupt && mask != 0)
        os << ",mask=0x" << std::hex << mask << std::dec;
    if (cls == FaultClass::MemLatency)
        os << ",extra=" << extra;
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::stringstream stream(spec);
    std::string entry;
    while (std::getline(stream, entry, ';')) {
        entry = trimmed(entry);
        if (entry.empty())
            continue;
        if (entry.rfind("seed=", 0) == 0) {
            plan.seed = std::stoull(entry.substr(5), nullptr, 0);
            continue;
        }

        FaultEvent event;
        const auto colon = entry.find(':');
        fatalIf(colon == std::string::npos, "fault event \"", entry,
                "\" lacks a CLASS:SITE separator");
        const std::string cls_name = entry.substr(0, colon);
        bool found = false;
        for (FaultClass cls :
             {FaultClass::Drop, FaultClass::Duplicate, FaultClass::Corrupt,
              FaultClass::StuckFull, FaultClass::StuckEmpty,
              FaultClass::Mispredict, FaultClass::MemLatency}) {
            if (cls_name == faultClassName(cls)) {
                event.cls = cls;
                found = true;
                break;
            }
        }
        fatalIf(!found, "unknown fault class \"", cls_name, "\"");
        event.site = requiredSite(event.cls);

        const auto at = entry.find('@', colon);
        fatalIf(at == std::string::npos, "fault event \"", entry,
                "\" lacks an @TRIGGER");
        const std::string site_text = entry.substr(colon + 1, at - colon - 1);
        const std::string prefix = sitePrefix(event.site);
        fatalIf(site_text.rfind(prefix, 0) != 0, "fault class \"", cls_name,
                "\" wants a ", prefix, "N site, got \"", site_text, "\"");
        event.index = static_cast<unsigned>(
            std::stoul(site_text.substr(prefix.size())));

        // TRIGGER[,KEY=VALUE...]
        std::string rest = entry.substr(at + 1);
        std::vector<std::string> parts;
        std::stringstream rest_stream(rest);
        std::string part;
        while (std::getline(rest_stream, part, ','))
            parts.push_back(trimmed(part));
        fatalIf(parts.empty(), "fault event \"", entry, "\" has no trigger");

        const std::string &trigger = parts[0];
        fatalIf(trigger.empty(), "fault event \"", entry,
                "\" has an empty trigger");
        if (trigger[0] == 'p') {
            event.probability = std::stod(trigger.substr(1));
            fatalIf(event.probability < 0.0 || event.probability > 1.0,
                    "fault probability must lie in [0, 1], got ",
                    event.probability);
        } else if (trigger[0] == 'c') {
            event.probability = -1.0;
            const auto plus = trigger.find('+');
            if (plus == std::string::npos) {
                event.start = std::stoull(trigger.substr(1));
                event.length = 0;
            } else {
                event.start = std::stoull(trigger.substr(1, plus - 1));
                event.length = std::stoull(trigger.substr(plus + 1));
            }
        } else {
            fatal("fault trigger \"", trigger,
                  "\" must be pPROB or cSTART[+LEN]");
        }

        for (std::size_t i = 1; i < parts.size(); ++i) {
            const auto eq = parts[i].find('=');
            fatalIf(eq == std::string::npos, "malformed fault option \"",
                    parts[i], "\"");
            const std::string key = parts[i].substr(0, eq);
            const std::string value = parts[i].substr(eq + 1);
            if (key == "mask") {
                event.mask =
                    static_cast<Word>(std::stoul(value, nullptr, 0));
            } else if (key == "extra") {
                event.extra =
                    static_cast<unsigned>(std::stoul(value, nullptr, 0));
            } else {
                fatal("unknown fault option \"", key, "\"");
            }
        }
        plan.events.push_back(event);
    }
    return plan;
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    for (const auto &event : events)
        os << ';' << event.name();
    return os.str();
}

std::uint64_t
FaultStats::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &line : lines)
        total += line.fired;
    return total;
}

std::string
FaultStats::summary() const
{
    std::ostringstream os;
    for (const auto &line : lines) {
        os << line.name << ": fired " << line.fired << " (declined "
           << line.declined << ")\n";
    }
    return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan))
{
    rngState_ = plan_.seed ? plan_.seed : 0x9e3779b97f4a7c15ull;
    for (const auto &event : plan_.events)
        stats_.lines.push_back({event.name(), 0, 0});
    stuckActive_.assign(plan_.events.size(), false);
}

std::uint64_t
FaultInjector::nextRandom()
{
    // xorshift64*: cheap, full-period, and state-deterministic.
    rngState_ ^= rngState_ >> 12;
    rngState_ ^= rngState_ << 25;
    rngState_ ^= rngState_ >> 27;
    return rngState_ * 0x2545F4914F6CDD1Dull;
}

double
FaultInjector::uniform()
{
    return static_cast<double>(nextRandom() >> 11) * 0x1.0p-53;
}

bool
FaultInjector::rolls(std::size_t eventIndex)
{
    const FaultEvent &event = plan_.events[eventIndex];
    bool fire;
    if (event.probability >= 0.0) {
        fire = uniform() < event.probability;
    } else {
        fire = now_ >= event.start &&
               (event.length == 0 || now_ < event.start + event.length);
    }
    if (fire)
        ++stats_.lines[eventIndex].fired;
    else
        ++stats_.lines[eventIndex].declined;
    return fire;
}

void
FaultInjector::beginCycle(Cycle now)
{
    now_ = now;
    // Stuck-status verdicts are queried many times per cycle from
    // const context; decide them once per cycle here so the number of
    // status queries cannot perturb the random sequence.
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        if (event.cls != FaultClass::StuckFull &&
            event.cls != FaultClass::StuckEmpty) {
            continue;
        }
        stuckActive_[i] = rolls(i);
    }
}

ChannelFaultHook::PushAction
FaultInjector::onPush(unsigned channel, Token &token)
{
    auto action = PushAction::Keep;
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        if (event.site != FaultSite::Channel || event.index != channel)
            continue;
        switch (event.cls) {
          case FaultClass::Corrupt:
            if (rolls(i)) {
                Word mask = event.mask;
                if (mask == 0) {
                    mask = static_cast<Word>(nextRandom());
                    if (mask == 0)
                        mask = 1;
                }
                token.data ^= mask;
            }
            break;
          case FaultClass::Drop:
            if (action == PushAction::Keep && rolls(i))
                action = PushAction::Drop;
            break;
          case FaultClass::Duplicate:
            if (action == PushAction::Keep && rolls(i))
                action = PushAction::Duplicate;
            break;
          default:
            break;
        }
    }
    return action;
}

bool
FaultInjector::stuckEmpty(unsigned channel) const
{
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        if (event.cls == FaultClass::StuckEmpty &&
            event.index == channel && stuckActive_[i]) {
            return true;
        }
    }
    return false;
}

bool
FaultInjector::stuckFull(unsigned channel) const
{
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        if (event.cls == FaultClass::StuckFull && event.index == channel &&
            stuckActive_[i]) {
            return true;
        }
    }
    return false;
}

bool
FaultInjector::flipPrediction(unsigned pe)
{
    bool flip = false;
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        if (event.cls == FaultClass::Mispredict && event.index == pe &&
            rolls(i)) {
            flip = !flip; // Two stacked flips cancel, as in hardware.
        }
    }
    return flip;
}

unsigned
FaultInjector::extraReadLatency(unsigned port)
{
    unsigned extra = 0;
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        if (event.cls == FaultClass::MemLatency && event.index == port &&
            rolls(i)) {
            extra += event.extra;
        }
    }
    return extra;
}

} // namespace tia
