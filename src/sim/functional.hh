/**
 * @file
 * Functional (instruction-at-a-time) simulator.
 *
 * Plays the role of the Python functional ISA simulator in the paper's
 * toolchain (Figure 1): it executes triggered instructions atomically
 * with no pipeline, no hazards and no memory latency, and is the golden
 * reference against which every pipelined microarchitecture is checked.
 */

#ifndef TIA_SIM_FUNCTIONAL_HH
#define TIA_SIM_FUNCTIONAL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/program.hh"
#include "sim/fabric_config.hh"
#include "sim/memory.hh"
#include "sim/queue.hh"
#include "sim/scheduler.hh"

namespace tia {

/** Architectural state and atomic executor for a single triggered PE. */
class FunctionalPe
{
  public:
    /**
     * @param params  architecture parameters.
     * @param program this PE's priority-ordered instruction list.
     */
    FunctionalPe(const ArchParams &params,
                 std::vector<Instruction> program);

    /** Bind input port @p port to @p queue (consumer side). */
    void bindInput(unsigned port, TaggedQueue *queue);
    /** Bind output port @p port to @p queue (producer side). */
    void bindOutput(unsigned port, TaggedQueue *queue);

    /** Preload registers (ascending from %r0). */
    void setRegs(const std::vector<Word> &values);
    /** Preload predicate state. */
    void setPreds(std::uint64_t preds) { preds_ = preds; }

    /**
     * Attempt to trigger and execute one instruction atomically.
     * @return true if an instruction fired.
     */
    bool step();

    bool halted() const { return halted_; }
    std::uint64_t dynamicInstructions() const { return retired_; }
    /** Dynamic count of datapath predicate writes ("branches"). */
    std::uint64_t predicateWrites() const { return predWrites_; }

    std::uint64_t preds() const { return preds_; }
    const std::vector<Word> &regs() const { return regs_; }
    const std::vector<Word> &scratchpad() const { return scratchpad_; }

  private:
    friend class FunctionalQueueView;

    Word readSource(const Source &src, Word imm) const;
    void executeDatapath(const Instruction &inst);

    const ArchParams params_;
    std::vector<Instruction> program_;
    std::vector<Word> regs_;
    std::vector<Word> scratchpad_;
    std::uint64_t preds_ = 0;
    bool halted_ = false;
    std::uint64_t retired_ = 0;
    std::uint64_t predWrites_ = 0;

    std::vector<TaggedQueue *> inputs_;
    std::vector<TaggedQueue *> outputs_;
};

/** Completion status of a fabric run. */
enum class RunStatus
{
    Halted,      ///< Every PE executed a halt.
    Quiescent,   ///< Nothing can progress; no wait cycle found (done or starved).
    StepLimit,   ///< The step budget was exhausted.
    Deadlock,    ///< Quiescent with a cycle in the wait-for graph.
    Livelock,    ///< Active to the step limit without observable progress.
    Cancelled,   ///< Stopped early by a cooperative stop token (exec/stop_token.hh).
};

/** Human-readable name for a RunStatus. */
inline const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Halted:
        return "halted";
      case RunStatus::Quiescent:
        return "quiescent";
      case RunStatus::StepLimit:
        return "step limit";
      case RunStatus::Deadlock:
        return "deadlock";
      case RunStatus::Livelock:
        return "livelock";
      case RunStatus::Cancelled:
        return "cancelled";
    }
    return "?";
}

/** A full functional fabric: PEs + channels + memory ports. */
class FunctionalFabric
{
  public:
    FunctionalFabric(const FabricConfig &config, const Program &program);

    /**
     * Run until halt, quiescence, or @p max_steps scheduler passes.
     */
    RunStatus run(std::uint64_t max_steps = 10'000'000);

    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

    FunctionalPe &pe(unsigned index) { return *pes_.at(index); }
    const FunctionalPe &pe(unsigned index) const { return *pes_.at(index); }
    unsigned numPes() const { return static_cast<unsigned>(pes_.size()); }

  private:
    FabricConfig config_;
    Memory memory_;
    std::vector<std::unique_ptr<TaggedQueue>> channels_;
    std::vector<std::unique_ptr<FunctionalPe>> pes_;
    std::vector<std::unique_ptr<MemoryReadPort>> readPorts_;
    std::vector<std::unique_ptr<MemoryWritePort>> writePorts_;
};

} // namespace tia

#endif // TIA_SIM_FUNCTIONAL_HH
