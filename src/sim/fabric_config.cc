#include "sim/fabric_config.hh"

#include <map>

namespace tia {

void
FabricConfig::validate() const
{
    params.validate();
    fatalIf(numPes == 0, "fabric needs at least one PE");
    fatalIf(inputChannel.size() != numPes ||
                outputChannel.size() != numPes,
            "fabric wiring tables must have one row per PE");

    // Each channel must have exactly one producer and one consumer.
    std::map<int, unsigned> producers;
    std::map<int, unsigned> consumers;

    for (unsigned pe = 0; pe < numPes; ++pe) {
        fatalIf(inputChannel[pe].size() != params.numInputQueues,
                "PE ", pe, " input table size mismatch");
        fatalIf(outputChannel[pe].size() != params.numOutputQueues,
                "PE ", pe, " output table size mismatch");
        for (int ch : inputChannel[pe]) {
            if (ch == kUnbound)
                continue;
            fatalIf(ch < 0 || static_cast<unsigned>(ch) >= numChannels,
                    "PE ", pe, " input bound to nonexistent channel ", ch);
            ++consumers[ch];
        }
        for (int ch : outputChannel[pe]) {
            if (ch == kUnbound)
                continue;
            fatalIf(ch < 0 || static_cast<unsigned>(ch) >= numChannels,
                    "PE ", pe, " output bound to nonexistent channel ", ch);
            ++producers[ch];
        }
    }
    for (const auto &port : readPorts) {
        fatalIf(port.addrChannel >= numChannels ||
                    port.dataChannel >= numChannels,
                "read port bound to nonexistent channel");
        ++consumers[static_cast<int>(port.addrChannel)];
        ++producers[static_cast<int>(port.dataChannel)];
    }
    for (const auto &port : writePorts) {
        fatalIf(port.addrChannel >= numChannels ||
                    port.dataChannel >= numChannels,
                "write port bound to nonexistent channel");
        ++consumers[static_cast<int>(port.addrChannel)];
        ++consumers[static_cast<int>(port.dataChannel)];
    }

    for (unsigned ch = 0; ch < numChannels; ++ch) {
        const auto p = producers.find(static_cast<int>(ch));
        const auto c = consumers.find(static_cast<int>(ch));
        fatalIf(p == producers.end(), "channel ", ch, " has no producer");
        fatalIf(c == consumers.end(), "channel ", ch, " has no consumer");
        fatalIf(p->second != 1, "channel ", ch, " has ", p->second,
                " producers (exactly one required)");
        fatalIf(c->second != 1, "channel ", ch, " has ", c->second,
                " consumers (exactly one required)");
    }

    fatalIf(initialRegs.size() > numPes,
            "more initial register sets than PEs");
    for (const auto &regs : initialRegs) {
        fatalIf(regs.size() > params.numRegs,
                "initial register set larger than the register file");
    }
    for (std::uint64_t preds : initialPreds) {
        const std::uint64_t mask =
            params.numPreds >= 64
                ? ~std::uint64_t{0}
                : ((std::uint64_t{1} << params.numPreds) - 1);
        fatalIf((preds & ~mask) != 0,
                "initial predicate state uses nonexistent predicates");
    }
}

} // namespace tia
