#include "sim/mesh.hh"

#include "core/logging.hh"

namespace tia {

MeshBuilder::MeshBuilder(const ArchParams &params, unsigned rows,
                         unsigned cols)
    : FabricBuilder(params, rows * cols), rows_(rows), cols_(cols)
{
    fatalIf(rows == 0 || cols == 0, "mesh dimensions must be positive");
    fatalIf(params.numInputQueues < 4 || params.numOutputQueues < 4,
            "a mesh needs at least four input and output queues per PE");

    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned c = 0; c < cols; ++c) {
            // Eastward and westward links to the right neighbor.
            if (c + 1 < cols) {
                connect(pe(r, c), kEast, pe(r, c + 1), kWest);
                connect(pe(r, c + 1), kWest, pe(r, c), kEast);
            }
            // Southward and northward links to the neighbor below.
            if (r + 1 < rows) {
                connect(pe(r, c), kSouth, pe(r + 1, c), kNorth);
                connect(pe(r + 1, c), kNorth, pe(r, c), kSouth);
            }
        }
    }
}

void
MeshBuilder::requireEdge(unsigned row, unsigned col, MeshPort port) const
{
    fatalIf(row >= rows_ || col >= cols_, "mesh coordinate out of range");
    const bool is_edge = (port == kNorth && row == 0) ||
                         (port == kSouth && row == rows_ - 1) ||
                         (port == kWest && col == 0) ||
                         (port == kEast && col == cols_ - 1);
    fatalIf(!is_edge, "port does not face the mesh edge at (", row, ", ",
            col, ")");
}

} // namespace tia
