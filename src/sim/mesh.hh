/**
 * @file
 * Mesh fabric builder: the paper's FPGA prototype arranges PEs "in
 * small-scale spatial arrays (maximum 4x4 to fit on a Zynq SoC-FPGA)"
 * with nearest-neighbor channels. This helper wires a rows x cols grid
 * with bidirectional north/east/south/west links using the port
 * convention below, leaving edge ports unbound for memory ports or
 * external I/O.
 *
 * Port convention (both inputs and outputs):
 *   0 = north, 1 = east, 2 = south, 3 = west.
 */

#ifndef TIA_SIM_MESH_HH
#define TIA_SIM_MESH_HH

#include "sim/fabric_config.hh"

namespace tia {

/** Mesh direction / port index. */
enum MeshPort : unsigned
{
    kNorth = 0,
    kEast = 1,
    kSouth = 2,
    kWest = 3,
};

/** PE index of grid position (row, col) in a rows x cols mesh. */
constexpr unsigned
meshPe(unsigned cols, unsigned row, unsigned col)
{
    return row * cols + col;
}

/**
 * A FabricBuilder pre-wired as a rows x cols nearest-neighbor mesh.
 *
 * Every interior link is built in both directions: PE (r,c)'s east
 * output feeds PE (r,c+1)'s west input and vice versa; likewise
 * north/south. Edge-facing ports stay unbound so callers can attach
 * memory read/write ports or leave them idle.
 */
class MeshBuilder : public FabricBuilder
{
  public:
    MeshBuilder(const ArchParams &params, unsigned rows, unsigned cols);

    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }

    /** PE index at (row, col). */
    unsigned
    pe(unsigned row, unsigned col) const
    {
        return meshPe(cols_, row, col);
    }

    /**
     * Attach a memory read port to an edge PE: addresses leave on the
     * edge-facing output @p port, data returns on the matching input.
     */
    void
    addEdgeReadPort(unsigned row, unsigned col, MeshPort port)
    {
        requireEdge(row, col, port);
        addReadPort(pe(row, col), port, port);
    }

    /**
     * Attach a memory write port to an edge PE: the edge-facing
     * output @p addr_port carries addresses; @p data_port (any other
     * unbound output, conventionally the opposite edge or an unused
     * direction) carries data.
     */
    void
    addEdgeWritePort(unsigned row, unsigned col, MeshPort addr_port,
                     unsigned data_port)
    {
        requireEdge(row, col, addr_port);
        addWritePort(pe(row, col), addr_port, data_port);
    }

  private:
    void requireEdge(unsigned row, unsigned col, MeshPort port) const;

    unsigned rows_;
    unsigned cols_;
};

} // namespace tia

#endif // TIA_SIM_MESH_HH
