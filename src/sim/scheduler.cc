#include "sim/scheduler.hh"

namespace tia {

bool
queueConditionsHold(const Instruction &inst, const QueueStatusView &view)
{
    // Explicit tag checks in the trigger.
    for (const auto &check : inst.trigger.queueChecks) {
        if (view.inputOccupancy(check.queue) == 0)
            return false;
        const auto tag = view.inputHeadTag(check.queue);
        if (!tag.has_value())
            return false;
        const bool match = *tag == check.tag;
        if (match == check.negate)
            return false;
    }
    // Implicit operand availability.
    for (const auto &src : inst.srcs) {
        if (src.type == SrcType::InputQueue &&
            view.inputOccupancy(src.index) == 0) {
            return false;
        }
    }
    // Implicit dequeue availability.
    for (auto q : inst.dequeues) {
        if (view.inputOccupancy(q) == 0)
            return false;
    }
    // Destination space.
    if (inst.dst.type == DstType::OutputQueue &&
        !view.outputHasSpace(inst.dst.index)) {
        return false;
    }
    return true;
}

ScheduleResult
schedule(const std::vector<Instruction> &instructions, std::uint64_t preds,
         std::uint64_t pendingPreds, const QueueStatusView &view)
{
    for (unsigned i = 0; i < instructions.size(); ++i) {
        const Instruction &inst = instructions[i];
        if (!inst.trigger.valid)
            continue;

        // A trigger whose queue conditions fail cannot fire this cycle
        // no matter how the predicates resolve; skip it.
        if (!queueConditionsHold(inst, view))
            continue;

        const std::uint64_t cares = inst.trigger.predOn |
                                    inst.trigger.predOff;
        const std::uint64_t resolved = ~pendingPreds;

        // Definitely fails on a *resolved* predicate bit: skip.
        const std::uint64_t on_fail = inst.trigger.predOn & ~preds;
        const std::uint64_t off_fail = inst.trigger.predOff & preds;
        if (((on_fail | off_fail) & resolved) != 0)
            continue;

        // Any remaining required bit that is pending makes the outcome
        // unknown; priority forbids issuing anything lower.
        if ((cares & pendingPreds) != 0)
            return {ScheduleOutcome::BlockedOnPredicate, i};

        return {ScheduleOutcome::Fire, i};
    }
    return {ScheduleOutcome::None, 0};
}

} // namespace tia
