/**
 * @file
 * Deterministic fault injection for the cycle-accurate fabric.
 *
 * The pipelined PE variants exist because hazards (unresolved
 * predicates, stale queue status, register dependences) open stall and
 * mis-speculation windows; this module provokes those windows on
 * demand. A FaultPlan is a seeded list of named events — channel push
 * drops/duplicates/corruptions, stuck-full / stuck-empty queue status
 * (stressing the +Q effective-status logic), forced predicate
 * mispredictions (stressing the +P flush/recovery paths) and memory
 * read-latency spikes — and a FaultInjector replays the plan
 * bit-identically for a given seed. Every injection site is a named,
 * counted event so runs can be compared and regressions diagnosed.
 */

#ifndef TIA_SIM_FAULT_HH
#define TIA_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"
#include "sim/queue.hh"

namespace tia {

/** The injectable fault classes. */
enum class FaultClass
{
    Drop,       ///< Lose a pushed token (channel site).
    Duplicate,  ///< Deliver a pushed token twice (channel site).
    Corrupt,    ///< Flip data bits of a pushed token (channel site).
    StuckFull,  ///< Channel status reads as full (channel site).
    StuckEmpty, ///< Channel status reads as empty (channel site).
    Mispredict, ///< Invert a predicate prediction (PE site).
    MemLatency, ///< Add latency to a memory read (read-port site).
};

/** What kind of agent an event targets. */
enum class FaultSite
{
    Channel,  ///< "chN" — a TaggedQueue in the fabric.
    Pe,       ///< "peN" — a PipelinedPe.
    ReadPort, ///< "rpN" — a MemoryReadPort.
};

/** @return the spec keyword for @p cls ("drop", "stuckfull", ...). */
const char *faultClassName(FaultClass cls);

/**
 * One fault event. Triggered either probabilistically (each
 * opportunity fires with @ref probability) or by cycle window
 * (@ref start for @ref length cycles; length 0 means forever).
 */
struct FaultEvent
{
    FaultClass cls = FaultClass::Drop;
    FaultSite site = FaultSite::Channel;
    unsigned index = 0; ///< Channel / PE / read-port number.

    /** Per-opportunity firing probability; negative = window mode. */
    double probability = -1.0;
    Cycle start = 0;  ///< Window start (window mode).
    Cycle length = 0; ///< Window length in cycles; 0 = unbounded.

    Word mask = 0;      ///< Corruption XOR mask (0 = random nonzero).
    unsigned extra = 8; ///< Added cycles for MemLatency events.

    /** Canonical spec form, e.g. "drop:ch0@p0.01". */
    std::string name() const;
};

/**
 * A seeded, ordered set of fault events.
 *
 * Text form: semicolon-separated entries, e.g.
 *   "seed=42;drop:ch0@p0.01;stuckfull:ch1@c100+50;mispredict:pe0@p1;
 *    corrupt:ch2@p0.005,mask=0xff;memspike:rp0@p0.1,extra=16"
 * An entry is CLASS:SITE@TRIGGER[,KEY=VALUE...]; TRIGGER is either
 * pP (probability P per opportunity) or cS+L (cycles [S, S+L), +L
 * optional meaning "forever").
 */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Parse the text form. @throws FatalError on malformed specs. */
    static FaultPlan parse(const std::string &spec);

    /** Canonical text form (reparseable). */
    std::string toString() const;
};

/** Per-event injection counts; equality-comparable for determinism tests. */
struct FaultStats
{
    struct Line
    {
        std::string name;
        std::uint64_t fired = 0;     ///< Injections performed.
        std::uint64_t declined = 0;  ///< Opportunities that rolled no.

        bool operator==(const Line &) const = default;
    };

    std::vector<Line> lines; ///< Parallel to FaultPlan::events.

    std::uint64_t totalFired() const;
    std::string summary() const;

    bool operator==(const FaultStats &) const = default;
};

/**
 * Executes a FaultPlan against a running fabric. The CycleFabric
 * installs one injector as the ChannelFaultHook of every channel and
 * as the prediction/latency hook of every PE and read port, and calls
 * beginCycle() once per simulated cycle; with a fixed seed the whole
 * injection sequence is a pure function of the simulation, so two
 * identical runs produce identical faults and identical stats.
 */
class FaultInjector : public ChannelFaultHook
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /** Advance the notion of "current cycle"; rolls stuck-status dice. */
    void beginCycle(Cycle now);

    // ChannelFaultHook interface (drop / duplicate / corrupt / stuck).
    PushAction onPush(unsigned channel, Token &token) override;
    bool stuckEmpty(unsigned channel) const override;
    bool stuckFull(unsigned channel) const override;

    /** PE hook: invert this cycle's prediction on PE @p pe? */
    bool flipPrediction(unsigned pe);

    /** Read-port hook: extra latency for the request accepted now. */
    unsigned extraReadLatency(unsigned port);

    const FaultPlan &plan() const { return plan_; }
    const FaultStats &stats() const { return stats_; }

  private:
    /** Does window/probability event @p e apply to this opportunity? */
    bool rolls(std::size_t eventIndex);

    std::uint64_t nextRandom();
    double uniform();

    FaultPlan plan_;
    FaultStats stats_;
    Cycle now_ = 0;
    std::uint64_t rngState_;
    /** Per-event "stuck active this cycle" cache (probability mode). */
    std::vector<bool> stuckActive_;
};

} // namespace tia

#endif // TIA_SIM_FAULT_HH
