/**
 * @file
 * Word-addressable data memory and its queue-endpoint access ports.
 *
 * The paper's architecture performs main-memory operations "explicitly
 * via the queues using read and write ports as endpoints for designated
 * channels" (Section 2.2). A read port consumes address tokens from one
 * channel and produces data tokens on another after a fixed latency
 * (4 cycles on the paper's Zynq test system); the response tag echoes
 * the request tag so programs can thread semantic information through
 * memory. A write port consumes paired address and data tokens.
 */

#ifndef TIA_SIM_MEMORY_HH
#define TIA_SIM_MEMORY_HH

#include <algorithm>
#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "core/logging.hh"
#include "core/types.hh"
#include "sim/fault.hh"
#include "sim/queue.hh"

namespace tia {

/**
 * Flat word-addressable memory (addresses are word indices).
 *
 * Storage is chunked and allocated on first write: a fresh fabric pays
 * nothing for the address space it never touches, and reads of
 * untouched words return the architectural zero without backing store.
 * Sweeps construct thousands of fabrics whose workloads each use a
 * small footprint of a large memory; zero-filling it all up front
 * dominated fabric construction.
 */
class Memory
{
  public:
    explicit Memory(std::size_t words)
        : size_(words), chunks_((words + kChunkWords - 1) / kChunkWords)
    {
    }

    std::size_t size() const { return size_; }

    Word
    read(Word address) const
    {
        fatalIf(address >= size_, "memory read at ", address,
                " out of bounds (size ", size_, ")");
        const Word *chunk = chunks_[address / kChunkWords].get();
        return chunk != nullptr ? chunk[address % kChunkWords] : 0;
    }

    void
    write(Word address, Word value)
    {
        fatalIf(address >= size_, "memory write at ", address,
                " out of bounds (size ", size_, ")");
        auto &chunk = chunks_[address / kChunkWords];
        if (chunk == nullptr)
            chunk = std::make_unique<Word[]>(kChunkWords); // zero-filled
        chunk[address % kChunkWords] = value;
    }

    /** Full contents as a flat vector (tests / validation). */
    std::vector<Word>
    snapshot() const
    {
        std::vector<Word> words(size_, 0);
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            if (chunks_[c] == nullptr)
                continue;
            const std::size_t base = c * kChunkWords;
            const std::size_t count =
                std::min(kChunkWords, size_ - base);
            std::copy_n(chunks_[c].get(), count, words.begin() + base);
        }
        return words;
    }

    /** Words per allocation chunk (see chunkData). */
    static constexpr std::size_t chunkWords() { return kChunkWords; }

    /** Number of chunk slots covering the address space. */
    std::size_t numChunks() const { return chunks_.size(); }

    /**
     * Contents of chunk @p index, or nullptr if never written (all
     * zero). Lets the cache key hash a preload image in proportion to
     * its footprint instead of snapshotting the whole address space.
     */
    const Word *
    chunkData(std::size_t index) const
    {
        return chunks_[index].get();
    }

  private:
    /** One page of words per chunk. */
    static constexpr std::size_t kChunkWords = 1024;

    std::size_t size_;
    std::vector<std::unique_ptr<Word[]>> chunks_;
};

/**
 * Read port: address channel in, data channel out, pipelined with a
 * fixed response latency. Accepts one new request per cycle.
 */
class MemoryReadPort
{
  public:
    /**
     * @param latency end-to-end load latency in cycles, from the
     *        address token leaving the PE to the data token being
     *        trigger-visible. Two cycles are consumed by the request
     *        and response channel hops, the rest by the array itself.
     */
    MemoryReadPort(Memory &memory, TaggedQueue &addresses,
                   TaggedQueue &responses, unsigned latency)
        : memory_(memory), addresses_(addresses), responses_(responses),
          latency_(latency >= 2 ? latency - 2 : 0)
    {
    }

    /** Install a fault injector; @p id names this read port. */
    void
    setFaultInjector(FaultInjector *injector, unsigned id)
    {
        faultInjector_ = injector;
        portId_ = id;
    }

    /**
     * Advance one cycle at time @p now: retire due responses (in
     * order, when the response channel has space) and accept at most
     * one new request.
     */
    void
    step(Cycle now)
    {
        // Deliver the oldest due response if the output has room
        // (snapshot view: space present at the start of the cycle).
        if (!inFlight_.empty() && inFlight_.front().ready <= now &&
            responses_.snapshotSize() < responses_.capacity() &&
            !responses_.faultStuckFull()) {
            responses_.push(inFlight_.front().token);
            inFlight_.pop_front();
        }
        // Accept one request per cycle (snapshot view of availability).
        if (addresses_.snapshotSize() > 0 &&
            !addresses_.faultStuckEmpty()) {
            Token request = addresses_.pop();
            Token response{memory_.read(request.data), request.tag};
            unsigned extra = 0;
            if (faultInjector_)
                extra = faultInjector_->extraReadLatency(portId_);
            inFlight_.push_back({now + latency_ + extra, response});
        }
    }

    /** Functional-mode service: satisfy one request immediately. */
    bool
    serviceOne()
    {
        if (addresses_.empty() || responses_.size() >= responses_.capacity())
            return false;
        Token request = addresses_.pop();
        responses_.pushImmediate({memory_.read(request.data), request.tag});
        return true;
    }

    /**
     * True if requests are still being processed or waiting to be
     * accepted (pending addresses will be consumed next cycle, so the
     * fabric is not quiescent yet).
     */
    bool busy() const { return !inFlight_.empty() || !addresses_.empty(); }

  private:
    struct Response
    {
        Cycle ready;
        Token token;
    };

    Memory &memory_;
    TaggedQueue &addresses_;
    TaggedQueue &responses_;
    unsigned latency_;
    std::deque<Response> inFlight_;
    FaultInjector *faultInjector_ = nullptr;
    unsigned portId_ = 0;
};

/**
 * Write port: consumes one (address, data) token pair per cycle when
 * both channels have tokens available.
 */
class MemoryWritePort
{
  public:
    MemoryWritePort(Memory &memory, TaggedQueue &addresses,
                    TaggedQueue &data)
        : memory_(memory), addresses_(addresses), data_(data)
    {
    }

    /** Advance one cycle (snapshot view of availability). */
    void
    step(Cycle)
    {
        if (addresses_.snapshotSize() > 0 && data_.snapshotSize() > 0 &&
            !addresses_.faultStuckEmpty() && !data_.faultStuckEmpty()) {
            Token address = addresses_.pop();
            Token value = data_.pop();
            memory_.write(address.data, value.data);
            ++writesPerformed_;
        }
    }

    /** Functional-mode service: perform one write immediately. */
    bool
    serviceOne()
    {
        if (addresses_.empty() || data_.empty())
            return false;
        Token address = addresses_.pop();
        Token value = data_.pop();
        memory_.write(address.data, value.data);
        ++writesPerformed_;
        return true;
    }

    std::uint64_t writesPerformed() const { return writesPerformed_; }

    /**
     * True while complete (address, data) pairs are waiting: the port
     * will retire one next cycle, so the fabric is still draining.
     */
    bool busy() const { return !addresses_.empty() && !data_.empty(); }

  private:
    Memory &memory_;
    TaggedQueue &addresses_;
    TaggedQueue &data_;
    std::uint64_t writesPerformed_ = 0;
};

} // namespace tia

#endif // TIA_SIM_MEMORY_HH
