/**
 * @file
 * Assembler for the triggered-instruction assembly language.
 *
 * The surface syntax follows the paper's Section 2.2 example:
 *
 *     when %p == XXXX0000 with %i0.0, %i3.0:
 *         ult %p7, %i3, %i0; deq %i0, %i3; set %p = ZZZZ0001;
 *
 * Grammar summary:
 *
 *     program     := (".pe" NUM | ".def" NAME VALUE | instruction)*
 *     instruction := "when" "%p" "==" PATTERN [ "with" check+, ] ":"
 *                    op [operand,+] (";" clause)* ";"?
 *     check       := "%i" N "." ["!"] TAG
 *     clause      := "deq" "%i"N+,  |  "set" "%p" "=" PATTERN
 *     operand     := %rN | %iN | %oN "." TAG | %pN | immediate
 *     immediate   := ["#"] ["-"] (decimal | 0x hex) | 'c' | NAME (.def)
 *
 * Patterns are NPreds characters, most-significant predicate first;
 * '0'/'1' are required values, 'X'/'Z' (either case) are don't-cares in
 * triggers and keep-current in `set` clauses. Line comments start with
 * "//". The first operand of a result-producing operation is its
 * destination; remaining operands are sources.
 */

#ifndef TIA_CORE_ASSEMBLER_HH
#define TIA_CORE_ASSEMBLER_HH

#include <string>

#include "core/params.hh"
#include "core/program.hh"

namespace tia {

/**
 * Assemble source text into a Program.
 *
 * @param source assembly text (possibly multi-PE via ".pe N").
 * @param params parameter assignment (validated first).
 * @return the assembled, validated program.
 * @throws FatalError with file/line diagnostics on any syntax or
 *         constraint error.
 */
Program assemble(const std::string &source, const ArchParams &params);

/** Assemble with the default (paper Table 1) parameters. */
Program assemble(const std::string &source);

} // namespace tia

#endif // TIA_CORE_ASSEMBLER_HH
