/**
 * @file
 * Assembled multi-PE program container.
 */

#ifndef TIA_CORE_PROGRAM_HH
#define TIA_CORE_PROGRAM_HH

#include <string>
#include <vector>

#include "core/instruction.hh"
#include "core/params.hh"

namespace tia {

/**
 * An assembled program: one priority-ordered instruction list per PE.
 *
 * PE indices are logical; the fabric wiring (which PE talks to which
 * neighbor or memory port over which channel) is configured separately
 * when the program is loaded.
 */
struct Program
{
    ArchParams params;
    std::vector<std::vector<Instruction>> pes;

    /** @return number of PEs the program targets. */
    unsigned numPes() const { return static_cast<unsigned>(pes.size()); }

    /** @return total static instruction count across all PEs. */
    unsigned
    staticInstructions() const
    {
        unsigned count = 0;
        for (const auto &pe : pes)
            count += static_cast<unsigned>(pe.size());
        return count;
    }

    /** Validate every instruction and per-PE capacity. */
    void validate() const;

    /** Disassemble to assembly text (reassembles to an equal program). */
    std::string toString() const;
};

} // namespace tia

#endif // TIA_CORE_PROGRAM_HH
