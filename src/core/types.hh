/**
 * @file
 * Fundamental scalar types shared across the TIA libraries.
 */

#ifndef TIA_CORE_TYPES_HH
#define TIA_CORE_TYPES_HH

#include <cstdint>

namespace tia {

/** Architectural data word (Table 1: Word = 32 bits). */
using Word = std::uint32_t;

/** Signed view of an architectural word, for arithmetic comparisons. */
using SWord = std::int32_t;

/** Double-width word used by the two-word-product multiplier. */
using DWord = std::uint64_t;

/** Queue tag value (Table 1: TagWidth = 2 bits at default parameters). */
using Tag = std::uint8_t;

/** Simulation time measured in PE clock cycles. */
using Cycle = std::uint64_t;

/**
 * Default simulation budget shared by every run entry point
 * (FabricRunOptions, CycleRunOptions, tia-sim --max-cycles). A single
 * constant so the same workload cannot classify as a hang from one
 * entry point and complete from another.
 */
inline constexpr Cycle kDefaultMaxCycles = 100'000'000;

/**
 * Default quiescence/watchdog window: cycles without retirement or
 * agent activity before a fabric is declared quiescent, and, at the
 * cycle budget, without observable progress before a run is
 * classified as livelock.
 */
inline constexpr Cycle kDefaultQuiescenceWindow = 10'000;

} // namespace tia

#endif // TIA_CORE_TYPES_HH
