/**
 * @file
 * Decoded triggered-instruction representation.
 *
 * An instruction is a guarded atomic action (Section 2.1): a *trigger*
 * (guard) over predicate state and input-queue tag/occupancy, plus a
 * *datapath* operation with up to two sources, one destination, queue
 * dequeues and a trigger-time predicate update. The binary layout of
 * each field is given in paper Table 2 and implemented in encoding.hh.
 */

#ifndef TIA_CORE_INSTRUCTION_HH
#define TIA_CORE_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/opcode.hh"
#include "core/params.hh"
#include "core/types.hh"

namespace tia {

/** Source operand kinds (SrcTypes encoding, Table 2). */
enum class SrcType : std::uint8_t
{
    None = 0,
    Reg = 1,
    InputQueue = 2,
    Immediate = 3,
};

/** Destination kinds (DstTypes encoding, Table 2). */
enum class DstType : std::uint8_t
{
    None = 0,
    Reg = 1,
    OutputQueue = 2,
    Predicate = 3,
};

/** One input-queue condition within a trigger. */
struct QueueCheck
{
    std::uint8_t queue = 0; ///< Input queue index.
    Tag tag = 0;            ///< Reference tag.
    /**
     * When set, the condition is satisfied by a *non-matching* head tag
     * (the queue must still be non-empty); this is the NotTags bit used
     * for idioms such as "while the head is not the end-of-stream tag".
     */
    bool negate = false;

    bool operator==(const QueueCheck &) const = default;
};

/**
 * The guard of an instruction: required predicate on-set/off-set and
 * up to MaxCheck input-queue tag conditions.
 */
struct TriggerCondition
{
    bool valid = false;          ///< Valid bit; invalid slots never fire.
    std::uint64_t predOn = 0;    ///< Predicates that must be 1.
    std::uint64_t predOff = 0;   ///< Predicates that must be 0.
    std::vector<QueueCheck> queueChecks;

    bool operator==(const TriggerCondition &) const = default;
};

/** One source operand. Immediate sources read Instruction::imm. */
struct Source
{
    SrcType type = SrcType::None;
    std::uint8_t index = 0; ///< Register or input-queue index.

    bool operator==(const Source &) const = default;
};

/** The (single) destination operand. */
struct Destination
{
    DstType type = DstType::None;
    std::uint8_t index = 0; ///< Register, output queue or predicate index.

    bool operator==(const Destination &) const = default;
};

/** A fully decoded triggered instruction. */
struct Instruction
{
    TriggerCondition trigger;

    Op op = Op::Nop;
    std::array<Source, 2> srcs = {};
    Destination dst;
    Tag outTag = 0; ///< Tag attached when dst is an output queue.

    /** Input queues dequeued when the instruction executes (<= MaxDeq). */
    std::vector<std::uint8_t> dequeues;

    /** Trigger-time predicate update: bits forced high. */
    std::uint64_t predSet = 0;
    /** Trigger-time predicate update: bits forced low. */
    std::uint64_t predClear = 0;

    /** Full-word immediate (used by sources of type Immediate). */
    Word imm = 0;

    /** Source line for diagnostics (0 when synthesized in code). */
    unsigned line = 0;

    /** @return true if the datapath writes a predicate (a "branch"). */
    bool writesPredicate() const { return dst.type == DstType::Predicate; }

    /** @return true if the datapath enqueues onto an output queue. */
    bool enqueues() const { return dst.type == DstType::OutputQueue; }

    /** @return true if any input queue is dequeued. */
    bool hasDequeue() const { return !dequeues.empty(); }

    /**
     * @return true if the instruction has side effects that take effect
     * before retirement and therefore cannot issue during unconfirmed
     * speculation (Section 5.2): input dequeues and scratchpad writes.
     */
    bool
    hasPreRetirementSideEffect() const
    {
        return hasDequeue() || opInfo(op).writesScratchpad;
    }

    /** @return true if input queue @p q is read as a source operand. */
    bool
    readsInputQueue(unsigned q) const
    {
        for (const auto &src : srcs)
            if (src.type == SrcType::InputQueue && src.index == q)
                return true;
        return false;
    }

    /** @return true if input queue @p q is dequeued. */
    bool
    dequeuesQueue(unsigned q) const
    {
        for (auto d : dequeues)
            if (d == q)
                return true;
        return false;
    }

    /**
     * Check all architectural constraints against @p params.
     * @throws FatalError with a descriptive message on violation.
     */
    void validate(const ArchParams &params) const;

    /** Disassemble back to the assembly syntax (for tooling/tests). */
    std::string toString(const ArchParams &params) const;

    /** Structural equality; ignores the diagnostic line number. */
    bool operator==(const Instruction &other) const;
};

/** Most tag conditions a compiled TriggerDesc can carry inline. */
constexpr unsigned kTriggerDescMaxChecks = 8;

/**
 * A trigger compiled to flat bitmask form for the scheduler's
 * word-parallel fast path (see sim/scheduler.hh).
 *
 * All of an instruction's non-tag queue conditions — explicit trigger
 * occupancy checks, implicit input-queue source operands, implicit
 * dequeue availability and output-queue destination space — collapse
 * into two requirement masks that are tested with one AND/compare each
 * against per-cycle queue-status words. Only head-tag comparisons
 * remain per-condition, and an instruction has at most MaxCheck (2 at
 * the paper's parameters) of those.
 *
 * A TriggerDesc is immutable once compiled; PipelinedPe builds one per
 * instruction-store slot at construction.
 */
struct TriggerDesc
{
    bool valid = false;        ///< Valid bit; invalid slots never fire.
    std::uint64_t predOn = 0;  ///< Predicates that must be 1.
    std::uint64_t predOff = 0; ///< Predicates that must be 0.
    /** Input queues that must be (effectively) non-empty. */
    std::uint32_t inputNeed = 0;
    /** Output queues that must have space for one more token. */
    std::uint32_t outputNeed = 0;
    /** Head-tag conditions (queues here are also set in inputNeed). */
    std::uint8_t numChecks = 0;
    std::array<QueueCheck, kTriggerDescMaxChecks> checks{};
};

/**
 * Compile one instruction's trigger (plus its implicit queue
 * requirements) into mask form.
 * @throws FatalError if a queue index exceeds the 32-bit mask range or
 *         the tag conditions overflow kTriggerDescMaxChecks.
 */
TriggerDesc compileTriggerDesc(const Instruction &inst);

/** Compile a whole instruction store (one desc per slot, same order). */
std::vector<TriggerDesc>
compileTriggerDescs(const std::vector<Instruction> &program);

} // namespace tia

#endif // TIA_CORE_INSTRUCTION_HH
