/**
 * @file
 * The 42-operation (NOps = 42, Table 1) RISC-style integer operation set.
 *
 * The paper's ISA offers "a full complement of arithmetic and logical
 * operations", a "wide range of comparison operations", "a rich set of
 * bit manipulation instructions, such as clz and ctz", two-word-product
 * integer multiplication, and scratchpad loads/stores (Section 2.2).
 * Division and floating point are intentionally absent; the udiv
 * workload implements division in software on top of these operations.
 */

#ifndef TIA_CORE_OPCODE_HH
#define TIA_CORE_OPCODE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <string_view>

#include "core/logging.hh"
#include "core/types.hh"

namespace tia {

/** Datapath operations. Enumerator value == binary opcode. */
enum class Op : std::uint8_t
{
    // Moves / control.
    Nop = 0,
    Mov,
    Halt,

    // Arithmetic.
    Add,
    Sub,
    Neg,
    Mul,   ///< Low word of the product.
    Mulhu, ///< High word of the unsigned two-word product.
    Mulhs, ///< High word of the signed two-word product.

    // Bitwise logic.
    And,
    Or,
    Xor,
    Not,
    Nand,
    Nor,
    Xnor,

    // Shifts and rotates (shift amount taken modulo the word width).
    Sll,
    Srl,
    Sra,
    Rol,
    Ror,

    // Comparisons (produce 0 or 1; primarily for predicate writes).
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,

    // Bit manipulation.
    Clz,   ///< Count leading zeros (32 for zero input).
    Ctz,   ///< Count trailing zeros (32 for zero input).
    Popc,  ///< Population count.
    Brev,  ///< Bit reversal.
    Bswap, ///< Byte swap.

    // Min/max.
    Min,
    Max,
    Umin,
    Umax,

    // Scratchpad access (address = src0 + src1 for loads;
    // stores write src1 to address src0 and have no destination).
    Lsw,
    Ssw,

    NumOps
};

/** Number of operations; must equal ArchParams::numOps at defaults. */
constexpr unsigned kNumOps = static_cast<unsigned>(Op::NumOps);

/** Static properties of an operation. */
struct OpInfo
{
    std::string_view mnemonic; ///< Assembly mnemonic.
    unsigned numSrcs;          ///< Source operands consumed (0-2).
    bool hasResult;            ///< Produces a destination value.
    bool isComparison;         ///< Result is Boolean 0/1.
    bool readsScratchpad;      ///< Lsw.
    bool writesScratchpad;     ///< Ssw (irreversible before retirement).
    bool isHalt;               ///< Terminates the PE.
};

namespace detail {

/** Static operation properties, indexed by the enumerator value. */
inline constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    // mnemonic, srcs, result, cmp, spRead, spWrite, halt
    {"nop", 0, false, false, false, false, false},
    {"mov", 1, true, false, false, false, false},
    {"halt", 0, false, false, false, false, true},
    {"add", 2, true, false, false, false, false},
    {"sub", 2, true, false, false, false, false},
    {"neg", 1, true, false, false, false, false},
    {"mul", 2, true, false, false, false, false},
    {"mulhu", 2, true, false, false, false, false},
    {"mulhs", 2, true, false, false, false, false},
    {"and", 2, true, false, false, false, false},
    {"or", 2, true, false, false, false, false},
    {"xor", 2, true, false, false, false, false},
    {"not", 1, true, false, false, false, false},
    {"nand", 2, true, false, false, false, false},
    {"nor", 2, true, false, false, false, false},
    {"xnor", 2, true, false, false, false, false},
    {"sll", 2, true, false, false, false, false},
    {"srl", 2, true, false, false, false, false},
    {"sra", 2, true, false, false, false, false},
    {"rol", 2, true, false, false, false, false},
    {"ror", 2, true, false, false, false, false},
    {"eq", 2, true, true, false, false, false},
    {"ne", 2, true, true, false, false, false},
    {"slt", 2, true, true, false, false, false},
    {"sle", 2, true, true, false, false, false},
    {"sgt", 2, true, true, false, false, false},
    {"sge", 2, true, true, false, false, false},
    {"ult", 2, true, true, false, false, false},
    {"ule", 2, true, true, false, false, false},
    {"ugt", 2, true, true, false, false, false},
    {"uge", 2, true, true, false, false, false},
    {"clz", 1, true, false, false, false, false},
    {"ctz", 1, true, false, false, false, false},
    {"popc", 1, true, false, false, false, false},
    {"brev", 1, true, false, false, false, false},
    {"bswap", 1, true, false, false, false, false},
    {"min", 2, true, false, false, false, false},
    {"max", 2, true, false, false, false, false},
    {"umin", 2, true, false, false, false, false},
    {"umax", 2, true, false, false, false, false},
    {"lsw", 2, true, false, true, false, false},
    {"ssw", 2, false, false, false, true, false},
}};

} // namespace detail

/**
 * Look up the static properties of @p op. Defined inline — the
 * execute and writeback stages consult it every cycle.
 */
inline const OpInfo &
opInfo(Op op)
{
    auto index = static_cast<std::size_t>(op);
    panicIf(index >= detail::kOpTable.size(), "opInfo: bad opcode ", index);
    return detail::kOpTable[index];
}

/** Map an assembly mnemonic to its operation, if any. */
std::optional<Op> opFromMnemonic(std::string_view mnemonic);

/**
 * Evaluate a pure (non-scratchpad, non-halt) operation.
 *
 * @param op operation; must satisfy neither readsScratchpad,
 *           writesScratchpad nor isHalt.
 * @param a  first source operand (zero if unused).
 * @param b  second source operand (zero if unused).
 * @return the result word.
 */
inline Word
evalAlu(Op op, Word a, Word b)
{
    const auto sa = static_cast<SWord>(a);
    const auto sb = static_cast<SWord>(b);
    const unsigned shift = b & 31u;
    switch (op) {
      case Op::Nop:
        return 0;
      case Op::Mov:
        return a;
      case Op::Add:
        return a + b;
      case Op::Sub:
        return a - b;
      case Op::Neg:
        return static_cast<Word>(-sa);
      case Op::Mul:
        return static_cast<Word>(static_cast<DWord>(a) * b);
      case Op::Mulhu:
        return static_cast<Word>((static_cast<DWord>(a) * b) >> 32);
      case Op::Mulhs:
        return static_cast<Word>(
            static_cast<std::uint64_t>(static_cast<std::int64_t>(sa) * sb) >>
            32);
      case Op::And:
        return a & b;
      case Op::Or:
        return a | b;
      case Op::Xor:
        return a ^ b;
      case Op::Not:
        return ~a;
      case Op::Nand:
        return ~(a & b);
      case Op::Nor:
        return ~(a | b);
      case Op::Xnor:
        return ~(a ^ b);
      case Op::Sll:
        return a << shift;
      case Op::Srl:
        return a >> shift;
      case Op::Sra:
        return static_cast<Word>(sa >> shift);
      case Op::Rol:
        return std::rotl(a, static_cast<int>(shift));
      case Op::Ror:
        return std::rotr(a, static_cast<int>(shift));
      case Op::Eq:
        return a == b;
      case Op::Ne:
        return a != b;
      case Op::Slt:
        return sa < sb;
      case Op::Sle:
        return sa <= sb;
      case Op::Sgt:
        return sa > sb;
      case Op::Sge:
        return sa >= sb;
      case Op::Ult:
        return a < b;
      case Op::Ule:
        return a <= b;
      case Op::Ugt:
        return a > b;
      case Op::Uge:
        return a >= b;
      case Op::Clz:
        return static_cast<Word>(std::countl_zero(a));
      case Op::Ctz:
        return static_cast<Word>(std::countr_zero(a));
      case Op::Popc:
        return static_cast<Word>(std::popcount(a));
      case Op::Brev: {
        Word r = 0;
        for (unsigned i = 0; i < 32; ++i)
            r |= ((a >> i) & 1u) << (31 - i);
        return r;
      }
      case Op::Bswap:
        return ((a & 0x000000ffu) << 24) | ((a & 0x0000ff00u) << 8) |
               ((a & 0x00ff0000u) >> 8) | ((a & 0xff000000u) >> 24);
      case Op::Min:
        return static_cast<Word>(sa < sb ? sa : sb);
      case Op::Max:
        return static_cast<Word>(sa > sb ? sa : sb);
      case Op::Umin:
        return a < b ? a : b;
      case Op::Umax:
        return a > b ? a : b;
      default:
        panic("evalAlu: operation ", opInfo(op).mnemonic,
              " is not a pure ALU operation");
    }
}

} // namespace tia

#endif // TIA_CORE_OPCODE_HH
