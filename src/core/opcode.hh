/**
 * @file
 * The 42-operation (NOps = 42, Table 1) RISC-style integer operation set.
 *
 * The paper's ISA offers "a full complement of arithmetic and logical
 * operations", a "wide range of comparison operations", "a rich set of
 * bit manipulation instructions, such as clz and ctz", two-word-product
 * integer multiplication, and scratchpad loads/stores (Section 2.2).
 * Division and floating point are intentionally absent; the udiv
 * workload implements division in software on top of these operations.
 */

#ifndef TIA_CORE_OPCODE_HH
#define TIA_CORE_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/types.hh"

namespace tia {

/** Datapath operations. Enumerator value == binary opcode. */
enum class Op : std::uint8_t
{
    // Moves / control.
    Nop = 0,
    Mov,
    Halt,

    // Arithmetic.
    Add,
    Sub,
    Neg,
    Mul,   ///< Low word of the product.
    Mulhu, ///< High word of the unsigned two-word product.
    Mulhs, ///< High word of the signed two-word product.

    // Bitwise logic.
    And,
    Or,
    Xor,
    Not,
    Nand,
    Nor,
    Xnor,

    // Shifts and rotates (shift amount taken modulo the word width).
    Sll,
    Srl,
    Sra,
    Rol,
    Ror,

    // Comparisons (produce 0 or 1; primarily for predicate writes).
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,

    // Bit manipulation.
    Clz,   ///< Count leading zeros (32 for zero input).
    Ctz,   ///< Count trailing zeros (32 for zero input).
    Popc,  ///< Population count.
    Brev,  ///< Bit reversal.
    Bswap, ///< Byte swap.

    // Min/max.
    Min,
    Max,
    Umin,
    Umax,

    // Scratchpad access (address = src0 + src1 for loads;
    // stores write src1 to address src0 and have no destination).
    Lsw,
    Ssw,

    NumOps
};

/** Number of operations; must equal ArchParams::numOps at defaults. */
constexpr unsigned kNumOps = static_cast<unsigned>(Op::NumOps);

/** Static properties of an operation. */
struct OpInfo
{
    std::string_view mnemonic; ///< Assembly mnemonic.
    unsigned numSrcs;          ///< Source operands consumed (0-2).
    bool hasResult;            ///< Produces a destination value.
    bool isComparison;         ///< Result is Boolean 0/1.
    bool readsScratchpad;      ///< Lsw.
    bool writesScratchpad;     ///< Ssw (irreversible before retirement).
    bool isHalt;               ///< Terminates the PE.
};

/** Look up the static properties of @p op. */
const OpInfo &opInfo(Op op);

/** Map an assembly mnemonic to its operation, if any. */
std::optional<Op> opFromMnemonic(std::string_view mnemonic);

/**
 * Evaluate a pure (non-scratchpad, non-halt) operation.
 *
 * @param op operation; must satisfy neither readsScratchpad,
 *           writesScratchpad nor isHalt.
 * @param a  first source operand (zero if unused).
 * @param b  second source operand (zero if unused).
 * @return the result word.
 */
Word evalAlu(Op op, Word a, Word b);

} // namespace tia

#endif // TIA_CORE_OPCODE_HH
