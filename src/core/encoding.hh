/**
 * @file
 * Bit-exact binary instruction encoding per paper Table 2.
 *
 * Fields are laid out most-significant-first in Table 2 order (Val,
 * PredMask, QueueIndices, NotTags, TagVals, Op, SrcTypes, SrcIDs,
 * DstTypes, DstIDs, OutTag, IQueueDeq, PredUpdate, Imm), for a total of
 * 106 bits at the default parameters. For host-side manipulation each
 * instruction is padded with leading zeros to a round multiple of 32
 * bits (128 at defaults), exactly as the paper's memory-mapped
 * interface does (Section 2.3); the padding "is never stored in the
 * write-only instruction memory".
 */

#ifndef TIA_CORE_ENCODING_HH
#define TIA_CORE_ENCODING_HH

#include <cstdint>
#include <vector>

#include "core/instruction.hh"
#include "core/params.hh"

namespace tia {

/**
 * Encoded machine instruction: padded()/32 little-endian words
 * (word 0 holds encoding bits 31:0).
 */
using MachineCode = std::vector<std::uint32_t>;

/**
 * Encode @p inst to machine code.
 *
 * @param params parameter assignment governing field widths.
 * @param inst   instruction; validated before encoding.
 * @return padded machine code words.
 */
MachineCode encode(const ArchParams &params, const Instruction &inst);

/**
 * Decode machine code back to an Instruction.
 *
 * @param params parameter assignment governing field widths.
 * @param code   padded()/32 words as produced by encode().
 * @throws FatalError if @p code has the wrong length or violates an
 *         architectural constraint.
 */
Instruction decode(const ArchParams &params, const MachineCode &code);

/**
 * Encode a full PE instruction store: numInstructions entries, each
 * padded; missing entries are encoded as invalid (Val = 0).
 */
MachineCode encodeStore(const ArchParams &params,
                        const std::vector<Instruction> &instructions);

/** Decode a full PE instruction store produced by encodeStore(). */
std::vector<Instruction> decodeStore(const ArchParams &params,
                                     const MachineCode &code);

} // namespace tia

#endif // TIA_CORE_ENCODING_HH
