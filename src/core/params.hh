/**
 * @file
 * Architectural parameter set (paper Table 1) and the derived binary
 * instruction-field widths (paper Table 2).
 *
 * Every component of the library — assembler, encoders, functional and
 * cycle-accurate simulators — is configured from a single ArchParams
 * instance, mirroring the single params.yaml at the root of the paper's
 * toolchain (Figure 1).
 */

#ifndef TIA_CORE_PARAMS_HH
#define TIA_CORE_PARAMS_HH

#include <cstddef>
#include <string>

#include "core/types.hh"

namespace tia {

/** Ceiling log2 for field sizing; clog2(0) and clog2(1) are 0. */
constexpr unsigned
clog2(std::size_t value)
{
    unsigned bits = 0;
    std::size_t capacity = 1;
    while (capacity < value) {
        capacity <<= 1;
        ++bits;
    }
    return bits;
}

/**
 * Architectural and microarchitectural parameters (paper Table 1).
 *
 * Defaults reproduce the paper's fixed assignment. Note that while
 * Table 1 lists MaxCheck = 4, the text (Section 2.2) and the Table 2
 * width computations fix "a maximum of two input channel tag conditions
 * per trigger", so the effective default here is 2, which makes the
 * encoded instruction exactly the 106 bits the paper reports.
 */
struct ArchParams
{
    /** Number of general-purpose data registers (NRegs). */
    unsigned numRegs = 8;
    /** Number of input queues / channels (NIQueues). */
    unsigned numInputQueues = 4;
    /** Number of output queues / channels (NOQueues). */
    unsigned numOutputQueues = 4;
    /** Maximum input queues checked per trigger (MaxCheck). */
    unsigned maxCheck = 2;
    /** Maximum dequeues allowed per instruction (MaxDeq). */
    unsigned maxDeq = 2;
    /** Number of single-bit predicate registers (NPreds). */
    unsigned numPreds = 8;
    /** Data word width in bits (Word). */
    unsigned wordWidth = 32;
    /** Queue tag width in bits (TagWidth). */
    unsigned tagWidth = 2;
    /** Instructions per PE (NIns). */
    unsigned numInstructions = 16;
    /** Number of datapath operations (NOps). */
    unsigned numOps = 42;
    /** Source operands per instruction (NSrcs). */
    unsigned numSrcs = 2;
    /** Destinations per instruction (NDsts). */
    unsigned numDsts = 1;

    /**
     * Capacity of each communication queue in entries. Not part of the
     * paper's Table 1; exposed because the hazard-mitigation study
     * (Section 5.3) depends on queue occupancy dynamics.
     */
    unsigned queueCapacity = 4;
    /** PE-local scratchpad size in words (0 disables the scratchpad). */
    unsigned scratchpadWords = 1024;

    /** @return the largest representable tag value. */
    Tag maxTag() const { return static_cast<Tag>((1u << tagWidth) - 1); }

    /**
     * Validate internal consistency.
     * @throws FatalError on an unusable parameter combination.
     */
    void validate() const;

    /** Render as a parameter file (the format parseParams accepts). */
    std::string toString() const;

    bool operator==(const ArchParams &other) const = default;
};

/**
 * Binary instruction-field widths derived from an ArchParams
 * (paper Table 2). Field order below is the machine-code layout order,
 * most-significant field first.
 */
struct FieldWidths
{
    unsigned val;          ///< Valid bit.
    unsigned predMask;     ///< Required on-set and off-set of predicates.
    unsigned queueIndices; ///< Input queues to check.
    unsigned notTags;      ///< Queues checked for tag *absence*.
    unsigned tagVals;      ///< Tags sought on the checked input queues.
    unsigned op;           ///< Opcode.
    unsigned srcTypes;     ///< Source operand types.
    unsigned srcIds;       ///< Source operand indices.
    unsigned dstTypes;     ///< Destination types.
    unsigned dstIds;       ///< Destination indices.
    unsigned outTag;       ///< Tag attached to an enqueued result.
    unsigned iQueueDeq;    ///< Input queues to dequeue.
    unsigned predUpdate;   ///< Force-high / force-low predicate masks.
    unsigned imm;          ///< Full-word immediate.

    /** Total encoded instruction width in bits (106 at defaults). */
    unsigned total() const;

    /** Width padded to the next multiple of 32 bits for host I/O (128). */
    unsigned padded() const;
};

/** Compute Table 2 field widths for a parameter assignment. */
FieldWidths fieldWidths(const ArchParams &params);

/**
 * Parse a parameter file: `Key: value` lines using the Table 1 names
 * (e.g. `NRegs: 8`), '#' comments, blank lines ignored.
 *
 * Unknown keys are rejected so that configuration typos cannot be
 * silently ignored.
 */
ArchParams parseParams(const std::string &text);

} // namespace tia

#endif // TIA_CORE_PARAMS_HH
