#include "core/program.hh"

#include <sstream>

#include "core/logging.hh"

namespace tia {

void
Program::validate() const
{
    params.validate();
    for (unsigned pe = 0; pe < pes.size(); ++pe) {
        fatalIf(pes[pe].size() > params.numInstructions,
                "PE ", pe, " has ", pes[pe].size(),
                " instructions; the PE holds only ", params.numInstructions,
                " (NIns)");
        for (const auto &inst : pes[pe])
            inst.validate(params);
    }
}

std::string
Program::toString() const
{
    std::ostringstream os;
    for (unsigned pe = 0; pe < pes.size(); ++pe) {
        os << ".pe " << pe << "\n";
        for (const auto &inst : pes[pe])
            os << inst.toString(params) << "\n";
    }
    return os.str();
}

} // namespace tia
