#include "core/instruction.hh"

#include <set>
#include <sstream>

#include "core/logging.hh"

namespace tia {

bool
Instruction::operator==(const Instruction &other) const
{
    return trigger == other.trigger && op == other.op &&
           srcs == other.srcs && dst == other.dst &&
           outTag == other.outTag && dequeues == other.dequeues &&
           predSet == other.predSet && predClear == other.predClear &&
           imm == other.imm;
}

void
Instruction::validate(const ArchParams &params) const
{
    const std::uint64_t pred_mask = (params.numPreds >= 64)
                                        ? ~std::uint64_t{0}
                                        : ((std::uint64_t{1}
                                            << params.numPreds) -
                                           1);

    fatalIf(static_cast<unsigned>(op) >= params.numOps,
            "line ", line, ": opcode out of range");
    fatalIf((trigger.predOn & ~pred_mask) != 0 ||
                (trigger.predOff & ~pred_mask) != 0,
            "line ", line, ": trigger references nonexistent predicates");
    fatalIf((trigger.predOn & trigger.predOff) != 0,
            "line ", line,
            ": trigger requires a predicate to be both set and clear");
    fatalIf(trigger.queueChecks.size() > params.maxCheck,
            "line ", line, ": at most ", params.maxCheck,
            " input queues may be checked per trigger (MaxCheck)");

    std::set<unsigned> checked;
    for (const auto &check : trigger.queueChecks) {
        fatalIf(check.queue >= params.numInputQueues,
                "line ", line, ": trigger checks nonexistent input queue %i",
                unsigned{check.queue});
        fatalIf(check.tag > params.maxTag(),
                "line ", line, ": tag ", unsigned{check.tag},
                " exceeds the maximum tag ", unsigned{params.maxTag()});
        fatalIf(!checked.insert(check.queue).second,
                "line ", line, ": input queue %i", unsigned{check.queue},
                " checked more than once in a trigger");
    }

    const auto &info = opInfo(op);
    unsigned imm_sources = 0;
    for (unsigned s = 0; s < srcs.size(); ++s) {
        const auto &src = srcs[s];
        switch (src.type) {
          case SrcType::None:
            fatalIf(s < info.numSrcs, "line ", line, ": operation ",
                    info.mnemonic, " requires ", info.numSrcs,
                    " source operands");
            break;
          case SrcType::Reg:
            fatalIf(src.index >= params.numRegs, "line ", line,
                    ": register %r", unsigned{src.index},
                    " out of range");
            break;
          case SrcType::InputQueue:
            fatalIf(src.index >= params.numInputQueues, "line ", line,
                    ": input queue %i", unsigned{src.index},
                    " out of range");
            break;
          case SrcType::Immediate:
            ++imm_sources;
            break;
        }
        fatalIf(s >= info.numSrcs && src.type != SrcType::None,
                "line ", line, ": operation ", info.mnemonic,
                " takes only ", info.numSrcs, " source operands");
    }
    fatalIf(imm_sources > 1, "line ", line,
            ": the encoding provides a single immediate field; at most one "
            "immediate source is allowed");

    switch (dst.type) {
      case DstType::None:
        break;
      case DstType::Reg:
        fatalIf(dst.index >= params.numRegs, "line ", line,
                ": destination register %r", unsigned{dst.index},
                " out of range");
        break;
      case DstType::OutputQueue:
        fatalIf(dst.index >= params.numOutputQueues, "line ", line,
                ": output queue %o", unsigned{dst.index}, " out of range");
        fatalIf(outTag > params.maxTag(), "line ", line, ": output tag ",
                unsigned{outTag}, " exceeds the maximum tag ",
                unsigned{params.maxTag()});
        break;
      case DstType::Predicate:
        fatalIf(dst.index >= params.numPreds, "line ", line,
                ": destination predicate %p", unsigned{dst.index},
                " out of range");
        break;
    }
    fatalIf(dst.type != DstType::None && !info.hasResult, "line ", line,
            ": operation ", info.mnemonic, " produces no result");

    fatalIf(dequeues.size() > params.maxDeq, "line ", line, ": at most ",
            params.maxDeq, " dequeues are allowed per instruction (MaxDeq)");
    std::set<unsigned> deq_set;
    for (auto q : dequeues) {
        fatalIf(q >= params.numInputQueues, "line ", line,
                ": dequeue of nonexistent input queue %i", unsigned{q});
        fatalIf(!deq_set.insert(q).second, "line ", line,
                ": input queue %i", unsigned{q}, " dequeued twice");
    }

    fatalIf((predSet & ~pred_mask) != 0 || (predClear & ~pred_mask) != 0,
            "line ", line, ": predicate update references nonexistent "
            "predicates");
    fatalIf((predSet & predClear) != 0, "line ", line,
            ": predicate update forces a bit both high and low");
    if (dst.type == DstType::Predicate) {
        const std::uint64_t dst_bit = std::uint64_t{1} << dst.index;
        // The assembler guarantees this non-conflict (Section 2.2).
        fatalIf(((predSet | predClear) & dst_bit) != 0, "line ", line,
                ": predicate update mask conflicts with the datapath "
                "predicate destination %p",
                unsigned{dst.index});
    }
}

namespace {

/** Set bit @p q in a 32-bit requirement mask, range checked. */
void
needQueue(std::uint32_t &mask, unsigned q, unsigned line)
{
    fatalIf(q >= 32, "line ", line, ": queue index ", q,
            " exceeds the trigger-descriptor mask range (32 queues)");
    mask |= std::uint32_t{1} << q;
}

} // namespace

TriggerDesc
compileTriggerDesc(const Instruction &inst)
{
    TriggerDesc desc;
    desc.valid = inst.trigger.valid;
    if (!desc.valid)
        return desc;
    desc.predOn = inst.trigger.predOn;
    desc.predOff = inst.trigger.predOff;
    fatalIf(inst.trigger.queueChecks.size() > kTriggerDescMaxChecks,
            "line ", inst.line, ": trigger has ",
            inst.trigger.queueChecks.size(),
            " tag conditions; the descriptor fast path supports at most ",
            kTriggerDescMaxChecks);
    for (const auto &check : inst.trigger.queueChecks) {
        needQueue(desc.inputNeed, check.queue, inst.line);
        desc.checks[desc.numChecks++] = check;
    }
    for (const auto &src : inst.srcs) {
        if (src.type == SrcType::InputQueue)
            needQueue(desc.inputNeed, src.index, inst.line);
    }
    for (auto q : inst.dequeues)
        needQueue(desc.inputNeed, q, inst.line);
    if (inst.dst.type == DstType::OutputQueue)
        needQueue(desc.outputNeed, inst.dst.index, inst.line);
    return desc;
}

std::vector<TriggerDesc>
compileTriggerDescs(const std::vector<Instruction> &program)
{
    std::vector<TriggerDesc> descs;
    descs.reserve(program.size());
    for (const auto &inst : program)
        descs.push_back(compileTriggerDesc(inst));
    return descs;
}

namespace {

void
appendPredPattern(std::ostringstream &os, std::uint64_t on,
                  std::uint64_t off, unsigned num_preds, char dont_care)
{
    for (unsigned i = num_preds; i-- > 0;) {
        const std::uint64_t bit = std::uint64_t{1} << i;
        if (on & bit)
            os << '1';
        else if (off & bit)
            os << '0';
        else
            os << dont_care;
    }
}

void
appendSource(std::ostringstream &os, const Source &src, Word imm)
{
    switch (src.type) {
      case SrcType::None:
        break;
      case SrcType::Reg:
        os << "%r" << unsigned{src.index};
        break;
      case SrcType::InputQueue:
        os << "%i" << unsigned{src.index};
        break;
      case SrcType::Immediate:
        os << '#' << imm;
        break;
    }
}

} // namespace

std::string
Instruction::toString(const ArchParams &params) const
{
    std::ostringstream os;
    if (!trigger.valid)
        return "<invalid>";

    os << "when %p == ";
    appendPredPattern(os, trigger.predOn, trigger.predOff, params.numPreds,
                      'X');
    if (!trigger.queueChecks.empty()) {
        os << " with ";
        bool first = true;
        for (const auto &check : trigger.queueChecks) {
            if (!first)
                os << ", ";
            first = false;
            os << "%i" << unsigned{check.queue} << '.';
            if (check.negate)
                os << '!';
            os << unsigned{check.tag};
        }
    }
    os << ": " << opInfo(op).mnemonic;

    bool wrote_operand = false;
    if (dst.type != DstType::None) {
        os << ' ';
        switch (dst.type) {
          case DstType::Reg:
            os << "%r" << unsigned{dst.index};
            break;
          case DstType::OutputQueue:
            os << "%o" << unsigned{dst.index} << '.' << unsigned{outTag};
            break;
          case DstType::Predicate:
            os << "%p" << unsigned{dst.index};
            break;
          case DstType::None:
            break;
        }
        wrote_operand = true;
    }
    for (const auto &src : srcs) {
        if (src.type == SrcType::None)
            continue;
        os << (wrote_operand ? ", " : " ");
        appendSource(os, src, imm);
        wrote_operand = true;
    }

    if (!dequeues.empty()) {
        os << "; deq ";
        bool first = true;
        for (auto q : dequeues) {
            if (!first)
                os << ", ";
            first = false;
            os << "%i" << unsigned{q};
        }
    }
    if (predSet != 0 || predClear != 0) {
        os << "; set %p = ";
        appendPredPattern(os, predSet, predClear, params.numPreds, 'Z');
    }
    os << ';';
    return os.str();
}

} // namespace tia
