#include "core/assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "core/logging.hh"
#include "core/opcode.hh"

namespace tia {

namespace {

enum class TokenKind
{
    Word,    ///< Identifier, mnemonic, number or pattern.
    Operand, ///< %rN, %iN, %oN, %pN or bare %p.
    Punct,   ///< Single punctuation character.
    CharLit, ///< 'c'.
    End,
};

struct Token
{
    TokenKind kind;
    std::string text;  ///< Word text.
    char punct = 0;    ///< Punct character.
    char opKind = 0;   ///< Operand kind: 'r', 'i', 'o' or 'p'.
    int opIndex = -1;  ///< Operand index; -1 for bare %p.
    char charLit = 0;  ///< CharLit value.
    unsigned line = 0;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &source) : src_(source) {}

    std::vector<Token>
    tokenize()
    {
        std::vector<Token> tokens;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < src_.size() &&
                       src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    ++pos_;
            } else if (c == '%') {
                tokens.push_back(lexOperand());
            } else if (c == '\'') {
                tokens.push_back(lexCharLit());
            } else if (std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_') {
                tokens.push_back(lexWord());
            } else {
                Token t;
                t.kind = TokenKind::Punct;
                t.punct = c;
                t.line = line_;
                tokens.push_back(t);
                ++pos_;
            }
        }
        Token end;
        end.kind = TokenKind::End;
        end.line = line_;
        tokens.push_back(end);
        return tokens;
    }

  private:
    Token
    lexOperand()
    {
        Token t;
        t.kind = TokenKind::Operand;
        t.line = line_;
        ++pos_; // consume '%'
        fatalIf(pos_ >= src_.size(), "line ", line_,
                ": dangling '%' at end of input");
        const char kind = src_[pos_];
        fatalIf(kind != 'r' && kind != 'i' && kind != 'o' && kind != 'p',
                "line ", line_, ": unknown operand class '%", kind,
                "' (expected %r, %i, %o or %p)");
        t.opKind = kind;
        ++pos_;
        std::string digits;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
            digits += src_[pos_++];
        }
        t.opIndex = digits.empty() ? -1 : std::stoi(digits);
        fatalIf(digits.empty() && kind != 'p', "line ", line_,
                ": operand %", kind, " requires an index");
        return t;
    }

    Token
    lexCharLit()
    {
        Token t;
        t.kind = TokenKind::CharLit;
        t.line = line_;
        fatalIf(pos_ + 2 >= src_.size() || src_[pos_ + 2] != '\'', "line ",
                line_, ": malformed character literal");
        t.charLit = src_[pos_ + 1];
        pos_ += 3;
        return t;
    }

    Token
    lexWord()
    {
        Token t;
        t.kind = TokenKind::Word;
        t.line = line_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
            t.text += src_[pos_++];
        }
        return t;
    }

    const std::string &src_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
};

class Parser
{
  public:
    Parser(std::vector<Token> tokens, const ArchParams &params)
        : tokens_(std::move(tokens)), params_(params)
    {
    }

    Program
    parse()
    {
        Program program;
        program.params = params_;
        program.pes.resize(1);
        unsigned current_pe = 0;

        while (peek().kind != TokenKind::End) {
            if (isPunct('.')) {
                advance();
                const Token &word = expect(TokenKind::Word, "directive name");
                if (word.text == "pe") {
                    current_pe = parseNumberWord("PE index");
                    if (current_pe >= program.pes.size())
                        program.pes.resize(current_pe + 1);
                } else if (word.text == "def") {
                    const Token &name =
                        expect(TokenKind::Word, "constant name");
                    fatalIf(std::isdigit(static_cast<unsigned char>(
                                name.text[0])),
                            "line ", name.line,
                            ": .def name must not start with a digit");
                    const std::string def_name = name.text;
                    defs_[def_name] = parseImmediate();
                } else {
                    fatal("line ", word.line, ": unknown directive .",
                          word.text);
                }
            } else {
                Instruction inst = parseInstruction();
                program.pes[current_pe].push_back(inst);
            }
        }
        program.validate();
        return program;
    }

  private:
    const Token &peek(unsigned ahead = 0) const
    {
        const std::size_t index =
            std::min(pos_ + ahead, tokens_.size() - 1);
        return tokens_[index];
    }

    const Token &advance() { return tokens_[pos_++]; }

    bool
    isPunct(char c) const
    {
        return peek().kind == TokenKind::Punct && peek().punct == c;
    }

    bool
    isWord(const char *text) const
    {
        return peek().kind == TokenKind::Word && peek().text == text;
    }

    const Token &
    expect(TokenKind kind, const char *what)
    {
        const Token &t = advance();
        fatalIf(t.kind != kind, "line ", t.line, ": expected ", what);
        return t;
    }

    void
    expectPunct(char c)
    {
        const Token &t = advance();
        fatalIf(t.kind != TokenKind::Punct || t.punct != c, "line ", t.line,
                ": expected '", std::string(1, c), "'");
    }

    unsigned
    parseNumberWord(const char *what)
    {
        const Token &t = expect(TokenKind::Word, what);
        for (char c : t.text) {
            fatalIf(!std::isdigit(static_cast<unsigned char>(c)), "line ",
                    t.line, ": ", what, " must be a number, got \"", t.text,
                    "\"");
        }
        return static_cast<unsigned>(std::stoul(t.text));
    }

    /** Parse a pattern word into (on, off) masks. */
    std::pair<std::uint64_t, std::uint64_t>
    parsePattern()
    {
        const Token &t = expect(TokenKind::Word, "predicate pattern");
        fatalIf(t.text.size() != params_.numPreds, "line ", t.line,
                ": predicate pattern must have exactly ", params_.numPreds,
                " characters, got \"", t.text, "\"");
        std::uint64_t on = 0;
        std::uint64_t off = 0;
        for (unsigned j = 0; j < t.text.size(); ++j) {
            const unsigned bit = params_.numPreds - 1 - j;
            switch (t.text[j]) {
              case '1':
                on |= std::uint64_t{1} << bit;
                break;
              case '0':
                off |= std::uint64_t{1} << bit;
                break;
              case 'X':
              case 'x':
              case 'Z':
              case 'z':
                break;
              default:
                fatal("line ", t.line, ": bad pattern character '",
                      std::string(1, t.text[j]),
                      "' (expected 0, 1, X or Z)");
            }
        }
        return {on, off};
    }

    Word
    parseImmediate()
    {
        if (isPunct('#'))
            advance();
        bool negate = false;
        if (isPunct('-')) {
            advance();
            negate = true;
        }
        const Token &t = advance();
        if (t.kind == TokenKind::CharLit) {
            fatalIf(negate, "line ", t.line,
                    ": cannot negate a character literal");
            return static_cast<Word>(t.charLit);
        }
        fatalIf(t.kind != TokenKind::Word, "line ", t.line,
                ": expected an immediate value");
        if (!std::isdigit(static_cast<unsigned char>(t.text[0]))) {
            auto it = defs_.find(t.text);
            fatalIf(it == defs_.end(), "line ", t.line,
                    ": unknown constant \"", t.text, "\"");
            const Word value = it->second;
            return negate ? static_cast<Word>(-static_cast<SWord>(value))
                          : value;
        }
        unsigned long long value = 0;
        try {
            if (t.text.size() > 2 && t.text[0] == '0' &&
                (t.text[1] == 'x' || t.text[1] == 'X')) {
                value = std::stoull(t.text.substr(2), nullptr, 16);
            } else {
                value = std::stoull(t.text, nullptr, 10);
            }
        } catch (const std::exception &) {
            fatal("line ", t.line, ": bad numeric literal \"", t.text, "\"");
        }
        fatalIf(value > 0xffffffffull, "line ", t.line, ": immediate ",
                t.text, " does not fit in a 32-bit word");
        const Word word = static_cast<Word>(value);
        return negate ? static_cast<Word>(-static_cast<SWord>(word)) : word;
    }

    Tag
    parseTag()
    {
        const unsigned tag = parseNumberWord("queue tag");
        fatalIf(tag > params_.maxTag(), "tag ", tag,
                " exceeds the maximum tag ", unsigned{params_.maxTag()});
        return static_cast<Tag>(tag);
    }

    Instruction
    parseInstruction()
    {
        Instruction inst;
        const Token &when = expect(TokenKind::Word, "\"when\"");
        fatalIf(when.text != "when", "line ", when.line,
                ": expected \"when\" at start of instruction, got \"",
                when.text, "\"");
        inst.line = when.line;
        inst.trigger.valid = true;

        const Token &pred = expect(TokenKind::Operand, "%p");
        fatalIf(pred.opKind != 'p' || pred.opIndex != -1, "line ", pred.line,
                ": expected bare %p in trigger");
        expectPunct('=');
        expectPunct('=');
        std::tie(inst.trigger.predOn, inst.trigger.predOff) = parsePattern();

        if (isWord("with")) {
            advance();
            while (true) {
                const Token &queue = expect(TokenKind::Operand,
                                            "input queue check (%iN.tag)");
                fatalIf(queue.opKind != 'i', "line ", queue.line,
                        ": trigger checks must name input queues (%i)");
                expectPunct('.');
                QueueCheck check;
                check.queue = static_cast<std::uint8_t>(queue.opIndex);
                if (isPunct('!')) {
                    advance();
                    check.negate = true;
                }
                check.tag = parseTag();
                inst.trigger.queueChecks.push_back(check);
                if (!isPunct(','))
                    break;
                advance();
            }
        }
        expectPunct(':');

        parseDatapath(inst);
        return inst;
    }

    void
    parseDatapath(Instruction &inst)
    {
        const Token &mnemonic = expect(TokenKind::Word, "operation mnemonic");
        const auto op = opFromMnemonic(mnemonic.text);
        fatalIf(!op.has_value(), "line ", mnemonic.line,
                ": unknown operation \"", mnemonic.text, "\"");
        inst.op = *op;
        const OpInfo &info = opInfo(inst.op);

        std::vector<Token> operand_positions;
        bool have_imm = false;

        // Operand list: destination first when the op produces a result.
        unsigned parsed = 0;
        const unsigned expected =
            info.numSrcs + (info.hasResult ? 1u : 0u);
        while (parsed < expected) {
            if (parsed > 0)
                expectPunct(',');
            const bool is_dst = info.hasResult && parsed == 0;
            parseOperand(inst, is_dst, parsed, have_imm);
            ++parsed;
        }

        // Optional clauses.
        while (isPunct(';')) {
            advance();
            if (isWord("deq")) {
                advance();
                while (true) {
                    const Token &queue =
                        expect(TokenKind::Operand, "input queue (%iN)");
                    fatalIf(queue.opKind != 'i', "line ", queue.line,
                            ": deq takes input queues (%i)");
                    inst.dequeues.push_back(
                        static_cast<std::uint8_t>(queue.opIndex));
                    if (!isPunct(','))
                        break;
                    advance();
                }
            } else if (isWord("set")) {
                advance();
                const Token &pred = expect(TokenKind::Operand, "%p");
                fatalIf(pred.opKind != 'p' || pred.opIndex != -1, "line ",
                        pred.line, ": expected bare %p in set clause");
                expectPunct('=');
                std::tie(inst.predSet, inst.predClear) = parsePattern();
            }
            // Anything else: an empty clause (stray ';') or the end of
            // the instruction; the loop condition decides.
        }
    }

    void
    parseOperand(Instruction &inst, bool is_dst, unsigned position,
                 bool &have_imm)
    {
        const unsigned src_slot =
            opInfo(inst.op).hasResult ? position - 1 : position;
        if (peek().kind == TokenKind::Operand) {
            const Token &t = advance();
            if (is_dst) {
                switch (t.opKind) {
                  case 'r':
                    inst.dst = {DstType::Reg,
                                static_cast<std::uint8_t>(t.opIndex)};
                    break;
                  case 'o': {
                    inst.dst = {DstType::OutputQueue,
                                static_cast<std::uint8_t>(t.opIndex)};
                    expectPunct('.');
                    inst.outTag = parseTag();
                    break;
                  }
                  case 'p':
                    fatalIf(t.opIndex < 0, "line ", t.line,
                            ": destination predicate needs an index (%pN)");
                    inst.dst = {DstType::Predicate,
                                static_cast<std::uint8_t>(t.opIndex)};
                    break;
                  default:
                    fatal("line ", t.line,
                          ": destination must be %r, %o or %p");
                }
            } else {
                switch (t.opKind) {
                  case 'r':
                    inst.srcs[src_slot] = {
                        SrcType::Reg, static_cast<std::uint8_t>(t.opIndex)};
                    break;
                  case 'i':
                    inst.srcs[src_slot] = {
                        SrcType::InputQueue,
                        static_cast<std::uint8_t>(t.opIndex)};
                    break;
                  default:
                    fatal("line ", t.line,
                          ": source must be %r, %i or an immediate");
                }
            }
        } else {
            fatalIf(is_dst, "line ", peek().line,
                    ": destination cannot be an immediate");
            fatalIf(have_imm, "line ", peek().line,
                    ": at most one immediate source per instruction");
            inst.imm = parseImmediate();
            inst.srcs[src_slot] = {SrcType::Immediate, 0};
            have_imm = true;
        }
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    const ArchParams &params_;
    std::map<std::string, Word> defs_;
};

} // namespace

Program
assemble(const std::string &source, const ArchParams &params)
{
    params.validate();
    Lexer lexer(source);
    Parser parser(lexer.tokenize(), params);
    return parser.parse();
}

Program
assemble(const std::string &source)
{
    return assemble(source, ArchParams{});
}

} // namespace tia
