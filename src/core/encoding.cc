#include "core/encoding.hh"

#include "core/logging.hh"

namespace tia {

namespace {

/**
 * Writes fields most-significant-first into a little-endian word vector.
 * Bit index 0 of the encoding is the LSB of word 0.
 */
class BitWriter
{
  public:
    BitWriter(MachineCode &words, unsigned total_bits)
        : words_(words), nextMsb_(total_bits)
    {
    }

    void
    write(std::uint64_t value, unsigned width)
    {
        panicIf(width > 64, "BitWriter: field too wide");
        panicIf(nextMsb_ < width, "BitWriter: encoding overflow");
        panicIf(width < 64 && (value >> width) != 0,
                "BitWriter: value does not fit its field");
        nextMsb_ -= width;
        for (unsigned i = 0; i < width; ++i) {
            const unsigned bit = nextMsb_ + i;
            if ((value >> i) & 1u)
                words_[bit / 32] |= (1u << (bit % 32));
        }
    }

    unsigned remaining() const { return nextMsb_; }

  private:
    MachineCode &words_;
    unsigned nextMsb_;
};

/** Mirror of BitWriter for decoding. */
class BitReader
{
  public:
    BitReader(const MachineCode &words, unsigned total_bits)
        : words_(words), nextMsb_(total_bits)
    {
    }

    std::uint64_t
    read(unsigned width)
    {
        panicIf(width > 64, "BitReader: field too wide");
        panicIf(nextMsb_ < width, "BitReader: encoding underflow");
        nextMsb_ -= width;
        std::uint64_t value = 0;
        for (unsigned i = 0; i < width; ++i) {
            const unsigned bit = nextMsb_ + i;
            if ((words_[bit / 32] >> (bit % 32)) & 1u)
                value |= (std::uint64_t{1} << i);
        }
        return value;
    }

    unsigned remaining() const { return nextMsb_; }

  private:
    const MachineCode &words_;
    unsigned nextMsb_;
};

} // namespace

MachineCode
encode(const ArchParams &params, const Instruction &inst)
{
    if (inst.trigger.valid)
        inst.validate(params);

    const FieldWidths w = fieldWidths(params);
    MachineCode code(w.padded() / 32, 0);
    BitWriter writer(code, w.total());

    writer.write(inst.trigger.valid ? 1 : 0, w.val);
    writer.write(inst.trigger.predOn, params.numPreds);
    writer.write(inst.trigger.predOff, params.numPreds);

    const unsigned qidx_bits = clog2(params.numInputQueues + 1);
    for (unsigned slot = 0; slot < params.maxCheck; ++slot) {
        const bool present = slot < inst.trigger.queueChecks.size();
        writer.write(present ? inst.trigger.queueChecks[slot].queue + 1u : 0u,
                     qidx_bits);
    }
    for (unsigned slot = 0; slot < params.maxCheck; ++slot) {
        const bool present = slot < inst.trigger.queueChecks.size();
        writer.write(present && inst.trigger.queueChecks[slot].negate ? 1 : 0,
                     1);
    }
    for (unsigned slot = 0; slot < params.maxCheck; ++slot) {
        const bool present = slot < inst.trigger.queueChecks.size();
        writer.write(present ? inst.trigger.queueChecks[slot].tag : 0,
                     params.tagWidth);
    }

    writer.write(static_cast<std::uint64_t>(inst.op), w.op);

    for (const auto &src : inst.srcs)
        writer.write(static_cast<std::uint64_t>(src.type), 2);
    const unsigned src_id_bits = w.srcIds / params.numSrcs;
    for (const auto &src : inst.srcs)
        writer.write(src.index, src_id_bits);

    writer.write(static_cast<std::uint64_t>(inst.dst.type), 2);
    writer.write(inst.dst.index, w.dstIds / params.numDsts);
    writer.write(inst.outTag, w.outTag);

    for (unsigned slot = 0; slot < params.maxDeq; ++slot) {
        const bool present = slot < inst.dequeues.size();
        writer.write(present ? inst.dequeues[slot] + 1u : 0u, qidx_bits);
    }

    writer.write(inst.predSet, params.numPreds);
    writer.write(inst.predClear, params.numPreds);
    writer.write(inst.imm, w.imm);

    panicIf(writer.remaining() != 0, "encode: layout mismatch");
    return code;
}

Instruction
decode(const ArchParams &params, const MachineCode &code)
{
    const FieldWidths w = fieldWidths(params);
    fatalIf(code.size() != w.padded() / 32,
            "decode: expected ", w.padded() / 32, " words, got ",
            code.size());

    BitReader reader(code, w.total());
    Instruction inst;

    inst.trigger.valid = reader.read(w.val) != 0;
    inst.trigger.predOn = reader.read(params.numPreds);
    inst.trigger.predOff = reader.read(params.numPreds);

    const unsigned qidx_bits = clog2(params.numInputQueues + 1);
    std::vector<unsigned> check_queues(params.maxCheck);
    for (unsigned slot = 0; slot < params.maxCheck; ++slot)
        check_queues[slot] = static_cast<unsigned>(reader.read(qidx_bits));
    std::vector<bool> check_negate(params.maxCheck);
    for (unsigned slot = 0; slot < params.maxCheck; ++slot)
        check_negate[slot] = reader.read(1) != 0;
    for (unsigned slot = 0; slot < params.maxCheck; ++slot) {
        const Tag tag = static_cast<Tag>(reader.read(params.tagWidth));
        if (check_queues[slot] != 0) {
            inst.trigger.queueChecks.push_back(
                {static_cast<std::uint8_t>(check_queues[slot] - 1), tag,
                 check_negate[slot]});
        }
    }

    inst.op = static_cast<Op>(reader.read(w.op));

    const unsigned src_id_bits = w.srcIds / params.numSrcs;
    for (auto &src : inst.srcs)
        src.type = static_cast<SrcType>(reader.read(2));
    for (auto &src : inst.srcs)
        src.index = static_cast<std::uint8_t>(reader.read(src_id_bits));

    inst.dst.type = static_cast<DstType>(reader.read(2));
    inst.dst.index =
        static_cast<std::uint8_t>(reader.read(w.dstIds / params.numDsts));
    inst.outTag = static_cast<Tag>(reader.read(w.outTag));

    for (unsigned slot = 0; slot < params.maxDeq; ++slot) {
        const unsigned entry = static_cast<unsigned>(reader.read(qidx_bits));
        if (entry != 0)
            inst.dequeues.push_back(static_cast<std::uint8_t>(entry - 1));
    }

    inst.predSet = reader.read(params.numPreds);
    inst.predClear = reader.read(params.numPreds);
    inst.imm = static_cast<Word>(reader.read(w.imm));

    panicIf(reader.remaining() != 0, "decode: layout mismatch");

    if (inst.trigger.valid)
        inst.validate(params);
    return inst;
}

MachineCode
encodeStore(const ArchParams &params,
            const std::vector<Instruction> &instructions)
{
    fatalIf(instructions.size() > params.numInstructions,
            "program has ", instructions.size(),
            " instructions but the PE holds only ", params.numInstructions,
            " (NIns)");
    const unsigned words_per = fieldWidths(params).padded() / 32;
    MachineCode code;
    code.reserve(words_per * params.numInstructions);
    for (unsigned i = 0; i < params.numInstructions; ++i) {
        MachineCode one;
        if (i < instructions.size()) {
            one = encode(params, instructions[i]);
        } else {
            Instruction invalid;
            invalid.trigger.valid = false;
            one = encode(params, invalid);
        }
        code.insert(code.end(), one.begin(), one.end());
    }
    return code;
}

std::vector<Instruction>
decodeStore(const ArchParams &params, const MachineCode &code)
{
    const unsigned words_per = fieldWidths(params).padded() / 32;
    fatalIf(code.size() != words_per * params.numInstructions,
            "decodeStore: expected ", words_per * params.numInstructions,
            " words, got ", code.size());
    std::vector<Instruction> instructions;
    for (unsigned i = 0; i < params.numInstructions; ++i) {
        MachineCode one(code.begin() + i * words_per,
                        code.begin() + (i + 1) * words_per);
        instructions.push_back(decode(params, one));
    }
    return instructions;
}

} // namespace tia
