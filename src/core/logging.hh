/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad program, bad configuration); panic()
 * is for internal invariant violations, i.e. library bugs.
 */

#ifndef TIA_CORE_LOGGING_HH
#define TIA_CORE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace tia {

/** Thrown when a user-supplied program or configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown when an internal invariant is violated (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Report a user-level error (bad assembly, invalid parameters, ...).
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/**
 * Report an internal invariant violation.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Assert an internal invariant with a formatted message. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

/** Raise a user-level error when @p condition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

} // namespace tia

#endif // TIA_CORE_LOGGING_HH
