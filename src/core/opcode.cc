#include "core/opcode.hh"

#include <array>
#include <bit>
#include <map>

#include "core/logging.hh"

namespace tia {

std::optional<Op>
opFromMnemonic(std::string_view mnemonic)
{
    static const std::map<std::string_view, Op> table = [] {
        std::map<std::string_view, Op> map;
        for (unsigned i = 0; i < kNumOps; ++i)
            map.emplace(detail::kOpTable[i].mnemonic, static_cast<Op>(i));
        return map;
    }();
    auto it = table.find(mnemonic);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}


} // namespace tia
