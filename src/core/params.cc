#include "core/params.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "core/logging.hh"

namespace tia {

void
ArchParams::validate() const
{
    fatalIf(numRegs == 0, "NRegs must be positive");
    fatalIf(numInputQueues == 0, "NIQueues must be positive");
    fatalIf(numOutputQueues == 0, "NOQueues must be positive");
    fatalIf(numPreds == 0 || numPreds > 64,
            "NPreds must be in [1, 64], got ", numPreds);
    fatalIf(wordWidth == 0 || wordWidth > 32,
            "Word width must be in [1, 32], got ", wordWidth);
    fatalIf(tagWidth == 0 || tagWidth > 8,
            "TagWidth must be in [1, 8], got ", tagWidth);
    fatalIf(numInstructions == 0, "NIns must be positive");
    fatalIf(maxCheck > numInputQueues,
            "MaxCheck (", maxCheck, ") exceeds NIQueues (", numInputQueues,
            ")");
    fatalIf(maxDeq > numInputQueues,
            "MaxDeq (", maxDeq, ") exceeds NIQueues (", numInputQueues, ")");
    fatalIf(numSrcs != 2, "the ISA defines exactly 2 source operands");
    fatalIf(numDsts != 1, "the ISA defines exactly 1 destination");
    fatalIf(numOps == 0 || numOps > 64, "NOps must be in [1, 64]");
    fatalIf(queueCapacity == 0, "queue capacity must be positive");
}

unsigned
FieldWidths::total() const
{
    return val + predMask + queueIndices + notTags + tagVals + op +
           srcTypes + srcIds + dstTypes + dstIds + outTag + iQueueDeq +
           predUpdate + imm;
}

unsigned
FieldWidths::padded() const
{
    return (total() + 31u) / 32u * 32u;
}

FieldWidths
fieldWidths(const ArchParams &p)
{
    FieldWidths w;
    w.val = 1;
    w.predMask = 2 * p.numPreds;
    w.queueIndices = p.maxCheck * clog2(p.numInputQueues + 1);
    w.notTags = p.maxCheck;
    w.tagVals = p.maxCheck * p.tagWidth;
    w.op = clog2(p.numOps);
    w.srcTypes = p.numSrcs * 2;
    w.srcIds =
        p.numSrcs * clog2(std::max<std::size_t>(p.numRegs, p.numInputQueues));
    w.dstTypes = p.numDsts * 2;
    w.dstIds = p.numDsts *
               clog2(std::max<std::size_t>(
                   {p.numRegs, p.numOutputQueues, p.numPreds}));
    w.outTag = p.tagWidth;
    w.iQueueDeq = p.maxDeq * clog2(p.numInputQueues + 1);
    w.predUpdate = 2 * p.numPreds;
    w.imm = p.wordWidth;
    return w;
}

std::string
ArchParams::toString() const
{
    std::ostringstream os;
    os << "NRegs: " << numRegs << "\n"
       << "NIQueues: " << numInputQueues << "\n"
       << "NOQueues: " << numOutputQueues << "\n"
       << "MaxCheck: " << maxCheck << "\n"
       << "MaxDeq: " << maxDeq << "\n"
       << "NPreds: " << numPreds << "\n"
       << "Word: " << wordWidth << "\n"
       << "TagWidth: " << tagWidth << "\n"
       << "NIns: " << numInstructions << "\n"
       << "NOps: " << numOps << "\n"
       << "NSrcs: " << numSrcs << "\n"
       << "NDsts: " << numDsts << "\n"
       << "QueueCapacity: " << queueCapacity << "\n"
       << "ScratchpadWords: " << scratchpadWords << "\n";
    return os.str();
}

namespace {

std::string
trim(const std::string &text)
{
    auto begin = text.find_first_not_of(" \t\r");
    auto end = text.find_last_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    return text.substr(begin, end - begin + 1);
}

} // namespace

ArchParams
parseParams(const std::string &text)
{
    ArchParams params;
    std::map<std::string, unsigned ArchParams::*> keys = {
        {"NRegs", &ArchParams::numRegs},
        {"NIQueues", &ArchParams::numInputQueues},
        {"NOQueues", &ArchParams::numOutputQueues},
        {"MaxCheck", &ArchParams::maxCheck},
        {"MaxDeq", &ArchParams::maxDeq},
        {"NPreds", &ArchParams::numPreds},
        {"Word", &ArchParams::wordWidth},
        {"TagWidth", &ArchParams::tagWidth},
        {"NIns", &ArchParams::numInstructions},
        {"NOps", &ArchParams::numOps},
        {"NSrcs", &ArchParams::numSrcs},
        {"NDsts", &ArchParams::numDsts},
        {"QueueCapacity", &ArchParams::queueCapacity},
        {"ScratchpadWords", &ArchParams::scratchpadWords},
    };

    std::istringstream is(text);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        auto comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        auto colon = line.find(':');
        fatalIf(colon == std::string::npos, "params line ", line_no,
                ": expected `Key: value`, got \"", line, "\"");
        std::string key = trim(line.substr(0, colon));
        std::string value = trim(line.substr(colon + 1));
        auto it = keys.find(key);
        fatalIf(it == keys.end(), "params line ", line_no,
                ": unknown parameter \"", key, "\"");
        fatalIf(value.empty() ||
                    !std::all_of(value.begin(), value.end(),
                                 [](unsigned char c) {
                                     return std::isdigit(c);
                                 }),
                "params line ", line_no, ": value for ", key,
                " must be a non-negative integer, got \"", value, "\"");
        params.*(it->second) = static_cast<unsigned>(std::stoul(value));
    }
    params.validate();
    return params;
}

} // namespace tia
