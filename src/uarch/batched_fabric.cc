#include "uarch/batched_fabric.hh"

#include <algorithm>
#include <bit>

#include "core/logging.hh"

namespace tia {

BatchedFabric::BatchedFabric(const FabricConfig &config,
                             const Program &program,
                             const std::vector<PeConfig> &uarchs,
                             std::vector<FaultInjector *> injectors)
    : injectors_(std::move(injectors))
{
    fatalIf(uarchs.empty(), "BatchedFabric needs at least one lane");
    fatalIf(injectors_.size() > uarchs.size(),
            "more fault injectors (", injectors_.size(),
            ") than lanes (", uarchs.size(), ")");
    injectors_.resize(uarchs.size(), nullptr);
    lanes_.reserve(uarchs.size());
    for (std::size_t l = 0; l < uarchs.size(); ++l)
        lanes_.push_back(std::make_unique<CycleFabric>(
            config, program, uarchs[l], injectors_[l]));
    done_.assign(uarchs.size(), 0);
    soaLane_.assign(uarchs.size(), 0);
    planeWords_ = (numLanes() + 63) / 64;
    compileKernels();
}

void
BatchedFabric::compileKernels()
{
    // Every lane runs the same program, so the compiled descriptors —
    // and therefore the plane layout and per-descriptor ops — are
    // lane-invariant; only the gathered status bits differ. Lane 0 is
    // the template. Microarchitecture differences (+P/+Q, shapes)
    // change how a lane's status bits are *derived* (inside
    // refreshResolutionInputs), never the resolution algebra.
    const unsigned num_pes = lanes_[0]->numPes();
    kernels_.resize(num_pes);
    const unsigned W = planeWords_;
    invalid_.assign(W, 0);
    undecided_.assign(W, 0);
    scratch_.assign(3 * W, 0); // conds, fail, pendcare
    for (unsigned p = 0; p < num_pes; ++p) {
        PeKernel &k = kernels_[p];
        const PipelinedPe &pe = lanes_[0]->peRaw(p);
        const std::vector<TriggerDesc> &descs = pe.triggerDescs();

        // Plane slots: one per watched queue status bit, one tagOk
        // plane per tag-checked descriptor, pred + pending planes per
        // referenced predicate bit.
        std::array<int, 32> in_plane, out_plane;
        in_plane.fill(-1);
        out_plane.fill(-1);
        std::array<int, 64> pred_plane;
        pred_plane.fill(-1);

        for (std::uint32_t rest = pe.watchedInputs(); rest != 0;
             rest &= rest - 1) {
            const unsigned q =
                static_cast<unsigned>(std::countr_zero(rest));
            in_plane[q] = static_cast<int>(k.inQueues.size());
            k.inQueues.push_back(q);
        }
        k.outBase = static_cast<unsigned>(k.inQueues.size());
        for (std::uint32_t rest = pe.watchedOutputs(); rest != 0;
             rest &= rest - 1) {
            const unsigned q =
                static_cast<unsigned>(std::countr_zero(rest));
            out_plane[q] =
                static_cast<int>(k.outBase + k.outQueues.size());
            k.outQueues.push_back(q);
        }
        k.tagBase = k.outBase + static_cast<unsigned>(k.outQueues.size());
        std::uint64_t pred_union = 0;
        for (std::size_t i = 0; i < descs.size(); ++i) {
            if (!descs[i].valid)
                continue;
            if (descs[i].numChecks > 0)
                k.tagDescs.push_back(static_cast<unsigned>(i));
            pred_union |= descs[i].predOn | descs[i].predOff;
        }
        k.predBase = k.tagBase + static_cast<unsigned>(k.tagDescs.size());
        for (std::uint64_t rest = pred_union; rest != 0; rest &= rest - 1) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(rest));
            pred_plane[b] =
                static_cast<int>(k.predBase + k.predBits.size());
            k.predBits.push_back(b);
        }
        k.pendBase = k.predBase + static_cast<unsigned>(k.predBits.size());

        const unsigned num_planes =
            k.pendBase + static_cast<unsigned>(k.predBits.size());
        k.planes.assign(static_cast<std::size_t>(num_planes) * W, 0);

        // Compile each valid descriptor to its plane ops.
        unsigned tag_slot = 0;
        for (std::size_t i = 0; i < descs.size(); ++i) {
            const TriggerDesc &desc = descs[i];
            if (!desc.valid)
                continue;
            DescOp op;
            op.index = static_cast<unsigned>(i);
            for (std::uint32_t rest = desc.inputNeed; rest != 0;
                 rest &= rest - 1) {
                op.condPlanes.push_back(static_cast<unsigned>(
                    in_plane[std::countr_zero(rest)]));
            }
            for (std::uint32_t rest = desc.outputNeed; rest != 0;
                 rest &= rest - 1) {
                op.condPlanes.push_back(static_cast<unsigned>(
                    out_plane[std::countr_zero(rest)]));
            }
            if (desc.numChecks > 0)
                op.condPlanes.push_back(k.tagBase + tag_slot++);
            for (std::uint64_t rest = desc.predOn; rest != 0;
                 rest &= rest - 1) {
                op.onBits.push_back(static_cast<unsigned>(
                    pred_plane[std::countr_zero(rest)]));
            }
            for (std::uint64_t rest = desc.predOff; rest != 0;
                 rest &= rest - 1) {
                op.offBits.push_back(static_cast<unsigned>(
                    pred_plane[std::countr_zero(rest)]));
            }
            k.descs.push_back(std::move(op));
        }
    }
}

void
BatchedFabric::resolveAcrossLanes(const std::vector<unsigned> &stepping)
{
    const unsigned W = planeWords_;
    const unsigned num_pes =
        static_cast<unsigned>(kernels_.size());
    std::uint64_t ops = 0;
    for (unsigned p = 0; p < num_pes; ++p) {
        PeKernel &k = kernels_[p];

        // Gather: refresh and pack the status bits of every stepping
        // lane whose memoized verdict for this PE was invalidated.
        // Lanes with a valid verdict are the incremental-skip case and
        // are never touched; their stale plane bits are masked out of
        // the algebra below by the invalid mask.
        std::fill_n(invalid_.begin(), W, 0);
        bool any = false;
        for (const unsigned l : stepping) {
            if (!soaLane_[l])
                continue;
            PipelinedPe &pe = lanes_[l]->peRaw(p);
            if (pe.halted() || !pe.resolutionCacheArmed() ||
                pe.resolutionValid()) {
                continue;
            }
            pe.refreshResolutionInputs();
            const unsigned w = l / 64;
            const std::uint64_t bit = std::uint64_t{1} << (l % 64);
            auto put = [&](unsigned plane, bool value) {
                std::uint64_t &word = k.planes[plane * W + w];
                word = value ? (word | bit) : (word & ~bit);
            };
            const QueueStatusWords &st = pe.statusWords();
            for (std::size_t s = 0; s < k.inQueues.size(); ++s)
                put(static_cast<unsigned>(s),
                    (st.inputReady >> k.inQueues[s]) & 1);
            for (std::size_t s = 0; s < k.outQueues.size(); ++s)
                put(k.outBase + static_cast<unsigned>(s),
                    (st.outputSpace >> k.outQueues[s]) & 1);
            const std::vector<TriggerDesc> &descs = pe.triggerDescs();
            for (std::size_t s = 0; s < k.tagDescs.size(); ++s) {
                const TriggerDesc &desc = descs[k.tagDescs[s]];
                bool tag_ok = true;
                for (unsigned c = 0; c < desc.numChecks; ++c) {
                    const QueueCheck &check = desc.checks[c];
                    if (((st.inputReady >> check.queue) & 1) == 0) {
                        tag_ok = false;
                        break;
                    }
                    const bool match =
                        st.headTag[check.queue] == check.tag;
                    if (match == check.negate) {
                        tag_ok = false;
                        break;
                    }
                }
                put(k.tagBase + static_cast<unsigned>(s), tag_ok);
            }
            const std::uint64_t preds = pe.preds();
            const std::uint64_t pending = pe.pendingPredMask();
            for (std::size_t s = 0; s < k.predBits.size(); ++s) {
                put(k.predBase + static_cast<unsigned>(s),
                    (preds >> k.predBits[s]) & 1);
                put(k.pendBase + static_cast<unsigned>(s),
                    (pending >> k.predBits[s]) & 1);
            }
            invalid_[w] |= bit;
            any = true;
        }
        if (!any)
            continue;

        // Resolve: walk the descriptors in priority order, deciding
        // all gathered lanes per 64-lane word. Exactly schedule()'s
        // algebra (sim/scheduler.hh), vectorized across lanes:
        //   conds    = AND of required status planes
        //   fail     = some required predicate resolved wrong
        //   pendcare = some required predicate still pending
        //   fire     = conds & ~fail & ~pendcare
        //   blocked  = conds & ~fail & pendcare
        std::copy_n(invalid_.begin(), W, undecided_.begin());
        std::uint64_t *conds = scratch_.data();
        std::uint64_t *fail = scratch_.data() + W;
        std::uint64_t *pendcare = scratch_.data() + 2 * W;
        auto seed = [&](std::uint64_t word, unsigned w,
                        ScheduleOutcome outcome, unsigned index) {
            while (word != 0) {
                const unsigned l =
                    w * 64 +
                    static_cast<unsigned>(std::countr_zero(word));
                word &= word - 1;
                lanes_[l]->peRaw(p).seedResolution({outcome, index});
            }
        };
        std::uint64_t live = 0;
        for (unsigned w = 0; w < W; ++w)
            live |= undecided_[w];
        for (const DescOp &op : k.descs) {
            if (live == 0)
                break;
            for (unsigned w = 0; w < W; ++w) {
                std::uint64_t c = undecided_[w];
                if (c == 0)
                    continue;
                for (const unsigned plane : op.condPlanes)
                    c &= k.planes[plane * W + w];
                ops += op.condPlanes.size();
                conds[w] = c;
                if (c == 0)
                    continue;
                std::uint64_t f = 0, pc = 0;
                for (const unsigned plane : op.onBits) {
                    const std::uint64_t pred = k.planes[plane * W + w];
                    const std::uint64_t pend =
                        k.planes[(plane + (k.pendBase - k.predBase)) * W +
                                 w];
                    f |= ~pred & ~pend;
                    pc |= pend;
                }
                for (const unsigned plane : op.offBits) {
                    const std::uint64_t pred = k.planes[plane * W + w];
                    const std::uint64_t pend =
                        k.planes[(plane + (k.pendBase - k.predBase)) * W +
                                 w];
                    f |= pred & ~pend;
                    pc |= pend;
                }
                ops += 2 * (op.onBits.size() + op.offBits.size());
                fail[w] = f;
                pendcare[w] = pc;
            }
            // Scatter this descriptor's decisions and retire them from
            // the undecided set.
            live = 0;
            for (unsigned w = 0; w < W; ++w) {
                const std::uint64_t c = conds[w];
                if (undecided_[w] == 0)
                    continue;
                if (c != 0) {
                    const std::uint64_t eligible = c & ~fail[w];
                    const std::uint64_t blocked = eligible & pendcare[w];
                    const std::uint64_t fire = eligible & ~blocked;
                    ops += 3;
                    seed(fire, w, ScheduleOutcome::Fire, op.index);
                    seed(blocked, w, ScheduleOutcome::BlockedOnPredicate,
                         op.index);
                    undecided_[w] &= ~eligible;
                }
                live |= undecided_[w];
            }
        }
        // Whatever no descriptor decided resolves to None.
        for (unsigned w = 0; w < W; ++w)
            seed(undecided_[w], w, ScheduleOutcome::None, 0);
    }
    bitplaneOps_ += ops;
}

std::vector<BatchedLaneOutcome>
BatchedFabric::run(const FabricRunOptions &options)
{
    const unsigned n = numLanes();
    std::vector<CycleFabric::RunCursor> cursors;
    cursors.reserve(n);
    for (unsigned l = 0; l < n; ++l)
        cursors.emplace_back(*lanes_[l], options);

    std::vector<BatchedLaneOutcome> outcomes(n);
    std::fill(done_.begin(), done_.end(), 0);
    // Lanes the kernel may seed: clean (their PEs arm the resolution
    // cache) and resolving through the mask fast path — a lane routed
    // through the reference scheduler ignores seeded verdicts, so
    // gathering it would be pure waste.
    for (unsigned l = 0; l < n; ++l) {
        soaLane_[l] =
            injectors_[l] == nullptr && lanes_[l]->numPes() > 0 &&
            !lanes_[l]->peRaw(0).usesReferenceScheduler();
    }
    unsigned live = n;
    std::vector<unsigned> stepping;
    stepping.reserve(n);
    while (live > 0) {
        stepping.clear();
        for (unsigned l = 0; l < n; ++l) {
            if (done_[l])
                continue;
            if (injectors_[l] != nullptr) {
                // Mirrors the scalar harness: corrupted tokens on an
                // injected lane can escalate to architectural traps —
                // a reportable per-lane outcome, not a batch failure.
                // Injected lanes keep the fused scalar advance.
                try {
                    if (const auto status = cursors[l].advance()) {
                        outcomes[l].status = *status;
                        done_[l] = 1;
                        --live;
                    }
                } catch (const FatalError &error) {
                    outcomes[l].status = RunStatus::StepLimit;
                    outcomes[l].trapped = true;
                    outcomes[l].trapMessage = error.what();
                    done_[l] = 1;
                    --live;
                }
                continue;
            }
            if (const auto status = cursors[l].beginAdvance()) {
                outcomes[l].status = *status;
                done_[l] = 1;
                --live;
                continue;
            }
            stepping.push_back(l);
        }
        if (stepping.empty())
            continue;
        // Staged lockstep cycle: every live clean lane finishes its
        // work pass, the SoA kernel resolves the invalidated triggers
        // for all of them at once, then every lane issues and closes
        // the cycle. Per lane this is exactly RunCursor::advance();
        // lanes are independent, so interleaving the phases across
        // lanes is unobservable.
        for (const unsigned l : stepping)
            lanes_[l]->beginCycleEvents();
        for (const unsigned l : stepping)
            lanes_[l]->stepPeWork();
        resolveAcrossLanes(stepping);
        for (const unsigned l : stepping) {
            lanes_[l]->stepPeIssue();
            lanes_[l]->endCycleEvents();
            if (const auto status = cursors[l].finishAdvance()) {
                outcomes[l].status = *status;
                done_[l] = 1;
                --live;
            }
        }
    }
    return outcomes;
}

} // namespace tia
