#include "uarch/batched_fabric.hh"

#include <algorithm>

#include "core/logging.hh"

namespace tia {

BatchedFabric::BatchedFabric(const FabricConfig &config,
                             const Program &program,
                             const std::vector<PeConfig> &uarchs,
                             std::vector<FaultInjector *> injectors)
    : injectors_(std::move(injectors))
{
    fatalIf(uarchs.empty(), "BatchedFabric needs at least one lane");
    fatalIf(injectors_.size() > uarchs.size(),
            "more fault injectors (", injectors_.size(),
            ") than lanes (", uarchs.size(), ")");
    injectors_.resize(uarchs.size(), nullptr);
    lanes_.reserve(uarchs.size());
    for (std::size_t l = 0; l < uarchs.size(); ++l)
        lanes_.push_back(std::make_unique<CycleFabric>(
            config, program, uarchs[l], injectors_[l]));
    done_.assign(uarchs.size(), 0);
}

std::vector<BatchedLaneOutcome>
BatchedFabric::run(const FabricRunOptions &options)
{
    const unsigned n = numLanes();
    std::vector<CycleFabric::RunCursor> cursors;
    cursors.reserve(n);
    for (unsigned l = 0; l < n; ++l)
        cursors.emplace_back(*lanes_[l], options);

    std::vector<BatchedLaneOutcome> outcomes(n);
    std::fill(done_.begin(), done_.end(), 0);
    unsigned live = n;
    while (live > 0) {
        for (unsigned l = 0; l < n; ++l) {
            if (done_[l])
                continue;
            if (injectors_[l] == nullptr) {
                if (const auto status = cursors[l].advance()) {
                    outcomes[l].status = *status;
                    done_[l] = 1;
                    --live;
                }
                continue;
            }
            // Mirrors the scalar harness: corrupted tokens on an
            // injected lane can escalate to architectural traps —
            // a reportable per-lane outcome, not a batch failure.
            try {
                if (const auto status = cursors[l].advance()) {
                    outcomes[l].status = *status;
                    done_[l] = 1;
                    --live;
                }
            } catch (const FatalError &error) {
                outcomes[l].status = RunStatus::StepLimit;
                outcomes[l].trapped = true;
                outcomes[l].trapMessage = error.what();
                done_[l] = 1;
                --live;
            }
        }
    }
    return outcomes;
}

} // namespace tia
