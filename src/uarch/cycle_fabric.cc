#include "uarch/cycle_fabric.hh"

#include "core/logging.hh"

namespace tia {

CycleFabric::CycleFabric(const FabricConfig &config, const Program &program,
                         const PeConfig &uarch)
    : config_(config), memory_(config.memoryWords)
{
    config_.validate();
    fatalIf(program.numPes() > config_.numPes,
            "program targets ", program.numPes(),
            " PEs but the fabric has ", config_.numPes);

    for (unsigned ch = 0; ch < config_.numChannels; ++ch) {
        channels_.push_back(
            std::make_unique<TaggedQueue>(config_.params.queueCapacity));
    }

    for (unsigned pe = 0; pe < config_.numPes; ++pe) {
        std::vector<Instruction> insts;
        if (pe < program.numPes())
            insts = program.pes[pe];
        auto pipelined = std::make_unique<PipelinedPe>(
            config_.params, uarch, std::move(insts));
        for (unsigned port = 0; port < config_.params.numInputQueues;
             ++port) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound)
                pipelined->bindInput(port, channels_[ch].get());
        }
        for (unsigned port = 0; port < config_.params.numOutputQueues;
             ++port) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound)
                pipelined->bindOutput(port, channels_[ch].get());
        }
        if (pe < config_.initialRegs.size())
            pipelined->setRegs(config_.initialRegs[pe]);
        if (pe < config_.initialPreds.size())
            pipelined->setPreds(config_.initialPreds[pe]);
        pes_.push_back(std::move(pipelined));
    }

    for (const auto &spec : config_.readPorts) {
        readPorts_.push_back(std::make_unique<MemoryReadPort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel], config_.memLatency));
    }
    for (const auto &spec : config_.writePorts) {
        writePorts_.push_back(std::make_unique<MemoryWritePort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel]));
    }
}

void
CycleFabric::step()
{
    for (auto &channel : channels_)
        channel->beginCycle();
    for (auto &pe : pes_)
        pe->step();
    for (auto &port : readPorts_)
        port->step(now_);
    for (auto &port : writePorts_)
        port->step(now_);
    for (auto &channel : channels_)
        channel->commit();
    ++now_;
}

bool
CycleFabric::anyActivity() const
{
    for (const auto &pe : pes_) {
        if (!pe->halted() && pe->busy())
            return true;
    }
    for (const auto &port : readPorts_) {
        if (port->busy())
            return true;
    }
    return false;
}

RunStatus
CycleFabric::run(Cycle max_cycles, Cycle quiescence_window)
{
    std::uint64_t last_retired = 0;
    Cycle last_activity = now_;

    while (now_ < max_cycles) {
        bool all_halted = true;
        for (const auto &pe : pes_)
            all_halted &= pe->halted();
        if (all_halted)
            return RunStatus::Halted;

        step();

        std::uint64_t retired = 0;
        for (const auto &pe : pes_)
            retired += pe->counters().retired;
        if (retired != last_retired || anyActivity()) {
            last_retired = retired;
            last_activity = now_;
        } else if (now_ - last_activity >= quiescence_window) {
            return RunStatus::Quiescent;
        }
    }
    return RunStatus::StepLimit;
}

} // namespace tia
