#include "uarch/cycle_fabric.hh"

#include <algorithm>
#include <string>

#include "core/logging.hh"

namespace tia {

CycleFabric::CycleFabric(const FabricConfig &config, const Program &program,
                         const PeConfig &uarch, FaultInjector *injector)
    : config_(config), memory_(config.memoryWords), injector_(injector),
      events_(config.numChannels)
{
    config_.validate();
    fatalIf(program.numPes() > config_.numPes,
            "program targets ", program.numPes(),
            " PEs but the fabric has ", config_.numPes);

    for (unsigned ch = 0; ch < config_.numChannels; ++ch) {
        channels_.push_back(
            std::make_unique<TaggedQueue>(config_.params.queueCapacity));
        if (injector_)
            channels_.back()->setFaultHook(injector_, ch);
        channels_.back()->setEventLog(&events_, ch);
    }
    channelPes_.resize(config_.numChannels);
    peChannels_.resize(config_.numPes);
    parkCandidates_.reserve(config_.numPes);

    // Fault stuck-status windows open and close without queue events,
    // so parked PEs could miss a wake; keep everyone stepping.
    sleepEnabled_ = injector_ == nullptr;

    for (unsigned pe = 0; pe < config_.numPes; ++pe) {
        std::vector<Instruction> insts;
        if (pe < program.numPes())
            insts = program.pes[pe];
        auto pipelined = std::make_unique<PipelinedPe>(
            config_.params, uarch, std::move(insts));
        for (unsigned port = 0; port < config_.params.numInputQueues;
             ++port) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound)
                pipelined->bindInput(port, channels_[ch].get());
        }
        for (unsigned port = 0; port < config_.params.numOutputQueues;
             ++port) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound)
                pipelined->bindOutput(port, channels_[ch].get());
        }
        if (pe < config_.initialRegs.size())
            pipelined->setRegs(config_.initialRegs[pe]);
        if (pe < config_.initialPreds.size())
            pipelined->setPreds(config_.initialPreds[pe]);
        if (injector_)
            pipelined->setFaultInjector(injector_, pe);

        // The resolution cache rides on these wake subscriptions; arm
        // it only when every scheduler-status change is guaranteed to
        // produce a queue event (fault stuck-status windows are not).
        pipelined->setResolutionCacheEnabled(injector_ == nullptr);

        // Wake/invalidate subscriptions: the channels whose status can
        // turn one of this PE's triggers eligible, with the PE-side
        // port bits so a dirty channel invalidates exactly those bits
        // of the PE's memoized status. A channel no trigger references
        // never changes the scheduler's verdict.
        auto subscribe = [&](int ch, std::uint32_t in_bit,
                             std::uint32_t out_bit) {
            auto &watchers = channelPes_[ch];
            // PEs are processed one at a time, so this PE's entry — if
            // any — is the last one pushed.
            if (watchers.empty() || watchers.back().pe != pe) {
                watchers.push_back({pe, 0, 0});
                peChannels_[pe].push_back(static_cast<unsigned>(ch));
            }
            watchers.back().inPorts |= in_bit;
            watchers.back().outPorts |= out_bit;
        };
        const std::uint32_t in_mask = pipelined->watchedInputs();
        for (unsigned port = 0; port < config_.params.numInputQueues;
             ++port) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound && (in_mask & (std::uint32_t{1} << port)))
                subscribe(ch, std::uint32_t{1} << port, 0);
        }
        const std::uint32_t out_mask = pipelined->watchedOutputs();
        for (unsigned port = 0; port < config_.params.numOutputQueues;
             ++port) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound && (out_mask & (std::uint32_t{1} << port)))
                subscribe(ch, 0, std::uint32_t{1} << port);
        }

        pes_.push_back(std::move(pipelined));
    }

    activePes_.reserve(config_.numPes);
    for (unsigned pe = 0; pe < config_.numPes; ++pe)
        activePes_.push_back(pe);
    asleep_.assign(config_.numPes, false);
    sleepSince_.assign(config_.numPes, 0);
    retiredAtWork_.assign(config_.numPes, 0);

    for (const auto &spec : config_.readPorts) {
        readPorts_.push_back(std::make_unique<MemoryReadPort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel], config_.memLatency));
        if (injector_) {
            readPorts_.back()->setFaultInjector(
                injector_,
                static_cast<unsigned>(readPorts_.size() - 1));
        }
    }
    for (const auto &spec : config_.writePorts) {
        writePorts_.push_back(std::make_unique<MemoryWritePort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel]));
    }
}

void
CycleFabric::syncSleepCounters(unsigned index) const
{
    // The PE last stepped (or was last accounted) at sleepSince_; every
    // cycle since, up to and including the last executed fabric cycle
    // (now_ - 1), would have been exactly one no-trigger cycle.
    const Cycle skipped = now_ - sleepSince_[index] - 1;
    if (skipped > 0) {
        pes_[index]->skipIdleCycles(skipped);
        stepsSkipped_ += skipped;
        sleepSince_[index] = now_ - 1;
    }
}

void
CycleFabric::flushSleepDebt() const
{
    for (unsigned pe = 0; pe < pes_.size(); ++pe) {
        if (asleep_[pe])
            syncSleepCounters(pe);
    }
}

void
CycleFabric::wakeParkedPe(unsigned index)
{
    syncSleepCounters(index);
    asleep_[index] = false;
    activePes_.push_back(index);
    if (trace_) [[unlikely]]
        traceEvent(index, TraceEventKind::Wake);
}

void
CycleFabric::traceEvent(std::uint32_t pe, TraceEventKind kind,
                        std::uint16_t index, std::uint64_t value) const
{
    trace_->record({now_, pe, kind, 0, index, value});
}

void
CycleFabric::traceQueueDepths() const
{
    // One committed-occupancy sample per channel touched this cycle
    // (the dirty list was cleared at step entry, so it now holds
    // exactly this cycle's activity).
    for (unsigned ch : events_.dirtyChannels()) {
        traceEvent(kChannelAgent, TraceEventKind::QueueDepth,
                   static_cast<std::uint16_t>(ch), channels_[ch]->size());
    }
}

void
CycleFabric::setTraceSink(TraceSink *sink, TraceLevel level)
{
    trace_ = sink;
    traceLevel_ = level;
    for (unsigned pe = 0; pe < pes_.size(); ++pe)
        pes_[pe]->setTraceSink(sink, level, pe);
}

void
CycleFabric::setIdleSleepEnabled(bool enabled)
{
    sleepEnabled_ = enabled && injector_ == nullptr;
    if (!sleepEnabled_) {
        for (unsigned pe = 0; pe < pes_.size(); ++pe)
            wakePe(pe);
    }
}

[[gnu::always_inline]] inline void
CycleFabric::beginCycleEventsImpl()
{
    if (injector_)
        injector_->beginCycle(now_);

    // Channels touched last cycle take a fresh occupancy snapshot, and
    // their activity — architecturally visible from this cycle on —
    // wakes any parked watcher and marks the bound ports stale in the
    // watcher's resolution cache. Untouched channels already satisfy
    // snapshotSize() == size() and popsThisCycle() == 0.
    for (unsigned ch : events_.dirtyChannels()) {
        channels_[ch]->beginCycle();
        for (const ChannelWatcher &watcher : channelPes_[ch]) {
            pes_[watcher.pe]->noteQueuesDirty(watcher.inPorts,
                                              watcher.outPorts);
            wakePe(watcher.pe);
        }
    }
    events_.clearDirty();
}

void
CycleFabric::beginCycleEvents()
{
    beginCycleEventsImpl();
}

void
CycleFabric::step()
{
    beginCycleEventsImpl();

    // Step the active PEs; retire halted ones and park provably idle
    // ones (swap-remove — order within a cycle is unobservable because
    // every channel has exactly one producer and one consumer).
    activeBusyPes_ = 0;
    for (std::size_t i = 0; i < activePes_.size();) {
        const unsigned index = activePes_[i];
        PipelinedPe &pe = *pes_[index];
        const std::uint64_t retired_before = pe.counters().retired;
        pe.step();
        totalRetired_ += pe.counters().retired - retired_before;
        ++stepsExecuted_;
        sleepSince_[index] = now_;
        if (pe.halted()) {
            ++haltedPes_;
            activePes_[i] = activePes_.back();
            activePes_.pop_back();
            continue;
        }
        if (sleepEnabled_ && pe.canSleep()) {
            // Park decision deferred to end of step(): if a watched
            // channel goes dirty this very cycle the PE would be woken
            // right back at the next cycle's start, so parking it now
            // is pure list churn.
            parkCandidates_.push_back(index);
            activePes_[i] = activePes_.back();
            activePes_.pop_back();
            continue;
        }
        if (pe.busy())
            ++activeBusyPes_;
        ++i;
    }

    endCycleEventsImpl();
}

void
CycleFabric::stepPeWork()
{
    for (const unsigned index : activePes_) {
        retiredAtWork_[index] = pes_[index]->counters().retired;
        pes_[index]->stepWork();
    }
}

void
CycleFabric::stepPeIssue()
{
    // Same bookkeeping as the fused loop in step(), with the retired
    // delta spanning both halves (a writeback can retire in either).
    activeBusyPes_ = 0;
    for (std::size_t i = 0; i < activePes_.size();) {
        const unsigned index = activePes_[i];
        PipelinedPe &pe = *pes_[index];
        pe.stepIssue();
        totalRetired_ += pe.counters().retired - retiredAtWork_[index];
        ++stepsExecuted_;
        sleepSince_[index] = now_;
        if (pe.halted()) {
            ++haltedPes_;
            activePes_[i] = activePes_.back();
            activePes_.pop_back();
            continue;
        }
        if (sleepEnabled_ && pe.canSleep()) {
            parkCandidates_.push_back(index);
            activePes_[i] = activePes_.back();
            activePes_.pop_back();
            continue;
        }
        if (pe.busy())
            ++activeBusyPes_;
        ++i;
    }
}

[[gnu::always_inline]] inline void
CycleFabric::endCycleEventsImpl()
{
    for (auto &port : readPorts_)
        port->step(now_);
    for (auto &port : writePorts_)
        port->step(now_);

    // Only channels that actually received pushes have anything to
    // commit.
    for (unsigned ch : events_.pushedChannels())
        channels_[ch]->commit();
    events_.clearPushed();

    // Resolve the deferred parks now that every agent has run: a
    // candidate with a dirty watched channel stays active (it would be
    // woken next cycle anyway), the rest go to sleep. Equivalent to
    // parking eagerly — the kept-active PE executes the same no-trigger
    // step next cycle that wakeParkedPe() would have accounted.
    for (unsigned index : parkCandidates_) {
        bool pending = false;
        for (unsigned ch : peChannels_[index]) {
            if (events_.dirty(ch)) {
                pending = true;
                break;
            }
        }
        if (pending) {
            activePes_.push_back(index);
        } else {
            asleep_[index] = true;
            if (trace_) [[unlikely]]
                traceEvent(index, TraceEventKind::Park);
        }
    }
    parkCandidates_.clear();

    // Depth tracks (`cycles` level only).
    if (trace_ && traceLevel_ == TraceLevel::Cycles) [[unlikely]]
        traceQueueDepths();

    ++now_;
}

void
CycleFabric::endCycleEvents()
{
    endCycleEventsImpl();
}

bool
CycleFabric::anyActivity() const
{
    // Parked PEs are by construction not busy; halted ones are off the
    // active list.
    if (activeBusyPes_ > 0)
        return true;
    for (const auto &port : readPorts_) {
        if (port->busy())
            return true;
    }
    for (const auto &port : writePorts_) {
        if (port->busy())
            return true;
    }
    return false;
}

CycleFabric::RunCursor::RunCursor(CycleFabric &fabric,
                                  const FabricRunOptions &options)
    : fabric_(fabric), options_(options),
      lastRetired_(fabric.totalRetired_),
      lastEvents_(fabric.events_.progressEvents()),
      lastActivity_(fabric.now_), lastProgress_(fabric.now_),
      // First poll happens immediately: a job cancelled while queued
      // returns before simulating a single cycle.
      nextStopCheck_(fabric.now_)
{
}

std::optional<RunStatus>
CycleFabric::RunCursor::beginAdvance()
{
    CycleFabric &f = fabric_;
    if (f.now_ >= options_.maxCycles) {
        f.flushSleepDebt();
        f.report_ = classifyStepLimit(f.now_ - lastProgress_,
                                      options_.quiescenceWindow);
        return f.report_.classification;
    }
    if (options_.stop.possible() && f.now_ >= nextStopCheck_) {
        if (const char *why = options_.stop.why()) {
            f.flushSleepDebt();
            f.report_ = HangReport{};
            f.report_.classification = RunStatus::Cancelled;
            f.report_.summary = std::string("cancelled (") + why +
                                ") after " + std::to_string(f.now_) +
                                " cycle(s)";
            return RunStatus::Cancelled;
        }
        nextStopCheck_ = f.now_ + options_.stopCheckInterval;
    }
    if (f.haltedPes_ == f.pes_.size()) {
        f.report_ = HangReport{};
        f.report_.classification = RunStatus::Halted;
        f.report_.summary = "halted: every PE retired a halt";
        f.flushSleepDebt();
        return RunStatus::Halted;
    }
    return std::nullopt;
}

std::optional<RunStatus>
CycleFabric::RunCursor::finishAdvance()
{
    CycleFabric &f = fabric_;
    if (f.events_.progressEvents() != lastEvents_) {
        lastEvents_ = f.events_.progressEvents();
        lastProgress_ = f.now_;
    }
    if (f.totalRetired_ != lastRetired_ || f.anyActivity()) {
        lastRetired_ = f.totalRetired_;
        lastActivity_ = f.now_;
    } else if (f.now_ - lastActivity_ >= options_.quiescenceWindow) {
        f.flushSleepDebt();
        f.report_ = f.diagnoseQuiescence();
        return f.report_.classification;
    }
    return std::nullopt;
}

RunStatus
CycleFabric::run(const FabricRunOptions &options)
{
    RunCursor cursor(*this, options);
    for (;;) {
        if (const auto status = cursor.advance())
            return *status;
    }
}

namespace {

/** Identity of a channel endpoint for wait-for-graph construction. */
struct Endpoint
{
    enum Kind { None, Pe, RPort, WPort } kind = None;
    unsigned index = 0;
    unsigned port = 0; ///< PE port number (diagnostics only).
};

} // namespace

HangReport
CycleFabric::diagnoseQuiescence() const
{
    WaitForGraph graph;

    std::vector<std::size_t> pe_node(pes_.size());
    for (unsigned pe = 0; pe < pes_.size(); ++pe) {
        pe_node[pe] =
            graph.addNode(AgentKind::Pe, pe, "PE " + std::to_string(pe));
    }
    std::vector<std::size_t> ch_node(channels_.size());
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        ch_node[ch] = graph.addNode(AgentKind::Channel, ch,
                                    "channel " + std::to_string(ch));
    }
    std::vector<std::size_t> rp_node(readPorts_.size());
    for (unsigned rp = 0; rp < readPorts_.size(); ++rp) {
        rp_node[rp] = graph.addNode(AgentKind::ReadPort, rp,
                                    "read port " + std::to_string(rp));
    }
    std::vector<std::size_t> wp_node(writePorts_.size());
    for (unsigned wp = 0; wp < writePorts_.size(); ++wp) {
        wp_node[wp] = graph.addNode(AgentKind::WritePort, wp,
                                    "write port " + std::to_string(wp));
    }

    // Who produces into and consumes from each channel.
    std::vector<Endpoint> producer(channels_.size());
    std::vector<std::vector<Endpoint>> consumers(channels_.size());
    for (unsigned pe = 0; pe < pes_.size(); ++pe) {
        for (unsigned port = 0; port < config_.params.numOutputQueues;
             ++port) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound)
                producer[ch] = {Endpoint::Pe, pe, port};
        }
        for (unsigned port = 0; port < config_.params.numInputQueues;
             ++port) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound)
                consumers[ch].push_back({Endpoint::Pe, pe, port});
        }
    }
    for (unsigned rp = 0; rp < config_.readPorts.size(); ++rp) {
        producer[config_.readPorts[rp].dataChannel] = {Endpoint::RPort, rp,
                                                       0};
        consumers[config_.readPorts[rp].addrChannel].push_back(
            {Endpoint::RPort, rp, 0});
    }
    for (unsigned wp = 0; wp < config_.writePorts.size(); ++wp) {
        consumers[config_.writePorts[wp].addrChannel].push_back(
            {Endpoint::WPort, wp, 0});
        consumers[config_.writePorts[wp].dataChannel].push_back(
            {Endpoint::WPort, wp, 1});
    }

    auto endpoint_node = [&](const Endpoint &ep) -> std::size_t {
        switch (ep.kind) {
          case Endpoint::Pe:
            return pe_node[ep.index];
          case Endpoint::RPort:
            return rp_node[ep.index];
          case Endpoint::WPort:
            return wp_node[ep.index];
          case Endpoint::None:
            break;
        }
        return static_cast<std::size_t>(-1);
    };

    // An empty-waited channel is unblocked by its producer; a
    // full-waited channel by its consumers. Edges are added per wait
    // so the two directions never mix on an unwaited channel.
    auto add_empty_wait = [&](std::size_t waiter, unsigned ch,
                              std::string reason) {
        graph.addEdge(waiter, ch_node[ch], std::move(reason));
        const std::size_t prod = endpoint_node(producer[ch]);
        if (prod != static_cast<std::size_t>(-1))
            graph.addEdge(ch_node[ch], prod, "fed by");
    };
    auto add_full_wait = [&](std::size_t waiter, unsigned ch,
                             std::string reason) {
        graph.addEdge(waiter, ch_node[ch], std::move(reason));
        for (const auto &cons : consumers[ch]) {
            const std::size_t node = endpoint_node(cons);
            if (node != static_cast<std::size_t>(-1))
                graph.addEdge(ch_node[ch], node, "drained by");
        }
    };

    // PE wait edges, from the scheduler's own queue view.
    for (unsigned pe = 0; pe < pes_.size(); ++pe) {
        const PeWaitInfo info = pes_[pe]->queueWaits();
        if (!info.blocked())
            continue;
        graph.markBlocked(pe_node[pe]);
        for (unsigned port : info.waitInputs) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound) {
                add_empty_wait(pe_node[pe], static_cast<unsigned>(ch),
                               "input %i" + std::to_string(port) +
                                   " empty or wrong tag");
            }
        }
        for (unsigned port : info.waitOutputs) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound) {
                add_full_wait(pe_node[pe], static_cast<unsigned>(ch),
                              "output %o" + std::to_string(port) +
                                  " full");
            }
        }
    }

    // A read port that is not producing is waiting for addresses.
    for (unsigned rp = 0; rp < readPorts_.size(); ++rp) {
        if (channels_[config_.readPorts[rp].addrChannel]->empty()) {
            add_empty_wait(rp_node[rp], config_.readPorts[rp].addrChannel,
                           "no requests");
        }
    }
    // A write port with one side of the pair missing waits for it.
    for (unsigned wp = 0; wp < writePorts_.size(); ++wp) {
        const unsigned addr_ch = config_.writePorts[wp].addrChannel;
        const unsigned data_ch = config_.writePorts[wp].dataChannel;
        const bool addr_empty = channels_[addr_ch]->empty();
        const bool data_empty = channels_[data_ch]->empty();
        if (addr_empty != data_empty) {
            add_empty_wait(wp_node[wp], addr_empty ? addr_ch : data_ch,
                           "awaiting paired token");
        }
    }

    return classifyQuiescence(graph);
}

} // namespace tia
