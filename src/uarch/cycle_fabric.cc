#include "uarch/cycle_fabric.hh"

#include <algorithm>
#include <string>

#include "core/logging.hh"

namespace tia {

CycleFabric::CycleFabric(const FabricConfig &config, const Program &program,
                         const PeConfig &uarch, FaultInjector *injector)
    : config_(config), memory_(config.memoryWords), injector_(injector)
{
    config_.validate();
    fatalIf(program.numPes() > config_.numPes,
            "program targets ", program.numPes(),
            " PEs but the fabric has ", config_.numPes);

    for (unsigned ch = 0; ch < config_.numChannels; ++ch) {
        channels_.push_back(
            std::make_unique<TaggedQueue>(config_.params.queueCapacity));
        if (injector_)
            channels_.back()->setFaultHook(injector_, ch);
    }

    for (unsigned pe = 0; pe < config_.numPes; ++pe) {
        std::vector<Instruction> insts;
        if (pe < program.numPes())
            insts = program.pes[pe];
        auto pipelined = std::make_unique<PipelinedPe>(
            config_.params, uarch, std::move(insts));
        for (unsigned port = 0; port < config_.params.numInputQueues;
             ++port) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound)
                pipelined->bindInput(port, channels_[ch].get());
        }
        for (unsigned port = 0; port < config_.params.numOutputQueues;
             ++port) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound)
                pipelined->bindOutput(port, channels_[ch].get());
        }
        if (pe < config_.initialRegs.size())
            pipelined->setRegs(config_.initialRegs[pe]);
        if (pe < config_.initialPreds.size())
            pipelined->setPreds(config_.initialPreds[pe]);
        if (injector_)
            pipelined->setFaultInjector(injector_, pe);
        pes_.push_back(std::move(pipelined));
    }

    for (const auto &spec : config_.readPorts) {
        readPorts_.push_back(std::make_unique<MemoryReadPort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel], config_.memLatency));
        if (injector_) {
            readPorts_.back()->setFaultInjector(
                injector_,
                static_cast<unsigned>(readPorts_.size() - 1));
        }
    }
    for (const auto &spec : config_.writePorts) {
        writePorts_.push_back(std::make_unique<MemoryWritePort>(
            memory_, *channels_[spec.addrChannel],
            *channels_[spec.dataChannel]));
    }
}

void
CycleFabric::step()
{
    if (injector_)
        injector_->beginCycle(now_);
    for (auto &channel : channels_)
        channel->beginCycle();
    for (auto &pe : pes_)
        pe->step();
    for (auto &port : readPorts_)
        port->step(now_);
    for (auto &port : writePorts_)
        port->step(now_);
    for (auto &channel : channels_)
        channel->commit();
    ++now_;
}

bool
CycleFabric::anyActivity() const
{
    for (const auto &pe : pes_) {
        if (!pe->halted() && pe->busy())
            return true;
    }
    for (const auto &port : readPorts_) {
        if (port->busy())
            return true;
    }
    for (const auto &port : writePorts_) {
        if (port->busy())
            return true;
    }
    return false;
}

std::uint64_t
CycleFabric::totalRetired() const
{
    std::uint64_t retired = 0;
    for (const auto &pe : pes_)
        retired += pe->counters().retired;
    return retired;
}

std::uint64_t
CycleFabric::tokensMoved() const
{
    std::uint64_t moved = 0;
    for (const auto &channel : channels_)
        moved += channel->totalPushes() + channel->totalPops();
    for (const auto &port : writePorts_)
        moved += port->writesPerformed();
    return moved;
}

RunStatus
CycleFabric::run(const FabricRunOptions &options)
{
    std::uint64_t last_retired = totalRetired();
    std::uint64_t last_tokens = tokensMoved();
    Cycle last_activity = now_;
    Cycle last_progress = now_;

    while (now_ < options.maxCycles) {
        bool all_halted = true;
        for (const auto &pe : pes_)
            all_halted &= pe->halted();
        if (all_halted) {
            report_ = HangReport{};
            report_.classification = RunStatus::Halted;
            report_.summary = "halted: every PE retired a halt";
            return RunStatus::Halted;
        }

        step();

        const std::uint64_t tokens = tokensMoved();
        if (tokens != last_tokens) {
            last_tokens = tokens;
            last_progress = now_;
        }
        const std::uint64_t retired = totalRetired();
        if (retired != last_retired || anyActivity()) {
            last_retired = retired;
            last_activity = now_;
        } else if (now_ - last_activity >= options.quiescenceWindow) {
            report_ = diagnoseQuiescence();
            return report_.classification;
        }
    }
    report_ = classifyStepLimit(now_ - last_progress,
                                options.quiescenceWindow);
    return report_.classification;
}

namespace {

/** Identity of a channel endpoint for wait-for-graph construction. */
struct Endpoint
{
    enum Kind { None, Pe, RPort, WPort } kind = None;
    unsigned index = 0;
    unsigned port = 0; ///< PE port number (diagnostics only).
};

} // namespace

HangReport
CycleFabric::diagnoseQuiescence() const
{
    WaitForGraph graph;

    std::vector<std::size_t> pe_node(pes_.size());
    for (unsigned pe = 0; pe < pes_.size(); ++pe) {
        pe_node[pe] =
            graph.addNode(AgentKind::Pe, pe, "PE " + std::to_string(pe));
    }
    std::vector<std::size_t> ch_node(channels_.size());
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        ch_node[ch] = graph.addNode(AgentKind::Channel, ch,
                                    "channel " + std::to_string(ch));
    }
    std::vector<std::size_t> rp_node(readPorts_.size());
    for (unsigned rp = 0; rp < readPorts_.size(); ++rp) {
        rp_node[rp] = graph.addNode(AgentKind::ReadPort, rp,
                                    "read port " + std::to_string(rp));
    }
    std::vector<std::size_t> wp_node(writePorts_.size());
    for (unsigned wp = 0; wp < writePorts_.size(); ++wp) {
        wp_node[wp] = graph.addNode(AgentKind::WritePort, wp,
                                    "write port " + std::to_string(wp));
    }

    // Who produces into and consumes from each channel.
    std::vector<Endpoint> producer(channels_.size());
    std::vector<std::vector<Endpoint>> consumers(channels_.size());
    for (unsigned pe = 0; pe < pes_.size(); ++pe) {
        for (unsigned port = 0; port < config_.params.numOutputQueues;
             ++port) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound)
                producer[ch] = {Endpoint::Pe, pe, port};
        }
        for (unsigned port = 0; port < config_.params.numInputQueues;
             ++port) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound)
                consumers[ch].push_back({Endpoint::Pe, pe, port});
        }
    }
    for (unsigned rp = 0; rp < config_.readPorts.size(); ++rp) {
        producer[config_.readPorts[rp].dataChannel] = {Endpoint::RPort, rp,
                                                       0};
        consumers[config_.readPorts[rp].addrChannel].push_back(
            {Endpoint::RPort, rp, 0});
    }
    for (unsigned wp = 0; wp < config_.writePorts.size(); ++wp) {
        consumers[config_.writePorts[wp].addrChannel].push_back(
            {Endpoint::WPort, wp, 0});
        consumers[config_.writePorts[wp].dataChannel].push_back(
            {Endpoint::WPort, wp, 1});
    }

    auto endpoint_node = [&](const Endpoint &ep) -> std::size_t {
        switch (ep.kind) {
          case Endpoint::Pe:
            return pe_node[ep.index];
          case Endpoint::RPort:
            return rp_node[ep.index];
          case Endpoint::WPort:
            return wp_node[ep.index];
          case Endpoint::None:
            break;
        }
        return static_cast<std::size_t>(-1);
    };

    // An empty-waited channel is unblocked by its producer; a
    // full-waited channel by its consumers. Edges are added per wait
    // so the two directions never mix on an unwaited channel.
    auto add_empty_wait = [&](std::size_t waiter, unsigned ch,
                              std::string reason) {
        graph.addEdge(waiter, ch_node[ch], std::move(reason));
        const std::size_t prod = endpoint_node(producer[ch]);
        if (prod != static_cast<std::size_t>(-1))
            graph.addEdge(ch_node[ch], prod, "fed by");
    };
    auto add_full_wait = [&](std::size_t waiter, unsigned ch,
                             std::string reason) {
        graph.addEdge(waiter, ch_node[ch], std::move(reason));
        for (const auto &cons : consumers[ch]) {
            const std::size_t node = endpoint_node(cons);
            if (node != static_cast<std::size_t>(-1))
                graph.addEdge(ch_node[ch], node, "drained by");
        }
    };

    // PE wait edges, from the scheduler's own queue view.
    for (unsigned pe = 0; pe < pes_.size(); ++pe) {
        const PeWaitInfo info = pes_[pe]->queueWaits();
        if (!info.blocked())
            continue;
        graph.markBlocked(pe_node[pe]);
        for (unsigned port : info.waitInputs) {
            const int ch = config_.inputChannel[pe][port];
            if (ch != kUnbound) {
                add_empty_wait(pe_node[pe], static_cast<unsigned>(ch),
                               "input %i" + std::to_string(port) +
                                   " empty or wrong tag");
            }
        }
        for (unsigned port : info.waitOutputs) {
            const int ch = config_.outputChannel[pe][port];
            if (ch != kUnbound) {
                add_full_wait(pe_node[pe], static_cast<unsigned>(ch),
                              "output %o" + std::to_string(port) +
                                  " full");
            }
        }
    }

    // A read port that is not producing is waiting for addresses.
    for (unsigned rp = 0; rp < readPorts_.size(); ++rp) {
        if (channels_[config_.readPorts[rp].addrChannel]->empty()) {
            add_empty_wait(rp_node[rp], config_.readPorts[rp].addrChannel,
                           "no requests");
        }
    }
    // A write port with one side of the pair missing waits for it.
    for (unsigned wp = 0; wp < writePorts_.size(); ++wp) {
        const unsigned addr_ch = config_.writePorts[wp].addrChannel;
        const unsigned data_ch = config_.writePorts[wp].dataChannel;
        const bool addr_empty = channels_[addr_ch]->empty();
        const bool data_empty = channels_[data_ch]->empty();
        if (addr_empty != data_empty) {
            add_empty_wait(wp_node[wp], addr_empty ? addr_ch : data_ch,
                           "awaiting paired token");
        }
    }

    return classifyQuiescence(graph);
}

} // namespace tia
